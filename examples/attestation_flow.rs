//! Remote attestation, end to end, on both hardware TEEs (paper §IV-C,
//! Fig. 5) — including what happens when evidence is tampered with and why
//! CCA sits this experiment out.
//!
//! Run with: `cargo run --example attestation_flow`

use std::error::Error;

use confbench_attest::{AttestError, SnpEcosystem, TdxEcosystem};
use confbench_types::{TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

fn main() -> Result<(), Box<dyn Error>> {
    // --- TDX: TDREPORT -> QE quote -> DCAP verification with PCS fetches.
    let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
    let tdx = TdxEcosystem::new(1);
    let nonce = TdxEcosystem::report_data_for_nonce(0xfeed);

    let (quote, attest) = tdx.generate_quote(&mut td, nonce)?;
    println!("TDX attest: quote generated in {:.1} ms (TDCALL + QE signing)", attest.latency_ms);
    println!("  mrtd = {}", quote.report.mrtd);
    println!("  tcb  = {} ({})", quote.tcb_level, quote.report.tcb_version);

    let check = tdx.verify_quote(&quote, nonce)?;
    println!(
        "TDX check: verified in {:.1} ms ({:.1} ms of that in PCS round trips)",
        check.latency_ms, check.network_ms
    );

    // Tampered evidence is rejected.
    let mut forged = quote.clone();
    forged.tcb_level += 1;
    match tdx.verify_quote(&forged, nonce) {
        Err(AttestError::BadSignature(what)) => println!("  forged quote rejected ({what})"),
        other => panic!("forgery must fail, got {other:?}"),
    }

    // --- SEV-SNP: AMD-SP report + local VCEK chain (no network at all).
    let mut guest = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(1).build();
    let snp = SnpEcosystem::new(1);
    let mut snp_nonce = [0u8; 64];
    snp_nonce[..4].copy_from_slice(b"beef");

    let (report, attest) = snp.request_report(&mut guest, snp_nonce)?;
    println!("\nSNP attest: report in {:.1} ms (local AMD-SP firmware call)", attest.latency_ms);
    println!("  measurement = {}", report.measurement);

    let (chain, fetch_ms) = snp.fetch_chain(&mut guest)?;
    chain.verify()?;
    println!("  VCEK chain fetched from hardware in {fetch_ms:.1} ms and verified (ARK→ASK→VCEK)");

    let check = snp.verify_report_with_chain(&report, &chain, snp_nonce)?;
    println!("SNP check: verified in {:.1} ms, zero network", check.latency_ms);

    match snp.verify_report(&report, [9u8; 64]) {
        Err(AttestError::NonceMismatch) => println!("  stale-nonce replay rejected"),
        other => panic!("replay must fail, got {other:?}"),
    }

    // --- CCA: no attestation on the FVP testbed (paper §IV-B).
    let mut realm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).seed(1).build();
    let (rmm, rd) = realm.rmm_mut().expect("realm vm");
    match rmm.rsi_attestation_token(rd) {
        Err(e) => println!("\nCCA: {e} — exactly as in the paper's testbed"),
        Ok(_) => panic!("FVP model must not offer attestation"),
    }

    println!(
        "\nFig. 5 shape: SNP beats TDX in both phases; TDX 'check' is dominated\n\
         by the three PCS network requests (TCB info + two CRLs)."
    );
    Ok(())
}

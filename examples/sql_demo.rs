//! The DBMS substrate as a standalone library: drive it with SQL, then
//! replay the operations it generated inside a confidential VM.
//!
//! Run with: `cargo run --example sql_demo`

use std::error::Error;

use confbench_minidb::{run_sql, Database, SqlOutput};
use confbench_types::{TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

fn main() -> Result<(), Box<dyn Error>> {
    let mut db = Database::new();
    let outputs = run_sql(
        &mut db,
        "
        CREATE TABLE measurements (tee TEXT, workload TEXT, ratio REAL);
        CREATE INDEX by_tee ON measurements (tee);
        BEGIN;
        INSERT INTO measurements VALUES ('tdx',     'iostress', 1.97);
        INSERT INTO measurements VALUES ('sev-snp', 'iostress', 1.47);
        INSERT INTO measurements VALUES ('cca',     'iostress', 3.41);
        INSERT INTO measurements VALUES ('tdx',     'cpustress', 1.00);
        INSERT INTO measurements VALUES ('sev-snp', 'cpustress', 1.01);
        INSERT INTO measurements VALUES ('cca',     'cpustress', 1.15);
        COMMIT;
        SELECT workload, ratio FROM measurements
            WHERE tee = 'tdx' ORDER BY ratio DESC;
        UPDATE measurements SET ratio = 1.05 WHERE tee = 'sev-snp' AND workload = 'cpustress';
        SELECT tee, ratio FROM measurements WHERE workload = 'iostress' ORDER BY ratio;
        ",
    )?;

    for out in &outputs {
        if let SqlOutput::Rows { columns, rows } = out {
            println!("{}", columns.join(" | "));
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(" | "));
            }
            println!();
        }
    }

    // Everything the engine just did was recorded as an operation trace —
    // replay it in a TDX trust domain vs its baseline.
    let trace = db.take_trace();
    let mut secure = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(7).build();
    let mut normal = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).seed(7).build();
    let s = secure.execute(&trace);
    let n = normal.execute(&trace);
    println!(
        "replaying this SQL session: {:.4} ms in a TDX trust domain vs {:.4} ms in a normal VM ({:.2}x)",
        s.wall_ms,
        n.wall_ms,
        s.wall_ms / n.wall_ms
    );
    Ok(())
}

//! Quickstart: the paper's Fig. 2 flow, end to end, over real HTTP.
//!
//! 1. boot a gateway with local TEE hosts for all three platforms;
//! 2. upload a user function (CBScript source) via `POST /functions`;
//! 3. run it on secure and normal VMs of each platform via `POST /run`;
//! 4. read back timing + perf counters.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use confbench::{Gateway, UploadRequest};
use confbench_httpd::{Client, Method, Request};
use confbench_types::{FunctionSpec, Language, RunRequest, RunResult, TeePlatform, VmTarget};

fn main() -> Result<(), Box<dyn Error>> {
    // A gateway with one TEE-enabled host per platform (paper §III-A).
    let gateway = Arc::new(
        Gateway::builder()
            .seed(42)
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::SevSnp)
            .local_host(TeePlatform::Cca)
            .build(),
    );
    let server = Arc::clone(&gateway).serve()?;
    let client = Client::new(server.addr());
    println!("gateway listening on http://{}\n", server.addr());

    // Step 1: upload a function.
    let upload = Request::new(Method::Post, "/functions").json(&UploadRequest {
        name: "collatz_steps".into(),
        script: r#"
            let n = int(ARGS[0]);
            let steps = 0;
            while n != 1 {
                if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; }
                steps = steps + 1;
            }
            result(steps);
        "#
        .into(),
    });
    let resp = client.send(&upload)?;
    assert_eq!(resp.status, 201, "upload failed: {}", String::from_utf8_lossy(&resp.body));
    println!("uploaded function 'collatz_steps'");

    // Steps 2-5: run it everywhere and compare.
    println!(
        "\n{:<10} {:>10} {:>12} {:>12} {:>7}",
        "platform", "output", "secure ms", "normal ms", "ratio"
    );
    for platform in TeePlatform::ALL {
        let mut results = Vec::new();
        for target in VmTarget::pair(platform) {
            let request = RunRequest {
                function: FunctionSpec::new("collatz_steps", Language::Lua).arg("27"),
                target,
                trials: 5,
                seed: 42,
                deadline_ms: None,
                attest_session: None,
                device: None,
            };
            let resp = client.send(&Request::new(Method::Post, "/run").json(&request))?;
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            let result: RunResult = resp.body_json()?;
            results.push(result);
        }
        let (secure, normal) = (&results[0], &results[1]);
        println!(
            "{:<10} {:>10} {:>12.4} {:>12.4} {:>6.2}x",
            platform.to_string(),
            secure.output,
            secure.stats.mean_ms,
            normal.stats.mean_ms,
            secure.stats.mean_ms / normal.stats.mean_ms
        );
        assert_eq!(secure.output, "111"); // collatz(27) = 111 steps
    }

    println!("\nperf counters ride along with each result (paper §III-B):");
    let request = RunRequest {
        function: FunctionSpec::new("collatz_steps", Language::Lua).arg("27"),
        target: VmTarget::secure(TeePlatform::Tdx),
        trials: 1,
        seed: 42,
        deadline_ms: None,
        attest_session: None,
        device: None,
    };
    let result: RunResult =
        client.send(&Request::new(Method::Post, "/run").json(&request))?.body_json()?;
    println!(
        "  instructions={} cycles={} cache-misses={} vm-exits={} (hw counters: {})",
        result.perf.instructions,
        result.perf.cycles,
        result.perf.cache_misses,
        result.perf.vm_exits,
        result.perf.from_hw_counters
    );
    Ok(())
}

//! The confidential-DBMS stress test (paper §IV-C): run the speedtest suite
//! for real against the embedded engine, then replay each test's trace on a
//! chosen TEE's secure and normal VM.
//!
//! Run with: `cargo run --example dbms_stress [tdx|sev-snp|cca]`

use std::error::Error;

use confbench_minidb::run_speedtest;
use confbench_types::{TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

fn main() -> Result<(), Box<dyn Error>> {
    let platform: TeePlatform =
        std::env::args().nth(1).unwrap_or_else(|| "tdx".to_owned()).parse()?;
    println!("speedtest suite at relative size 20, platform {platform}\n");

    let reports = run_speedtest(20, 5)?;
    let mut secure_vm = TeeVmBuilder::new(VmTarget::secure(platform)).seed(5).build();
    let mut normal_vm = TeeVmBuilder::new(VmTarget::normal(platform)).seed(5).build();

    println!("{:<34} {:>6} {:>12} {:>12} {:>7}", "test", "rows", "secure ms", "normal ms", "ratio");
    for report in &reports {
        let secure: f64 =
            secure_vm.execute_trials(&report.trace, 5).iter().map(|r| r.wall_ms).sum::<f64>() / 5.0;
        let normal: f64 =
            normal_vm.execute_trials(&report.trace, 5).iter().map(|r| r.wall_ms).sum::<f64>() / 5.0;
        println!(
            "{:<34} {:>6} {:>12.3} {:>12.3} {:>6.2}x",
            report.case.name(),
            report.rows,
            secure,
            normal,
            secure / normal
        );
    }
    println!(
        "\npaper shape: on TDX and SEV-SNP these ratios sit near 1 (fsync is\n\
         device-bound); on CCA they blow up (run with `cca` to see why the\n\
         paper calls its DBMS overhead the largest)."
    );
    Ok(())
}

//! Confidential ML inference (the paper's §IV-C ML experiment, scaled
//! down): classify synthetic 1-MB images with a MobileNet-class model in
//! secure and normal VMs of every TEE, and report timing distributions.
//! Then repeat the same inferences offloaded to the TDISP GPU and check
//! the accelerator path is bit-identical to the host path.
//!
//! Run with: `cargo run --example ml_inference`

use confbench_stats::{stacked_percentiles, Summary};
use confbench_types::{DeviceKind, OpTrace, TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;
use confbench_workloads::{GpuInferenceWorkload, MlWorkload};

fn main() {
    let ml = MlWorkload::new(7);
    println!("classifying {} synthetic 1-MB images (MobileNet-shaped model)\n", 8);
    let runs: Vec<_> = (0..8).map(|i| ml.classify(i)).collect();
    for run in &runs {
        println!(
            "  image {:>2} -> class {} ({} KiB read, {} float ops)",
            run.image_index,
            run.class,
            run.trace.total_io_bytes() / 1024,
            run.trace.total_float_ops()
        );
    }

    println!("\nper-inference wall times (ms), 5 trials per image:");
    let mut entries = Vec::new();
    for platform in TeePlatform::ALL {
        for kind in VmKind::ALL {
            let target = VmTarget { platform, kind };
            let mut vm = TeeVmBuilder::new(target).seed(7).build();
            let mut samples = Vec::new();
            for _ in 0..5 {
                for run in &runs {
                    samples.push(vm.execute(&run.trace).wall_ms);
                }
            }
            entries.push((target.to_string(), Summary::from_samples(&samples)));
        }
    }
    println!("{}", stacked_percentiles(&entries));
    println!(
        "note the paper's Fig. 3 shape: TDX ≈ SEV-SNP near native, CCA slower\n\
         in ratio and much slower in absolute time (the FVP simulation layer)."
    );

    // The same inferences, offloaded to the TDISP GPU. The device engine
    // runs the same layer kernels as the host, so probabilities and
    // predictions must match bit for bit; only the recorded operations
    // (DMA + device kernels instead of guest float work) differ.
    println!("\noffloading the forward pass to the attested TDISP GPU:");
    let gpu = GpuInferenceWorkload::new(7);
    for index in 0..8 {
        let mut host_trace = OpTrace::new();
        let mut dev_trace = OpTrace::new();
        let host_probs = gpu.forward_host(index, &mut host_trace);
        let dev_probs = gpu.forward_device(index, &mut dev_trace);
        assert_eq!(
            host_probs.data(),
            dev_probs.data(),
            "image {index}: host and device tensors must be bit-identical"
        );
        assert_eq!(host_probs.argmax(), dev_probs.argmax());
        println!(
            "  image {:>2} -> class {} on both paths ({} KiB DMA, {} float ops on device)",
            index,
            dev_probs.argmax(),
            dev_trace.total_dev_dma_bytes() / 1024,
            dev_trace.total_float_ops()
        );
    }

    // Replay one offloaded inference on a secure VM with the GPU attached:
    // after TDISP bring-up the DMA goes direct to private memory.
    let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx))
        .seed(7)
        .device(DeviceKind::Gpu)
        .build();
    let nonce = [7u8; 32];
    let report = vm.device_report(nonce).expect("locked device reports");
    let verifier = confbench_attest::DeviceVerifier::new(TeePlatform::Tdx);
    let evidence = confbench_attest::Evidence::device(TeePlatform::Tdx, report);
    let mut report_data = [0u8; 64];
    report_data[..32].copy_from_slice(&nonce);
    confbench_attest::Verifier::verify(&verifier, &evidence, report_data)
        .expect("vendor signature verifies");
    vm.enable_device().expect("attested device starts");
    let replay = vm.execute(&gpu.classify_device(0).trace);
    println!(
        "\nattested replay on tdx/secure: {} bytes direct DMA, {} bounced",
        replay.events.dma_direct_bytes, replay.events.dma_bounce_bytes
    );
    assert_eq!(replay.events.dma_bounce_bytes, 0, "attested DMA never bounces");
}

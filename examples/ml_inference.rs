//! Confidential ML inference (the paper's §IV-C ML experiment, scaled
//! down): classify synthetic 1-MB images with a MobileNet-class model in
//! secure and normal VMs of every TEE, and report timing distributions.
//!
//! Run with: `cargo run --example ml_inference`

use confbench_stats::{stacked_percentiles, Summary};
use confbench_types::{TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;
use confbench_workloads::MlWorkload;

fn main() {
    let ml = MlWorkload::new(7);
    println!("classifying {} synthetic 1-MB images (MobileNet-shaped model)\n", 8);
    let runs: Vec<_> = (0..8).map(|i| ml.classify(i)).collect();
    for run in &runs {
        println!(
            "  image {:>2} -> class {} ({} KiB read, {} float ops)",
            run.image_index,
            run.class,
            run.trace.total_io_bytes() / 1024,
            run.trace.total_float_ops()
        );
    }

    println!("\nper-inference wall times (ms), 5 trials per image:");
    let mut entries = Vec::new();
    for platform in TeePlatform::ALL {
        for kind in VmKind::ALL {
            let target = VmTarget { platform, kind };
            let mut vm = TeeVmBuilder::new(target).seed(7).build();
            let mut samples = Vec::new();
            for _ in 0..5 {
                for run in &runs {
                    samples.push(vm.execute(&run.trace).wall_ms);
                }
            }
            entries.push((target.to_string(), Summary::from_samples(&samples)));
        }
    }
    println!("{}", stacked_percentiles(&entries));
    println!(
        "note the paper's Fig. 3 shape: TDX ≈ SEV-SNP near native, CCA slower\n\
         in ratio and much slower in absolute time (the FVP simulation layer)."
    );
}

//! Tier-1 correctness harness: replays the checked-in fuzz regression
//! corpus and runs the depth-bounded model checker over every TEE state
//! machine.
//!
//! Each corpus file under `tests/fuzz_corpus/` is an input that once
//! crashed, misclassified, or silently slipped past one of the workspace
//! parsers; replaying them here under plain `cargo test -q` keeps every
//! harvested bug fixed. The model-check smoke proves the five machines
//! (RMP, Secure-EPT, CCA granule table, TDISP, live migration) hold their
//! security invariants over *every* operation sequence up to the default
//! depth.

use std::io::Cursor;

use confbench_httpd::{HttpError, Request};
use confbench_types::CampaignSpec;

/// HTTP corpus: every input must yield a typed parse error with the right
/// status — never a panic, never an `Io` misclassification, never an accept.
#[test]
fn http_corpus_replays_clean() {
    let corpus: [(&str, &[u8], u16); 6] = [
        // Non-UTF-8 bytes used to surface as Io(InvalidData), not Malformed.
        (
            "non_utf8_request_line",
            include_bytes!("fuzz_corpus/http/non_utf8_request_line.bin"),
            400,
        ),
        ("non_utf8_header", include_bytes!("fuzz_corpus/http/non_utf8_header.bin"), 400),
        // A double space yields an empty target token; it used to parse as "".
        ("empty_target", include_bytes!("fuzz_corpus/http/empty_target.bin"), 400),
        // `u64::parse` accepts "+3"; DIGIT-only framing must not.
        ("plus_content_length", include_bytes!("fuzz_corpus/http/plus_content_length.bin"), 400),
        ("dup_content_length", include_bytes!("fuzz_corpus/http/dup_content_length.bin"), 400),
        ("huge_content_length", include_bytes!("fuzz_corpus/http/huge_content_length.bin"), 413),
    ];
    for (name, raw, status) in corpus {
        let err = Request::read_from(&mut Cursor::new(raw.to_vec()))
            .expect_err(&format!("{name} must be rejected"));
        assert!(!matches!(err, HttpError::Io(_)), "{name} misclassified as I/O: {err}");
        assert_eq!(err.status(), status, "{name}: {err}");
    }
}

/// Campaign corpus: adversarial specs must be refused at admission with the
/// documented status — size rejections as 413, malformed ones as 400.
#[test]
fn campaign_corpus_replays_clean() {
    let corpus: [(&str, &[u8], u16); 3] = [
        // 40 × 60 × 7 × 7 = 117 600 cells from a ~1 KiB body.
        ("too_many_cells", include_bytes!("fuzz_corpus/campaign/too_many_cells.json"), 413),
        ("zero_trials", include_bytes!("fuzz_corpus/campaign/zero_trials.json"), 400),
        ("zero_deadline", include_bytes!("fuzz_corpus/campaign/zero_deadline.json"), 400),
    ];
    for (name, raw, status) in corpus {
        let spec: CampaignSpec = serde_json::from_slice(raw).expect(name); // the JSON itself is well-formed
        let err = spec.validate().expect_err(&format!("{name} must be refused"));
        assert_eq!(
            confbench_types::Error::from(err).rest_status(),
            status,
            "{name}: wrong admission status"
        );
    }
}

/// Attestation-wire corpus: every framing violation decodes to the matching
/// typed error.
#[test]
fn attest_corpus_replays_clean() {
    use confbench_attest::wire::{decode, WireError};
    assert!(matches!(
        decode(include_bytes!("fuzz_corpus/attest/bad_magic.bin")),
        Err(WireError::BadMagic(_))
    ));
    assert!(matches!(
        decode(include_bytes!("fuzz_corpus/attest/unknown_kind.bin")),
        Err(WireError::UnknownKind(9))
    ));
    assert!(matches!(
        decode(include_bytes!("fuzz_corpus/attest/truncated_quote.bin")),
        Err(WireError::Truncated { .. })
    ));
    assert!(matches!(
        decode(include_bytes!("fuzz_corpus/attest/oversized_tcb_len.bin")),
        Err(WireError::FieldTooLong { field: "tcb_version", .. })
    ));
    assert!(matches!(
        decode(include_bytes!("fuzz_corpus/attest/trailing_snp.bin")),
        Err(WireError::TrailingBytes(1))
    ));
}

/// Migration-wire corpus: every harvested framing violation decodes to the
/// matching typed error — never a panic, never a silent accept.
#[test]
fn migrate_corpus_replays_clean() {
    use confbench_fleet::{MigrationFrame, WireError, MAX_PAGES_PER_FRAME};
    assert!(matches!(
        MigrationFrame::decode(include_bytes!("fuzz_corpus/migrate/bad_magic.bin")),
        Err(WireError::BadMagic(_))
    ));
    assert!(matches!(
        MigrationFrame::decode(include_bytes!("fuzz_corpus/migrate/unknown_kind.bin")),
        Err(WireError::UnknownKind(9))
    ));
    assert!(matches!(
        MigrationFrame::decode(include_bytes!("fuzz_corpus/migrate/truncated_state.bin")),
        Err(WireError::Truncated { .. })
    ));
    assert!(matches!(
        MigrationFrame::decode(include_bytes!("fuzz_corpus/migrate/oversized_pages.bin")),
        Err(WireError::FieldTooLong { field: "pages", len, .. }) if len > MAX_PAGES_PER_FRAME
    ));
    assert!(matches!(
        MigrationFrame::decode(include_bytes!("fuzz_corpus/migrate/trailing_commit.bin")),
        Err(WireError::TrailingBytes(1))
    ));
    assert!(matches!(
        MigrationFrame::decode(include_bytes!("fuzz_corpus/migrate/bad_utf8_session.bin")),
        Err(WireError::BadUtf8("session"))
    ));
}

/// Model-check smoke: every TEE state machine closes under the default
/// depth with zero invariant violations. A regression in any simulator's
/// transition rules (e.g. re-admitting the SEPT hpa-aliasing bug) fails
/// this test with a minimal counterexample trace in the message.
#[test]
fn model_check_smoke_all_machines_hold() {
    let reports = confbench_mc::check_all(&confbench_mc::CheckConfig::default());
    assert_eq!(reports.len(), 5);
    for report in reports {
        assert!(
            report.violations.is_empty(),
            "machine {} violated invariants:\n{}",
            report.machine,
            report.render()
        );
        assert!(report.closed, "machine {} did not close at the default depth", report.machine);
    }
}

//! End-to-end observability: the span tree and metrics surfaced by the
//! gateway must agree with the execution reports they describe, stay
//! deterministic under an injected clock, and survive the HTTP hop to a
//! remote host agent.

use std::sync::Arc;

use confbench::{FunctionStore, Gateway, HostAgent, ManualClock};
use confbench_httpd::{Client, Method, Request};
use confbench_obs::RegistrySnapshot;
use confbench_types::{
    FunctionSpec, Language, RunRequest, RunResult, TeePlatform, TraceSpan, VmTarget,
};

fn iostress(platform: TeePlatform) -> RunRequest {
    RunRequest {
        function: FunctionSpec::new("iostress", Language::Go).arg("4"),
        target: VmTarget::secure(platform),
        trials: 2,
        seed: 3,
        deadline_ms: None,
        attest_session: None,
        device: None,
    }
}

fn tdx_gateway(seed: u64) -> Gateway {
    Gateway::builder()
        .seed(seed)
        .clock(Arc::new(ManualClock::new()))
        .local_host(TeePlatform::Tdx)
        .build()
}

/// The acceptance scenario: a secure-TDX run through the gateway yields a
/// root span whose children include the SEAMCALL-class and swiotlb-class
/// spans, with attribute totals matching the run's perf report.
#[test]
fn span_tree_totals_match_the_execution_report() {
    let gw = tdx_gateway(3);
    let result = gw.run(&iostress(TeePlatform::Tdx)).unwrap();
    let trace = result.trace.as_ref().expect("gateway attaches a trace");

    assert_eq!(trace.name, "gateway.run");
    assert_eq!(trace.attr("retry_attempt"), Some(0));
    let host = trace.find("host.execute").expect("host subtree");
    assert_eq!(host.attr("trials"), Some(2));
    assert!(host.find("launcher.bootstrap").is_some(), "bootstrap span present");

    // The measured trial carries one child span per cost-event class, whose
    // totals are exactly the perf counters piggybacked on the result.
    let measured = host.find("perf.measure").expect("measured-trial span");
    let seamcalls = measured.find("tdx.seamcall").expect("SEAMCALL-class span");
    assert_eq!(seamcalls.attr("count"), Some(result.perf.vm_exits));
    assert!(seamcalls.attr("cycles").unwrap() > 0);

    let bounce = measured.find("swiotlb.copy").expect("swiotlb-class span");
    assert_eq!(bounce.attr("bytes"), Some(result.perf.bounce_bytes));
    assert!(result.perf.bounce_bytes > 0, "iostress stages I/O through the bounce buffer");
    assert!(bounce.attr("slots").unwrap() > 0);

    // Warm trials already faulted in the working set, so the measured trial
    // sees no fresh-page acceptance — the class only appears when it costs.
    assert!(measured.find("tdx.page-accept").is_none(), "warm trials pre-faulted the pages");
}

#[test]
fn span_trees_are_deterministic_across_identical_gateways() {
    let run = || {
        let gw = tdx_gateway(3);
        gw.run(&iostress(TeePlatform::Tdx)).unwrap().trace.unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed + manual clock must reproduce the exact tree");
    assert!(a.span_count() >= 5, "tree has root, host, bootstrap, measure, cost classes");
}

#[test]
fn exit_span_names_follow_the_platform() {
    for (platform, exit_span) in
        [(TeePlatform::SevSnp, "snp.ghcb-exit"), (TeePlatform::Cca, "cca.rmm-exit")]
    {
        let gw = Gateway::builder()
            .seed(3)
            .clock(Arc::new(ManualClock::new()))
            .local_host(platform)
            .build();
        let result = gw.run(&iostress(platform)).unwrap();
        let trace = result.trace.unwrap();
        let exits = trace.find(exit_span).unwrap_or_else(|| panic!("{exit_span} missing"));
        assert_eq!(exits.attr("count"), Some(result.perf.vm_exits));
    }
}

#[test]
fn remote_dispatch_round_trips_the_span_tree() {
    let store = Arc::new(FunctionStore::new());
    let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, store, 3));
    let host_server = Arc::clone(&agent).serve().unwrap();
    let gw = Gateway::builder().remote_host(TeePlatform::Tdx, host_server.addr()).build();

    let result = gw.run(&iostress(TeePlatform::Tdx)).unwrap();
    let trace = result.trace.expect("trace survives serialization over the wire");
    assert_eq!(trace.name, "gateway.run");
    let measured = trace.find("perf.measure").expect("remote subtree adopted intact");
    assert_eq!(measured.find("tdx.seamcall").unwrap().attr("count"), Some(result.perf.vm_exits));
}

#[test]
fn v1_metrics_agree_with_pool_served_counts() {
    let gw = Arc::new(
        Gateway::builder()
            .seed(3)
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::Tdx)
            .build(),
    );
    let server = Arc::clone(&gw).serve().unwrap();
    let client = Client::new(server.addr());

    for _ in 0..3 {
        let resp = client
            .send(&Request::new(Method::Post, "/v1/run").json(&iostress(TeePlatform::Tdx)))
            .unwrap();
        assert_eq!(resp.status, 200);
        let result: RunResult = resp.body_json().unwrap();
        let trace: TraceSpan = result.trace.expect("trace rides the REST response");
        assert_eq!(trace.name, "gateway.run");
    }

    let snap: RegistrySnapshot = client
        .send(&Request::new(Method::Get, "/v1/metrics?format=json"))
        .unwrap()
        .body_json()
        .unwrap();
    let served: u64 = gw.served_counts(TeePlatform::Tdx).unwrap().iter().sum();
    assert_eq!(served, 3);
    assert_eq!(snap.counters.get("pool_served_total{platform=\"tdx\"}"), Some(&served));
    assert_eq!(snap.counters.get("gateway_requests_total"), Some(&3));
    assert_eq!(snap.counters.get("gateway_requests_failed_total"), Some(&0));

    // Text exposition serves the same numbers.
    let text = client.send(&Request::new(Method::Get, "/v1/metrics")).unwrap();
    let body = String::from_utf8(text.body).unwrap();
    assert!(body.contains("gateway_requests_total 3"), "{body}");
}

#[test]
fn legacy_routes_still_work_and_are_marked_deprecated() {
    let gw = Arc::new(tdx_gateway(3));
    let server = Arc::clone(&gw).serve().unwrap();
    let client = Client::new(server.addr());

    let legacy =
        client.send(&Request::new(Method::Post, "/run").json(&iostress(TeePlatform::Tdx))).unwrap();
    assert_eq!(legacy.status, 200, "legacy path keeps serving");
    assert_eq!(legacy.headers.get("deprecation").map(String::as_str), Some("true"));
    assert_eq!(
        legacy.headers.get("link").map(String::as_str),
        Some("</v1/run>; rel=\"successor-version\""),
    );
    let result: RunResult = legacy.body_json().unwrap();
    assert!(result.trace.is_some(), "legacy responses carry the same payload as /v1");

    let canonical = client
        .send(&Request::new(Method::Post, "/v1/run").json(&iostress(TeePlatform::Tdx)))
        .unwrap();
    assert_eq!(canonical.status, 200);
    assert!(!canonical.headers.contains_key("deprecation"));
}

//! Seeded chaos campaigns: with the TEE fault engine armed, a full
//! multi-platform campaign must still drain to completion, the surviving
//! measurements must be byte-identical to a fault-free run (supervision is
//! invisible in the data), the whole fault schedule must replay exactly
//! under the same seed, and when a host exhausts its rebuild budget the
//! quarantine must trip the pool's circuit breaker with 503s.

use std::sync::Arc;

use confbench::{Gateway, ManualClock, RetryPolicy, TeeFaultPlan};
use confbench_httpd::{Client, Method, Request, Server};
use confbench_sched::{Scheduler, SchedulerConfig};
use confbench_types::{
    CampaignFunction, CampaignSpec, CampaignState, Language, Priority, RunRequest, TeePlatform,
    VmKind, VmTarget,
};

/// 2 functions × 1 language × 3 platforms × 2 modes.
const CAMPAIGN_JOBS: usize = 12;

/// Per-mechanism fault probability for the recoverable campaigns — the
/// gateway's default `--chaos-rate`. High enough that a 12-job campaign
/// reliably sees injections, low enough that every supervised attempt
/// keeps a solid chance of finishing clean.
const CHAOS_RATE: f64 = 0.1;

fn campaign_spec() -> CampaignSpec {
    CampaignSpec {
        functions: vec![
            CampaignFunction::new("factors").arg("360360"),
            CampaignFunction::new("checksum").arg("30000"),
        ],
        languages: vec![Language::Go],
        platforms: vec![TeePlatform::Tdx, TeePlatform::SevSnp, TeePlatform::Cca],
        modes: vec![VmKind::Secure, VmKind::Normal],
        trials: 2,
        seed: 11,
        priority: Priority::Normal,
        deadline_ms: None,
        device: None,
    }
}

/// Backoffs in the supervisor and gateway are real sleeps; keep them tiny.
fn fast_retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 2, jitter: false }
}

/// Boots a three-platform stack under `plan`. A rate-0 plan is the
/// fault-free control: it draws nothing and also overrides any ambient
/// `CONFBENCH_CHAOS_SEED` so the control stays clean even under a chaotic
/// environment.
fn boot(plan: Arc<TeeFaultPlan>, rebuild_budget: u32) -> (Arc<Gateway>, Arc<Scheduler>) {
    let gw = Arc::new(
        Gateway::builder()
            .seed(11)
            .retry(fast_retry())
            .chaos(plan)
            .rebuild_budget(rebuild_budget)
            .clock(Arc::new(ManualClock::new()))
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::SevSnp)
            .local_host(TeePlatform::Cca)
            .build(),
    );
    let config = SchedulerConfig {
        retry_after_secs: gw.retry_policy().retry_after_secs(),
        ..SchedulerConfig::default()
    };
    let sched = Arc::new(Scheduler::with_metrics(
        Arc::clone(&gw) as Arc<dyn confbench_sched::Executor>,
        Arc::new(ManualClock::new()),
        config,
        Arc::clone(gw.metrics()),
    ));
    (gw, sched)
}

/// Submits the standard campaign, drains it, and returns the canonical
/// byte serialization of the result cache.
fn run_campaign(sched: &Scheduler) -> Vec<u8> {
    let receipt = sched.submit(campaign_spec()).expect("campaign admitted");
    sched.drain();
    let status = sched.campaign_status(&receipt.id).expect("campaign tracked");
    assert_eq!(status.state, CampaignState::Completed, "campaign must drain: {status:?}");
    assert_eq!(status.completed, CAMPAIGN_JOBS, "every cell must complete: {status:?}");
    let snapshot = sched.result_cache().snapshot();
    assert_eq!(snapshot.len(), CAMPAIGN_JOBS, "one cached cell per job");
    serde_json::to_vec(&snapshot).expect("snapshot serializes")
}

/// The tentpole invariant: a campaign under fault injection completes, and
/// because every supervised attempt runs on a fresh VM with an
/// attempt-independent seed, the surviving measurements are byte-identical
/// to a run that never saw a fault.
#[test]
fn chaos_campaign_completes_with_results_identical_to_fault_free_run() {
    let chaos = Arc::new(TeeFaultPlan::new(41, CHAOS_RATE));
    let (_gw, chaotic_sched) = boot(Arc::clone(&chaos), u32::MAX);
    let chaotic_bytes = run_campaign(&chaotic_sched);
    assert!(chaos.injected() > 0, "a 12-job campaign at rate {CHAOS_RATE} must inject faults");

    let control = Arc::new(TeeFaultPlan::new(41, 0.0));
    let (_gw, clean_sched) = boot(Arc::clone(&control), u32::MAX);
    let clean_bytes = run_campaign(&clean_sched);
    assert_eq!(control.injected(), 0, "rate-0 control must stay fault-free");

    assert_eq!(
        chaotic_bytes, clean_bytes,
        "recovered results must be byte-identical to the fault-free campaign"
    );
}

/// The fault schedule itself is part of the deterministic surface: the same
/// chaos seed on a fresh stack replays the same injections and the same
/// recovered results.
#[test]
fn chaos_campaign_replays_exactly_under_the_same_seed() {
    let run = || {
        let plan = Arc::new(TeeFaultPlan::new(97, CHAOS_RATE));
        let (_gw, sched) = boot(Arc::clone(&plan), u32::MAX);
        let bytes = run_campaign(&sched);
        (bytes, plan.injected(), plan.fatal_injected())
    };
    let (bytes_a, injected_a, fatal_a) = run();
    let (bytes_b, injected_b, fatal_b) = run();
    assert!(injected_a > 0, "replay test needs actual injections");
    assert_eq!(injected_a, injected_b, "fault count must replay exactly");
    assert_eq!(fatal_a, fatal_b, "fatal split must replay exactly");
    assert_eq!(bytes_a, bytes_b, "recovered results must replay exactly");
}

/// When every TEE crossing faults fatally, the supervisor burns its rebuild
/// budget and quarantines the VM; the pool's circuit breaker then takes the
/// host out of rotation and the REST surface reports 503 throughout.
#[test]
fn exhausted_rebuild_budget_quarantines_and_trips_the_breaker() {
    let gw = Arc::new(
        Gateway::builder()
            .seed(5)
            .retry(fast_retry())
            .chaos(Arc::new(TeeFaultPlan::new(13, 1.0).with_fatal_ratio(1.0)))
            .rebuild_budget(1)
            .clock(Arc::new(ManualClock::new()))
            .local_host(TeePlatform::Tdx)
            .build(),
    );
    let server: Server = Arc::clone(&gw).serve_on("127.0.0.1:0").unwrap();
    let client = Client::new(server.addr());

    let mut function = confbench_types::FunctionSpec::new("factors", Language::Go);
    function.args = vec!["360360".into()];
    let request = RunRequest {
        function,
        target: VmTarget::secure(TeePlatform::Tdx),
        trials: 1,
        seed: 1,
        deadline_ms: None,
        attest_session: None,
        device: None,
    };

    // First request: boot faults burn the rebuild budget, the supervisor
    // quarantines, and the TEE fault surfaces as 503.
    let resp = client.send(&Request::new(Method::Post, "/v1/run").json(&request)).unwrap();
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    assert!(body.contains("tee fault"), "quarantine surfaces the terminal fault: {body}");

    // The repeated failures tripped the single member's breaker.
    assert_eq!(
        gw.circuit_states(TeePlatform::Tdx).unwrap(),
        vec![confbench::CircuitState::Open],
        "quarantined host's circuit must open"
    );

    // With the only member open (and the manual clock frozen, so no
    // half-open probe), the pool itself refuses before any VM is touched.
    let resp = client.send(&Request::new(Method::Post, "/v1/run").json(&request)).unwrap();
    assert_eq!(resp.status, 503);
    assert!(
        String::from_utf8_lossy(&resp.body).contains("no VM available"),
        "open breaker answers from the pool: {}",
        String::from_utf8_lossy(&resp.body)
    );

    // The whole episode is visible on the metrics surface.
    let metrics = client.send(&Request::new(Method::Get, "/v1/metrics")).unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    assert!(
        text.contains(r#"vm_quarantined{platform="tdx",kind="secure"} 1"#),
        "quarantine gauge exported: {text}"
    );
    assert!(
        text.contains(r#"vm_rebuilds_total{platform="tdx",kind="secure"} 1"#),
        "rebuild counter exported: {text}"
    );
    assert!(text.contains(r#"vmm_faults_total{mechanism="#), "fault counters exported: {text}");
}

#[test]
#[ignore]
fn probe_supervision_overhead() {
    for seed in [41u64, 97, 7] {
        let plan = Arc::new(TeeFaultPlan::new(seed, CHAOS_RATE));
        let (gw, sched) = boot(Arc::clone(&plan), u32::MAX);
        let t0 = std::time::Instant::now();
        let _ = run_campaign(&sched);
        let chaotic = t0.elapsed();
        let rebuilds: u64 = TeePlatform::ALL
            .iter()
            .map(|p| {
                gw.metrics()
                    .counter_value(&format!(
                        "vm_rebuilds_total{{platform=\"{p}\",kind=\"secure\"}}"
                    ))
                    .unwrap_or(0)
            })
            .sum();
        let control = Arc::new(TeeFaultPlan::new(seed, 0.0));
        let (_gw2, sched2) = boot(control, u32::MAX);
        let t1 = std::time::Instant::now();
        let _ = run_campaign(&sched2);
        let clean = t1.elapsed();
        eprintln!(
            "seed {seed}: injected {} (fatal {}), rebuilds {rebuilds}, chaotic {:?}, clean {:?}",
            plan.injected(),
            plan.fatal_injected(),
            chaotic,
            clean
        );
    }
}

/// Chaos × fleet: a 3-shard fleet campaign under ambient fault injection
/// *and* a mid-run host kill still completes, and its harvested results
/// are byte-identical to the fault-free single-gateway control — chaos
/// recovery and fleet recovery compose without touching the data.
#[test]
fn fleet_chaos_campaign_with_host_kill_matches_fault_free_control() {
    let chaos = Arc::new(TeeFaultPlan::new(41, CHAOS_RATE));
    let fleet = confbench_fleet::Fleet::new(confbench_fleet::FleetConfig {
        shards: 3,
        seed: 11,
        clock: Arc::new(ManualClock::new()),
        chaos: Some(Arc::clone(&chaos)),
        retry: fast_retry(),
        ..confbench_fleet::FleetConfig::default()
    });
    let receipt = fleet.submit(campaign_spec()).expect("fleet campaign admitted");
    assert_eq!(receipt.jobs, CAMPAIGN_JOBS);

    // One pass under injection, then lose the busiest host.
    fleet.pump();
    let victim = fleet
        .status()
        .into_iter()
        .filter(|s| s.alive)
        .max_by_key(|s| s.queue_depth)
        .expect("a shard is alive")
        .shard;
    fleet.kill_shard(victim);
    fleet.drain();

    assert!(chaos.injected() > 0, "the chaotic fleet run must see injections");
    let status = fleet.campaign_status(&receipt.id).expect("campaign tracked");
    assert!(status.complete, "chaos + host kill must not lose cells: {status:?}");

    let control = Arc::new(TeeFaultPlan::new(41, 0.0));
    let (_gw, clean_sched) = boot(control, u32::MAX);
    let clean_bytes = run_campaign(&clean_sched);
    assert_eq!(
        serde_json::to_vec(&fleet.results()).expect("fleet results serialize"),
        clean_bytes,
        "fleet-under-chaos results must be byte-identical to the fault-free control"
    );
}

//! End-to-end coverage of the hardened HTTP layer: malicious framing is
//! rejected with the right statuses, keep-alive reuses sockets across the
//! CLI→gateway and gateway→host hops, worker-pool saturation answers `503`
//! with `Retry-After` instead of spawning threads, and the server's thread
//! count stays bounded under connection stress.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use confbench::{FunctionStore, Gateway, HostAgent};
use confbench_httpd::{Client, Method, Request, Response, Router, Server, ServerConfig};
use confbench_types::{FunctionSpec, Language, RunRequest, TeePlatform, VmTarget};

fn gateway_server() -> (Arc<Gateway>, Server) {
    let gateway = Arc::new(Gateway::builder().seed(3).local_host(TeePlatform::Tdx).build());
    let server = Arc::clone(&gateway).serve().unwrap();
    (gateway, server)
}

/// Writes raw bytes to the server and returns everything it answers until
/// it closes the connection.
fn raw_roundtrip(addr: std::net::SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = stream.write_all(payload);
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn slow_loris_header_flood_is_cut_off_with_431() {
    let (_gw, server) = gateway_server();
    // A slow-loris client never finishes its header block; the server must
    // give up at the header-count cap instead of reading (and buffering)
    // forever. 150 headers exceeds the cap of 100.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = stream.write_all(b"GET /v1/health HTTP/1.1\r\n");
    for i in 0..150 {
        // The server may answer and close mid-flood; ignore write errors.
        if stream.write_all(format!("x-drip-{i}: zzzz\r\n").as_bytes()).is_err() {
            break;
        }
    }
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 431"), "got {out:?}");
    assert!(out.contains("connection: close"));
}

#[test]
fn oversized_request_line_is_rejected_431() {
    let (_gw, server) = gateway_server();
    let request = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(16 << 10));
    let out = raw_roundtrip(server.addr(), request.as_bytes());
    assert!(out.starts_with("HTTP/1.1 431"), "got {out:?}");
}

#[test]
fn oversized_single_header_is_rejected_431() {
    let (_gw, server) = gateway_server();
    let request = format!("GET /v1/health HTTP/1.1\r\nx-big: {}\r\n\r\n", "b".repeat(16 << 10));
    let out = raw_roundtrip(server.addr(), request.as_bytes());
    assert!(out.starts_with("HTTP/1.1 431"), "got {out:?}");
}

#[test]
fn malformed_content_length_is_rejected_400() {
    let (_gw, server) = gateway_server();
    for bad in ["nope", "-5", "1e3", "18446744073709551616"] {
        let request = format!("POST /v1/run HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
        let out = raw_roundtrip(server.addr(), request.as_bytes());
        assert!(out.starts_with("HTTP/1.1 400"), "content-length {bad:?} got {out:?}");
    }
}

#[test]
fn duplicate_content_length_is_rejected_400() {
    let (_gw, server) = gateway_server();
    let request = b"POST /v1/run HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 7\r\n\r\nabc";
    let out = raw_roundtrip(server.addr(), request);
    assert!(out.starts_with("HTTP/1.1 400"), "got {out:?}");
    assert!(out.contains("duplicate content-length"), "got {out:?}");
}

#[test]
fn cli_to_gateway_hop_reuses_one_socket() {
    let (gateway, server) = gateway_server();
    let client = Client::new(server.addr());
    for _ in 0..6 {
        let resp = client.send(&Request::new(Method::Get, "/v1/health")).unwrap();
        assert_eq!(resp.status, 200);
    }
    // The gateway shares its registry with the listener, so `httpd_*`
    // instruments are visible next to `gateway_*` ones.
    let metrics = gateway.metrics();
    assert_eq!(metrics.counter_value("httpd_connections_total"), Some(1));
    assert_eq!(metrics.counter_value("httpd_requests_total"), Some(6));
    assert_eq!(metrics.counter_value("httpd_keepalive_reuse_total"), Some(5));
    assert_eq!(client.reused_connections(), 5);
}

#[test]
fn connection_close_is_honored_end_to_end() {
    let (gateway, server) = gateway_server();
    let client = Client::new(server.addr());
    let mut req = Request::new(Method::Get, "/v1/health");
    req.headers.insert("connection".into(), "close".into());
    let resp = client.send(&req).unwrap();
    assert_eq!(resp.headers.get("connection").map(String::as_str), Some("close"));
    assert_eq!(client.pooled_connections(), 0);
    client.send(&Request::new(Method::Get, "/v1/health")).unwrap();
    assert_eq!(gateway.metrics().counter_value("httpd_connections_total"), Some(2));
}

#[test]
fn idle_timeout_closes_socket_and_client_recovers() {
    let gateway = Arc::new(
        Gateway::builder()
            .seed(3)
            .local_host(TeePlatform::Tdx)
            .http(ServerConfig {
                keep_alive_idle: Duration::from_millis(60),
                ..ServerConfig::default()
            })
            .build(),
    );
    let server = Arc::clone(&gateway).serve().unwrap();
    let client = Client::new(server.addr());
    client.send(&Request::new(Method::Get, "/v1/health")).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // The server idled the socket out; the pooled client must notice the
    // stale socket and transparently retry on a fresh connection.
    let resp = client.send(&Request::new(Method::Get, "/v1/health")).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(client.stale_retries(), 1);
    assert_eq!(gateway.metrics().counter_value("httpd_connections_total"), Some(2));
}

#[test]
fn gateway_to_host_hop_reuses_pooled_connections() {
    // A remote host agent; the gateway's dispatch client must hold a
    // keep-alive socket to it instead of reconnecting per request.
    let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, Arc::new(FunctionStore::new()), 7));
    let backend = Arc::clone(&agent).serve().unwrap();
    let gateway = Gateway::builder().seed(7).remote_host(TeePlatform::Tdx, backend.addr()).build();
    let req = RunRequest::new(
        FunctionSpec::new("factors", Language::Go).arg("360360"),
        VmTarget::secure(TeePlatform::Tdx),
    );
    for _ in 0..8 {
        assert_eq!(gateway.run(&req).unwrap().output, "1572480");
    }
    let metrics = backend.metrics();
    assert_eq!(metrics.counter_value("httpd_connections_total"), Some(1), "one socket, reused");
    assert_eq!(metrics.counter_value("httpd_requests_total"), Some(8));
    assert_eq!(metrics.counter_value("httpd_keepalive_reuse_total"), Some(7));
}

#[test]
fn saturated_gateway_answers_503_with_retry_after() {
    let gateway = Arc::new(
        Gateway::builder()
            .seed(3)
            .local_host(TeePlatform::Tdx)
            .http(ServerConfig { workers: 1, backlog: 1, ..ServerConfig::default() })
            .build(),
    );
    let server = Arc::clone(&gateway).serve().unwrap();
    // Occupy the single worker with a connection that never sends its
    // request (the worker blocks in the first read)…
    let hold_worker = TcpStream::connect(server.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() == 0 {
        assert!(Instant::now() < deadline, "worker never picked up the connection");
        std::thread::sleep(Duration::from_millis(2));
    }
    // …and fill the single backlog slot with a second idle connection.
    let hold_backlog = TcpStream::connect(server.addr()).unwrap();
    while server.backlog_depth() == 0 {
        assert!(Instant::now() < deadline, "connection never reached the backlog");
        std::thread::sleep(Duration::from_millis(2));
    }
    // A real request now gets backpressure, with the Retry-After hint
    // derived from the gateway's own retry policy.
    let resp = Client::new(server.addr()).send(&Request::new(Method::Get, "/v1/health")).unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some(gateway.retry_policy().retry_after_secs().to_string().as_str())
    );
    assert_eq!(gateway.metrics().counter_value("httpd_rejected_total"), Some(1));
    drop(hold_worker);
    drop(hold_backlog);
}

#[test]
fn partial_request_read_timeout_answers_408() {
    let gateway = Arc::new(
        Gateway::builder()
            .seed(3)
            .local_host(TeePlatform::Tdx)
            .http(ServerConfig {
                read_timeout: Duration::from_millis(80),
                ..ServerConfig::default()
            })
            .build(),
    );
    let server = Arc::clone(&gateway).serve().unwrap();
    // Half a request then silence: the read deadline must answer 408 +
    // close instead of cutting the socket without a word.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"POST /v1/run HTTP/1.1\r\ncontent-le").unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 408"), "got {out:?}");
    assert!(out.contains("connection: close"), "got {out:?}");
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

/// Connection stress must not grow the server beyond its fixed pool: the
/// old thread-per-connection design added one 16 MiB-stack thread per
/// client; the worker pool adds none.
#[test]
#[cfg(target_os = "linux")]
fn thread_count_stays_bounded_under_stress() {
    const WORKERS: usize = 4;
    const CLIENTS: usize = 24;
    let before_spawn = thread_count();
    let mut router = Router::new();
    router.add(Method::Get, "/ok", |_, _| Response::text("ok"));
    let config = ServerConfig { workers: WORKERS, backlog: 8, ..ServerConfig::default() };
    let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let serving = before_spawn + WORKERS + 1; // workers + accept thread

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let client = Client::new(addr).timeout(Duration::from_secs(5));
                let mut ok = 0u32;
                for _ in 0..5 {
                    // Saturation 503s and resets are acceptable under
                    // stress; unbounded thread growth is not.
                    if let Ok(resp) = client.send(&Request::new(Method::Get, "/ok")) {
                        if resp.status == 200 {
                            ok += 1;
                        }
                    }
                }
                ok
            })
        })
        .collect();
    let mut peak = 0;
    for _ in 0..20 {
        peak = peak.max(thread_count());
        std::thread::sleep(Duration::from_millis(5));
    }
    let served: u32 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(served > 0, "stress run served nothing");
    assert!(
        peak <= serving + CLIENTS + 2,
        "server spawned per-connection threads: peak {peak}, \
         expected <= {serving} serving + {CLIENTS} clients"
    );

    // After the stress drains, only the fixed pool remains.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = thread_count();
        if now <= serving {
            break;
        }
        assert!(Instant::now() < deadline, "threads did not drain: {now} > {serving}");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    let deadline = Instant::now() + Duration::from_secs(5);
    while thread_count() > before_spawn {
        assert!(
            Instant::now() < deadline,
            "server threads survived shutdown: {} > {before_spawn}",
            thread_count()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The process's soft open-files limit, for clamping connection-scale
/// tests to what the environment (CI runners included) actually allows.
#[cfg(target_os = "linux")]
fn open_files_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits
                .lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).map(str::to_owned))
        })
        .and_then(|soft| soft.parse().ok())
        .unwrap_or(256)
}

/// Reads exactly one HTTP response (headers + `body`) off a keep-alive
/// socket without waiting for a close.
#[cfg(target_os = "linux")]
fn read_keep_alive_response(stream: &mut TcpStream, body: &str) -> String {
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed a keep-alive connection mid-response");
        out.extend_from_slice(&buf[..n]);
        let text = String::from_utf8_lossy(&out);
        if let Some(pos) = text.find("\r\n\r\n") {
            if text[pos + 4..].len() >= body.len() {
                return text.into_owned();
            }
        }
    }
}

/// The reactor's core scaling property: idle keep-alive connections cost
/// state, not threads. N ≫ workers sockets stay open simultaneously, every
/// one of them still serves requests, and the thread count stays O(workers).
#[test]
#[cfg(target_os = "linux")]
fn idle_keepalive_connections_scale_past_worker_count() {
    const WORKERS: usize = 4;
    // Each in-process connection consumes two fds (client + server end);
    // leave slack for the binary's own files. 600 is plenty to dwarf the
    // 4-thread pool; the 5k/10k points live in the c10k bench.
    let n = 600.min((open_files_limit().saturating_sub(64)) / 2);
    assert!(n > WORKERS * 8, "fd limit too low to make the test meaningful: {n}");

    let mut router = Router::new();
    router.add(Method::Get, "/ok", |_, _| Response::text("ok"));
    let config = ServerConfig {
        workers: WORKERS,
        backlog: 16 << 10,
        keep_alive_idle: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let before = thread_count();

    let mut conns: Vec<TcpStream> = (0..n)
        .map(|_| {
            let stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            stream
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while (server.active_connections() as usize) < n {
        assert!(
            Instant::now() < deadline,
            "only {} connections admitted",
            server.active_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // All open at once, yet no thread was spawned per connection.
    assert!(
        thread_count() <= before + 1,
        "threads grew with idle connections: {} > {before}",
        thread_count()
    );

    // Two rounds of requests over every connection: each socket stays
    // keep-alive across rounds and every request completes.
    for round in 0..2u32 {
        for stream in conns.iter_mut() {
            stream.write_all(b"GET /ok HTTP/1.1\r\n\r\n").unwrap();
            let resp = read_keep_alive_response(stream, "ok");
            assert!(resp.starts_with("HTTP/1.1 200"), "round {round}: got {resp:?}");
        }
        assert!(
            thread_count() <= before + 1,
            "threads grew while serving {} connections: {} > {before}",
            n,
            thread_count()
        );
    }
    let metrics = server.metrics();
    assert_eq!(metrics.counter_value("httpd_requests_total"), Some(2 * n as u64));
    assert_eq!(metrics.counter_value("httpd_connections_total"), Some(n as u64));
    assert_eq!(metrics.counter_value("httpd_keepalive_reuse_total"), Some(n as u64));

    drop(conns);
    server.shutdown();
}

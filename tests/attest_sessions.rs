//! Attestation sessions end to end: warm sessions must skip the PCS
//! entirely, a cold rush must collapse into one collateral round trip,
//! every invalidation path (TTL, revoke, e-vTPM extend, TCB watermark)
//! must force re-verification, supervisor rebuilds under chaos must reuse
//! live sessions without perturbing the measurements, and the `/v1/attest`
//! resource must answer over HTTP with deprecated unversioned aliases.

use std::sync::{Arc, Barrier};

use confbench::{AttestConfig, Gateway, ManualClock, RetryPolicy, TeeFaultPlan};
use confbench_attest::SessionSource;
use confbench_httpd::{Client, Method, Request};
use confbench_types::{
    Error, FunctionSpec, Language, RunRequest, RunResult, TeePlatform, VmTarget,
};

fn attest_gateway(seed: u64, clock: &Arc<ManualClock>, ttl_ms: u64) -> Arc<Gateway> {
    Arc::new(
        Gateway::builder()
            .seed(seed)
            .clock(Arc::clone(clock) as Arc<dyn confbench_types::Clock>)
            .attest(AttestConfig { ttl_ms, capacity: 64 })
            .local_host(TeePlatform::Tdx)
            .build(),
    )
}

fn run_request(platform: TeePlatform) -> RunRequest {
    RunRequest {
        function: FunctionSpec::new("factors", Language::Lua).arg("360360"),
        target: VmTarget::secure(platform),
        trials: 2,
        seed: 3,
        deadline_ms: None,
        attest_session: None,
        device: None,
    }
}

/// The headline property (paper Fig. 5, fleet-amortized row): once a
/// session is live, verification is one cache lookup — zero network
/// milliseconds, zero new PCS requests — and a `RunRequest` riding the
/// token dispatches without re-verifying.
#[test]
fn warm_sessions_skip_the_pcs_entirely() {
    let clock = Arc::new(ManualClock::new());
    let gw = attest_gateway(7, &clock, 60_000);
    let svc = gw.attest();

    let cold = svc.open_session(TeePlatform::Tdx, None).unwrap();
    assert_eq!(cold.source, SessionSource::Verified);
    let pcs_after_cold = svc.tdx().pcs().requests();
    assert!(pcs_after_cold > 0, "cold verification fetched collateral");

    for _ in 0..5 {
        let warm = svc.open_session(TeePlatform::Tdx, None).unwrap();
        assert_eq!(warm.source, SessionSource::CacheHit);
        assert_eq!(warm.session.id, cold.session.id);
        assert_eq!(warm.timing.network_ms, 0.0, "cache hits never touch the network");
        assert!(warm.timing.latency_ms < cold.timing.latency_ms / 10.0, "lookup, not crypto");
    }
    assert_eq!(svc.tdx().pcs().requests(), pcs_after_cold, "no PCS traffic after the first");

    // A live token gates dispatch for free; an unknown one is rejected.
    let mut req = run_request(TeePlatform::Tdx);
    req.attest_session = Some(cold.session.id.clone());
    gw.run(&req).unwrap();
    assert_eq!(svc.tdx().pcs().requests(), pcs_after_cold, "dispatch rode the live session");
    req.attest_session = Some("as-bogus".into());
    let err = gw.run(&req).unwrap_err();
    assert!(matches!(err, Error::InvalidRequest(_)), "got {err}");
}

/// 32 threads race a cold session cache: single-flight elects exactly one
/// verification leader, and the whole rush costs exactly one PCS
/// collateral round trip (TCB info + PCK CRL + root CRL = 3 requests).
#[test]
fn cold_rush_of_32_costs_one_pcs_round_trip() {
    let clock = Arc::new(ManualClock::new());
    let gw = attest_gateway(5, &clock, 60_000);
    let svc = gw.attest();
    // Steady-state: the background refresher has the collateral warm
    // before traffic arrives (PR goal — the hot path never blocks on PCS).
    svc.tick_refresh();
    assert_eq!(svc.tdx().pcs().requests(), 3, "one refresh = one collateral cycle");

    let barrier = Arc::new(Barrier::new(32));
    let outcomes: Vec<_> = (0..32)
        .map(|_| {
            let gw = Arc::clone(&gw);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                gw.attest().open_session(TeePlatform::Tdx, None).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    let mut ids: Vec<_> = outcomes.iter().map(|o| o.session.id.clone()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 1, "every thread landed on the same session");
    let verified = outcomes.iter().filter(|o| o.source == SessionSource::Verified).count();
    assert_eq!(verified, 1, "single-flight elected exactly one leader");
    assert_eq!(svc.tdx().pcs().requests(), 3, "the rush added zero PCS requests");
    assert_eq!(svc.tdx().collateral_fetches(), 1, "exactly one collateral round trip total");
    assert_eq!(svc.cache().stats().misses, 1, "one verification for 32 callers");
}

/// Every invalidation path forces a full re-verification: TTL expiry,
/// explicit revocation, an e-vTPM runtime extend, and a TCB watermark
/// raise each kill the session, and the next open mints a fresh one.
#[test]
fn ttl_revoke_extend_and_tcb_watermark_each_invalidate() {
    let clock = Arc::new(ManualClock::new());
    let gw = attest_gateway(9, &clock, 10_000);
    let svc = gw.attest();

    // TTL: live until the clock passes expiry.
    let first = svc.open_session(TeePlatform::Tdx, None).unwrap().session;
    clock.advance(10_000);
    assert_eq!(svc.session(&first.id).unwrap().state.as_str(), "expired");
    let second = svc.open_session(TeePlatform::Tdx, None).unwrap();
    assert_eq!(second.source, SessionSource::Verified);
    assert_ne!(second.session.id, first.id);

    // Revoke: the token dies immediately.
    let revoked = svc.revoke(&second.session.id).unwrap();
    assert_eq!(revoked.state.as_str(), "revoked");
    let third = svc.open_session(TeePlatform::Tdx, None).unwrap();
    assert_eq!(third.source, SessionSource::Verified);

    // Runtime extend: the workload measured new state, changing the
    // fleet's runtime identity; re-verification tracks the new bank.
    let extended = svc.extend(&third.session.id, 1, b"policy-update").unwrap().unwrap();
    assert_eq!(extended.state.as_str(), "extended");
    let fourth = svc.open_session(TeePlatform::Tdx, None).unwrap();
    assert_eq!(fourth.source, SessionSource::Verified);
    assert_eq!(fourth.session.identity.runtime_digest, extended.identity.runtime_digest);
    assert_ne!(fourth.session.identity.runtime_digest, third.session.identity.runtime_digest);

    // TCB watermark: Intel raises the required TCB; the refresher feeds it
    // to the cache and the old session goes stale. The fleet patches to
    // the new level and re-verifies cleanly.
    svc.tdx().pcs().set_current_tcb(99);
    svc.tdx().patch_platform_tcb(99);
    svc.refresher().force().unwrap();
    assert_eq!(svc.session(&fourth.session.id).unwrap().state.as_str(), "tcb-stale");
    let fifth = svc.open_session(TeePlatform::Tdx, None).unwrap();
    assert_eq!(fifth.source, SessionSource::Verified);
    assert_eq!(fifth.session.identity.tcb_level, 99);
}

/// Under chaos, supervisor rebuilds re-attest through the shared session
/// cache — a rebuild storm reuses the live session instead of hammering
/// the PCS — and the surviving measurements stay byte-identical to a
/// fault-free control run.
#[test]
fn supervisor_rebuilds_reuse_sessions_and_stay_byte_identical() {
    let retry =
        RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 2, jitter: false };
    let build = |plan: Arc<TeeFaultPlan>| {
        Arc::new(
            Gateway::builder()
                .seed(11)
                .retry(retry)
                .chaos(plan)
                .rebuild_budget(50)
                .clock(Arc::new(ManualClock::new()))
                .attest(AttestConfig { ttl_ms: 600_000, capacity: 64 })
                .local_host(TeePlatform::Tdx)
                .build(),
        )
    };
    let control = build(Arc::new(TeeFaultPlan::new(17, 0.0)));
    let chaotic = build(Arc::new(TeeFaultPlan::new(17, 0.15)));

    let strip = |mut r: RunResult| {
        r.trace = None; // recovery is visible in spans, never in the data
        r
    };
    let mut rebuilds_seen = false;
    for arg in ["360360", "720720", "30030", "510510", "9699690"] {
        let mut req = run_request(TeePlatform::Tdx);
        req.function = FunctionSpec::new("factors", Language::Lua).arg(arg);
        let clean = strip(control.run(&req).unwrap());
        let survived = strip(chaotic.run(&req).unwrap());
        assert_eq!(clean, survived, "supervision must be invisible in the measurements");
        rebuilds_seen = chaotic.attest().cache().stats().hits > 0;
    }
    let pcs = chaotic.attest().tdx().pcs().requests();
    assert!(
        pcs <= 3,
        "rebuild storm re-used the live session instead of re-fetching collateral (got {pcs})"
    );
    assert!(rebuilds_seen, "chaos at 0.15 produced at least one supervised re-attestation");
}

/// The `/v1/attest` resource over real HTTP: create (201), status, extend,
/// revoke, 404s for unknown ids, and the deprecated unversioned aliases
/// answering with `Deprecation: true` and a successor `Link`.
#[test]
fn attest_routes_over_http_with_deprecated_aliases() {
    let clock = Arc::new(ManualClock::new());
    let gw = attest_gateway(3, &clock, 60_000);
    let server = Arc::clone(&gw).serve().unwrap();
    let client = Client::new(server.addr());

    // Create: 201 + the verification's timing on the wire.
    let resp = client
        .send(
            &Request::new(Method::Post, "/v1/attest/sessions")
                .json(&confbench::AttestSessionRequest { platform: TeePlatform::Tdx, nonce: None }),
        )
        .unwrap();
    assert_eq!(resp.status, 201);
    let created: confbench::AttestSessionInfo = resp.body_json().unwrap();
    assert_eq!(created.state, "live");
    assert_eq!(created.source.as_deref(), Some("verified"));
    // The opportunistic collateral refresh ran ahead of the verification,
    // so even the cold path stayed off the PCS (one refresh cycle total).
    assert_eq!(created.network_ms.unwrap(), 0.0);
    assert_eq!(gw.attest().tdx().pcs().requests(), 3);

    // Status.
    let resp = client
        .send(&Request::new(Method::Get, &format!("/v1/attest/sessions/{}", created.id)))
        .unwrap();
    assert_eq!(resp.status, 200);
    let status: confbench::AttestSessionInfo = resp.body_json().unwrap();
    assert_eq!(status.id, created.id);
    assert!(status.source.is_none(), "status reads carry no verification timing");

    // Extend: session flips to `extended` with a new runtime digest.
    let resp = client
        .send(
            &Request::new(Method::Post, &format!("/v1/attest/sessions/{}/extend", created.id))
                .json(&confbench::ExtendRequest { index: 0, data: "layer".into() }),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let extended: confbench::AttestSessionInfo = resp.body_json().unwrap();
    assert_eq!(extended.state, "extended");
    assert_ne!(extended.runtime_digest, created.runtime_digest);

    // Out-of-range register: caller's fault.
    let resp = client
        .send(
            &Request::new(Method::Post, &format!("/v1/attest/sessions/{}/extend", created.id))
                .json(&confbench::ExtendRequest { index: 99, data: "x".into() }),
        )
        .unwrap();
    assert_eq!(resp.status, 400);

    // Revoke, then 404 for unknown ids on every route.
    let resp = client
        .send(&Request::new(Method::Delete, &format!("/v1/attest/sessions/{}", created.id)))
        .unwrap();
    assert_eq!(resp.status, 200);
    for req in [
        Request::new(Method::Get, "/v1/attest/sessions/as-none"),
        Request::new(Method::Delete, "/v1/attest/sessions/as-none"),
        Request::new(Method::Post, "/v1/attest/sessions/as-none/extend")
            .json(&confbench::ExtendRequest { index: 0, data: "x".into() }),
    ] {
        assert_eq!(client.send(&req).unwrap().status, 404, "{}", req.path);
    }

    // Legacy aliases: same behavior, flagged deprecated with a successor.
    let legacy =
        client
            .send(&Request::new(Method::Post, "/attest/sessions").json(
                &confbench::AttestSessionRequest { platform: TeePlatform::SevSnp, nonce: None },
            ))
            .unwrap();
    assert_eq!(legacy.status, 201);
    assert_eq!(legacy.headers.get("deprecation").map(String::as_str), Some("true"));
    assert_eq!(
        legacy.headers.get("link").map(String::as_str),
        Some("</v1/attest/sessions>; rel=\"successor-version\"")
    );
    let snp: confbench::AttestSessionInfo = legacy.body_json().unwrap();
    let legacy_get =
        client.send(&Request::new(Method::Get, &format!("/attest/sessions/{}", snp.id))).unwrap();
    assert_eq!(legacy_get.status, 200);
    assert_eq!(legacy_get.headers.get("deprecation").map(String::as_str), Some("true"));
    assert_eq!(
        legacy_get.headers.get("link").map(String::as_str),
        Some("</v1/attest/sessions/:id>; rel=\"successor-version\"")
    );
}

//! Fleet end-to-end: sharded placement, kill/drain recovery with
//! byte-identical results, content-addressed routing of resubmissions,
//! fleet-wide collateral sharing, cross-shard work stealing, and live
//! migration (execution equality after resume, runnable source on abort).

use std::sync::Arc;

use confbench::{AttestConfig, AttestService, Gateway, ManualClock, RetryPolicy};
use confbench_fleet::{migrate, Fleet, FleetConfig, MigrationConfig, MigrationError};
use confbench_sched::{Scheduler, SchedulerConfig};
use confbench_types::{
    CampaignFunction, CampaignSpec, Language, OpTrace, Priority, TeePlatform, VmKind, VmTarget,
};
use confbench_vmm::TeeVmBuilder;

/// 2 functions × 1 language × 3 platforms × 2 modes.
const CAMPAIGN_JOBS: usize = 12;

fn campaign_spec() -> CampaignSpec {
    CampaignSpec {
        functions: vec![
            CampaignFunction::new("factors").arg("360360"),
            CampaignFunction::new("checksum").arg("30000"),
        ],
        languages: vec![Language::Go],
        platforms: vec![TeePlatform::Tdx, TeePlatform::SevSnp, TeePlatform::Cca],
        modes: vec![VmKind::Secure, VmKind::Normal],
        trials: 2,
        seed: 11,
        priority: Priority::Normal,
        deadline_ms: None,
        device: None,
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 2, jitter: false }
}

fn fleet(shards: usize) -> Fleet {
    Fleet::new(FleetConfig {
        shards,
        seed: 11,
        clock: Arc::new(ManualClock::new()),
        retry: fast_retry(),
        ..FleetConfig::default()
    })
}

/// The single-gateway control: same seed, same campaign, one scheduler.
/// Its result-cache snapshot is the ground truth the fleet must reproduce
/// byte-for-byte no matter which hosts die mid-run.
fn control_bytes() -> Vec<u8> {
    let gw = Arc::new(
        Gateway::builder()
            .seed(11)
            .retry(fast_retry())
            .clock(Arc::new(ManualClock::new()))
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::SevSnp)
            .local_host(TeePlatform::Cca)
            .build(),
    );
    let sched = Scheduler::with_metrics(
        Arc::clone(&gw) as Arc<dyn confbench_sched::Executor>,
        Arc::new(ManualClock::new()),
        SchedulerConfig::default(),
        Arc::clone(gw.metrics()),
    );
    sched.submit(campaign_spec()).expect("control campaign admitted");
    sched.drain();
    let snapshot = sched.result_cache().snapshot();
    assert_eq!(snapshot.len(), CAMPAIGN_JOBS);
    serde_json::to_vec(&snapshot).expect("control snapshot serializes")
}

/// Tentpole: kill a host mid-campaign. The fleet re-places the dead
/// shard's unharvested cells, finishes, and the merged results are
/// byte-identical to the single-gateway control — and the per-shard
/// cache-miss counters prove no cell executed twice (anything the dead
/// shard finished was harvested, anything it hadn't started runs exactly
/// once on its new owner).
#[test]
fn kill_shard_mid_campaign_completes_byte_identical_with_dedup() {
    let f = fleet(3);
    let receipt = f.submit(campaign_spec()).expect("fleet campaign admitted");
    assert_eq!(receipt.jobs, CAMPAIGN_JOBS);

    // One scheduling pass, then kill the busiest surviving shard.
    f.pump();
    let victim = f
        .status()
        .into_iter()
        .filter(|s| s.alive)
        .max_by_key(|s| s.queue_depth)
        .expect("a shard is alive")
        .shard;
    f.kill_shard(victim);
    assert_eq!(f.alive_shards().len(), 2);

    f.drain();
    let status = f.campaign_status(&receipt.id).expect("campaign tracked");
    assert!(status.complete, "campaign must survive the host loss: {status:?}");
    assert_eq!(status.done, CAMPAIGN_JOBS);

    assert_eq!(
        serde_json::to_vec(&f.results()).unwrap(),
        control_bytes(),
        "fleet results must be byte-identical to the single-gateway control"
    );
    assert_eq!(
        f.total_executions(),
        CAMPAIGN_JOBS as u64,
        "dedup: every cell executes exactly once fleet-wide, host loss notwithstanding"
    );
}

/// Resubmitting a finished campaign routes every cell (by content
/// address) to the shard whose cache already holds it: per-shard miss
/// counters do not move, only hits do.
#[test]
fn resubmission_routes_to_the_cached_shard() {
    let f = fleet(3);
    f.submit(campaign_spec()).expect("first run admitted");
    f.drain();
    assert_eq!(f.total_executions(), CAMPAIGN_JOBS as u64);
    let misses_before: Vec<u64> = f.status().iter().map(|s| s.cache_misses).collect();

    let receipt = f.submit(campaign_spec()).expect("resubmission admitted");
    f.drain();
    assert!(f.campaign_status(&receipt.id).unwrap().complete);
    let after = f.status();
    let misses_after: Vec<u64> = after.iter().map(|s| s.cache_misses).collect();
    assert_eq!(misses_before, misses_after, "resubmission must not execute anything");
    let hits: u64 = after.iter().map(|s| s.cache_hits).sum();
    assert_eq!(hits, CAMPAIGN_JOBS as u64, "every resubmitted cell cache-hits on its owner");
}

/// A graceful drain hands the leaving shard's cache entries to the ring's
/// new owners, so a resubmission after the drain still executes nothing.
#[test]
fn drained_shard_hands_its_cache_to_new_owners() {
    let f = fleet(3);
    f.submit(campaign_spec()).expect("first run admitted");
    f.drain();
    assert_eq!(f.total_executions(), CAMPAIGN_JOBS as u64);

    // Everything is harvested, so nothing needs re-placement...
    assert_eq!(f.drain_shard(0), 0);
    // ...and the drained shard's entries now live on the survivors.
    let receipt = f.submit(campaign_spec()).expect("resubmission admitted");
    f.drain();
    assert!(f.campaign_status(&receipt.id).unwrap().complete);
    assert_eq!(
        f.total_executions(),
        CAMPAIGN_JOBS as u64,
        "post-drain resubmission must be served entirely from migrated cache entries"
    );
}

/// The sharding regression the shared service fixes: N shards (or N
/// migrations) re-verifying the same TDX identity must do exactly one
/// collateral cycle fleet-wide (3 PCS requests: TCB info + 2 CRLs), not
/// one per shard. Three back-to-back migrations each re-attest through
/// the fleet-shared session cache; only the first touches the PCS.
#[test]
fn fleet_shares_one_collateral_cycle_per_identity() {
    let f = fleet(3);
    let mut warm = OpTrace::new();
    warm.cpu(1_000_000);
    warm.alloc(8 * 4096);
    let target = VmTarget { platform: TeePlatform::Tdx, kind: VmKind::Secure };
    for _ in 0..3 {
        f.run_migration(target, std::slice::from_ref(&warm), &MigrationConfig::default())
            .expect("tdx migration re-attests and resumes");
    }
    assert_eq!(
        f.attest().tdx().collateral_fetches(),
        1,
        "one collateral round trip for the whole fleet"
    );
    assert_eq!(f.attest().tdx().pcs().requests(), 3, "tcb info + 2 CRLs, fetched once");
    assert_eq!(f.migrations().len(), 3);
}

/// Work stealing: a single-platform campaign leaves some shards idle on
/// that platform's lane; they must steal from the deepest queue instead
/// of spinning, and the stolen results are indistinguishable (the victim
/// keeps the bookkeeping, so dedup counters stay exact).
#[test]
fn idle_shards_steal_from_the_hot_shard() {
    let f = fleet(3);
    let spec = CampaignSpec {
        functions: vec![
            CampaignFunction::new("factors").arg("360360"),
            CampaignFunction::new("factors").arg("720720"),
            CampaignFunction::new("factors").arg("30030"),
            CampaignFunction::new("checksum").arg("30000"),
        ],
        platforms: vec![TeePlatform::Tdx],
        ..campaign_spec()
    };
    let receipt = f.submit(spec).expect("hot campaign admitted");
    assert_eq!(receipt.jobs, 8);
    f.drain();
    assert!(f.campaign_status(&receipt.id).unwrap().complete);
    assert!(f.steals() > 0, "idle shards must steal from the deepest queue");
    assert_eq!(f.total_executions(), 8, "steals execute, they do not duplicate");
}

/// Live migration: after drain → pre-copy → stop-and-copy → re-attest →
/// resume, the migrated VM's future is indistinguishable from a twin that
/// never moved (same seed, same history — compute/alloc workloads).
#[test]
fn migrated_vm_execution_is_identical_to_an_unmigrated_twin() {
    let target = VmTarget { platform: TeePlatform::Tdx, kind: VmKind::Secure };
    let mut source = TeeVmBuilder::new(target).seed(7).build();
    let mut twin = TeeVmBuilder::new(target).seed(7).build();

    let mut warm = OpTrace::new();
    warm.cpu(2_000_000);
    warm.alloc(24 * 4096);
    warm.cpu(500_000);
    source.execute(&warm);
    twin.execute(&warm);

    // A workload arriving *during* pre-copy: executed on the source, its
    // dirtied pages ride the later rounds.
    let mut mid = OpTrace::new();
    mid.alloc(8 * 4096);
    mid.cpu(250_000);
    twin.execute(&mid);

    let attest =
        AttestService::new(7, AttestConfig::from_env(), Arc::new(ManualClock::new()), None);
    let (mut migrated, report) = migrate(
        source,
        TeeVmBuilder::new(target).seed(0xBADC0DE),
        &attest,
        std::slice::from_ref(&mid),
        &MigrationConfig::default(),
    )
    .expect("tdx migration converges");

    assert!(report.pages_total > 0, "pages moved: {report:?}");
    assert!(report.session.starts_with("as-"), "re-attested session: {}", report.session);

    let mut probe = OpTrace::new();
    probe.cpu(1_000_000);
    probe.alloc(4 * 4096);
    let moved = migrated.execute(&probe);
    let stayed = twin.execute(&probe);
    assert_eq!(moved, stayed, "post-resume execution must match the unmigrated twin");
}

/// An aborted migration (CCA has no live-migration architecture, so
/// secure-CCA re-attestation is refused) hands the source VM back
/// runnable, and its subsequent execution matches a VM that never
/// attempted the move.
#[test]
fn aborted_migration_returns_a_runnable_source() {
    let target = VmTarget { platform: TeePlatform::Cca, kind: VmKind::Secure };
    let mut source = TeeVmBuilder::new(target).seed(7).build();
    let mut twin = TeeVmBuilder::new(target).seed(7).build();
    let mut warm = OpTrace::new();
    warm.cpu(1_000_000);
    warm.alloc(8 * 4096);
    source.execute(&warm);
    twin.execute(&warm);

    let attest =
        AttestService::new(7, AttestConfig::from_env(), Arc::new(ManualClock::new()), None);
    let err = migrate(
        source,
        TeeVmBuilder::new(target).seed(9),
        &attest,
        &[],
        &MigrationConfig::default(),
    )
    .expect_err("secure-CCA migration must abort at re-attest");
    assert!(matches!(err, MigrationError::Attest { .. }), "{err}");

    let mut recovered = err.into_source();
    let mut probe = OpTrace::new();
    probe.cpu(750_000);
    assert_eq!(
        recovered.execute(&probe),
        twin.execute(&probe),
        "an aborted source must resume exactly where it stopped"
    );
}

//! End-to-end campaign scheduling: a multi-platform campaign submitted over
//! `POST /v1/campaigns` must drain deterministically under `ManualClock`,
//! polling must be monotone while partial, identical resubmission must be
//! served entirely from the content-addressed result cache, a full queue
//! must answer 429 with `Retry-After`, and cancellation must keep queued
//! jobs away from the VMs.

use std::sync::Arc;

use confbench::{Gateway, ManualClock};
use confbench_httpd::{Client, Method, Request, Server};
use confbench_sched::{Scheduler, SchedulerConfig};
use confbench_types::{
    CampaignFunction, CampaignReceipt, CampaignSpec, CampaignState, CampaignStatus, JobState,
    JobStatus, Language, Priority, TeePlatform, VmKind,
};

/// The standard matrix: 2 functions × 2 languages × 2 platforms × 2 modes.
const MATRIX_JOBS: usize = 16;

fn matrix_spec() -> CampaignSpec {
    CampaignSpec {
        functions: vec![
            CampaignFunction::new("factors").arg("360360"),
            CampaignFunction::new("checksum").arg("30000"),
        ],
        languages: vec![Language::Go, Language::Lua],
        platforms: vec![TeePlatform::Tdx, TeePlatform::SevSnp],
        modes: vec![VmKind::Secure, VmKind::Normal],
        trials: 3,
        seed: 11,
        priority: Priority::Normal,
        deadline_ms: None,
        device: None,
    }
}

/// Boots a two-platform gateway under a manual clock with a scheduler
/// publishing into the gateway's metrics registry, served over HTTP.
fn boot(queue_capacity: usize) -> (Server, Client, Arc<Gateway>, Arc<Scheduler>) {
    let gw = Arc::new(
        Gateway::builder()
            .seed(11)
            .clock(Arc::new(ManualClock::new()))
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::SevSnp)
            .build(),
    );
    let config = SchedulerConfig {
        queue_capacity,
        retry_after_secs: gw.retry_policy().retry_after_secs(),
        ..SchedulerConfig::default()
    };
    let sched = Arc::new(Scheduler::with_metrics(
        Arc::clone(&gw) as Arc<dyn confbench_sched::Executor>,
        Arc::new(ManualClock::new()),
        config,
        Arc::clone(gw.metrics()),
    ));
    let server = Arc::clone(&gw).serve_with_scheduler(Arc::clone(&sched), "127.0.0.1:0").unwrap();
    let client = Client::new(server.addr());
    (server, client, gw, sched)
}

fn submit(client: &Client, spec: &CampaignSpec) -> CampaignReceipt {
    let resp = client.send(&Request::new(Method::Post, "/v1/campaigns").json(spec)).unwrap();
    assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
    resp.body_json().unwrap()
}

fn poll(client: &Client, receipt: &CampaignReceipt) -> CampaignStatus {
    let resp =
        client.send(&Request::new(Method::Get, &format!("/v1/campaigns/{}", receipt.id))).unwrap();
    assert_eq!(resp.status, 200);
    resp.body_json().unwrap()
}

/// Steps the scheduler to completion, polling over REST between steps and
/// asserting the observed status only ever moves forward.
fn drain_with_monotone_polling(
    client: &Client,
    sched: &Scheduler,
    receipt: &CampaignReceipt,
) -> CampaignStatus {
    let mut status = poll(client, receipt);
    assert_eq!(status.state, CampaignState::Active);
    while !status.is_done() {
        let progressed = TeePlatform::ALL.iter().any(|&p| sched.step(p));
        assert!(progressed, "active campaign must have queued work");
        let next = poll(client, receipt);
        assert!(next.terminal_jobs() >= status.terminal_jobs(), "terminal count regressed");
        assert!(next.cells.len() >= status.cells.len(), "summaries disappeared");
        assert_eq!(next.total_jobs, status.total_jobs);
        status = next;
    }
    status
}

#[test]
fn campaign_over_rest_drains_deterministically() {
    let (_server, client, _gw, sched) = boot(64);
    let receipt = submit(&client, &matrix_spec());
    assert_eq!(receipt.jobs, MATRIX_JOBS);

    let status = drain_with_monotone_polling(&client, &sched, &receipt);
    assert_eq!(status.state, CampaignState::Completed);
    assert_eq!(status.completed, MATRIX_JOBS);
    assert_eq!(status.cache_hits, 0, "cold pass runs every cell");
    assert_eq!(status.cells.len(), MATRIX_JOBS);
    for cell in &status.cells {
        assert!(!cell.from_cache);
        assert!(cell.mean_ms > 0.0);
        assert!(!cell.output.is_empty());
        assert_eq!(cell.cache_key.len(), 64, "sha-256 hex key: {}", cell.cache_key);
    }

    // Per-job drill-down carries the adopted span tree.
    let job = &status.cells[0].job;
    let resp = client.send(&Request::new(Method::Get, &format!("/v1/jobs/{job}"))).unwrap();
    assert_eq!(resp.status, 200);
    let job: JobStatus = resp.body_json().unwrap();
    assert_eq!(job.state, JobState::Completed);
    let trace = job.trace.expect("executed jobs carry a trace");
    assert_eq!(trace.name, "sched.execute");
    assert!(trace.find("sched.enqueue").is_some(), "queue-wait span adopted");
    assert!(trace.find("gateway.run").is_some(), "gateway subtree adopted");
}

#[test]
fn identical_resubmission_is_served_entirely_from_cache() {
    let (_server, client, gw, sched) = boot(64);

    let first = submit(&client, &matrix_spec());
    let cold = drain_with_monotone_polling(&client, &sched, &first);
    let runs_after_cold = gw.metrics().counter_value("gateway_requests_total").unwrap();
    assert_eq!(runs_after_cold, MATRIX_JOBS as u64);

    let second = submit(&client, &matrix_spec());
    assert_ne!(second.id, first.id, "resubmission gets a fresh campaign id");
    let warm = drain_with_monotone_polling(&client, &sched, &second);

    assert_eq!(warm.completed, MATRIX_JOBS);
    assert_eq!(warm.cache_hits, MATRIX_JOBS, "every cell memoized");
    assert!(warm.cells.iter().all(|c| c.from_cache));
    assert_eq!(
        gw.metrics().counter_value("sched_cache_hits_total"),
        Some(MATRIX_JOBS as u64),
        "cache-hit counter equals the cell count"
    );
    assert_eq!(
        gw.metrics().counter_value("gateway_requests_total"),
        Some(runs_after_cold),
        "memoized pass never touches the gateway"
    );

    // The memoized summaries reproduce the cold measurements exactly.
    for (a, b) in cold.cells.iter().zip(&warm.cells) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.cache_key, b.cache_key);
        assert_eq!(a.mean_ms.to_bits(), b.mean_ms.to_bits());
        assert_eq!(a.median_ms.to_bits(), b.median_ms.to_bits());
        assert_eq!(a.min_ms.to_bits(), b.min_ms.to_bits());
        assert_eq!(a.max_ms.to_bits(), b.max_ms.to_bits());
        assert_eq!(a.stddev_ms.to_bits(), b.stddev_ms.to_bits());
        assert_eq!(a.output, b.output);
    }
}

/// Determinism across independent instances: the same spec + seed on two
/// freshly booted stacks yields byte-identical per-cell summaries.
#[test]
fn replay_on_a_fresh_instance_is_byte_identical() {
    let run = || {
        let (_server, client, _gw, sched) = boot(64);
        let receipt = submit(&client, &matrix_spec());
        sched.drain();
        serde_json::to_string(&poll(&client, &receipt).cells).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "replayed campaign summaries must be byte-identical");
}

#[test]
fn queue_full_answers_429_with_retry_after() {
    let (_server, client, gw, sched) = boot(MATRIX_JOBS + 2);
    submit(&client, &matrix_spec());

    // Two slots left: a whole matrix cannot be admitted, and admission is
    // all-or-nothing — not even two of its cells may sneak in.
    let resp =
        client.send(&Request::new(Method::Post, "/v1/campaigns").json(&matrix_spec())).unwrap();
    assert_eq!(resp.status, 429);
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some(gw.retry_policy().retry_after_secs().to_string().as_str()),
        "Retry-After derives from the gateway's backoff policy"
    );
    assert!(String::from_utf8_lossy(&resp.body).contains("queue full"));
    assert_eq!(sched.queue_depth(), MATRIX_JOBS, "rejected campaign left no partial admission");

    // Draining frees capacity; the same spec is then accepted.
    sched.drain();
    let receipt = submit(&client, &matrix_spec());
    assert_eq!(receipt.jobs, MATRIX_JOBS);
}

#[test]
fn cancellation_keeps_queued_jobs_off_the_vms() {
    let (_server, client, gw, sched) = boot(64);
    let receipt = submit(&client, &matrix_spec());

    let resp = client
        .send(&Request::new(Method::Delete, &format!("/v1/campaigns/{}", receipt.id)))
        .unwrap();
    assert_eq!(resp.status, 200);
    let status: CampaignStatus = resp.body_json().unwrap();
    assert_eq!(status.state, CampaignState::Cancelled);
    assert_eq!(status.cancelled, MATRIX_JOBS);

    // Even after the workers run, no cancelled job reaches a VM.
    sched.drain();
    assert_eq!(
        gw.metrics().counter_value("gateway_requests_total").unwrap_or(0),
        0,
        "cancelled jobs never dispatched"
    );
    let status = poll(&client, &receipt);
    assert_eq!(status.completed, 0);
    assert_eq!(status.cells.len(), 0);
}

//! The paper's headline claims, asserted end to end at quick scale. Each
//! test mirrors a sentence from §IV/§V/§VI of the paper; the figure
//! binaries regenerate the full artifacts.

use confbench_bench::{dbms, fig3, fig4, fig5, heatmap, mean, ExperimentConfig};
use confbench_types::{Language, TeePlatform};

const SEED: u64 = 2026;

#[test]
fn claim_tdx_is_most_efficient_overall_for_compute() {
    // "Our experiments indicate that TDX is the most efficient technology
    //  overall, in particular for computational workloads."
    let cfg = ExperimentConfig::quick(SEED);
    let cols = ["cpustress", "factors", "checksum", "mandelbrot"];
    let tdx = heatmap::run(cfg, TeePlatform::Tdx, Some(&cols));
    let snp = heatmap::run(cfg, TeePlatform::SevSnp, Some(&cols));
    let cca = heatmap::run(cfg, TeePlatform::Cca, Some(&cols));
    assert!(
        tdx.overall_mean() <= snp.overall_mean() + 0.02,
        "tdx {} snp {}",
        tdx.overall_mean(),
        snp.overall_mean()
    );
    assert!(tdx.overall_mean() < cca.overall_mean());
}

#[test]
fn claim_tdx_pays_more_for_io_and_attestation_than_snp() {
    // "Compared to SEV-SNP, though, it exposes higher costs with I/O
    //  operations and attestation."
    let cfg = ExperimentConfig::quick(SEED);
    let io_cols = ["iostress", "filesystem"];
    let tdx = heatmap::run(cfg, TeePlatform::Tdx, Some(&io_cols));
    let snp = heatmap::run(cfg, TeePlatform::SevSnp, Some(&io_cols));
    assert!(
        tdx.overall_mean() > snp.overall_mean(),
        "tdx io {} vs snp {}",
        tdx.overall_mean(),
        snp.overall_mean()
    );

    let att = fig5::run(cfg);
    assert!(mean(&att.tdx_attest_ms) > mean(&att.snp_attest_ms));
    assert!(mean(&att.tdx_check_ms) > mean(&att.snp_check_ms));
}

#[test]
fn claim_cca_shows_high_overheads_for_every_workload() {
    // "The simulated CCA implementation instead consistently shows high
    //  overheads for every workload."
    let cfg = ExperimentConfig::quick(SEED);
    let cols = ["cpustress", "iostress", "logging", "factors"];
    let cca = heatmap::run(cfg, TeePlatform::Cca, Some(&cols));
    for workload in &cca.workloads {
        assert!(
            cca.col_mean(workload) > 1.1,
            "{workload} on CCA should be visibly slow: {}",
            cca.col_mean(workload)
        );
    }
}

#[test]
fn claim_complex_runtimes_burden_tee_operation() {
    // "With FaaS workloads, the more complex language runtimes seem to
    //  impose a heavier burden on TEE operation."
    let cfg = ExperimentConfig::quick(SEED);
    let cols = ["cpustress", "factors", "checksum"];
    let hm = heatmap::run(cfg, TeePlatform::Tdx, Some(&cols));
    let managed = mean(
        &[Language::Python, Language::Node, Language::Ruby]
            .iter()
            .map(|&l| hm.row_mean(l))
            .collect::<Vec<_>>(),
    );
    let light = mean(
        &[Language::Lua, Language::LuaJit, Language::Go, Language::Wasm]
            .iter()
            .map(|&l| hm.row_mean(l))
            .collect::<Vec<_>>(),
    );
    assert!(managed > light, "managed {managed} vs lightweight {light}");
}

#[test]
fn claim_ml_overheads_minimal_on_hardware_tees() {
    // Fig. 3: "for CPU-intensive tasks, TDX and SEV-SNP confidential VMs
    //  execute at close-to-native speed"; CCA up to ~1.33x.
    let fig = fig3::run(ExperimentConfig::quick(SEED));
    assert!(fig.ratio(TeePlatform::Tdx) < 1.12);
    assert!(fig.ratio(TeePlatform::SevSnp) < 1.15);
    let cca = fig.ratio(TeePlatform::Cca);
    assert!(cca > fig.ratio(TeePlatform::Tdx) && cca < 1.55);
}

#[test]
fn claim_dbms_near_native_on_hardware_huge_on_cca() {
    // §IV-C: TDX/SNP "close to 1"; CCA "the largest".
    let results = dbms::run(ExperimentConfig::quick(SEED));
    assert!(results.average_ratio(TeePlatform::Tdx) < 1.25);
    assert!(results.average_ratio(TeePlatform::SevSnp) < 1.25);
    assert!(results.average_ratio(TeePlatform::Cca) > 2.0);
}

#[test]
fn claim_unixbench_overheads_exceed_ml_and_dbms() {
    // §IV-C: "the overheads with UnixBench are larger than in ML and DBMS
    //  workloads" (sleep/wake exits).
    let cfg = ExperimentConfig::quick(SEED);
    let ub = fig4::run(cfg);
    let ml = fig3::run(cfg);
    let db = dbms::run(cfg);
    for (platform_results, platform) in ub.iter().zip(TeePlatform::ALL) {
        let ub_ratio = platform_results.aggregate_ratio();
        assert!(
            ub_ratio > ml.ratio(platform) - 0.02,
            "{platform}: unixbench {ub_ratio} vs ml {}",
            ml.ratio(platform)
        );
        if platform != TeePlatform::Cca {
            assert!(
                ub_ratio > db.average_ratio(platform) - 0.05,
                "{platform}: unixbench {ub_ratio} vs dbms {}",
                db.average_ratio(platform)
            );
        }
    }
}

#[test]
fn claim_some_scenarios_run_faster_inside_the_tee() {
    // §VI: "some scenarios achieve slightly better results inside
    //  confidential VMs rather than outside, an effect we traced back to
    //  differences in cache hits."
    let (with_cache, without_cache) =
        confbench_bench::ablations::cache_model_ablation(ExperimentConfig::quick(SEED));
    assert!(with_cache < 1.0, "a sub-1.0 scenario exists: {with_cache}");
    assert!(without_cache >= 0.99, "and it is a cache effect: {without_cache}");
}

//! End-to-end resilience: a gateway fronting one fault-injected remote host
//! and one healthy local host must lose zero requests, open the faulty
//! member's circuit, skip it while open, and re-admit it after cooldown.
//!
//! Everything is deterministic: faults fire on fixed connection ordinals,
//! backoff jitter comes from the gateway's seeded RNG, and circuit cooldown
//! runs on a [`ManualClock`] rather than wall time.

use std::sync::Arc;

use confbench::{
    CircuitState, FunctionStore, Gateway, HealthPolicy, HostAgent, ManualClock, RetryPolicy,
};
use confbench_httpd::{Client, Fault, FaultInjector, Method, Request, TcpRelay, Trigger};
use confbench_types::{FunctionSpec, Language, RunRequest, TeePlatform, VmTarget};

fn run_request() -> RunRequest {
    RunRequest::new(
        FunctionSpec::new("factors", Language::Go).arg("360360"),
        VmTarget::secure(TeePlatform::Tdx),
    )
}

#[test]
fn failover_opens_circuit_then_recovers_with_zero_lost_requests() {
    // A healthy host agent, fronted (socat-style) by a relay that drops the
    // first three connections — the "flaky host".
    let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, Arc::new(FunctionStore::new()), 7));
    let backend = Arc::clone(&agent).serve().unwrap();
    let faults = Arc::new(FaultInjector::new().rule(Trigger::FirstN(3), Fault::DropConnection));
    let relay =
        TcpRelay::spawn_with_faults("127.0.0.1:0", backend.addr(), Arc::clone(&faults)).unwrap();

    let clock = Arc::new(ManualClock::new());
    let gateway = Gateway::builder()
        .seed(7)
        .remote_host(TeePlatform::Tdx, relay.addr()) // member 0: flaky
        .local_host(TeePlatform::Tdx) // member 1: healthy
        .retry(RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 4, jitter: true })
        .health(HealthPolicy { failure_threshold: 3, cooldown_ms: 1_000 })
        .clock(Arc::clone(&clock) as Arc<dyn confbench::Clock>)
        .build();

    // Phase 1: every request succeeds (failover to the healthy member when
    // the flaky one drops the connection) — zero requests lost.
    let req = run_request();
    for _ in 0..6 {
        assert_eq!(gateway.run(&req).unwrap().output, "1572480");
    }
    assert_eq!(
        gateway.circuit_states(TeePlatform::Tdx).unwrap()[0],
        CircuitState::Open,
        "three dropped connections must open the flaky member's circuit"
    );
    let dropped = faults.requests_seen();
    assert_eq!(dropped, 3, "exactly the three injected drops reached the relay");

    // Phase 2: with the circuit open, checkouts skip the flaky member — the
    // relay sees no further connections.
    for _ in 0..4 {
        assert_eq!(gateway.run(&req).unwrap().output, "1572480");
    }
    assert_eq!(
        faults.requests_seen(),
        dropped,
        "open circuit: no traffic may reach the flaky member"
    );
    assert_eq!(gateway.circuit_states(TeePlatform::Tdx).unwrap()[0], CircuitState::Open);

    // Phase 3: after the cooldown the member is probed, succeeds (its fault
    // budget is exhausted), and rejoins the rotation.
    clock.advance(1_000);
    for _ in 0..4 {
        assert_eq!(gateway.run(&req).unwrap().output, "1572480");
    }
    assert_eq!(
        gateway.circuit_states(TeePlatform::Tdx).unwrap()[0],
        CircuitState::Closed,
        "successful probe must close the circuit"
    );
    assert!(faults.requests_seen() > dropped, "recovered member must be serving traffic again");

    // Bookkeeping: every checkout completed (nothing in flight, nothing
    // lost) and both members served requests.
    assert_eq!(gateway.run(&req).unwrap().output, "1572480");
    let served = gateway.served_counts(TeePlatform::Tdx).unwrap();
    assert_eq!(served.len(), 2);
    assert!(served.iter().all(|&s| s > 0), "both members served: {served:?}");
}

#[test]
fn remote_and_local_hosts_return_identical_rest_statuses() {
    // Same store contents (empty beyond built-ins) on both sides; the only
    // difference is dispatch transport. REST status codes must not differ.
    let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, Arc::new(FunctionStore::new()), 3));
    let agent_server = Arc::clone(&agent).serve().unwrap();

    let local_gw = Arc::new(Gateway::builder().seed(3).local_host(TeePlatform::Tdx).build());
    let remote_gw = Arc::new(
        Gateway::builder().seed(3).remote_host(TeePlatform::Tdx, agent_server.addr()).build(),
    );
    let local_rest = Arc::clone(&local_gw).serve().unwrap();
    let remote_rest = Arc::clone(&remote_gw).serve().unwrap();
    let local = Client::new(local_rest.addr());
    let remote = Client::new(remote_rest.addr());

    // Unknown function: 404 through both paths (a remote host used to leak
    // its application error as a generic 500 → Transport).
    let mut unknown = run_request();
    unknown.function.name = "no-such-function".into();
    let body = Request::new(Method::Post, "/run").json(&unknown);
    let (l, r) = (local.send(&body).unwrap(), remote.send(&body).unwrap());
    assert_eq!(l.status, 404);
    assert_eq!(r.status, l.status, "remote/local unknown-function parity");

    // No VM for the platform: 503 through both paths, each carrying a
    // Retry-After hint derived from the gateway's backoff policy.
    let mut no_vm = run_request();
    no_vm.target = VmTarget::secure(TeePlatform::Cca);
    let body = Request::new(Method::Post, "/run").json(&no_vm);
    let (l, r) = (local.send(&body).unwrap(), remote.send(&body).unwrap());
    assert_eq!(l.status, 503);
    assert_eq!(r.status, l.status, "remote/local no-VM parity");
    let expected = local_gw.retry_policy().retry_after_secs().to_string();
    for resp in [&l, &r] {
        assert_eq!(
            resp.headers.get("retry-after"),
            Some(&expected),
            "503 must carry Retry-After from the backoff policy"
        );
    }
}

#[test]
fn expired_deadline_maps_to_504_over_rest() {
    // A pool whose only member is unreachable: with a 0 ms budget the
    // gateway must answer 504 (deadline) rather than hang or 500.
    let dead: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
    let gw = Arc::new(Gateway::builder().remote_host(TeePlatform::Tdx, dead).build());
    let rest = Arc::clone(&gw).serve().unwrap();
    let client = Client::new(rest.addr());
    let mut req = run_request();
    req.deadline_ms = Some(0);
    let resp = client.send(&Request::new(Method::Post, "/run").json(&req)).unwrap();
    assert_eq!(resp.status, 504);
}

//! Cross-crate integration tests: the full ConfBench pipeline over real TCP
//! sockets — gateway REST API, remote host agents, socat-style relays,
//! function upload, multi-language execution, perf piggybacking.

use std::sync::Arc;

use confbench::{FunctionStore, Gateway, HostAgent, UploadRequest};
use confbench_httpd::{Client, Method, Request, TcpRelay};
use confbench_types::{
    FunctionSpec, Language, RunRequest, RunResult, TeePlatform, VmKind, VmTarget,
};

fn run_request(name: &str, language: Language, target: VmTarget, trials: u32) -> RunRequest {
    let args =
        confbench_workloads::find_workload(name).map(|w| w.default_args()).unwrap_or_default();
    let mut spec = FunctionSpec::new(name, language);
    spec.args = args;
    RunRequest {
        function: spec,
        target,
        trials,
        seed: 3,
        deadline_ms: None,
        attest_session: None,
        device: None,
    }
}

#[test]
fn gateway_rest_api_full_lifecycle() {
    let gateway = Arc::new(
        Gateway::builder()
            .seed(3)
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::SevSnp)
            .build(),
    );
    let server = Arc::clone(&gateway).serve().unwrap();
    let client = Client::new(server.addr());

    // Health, canonical and legacy (the latter flagged deprecated).
    assert_eq!(client.send(&Request::new(Method::Get, "/v1/health")).unwrap().status, 200);
    let legacy = client.send(&Request::new(Method::Get, "/health")).unwrap();
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.headers.get("deprecation").map(String::as_str), Some("true"));

    // The 25 built-in functions are listed.
    let names: Vec<String> =
        client.send(&Request::new(Method::Get, "/v1/functions")).unwrap().body_json().unwrap();
    assert_eq!(names.len(), 25);

    // Upload a new one and run it in three languages on both platforms.
    let upload = Request::new(Method::Post, "/v1/functions").json(&UploadRequest {
        name: "gcd".into(),
        script: "fn gcd(a, b) { if b == 0 { return a; } return gcd(b, a % b); }
                 result(gcd(int(ARGS[0]), int(ARGS[1])));"
            .into(),
    });
    assert_eq!(client.send(&upload).unwrap().status, 201);

    for language in [Language::Lua, Language::Wasm, Language::Python] {
        for platform in [TeePlatform::Tdx, TeePlatform::SevSnp] {
            let mut req = run_request("gcd", language, VmTarget::secure(platform), 2);
            req.function.args = vec!["1071".into(), "462".into()];
            let resp = client.send(&Request::new(Method::Post, "/v1/run").json(&req)).unwrap();
            assert_eq!(resp.status, 200);
            let result: RunResult = resp.body_json().unwrap();
            assert_eq!(result.output, "21", "{language} on {platform}");
            assert_eq!(result.trial_ms.len(), 2);
            assert!(result.perf.cycles > 0);
        }
    }
}

#[test]
fn remote_hosts_behind_relays() {
    // Host agents on their own sockets, reached through socat-style relays,
    // registered with the gateway by relay address — the paper's host-side
    // port-steering topology (§III-B).
    let store = Arc::new(FunctionStore::new());
    let tdx_agent = Arc::new(HostAgent::new(TeePlatform::Tdx, Arc::clone(&store), 3));
    let snp_agent = Arc::new(HostAgent::new(TeePlatform::SevSnp, Arc::clone(&store), 3));
    let tdx_server = Arc::clone(&tdx_agent).serve().unwrap();
    let snp_server = Arc::clone(&snp_agent).serve().unwrap();
    let tdx_relay = TcpRelay::spawn("127.0.0.1:0", tdx_server.addr()).unwrap();
    let snp_relay = TcpRelay::spawn("127.0.0.1:0", snp_server.addr()).unwrap();

    let gateway = Gateway::builder()
        .remote_host(TeePlatform::Tdx, tdx_relay.addr())
        .remote_host(TeePlatform::SevSnp, snp_relay.addr())
        .build();

    let result = gateway
        .run(&run_request("fib", Language::LuaJit, VmTarget::secure(TeePlatform::Tdx), 2))
        .unwrap();
    assert_eq!(result.output, "2584"); // fib(18)
    assert!(tdx_relay.connections() >= 1);
    assert_eq!(snp_relay.connections(), 0);

    let result = gateway
        .run(&run_request("fib", Language::Go, VmTarget::normal(TeePlatform::SevSnp), 2))
        .unwrap();
    assert_eq!(result.output, "2584");
    assert!(snp_relay.connections() >= 1);
}

#[test]
fn perf_counters_degrade_on_cca_exactly_like_the_paper() {
    let gateway = Gateway::builder().seed(1).local_host(TeePlatform::Cca).build();
    let result = gateway
        .run(&run_request("checksum", Language::Go, VmTarget::secure(TeePlatform::Cca), 1))
        .unwrap();
    // perf is unavailable inside CCA realms: the custom-script fallback
    // reports wallclock/exit data but no instruction or cache counters.
    assert!(!result.perf.from_hw_counters);
    assert_eq!(result.perf.instructions, 0);
    assert!(result.perf.cycles > 0);
}

#[test]
fn secure_and_normal_outputs_always_agree() {
    // Confidentiality must not change results: run a spread of workloads on
    // both VM kinds and compare outputs.
    let gateway = Gateway::builder().seed(9).local_host(TeePlatform::SevSnp).build();
    for name in ["factors", "primes", "mandelbrot", "json", "strings"] {
        for language in [Language::Lua, Language::Go] {
            let secure = gateway
                .run(&run_request(name, language, VmTarget::secure(TeePlatform::SevSnp), 1))
                .unwrap();
            let normal = gateway
                .run(&run_request(name, language, VmTarget::normal(TeePlatform::SevSnp), 1))
                .unwrap();
            assert_eq!(secure.output, normal.output, "{name}/{language}");
        }
    }
}

#[test]
fn trials_and_stats_are_consistent() {
    let gateway = Gateway::builder().seed(4).local_host(TeePlatform::Tdx).build();
    let result = gateway
        .run(&run_request("histogram", Language::Wasm, VmTarget::secure(TeePlatform::Tdx), 8))
        .unwrap();
    assert_eq!(result.trial_ms.len(), 8);
    assert_eq!(result.trial_cycles.len(), 8);
    let min = result.trial_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = result.trial_ms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(result.stats.min_ms, min);
    assert_eq!(result.stats.max_ms, max);
    assert!(result.stats.mean_ms >= min && result.stats.mean_ms <= max);
    assert!(result.stats.stddev_ms > 0.0, "trial jitter must show up");
}

#[test]
fn vm_kind_parsing_matches_wire_format() {
    // The REST query vocabulary (kebab-case platform names) roundtrips.
    for platform in TeePlatform::ALL {
        for kind in VmKind::ALL {
            let target = VmTarget { platform, kind };
            let json = serde_json::to_string(&target).unwrap();
            let back: VmTarget = serde_json::from_str(&json).unwrap();
            assert_eq!(back, target);
        }
    }
}

//! The TDISP device-interface lifecycle as an explicit state machine.
//!
//! PCIe TDISP (TEE Device Interface Security Protocol) drives a device
//! interface through `UNLOCKED → LOCKED → RUN`; we add an explicit
//! `Attested` stage between locking and running (the host must verify the
//! device's measurement report before enabling direct DMA) and the spec's
//! `ERROR` terminal that only a reset leaves. All transition rules live in
//! the pure [`transition`] function so they can be enumerated exhaustively
//! in tests; [`TdispInterface`] is the small stateful wrapper devices
//! embed.

use std::fmt;

/// A TDISP interface state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TdispState {
    /// Interface config is host-mutable; no trust established. DMA (if
    /// any) must be staged through shared memory.
    #[default]
    Unlocked,
    /// `LOCK_INTERFACE_REQUEST` accepted: config frozen, measurement
    /// reports retrievable, but the host has not yet verified them.
    Locked,
    /// The host verified the device measurement report against policy.
    Attested,
    /// `START_INTERFACE_REQUEST` accepted: direct DMA to private memory
    /// is enabled.
    Run,
    /// The interface is wedged (protocol violation or injected fault);
    /// only a reset recovers.
    Error,
}

impl TdispState {
    /// Every state, for exhaustive sweeps.
    pub const ALL: [TdispState; 5] = [
        TdispState::Unlocked,
        TdispState::Locked,
        TdispState::Attested,
        TdispState::Run,
        TdispState::Error,
    ];

    /// Stable label used in span attributes and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            TdispState::Unlocked => "unlocked",
            TdispState::Locked => "locked",
            TdispState::Attested => "attested",
            TdispState::Run => "run",
            TdispState::Error => "error",
        }
    }
}

impl fmt::Display for TdispState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An operation attempted against a TDISP interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TdispOp {
    /// `LOCK_INTERFACE_REQUEST`: freeze the interface config.
    Lock,
    /// `GET_DEVICE_INTERFACE_REPORT`: fetch the signed measurement report.
    GetReport,
    /// Host-side acceptance of a verified measurement report.
    AcceptAttestation,
    /// `START_INTERFACE_REQUEST`: enable direct DMA.
    Start,
    /// `STOP_INTERFACE_REQUEST`: tear the interface down to `Unlocked`.
    Stop,
    /// A DMA transfer targeting private memory.
    DmaPrivate,
    /// A fault (injected or protocol) wedging the interface.
    Fault,
    /// Function-level reset, recovering a wedged interface.
    Reset,
}

impl TdispOp {
    /// Every operation, for exhaustive sweeps.
    pub const ALL: [TdispOp; 8] = [
        TdispOp::Lock,
        TdispOp::GetReport,
        TdispOp::AcceptAttestation,
        TdispOp::Start,
        TdispOp::Stop,
        TdispOp::DmaPrivate,
        TdispOp::Fault,
        TdispOp::Reset,
    ];

    /// Stable label used in error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            TdispOp::Lock => "lock",
            TdispOp::GetReport => "get-report",
            TdispOp::AcceptAttestation => "accept-attestation",
            TdispOp::Start => "start",
            TdispOp::Stop => "stop",
            TdispOp::DmaPrivate => "dma-private",
            TdispOp::Fault => "fault",
            TdispOp::Reset => "reset",
        }
    }
}

impl fmt::Display for TdispOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed rejection of an illegal TDISP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdispError {
    /// The operation is not legal in the current state (e.g. `Start`
    /// before `AcceptAttestation`).
    InvalidTransition {
        /// State the interface was in.
        state: TdispState,
        /// The rejected operation.
        op: TdispOp,
    },
    /// A DMA targeting private memory was attempted while the interface
    /// is not in `Run` (e.g. still `Unlocked`). Such transfers must take
    /// the bounce path instead.
    DmaNotPermitted {
        /// State the interface was in.
        state: TdispState,
    },
    /// The interface is wedged in `Error`; only `Reset` is accepted.
    Wedged {
        /// The rejected operation.
        op: TdispOp,
    },
}

impl fmt::Display for TdispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdispError::InvalidTransition { state, op } => {
                write!(f, "tdisp operation {op} is illegal in state {state}")
            }
            TdispError::DmaNotPermitted { state } => {
                write!(f, "private-memory DMA not permitted in tdisp state {state}")
            }
            TdispError::Wedged { op } => {
                write!(f, "tdisp interface wedged in error state; {op} rejected (reset required)")
            }
        }
    }
}

impl std::error::Error for TdispError {}

/// The TDISP transition function: what `op` does to an interface in
/// `state`. Pure, so tests can enumerate every (state × operation) pair.
///
/// # Errors
///
/// [`TdispError`] for every illegal pair; the error variant distinguishes
/// wedged interfaces and misrouted private DMA from ordinary ordering
/// violations.
pub fn transition(state: TdispState, op: TdispOp) -> Result<TdispState, TdispError> {
    use TdispOp as O;
    use TdispState as S;
    match (state, op) {
        // A fault wedges the interface from anywhere (Error stays Error).
        (_, O::Fault) => Ok(S::Error),
        // Error accepts only Reset.
        (S::Error, O::Reset) => Ok(S::Unlocked),
        (S::Error, O::DmaPrivate) => Err(TdispError::DmaNotPermitted { state }),
        (S::Error, op) => Err(TdispError::Wedged { op }),
        // The happy path.
        (S::Unlocked, O::Lock) => Ok(S::Locked),
        (S::Locked, O::AcceptAttestation) => Ok(S::Attested),
        (S::Attested, O::Start) => Ok(S::Run),
        // Reports are retrievable once the config is frozen.
        (S::Locked | S::Attested | S::Run, O::GetReport) => Ok(state),
        // Private DMA only once running.
        (S::Run, O::DmaPrivate) => Ok(S::Run),
        (S::Unlocked | S::Locked | S::Attested, O::DmaPrivate) => {
            Err(TdispError::DmaNotPermitted { state })
        }
        // Teardown from any locked-or-later state.
        (S::Locked | S::Attested | S::Run, O::Stop) => Ok(S::Unlocked),
        (state, op) => Err(TdispError::InvalidTransition { state, op }),
    }
}

/// A stateful TDISP interface: the transition function plus the current
/// state. Errors leave the state unchanged (the device rejects the
/// request); only an explicit [`TdispOp::Fault`] wedges the interface.
///
/// # Example
///
/// ```
/// use confbench_devio::{TdispInterface, TdispOp, TdispState};
///
/// let mut iface = TdispInterface::new();
/// iface.apply(TdispOp::Lock).unwrap();
/// iface.apply(TdispOp::AcceptAttestation).unwrap();
/// iface.apply(TdispOp::Start).unwrap();
/// assert_eq!(iface.state(), TdispState::Run);
/// assert!(iface.apply(TdispOp::Lock).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TdispInterface {
    state: TdispState,
}

impl TdispInterface {
    /// A fresh interface in `Unlocked`.
    pub fn new() -> Self {
        TdispInterface { state: TdispState::Unlocked }
    }

    /// The current state.
    pub fn state(&self) -> TdispState {
        self.state
    }

    /// Applies `op`, updating the state on success.
    ///
    /// # Errors
    ///
    /// As [`transition`]; the state is unchanged on error.
    pub fn apply(&mut self, op: TdispOp) -> Result<TdispState, TdispError> {
        let next = transition(self.state, op)?;
        self.state = next;
        Ok(next)
    }

    /// Checks whether `op` would be legal without applying it.
    ///
    /// # Errors
    ///
    /// As [`transition`].
    pub fn check(&self, op: TdispOp) -> Result<TdispState, TdispError> {
        transition(self.state, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// What each (state, operation) pair must produce. `Ok` carries the
    /// next state; `Err` carries the expected typed error. Written out
    /// literally — independently of the `transition` match — so a rule
    /// change must be made twice to pass.
    fn expected(state: TdispState, op: TdispOp) -> Result<TdispState, TdispError> {
        use TdispOp as O;
        use TdispState as S;
        let invalid = Err(TdispError::InvalidTransition { state, op });
        let no_dma = Err(TdispError::DmaNotPermitted { state });
        let wedged = Err(TdispError::Wedged { op });
        match state {
            S::Unlocked => match op {
                O::Lock => Ok(S::Locked),
                O::Fault => Ok(S::Error),
                O::DmaPrivate => no_dma,
                O::GetReport | O::AcceptAttestation | O::Start | O::Stop | O::Reset => invalid,
            },
            S::Locked => match op {
                O::AcceptAttestation => Ok(S::Attested),
                O::GetReport => Ok(S::Locked),
                O::Stop => Ok(S::Unlocked),
                O::Fault => Ok(S::Error),
                O::DmaPrivate => no_dma,
                O::Lock | O::Start | O::Reset => invalid,
            },
            S::Attested => match op {
                O::Start => Ok(S::Run),
                O::GetReport => Ok(S::Attested),
                O::Stop => Ok(S::Unlocked),
                O::Fault => Ok(S::Error),
                O::DmaPrivate => no_dma,
                O::Lock | O::AcceptAttestation | O::Reset => invalid,
            },
            S::Run => match op {
                O::DmaPrivate => Ok(S::Run),
                O::GetReport => Ok(S::Run),
                O::Stop => Ok(S::Unlocked),
                O::Fault => Ok(S::Error),
                O::Lock | O::AcceptAttestation | O::Start | O::Reset => invalid,
            },
            S::Error => match op {
                O::Reset => Ok(S::Unlocked),
                O::Fault => Ok(S::Error),
                O::DmaPrivate => no_dma,
                O::Lock | O::GetReport | O::AcceptAttestation | O::Start | O::Stop => wedged,
            },
        }
    }

    #[test]
    fn every_state_operation_pair_matches_the_table() {
        for state in TdispState::ALL {
            for op in TdispOp::ALL {
                assert_eq!(
                    transition(state, op),
                    expected(state, op),
                    "transition({state}, {op}) diverged from the table"
                );
            }
        }
    }

    #[test]
    fn run_before_attested_is_rejected() {
        let mut iface = TdispInterface::new();
        iface.apply(TdispOp::Lock).unwrap();
        assert_eq!(
            iface.apply(TdispOp::Start),
            Err(TdispError::InvalidTransition { state: TdispState::Locked, op: TdispOp::Start })
        );
        assert_eq!(iface.state(), TdispState::Locked, "errors leave state unchanged");
    }

    #[test]
    fn dma_to_private_while_unlocked_is_a_typed_error() {
        let iface = TdispInterface::new();
        assert_eq!(
            iface.check(TdispOp::DmaPrivate),
            Err(TdispError::DmaNotPermitted { state: TdispState::Unlocked })
        );
    }

    #[test]
    fn error_state_only_leaves_via_reset() {
        let mut iface = TdispInterface::new();
        iface.apply(TdispOp::Fault).unwrap();
        assert_eq!(iface.state(), TdispState::Error);
        assert_eq!(iface.apply(TdispOp::Lock), Err(TdispError::Wedged { op: TdispOp::Lock }));
        iface.apply(TdispOp::Reset).unwrap();
        assert_eq!(iface.state(), TdispState::Unlocked);
    }

    #[test]
    fn stop_tears_down_from_any_operational_state() {
        for prelude in [
            vec![TdispOp::Lock],
            vec![TdispOp::Lock, TdispOp::AcceptAttestation],
            vec![TdispOp::Lock, TdispOp::AcceptAttestation, TdispOp::Start],
        ] {
            let mut iface = TdispInterface::new();
            for op in prelude {
                iface.apply(op).unwrap();
            }
            iface.apply(TdispOp::Stop).unwrap();
            assert_eq!(iface.state(), TdispState::Unlocked);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TdispState::Attested.as_str(), "attested");
        assert_eq!(TdispOp::DmaPrivate.to_string(), "dma-private");
        let err = TdispError::DmaNotPermitted { state: TdispState::Unlocked };
        assert!(err.to_string().contains("unlocked"));
    }
}

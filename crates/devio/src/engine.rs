//! The GPU-offload execution engine.
//!
//! [`offload_forward`] runs a `tinynn` model "on the device": the actual
//! arithmetic is the very same [`Layer::forward`] code the host path
//! uses — so host-path and device-path tensors are bit-identical by
//! construction — while the *cost* of the run is recorded into the
//! operation trace as device ops: one batched weights+activations DMA
//! upload, one kernel per layer (timed by the device's per-kernel cost
//! model from the layer's multiply-accumulate count), and one result DMA
//! download. Whether those DMAs land directly in private memory or are
//! staged through the swiotlb bounce pool is decided later, by the VM
//! that replays the trace, from the attached device's TDISP state.
//!
//! [`Layer::forward`]: confbench_tinynn::Layer::forward

use confbench_tinynn::{Sequential, Tensor};
use confbench_types::OpTrace;

use crate::device::GpuCostModel;

/// Bytes of learned parameters the model's weights occupy on the wire
/// (f32 each) — the size of the weight DMA upload.
pub fn model_weight_bytes(model: &Sequential) -> u64 {
    4 * model.param_count() as u64
}

/// Runs one forward pass on the modeled device, recording device ops into
/// `trace` and returning the output tensor (bit-identical to
/// `model.forward(input)`).
///
/// # Panics
///
/// Panics when `input` does not match the model's declared input shape
/// (the same contract as [`Sequential::forward`]).
///
/// # Example
///
/// ```
/// use confbench_devio::{offload_forward, GpuCostModel};
/// use confbench_tinynn::{mobilenet, Tensor};
/// use confbench_types::OpTrace;
///
/// let model = mobilenet(32, 2, 10, 7);
/// let input = Tensor::from_fn(&[3, 32, 32], |idx| idx[1] as f32 * 0.01);
/// let mut trace = OpTrace::new();
/// let device = offload_forward(&model, &GpuCostModel::default(), &input, &mut trace);
/// assert_eq!(device.data(), model.forward(&input).data());
/// assert!(trace.total_dev_dma_bytes() > 0);
/// ```
pub fn offload_forward(
    model: &Sequential,
    cost: &GpuCostModel,
    input: &Tensor,
    trace: &mut OpTrace,
) -> Tensor {
    assert_eq!(input.shape(), model.input_shape(), "model input shape");
    // Batched upload: all weights plus the input activations in one DMA.
    let upload = model_weight_bytes(model) + 4 * input.len() as u64;
    trace.dev_dma_in(upload);
    // One kernel per layer, timed from its MAC count.
    let mut shape = model.input_shape().to_vec();
    let mut x = input.clone();
    for layer in model.layers() {
        let macs = layer.flops(&shape);
        shape = layer.output_shape(&shape);
        x = layer.forward(&x);
        trace.dev_kernel(cost.kernel_ns(macs));
    }
    // Download the result.
    trace.dev_dma_out(4 * x.len() as u64);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_tinynn::mobilenet;
    use confbench_types::Op;

    fn input() -> Tensor {
        Tensor::from_fn(&[3, 32, 32], |idx| ((idx[0] + 7 * idx[1] + 3 * idx[2]) % 13) as f32 * 0.1)
    }

    #[test]
    fn device_path_is_bit_identical_to_host_path() {
        let model = mobilenet(32, 4, 10, 11);
        let mut trace = OpTrace::new();
        let device = offload_forward(&model, &GpuCostModel::default(), &input(), &mut trace);
        let host = model.forward(&input());
        assert_eq!(device.shape(), host.shape());
        assert_eq!(device.data(), host.data(), "tensors must match bit for bit");
    }

    #[test]
    fn trace_has_one_kernel_per_layer_and_batched_dma() {
        let model = mobilenet(32, 2, 10, 7);
        let mut trace = OpTrace::new();
        let out = offload_forward(&model, &GpuCostModel::default(), &input(), &mut trace);
        let kernels = trace.iter().filter(|op| matches!(op, Op::DevKernel(_))).count();
        assert_eq!(kernels, model.len());
        let dma_in: Vec<u64> = trace
            .iter()
            .filter_map(|op| match op {
                Op::DevDmaIn(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(dma_in.len(), 1, "weights+activations upload is batched into one DMA");
        assert_eq!(dma_in[0], model_weight_bytes(&model) + 4 * 3 * 32 * 32);
        let dma_out: u64 = trace
            .iter()
            .map(|op| match op {
                Op::DevDmaOut(n) => *n,
                _ => 0,
            })
            .sum();
        assert_eq!(dma_out, 4 * out.len() as u64);
    }

    #[test]
    fn weight_bytes_track_model_parameters() {
        let small = mobilenet(32, 1, 10, 7);
        let large = mobilenet(32, 5, 10, 7);
        assert!(model_weight_bytes(&large) > model_weight_bytes(&small));
        assert_eq!(model_weight_bytes(&small), 4 * small.param_count() as u64);
    }
}

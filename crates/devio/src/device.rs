//! The modeled TEE-IO GPU: identity, TDISP interface and kernel costs.
//!
//! The device is one fixed model (think "cb100"): its firmware digest,
//! interface-config digest and vendor signing key are deterministic
//! constants, so every instance presents the same TCB identity and device
//! re-attestation amortizes across VM rebuilds exactly like CVM
//! attestation does.

use confbench_crypto::{Sha256, SigningKey, VerifyingKey};

use crate::report::{
    MeasurementBlock, MeasurementReport, KIND_CONFIG, KIND_FIRMWARE, KIND_INTERFACE,
};
use crate::tdisp::{TdispError, TdispInterface, TdispOp, TdispState};

/// Seed of the device vendor's signing key (provisioned at manufacture in
/// the model; a constant so verifiers can trust one key).
const VENDOR_KEY_SEED: u64 = 0xCB_61_70_75_31_30_30; // "cb gpu100"

/// Security version number of the modeled GPU firmware.
pub const GPU_FW_SVN: u32 = 7;

/// The vendor signing key embedded in the device.
pub fn vendor_signing_key() -> SigningKey {
    SigningKey::from_seed(VENDOR_KEY_SEED)
}

/// The vendor public key verifiers pin.
pub fn vendor_verifying_key() -> VerifyingKey {
    vendor_signing_key().verifying_key()
}

/// Digest of the GPU firmware image (measurement block 0).
pub fn gpu_firmware_digest() -> [u8; 32] {
    *Sha256::digest(b"confbench.gpu.firmware.v1").as_bytes()
}

/// Digest of the locked TDISP interface configuration (block 1).
pub fn gpu_interface_digest() -> [u8; 32] {
    *Sha256::digest(b"confbench.gpu.interface.v1").as_bytes()
}

/// Digest of the mutable device configuration / VBIOS (block 2).
pub fn gpu_vbios_digest() -> [u8; 32] {
    *Sha256::digest(b"confbench.gpu.vbios.v1").as_bytes()
}

/// Per-kernel cost model of the modeled GPU, in host nanoseconds (a
/// device runs at wall speed: CPU simulation multipliers like the CCA
/// FVP do not apply to it, mirroring [`Op::DeviceWait`] semantics).
///
/// [`Op::DeviceWait`]: confbench_types::Op::DeviceWait
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCostModel {
    /// Fixed cost of launching one kernel (submission, scheduling,
    /// completion interrupt).
    pub kernel_launch_ns: f64,
    /// Marginal cost per multiply-accumulate.
    pub mac_ns: f64,
}

impl Default for GpuCostModel {
    fn default() -> Self {
        // A small inference accelerator: ~4 µs per launch, 2 TMAC/s
        // effective throughput.
        GpuCostModel { kernel_launch_ns: 4_000.0, mac_ns: 0.0005 }
    }
}

impl GpuCostModel {
    /// Nanoseconds one kernel of `macs` multiply-accumulates takes.
    pub fn kernel_ns(&self, macs: u64) -> u64 {
        (self.kernel_launch_ns + macs as f64 * self.mac_ns).round() as u64
    }
}

/// The modeled confidential GPU: a TDISP interface plus kernel costs.
///
/// # Example
///
/// ```
/// use confbench_devio::{GpuDevice, TdispState};
///
/// let mut gpu = GpuDevice::new();
/// gpu.lock().unwrap();
/// let report = gpu.measurement_report([7; 32]).unwrap();
/// report.verify(&confbench_devio::vendor_verifying_key()).unwrap();
/// gpu.accept_attestation().unwrap();
/// gpu.start().unwrap();
/// assert_eq!(gpu.state(), TdispState::Run);
/// assert!(gpu.direct_dma_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GpuDevice {
    tdisp: TdispInterface,
    cost: GpuCostModel,
}

impl GpuDevice {
    /// A fresh device with an unlocked interface.
    pub fn new() -> Self {
        GpuDevice::default()
    }

    /// Current TDISP state.
    pub fn state(&self) -> TdispState {
        self.tdisp.state()
    }

    /// The per-kernel cost model.
    pub fn cost(&self) -> &GpuCostModel {
        &self.cost
    }

    /// `LOCK_INTERFACE_REQUEST`: freeze the interface config.
    ///
    /// # Errors
    ///
    /// [`TdispError`] when the interface is not `Unlocked`.
    pub fn lock(&mut self) -> Result<(), TdispError> {
        self.tdisp.apply(TdispOp::Lock).map(|_| ())
    }

    /// Returns the signed measurement report, echoing `nonce`.
    ///
    /// # Errors
    ///
    /// [`TdispError`] when the interface config is not locked yet (an
    /// unlocked config could still be changed after measurement).
    pub fn measurement_report(&self, nonce: [u8; 32]) -> Result<MeasurementReport, TdispError> {
        self.tdisp.check(TdispOp::GetReport)?;
        let blocks = vec![
            MeasurementBlock { index: 0, kind: KIND_FIRMWARE, digest: gpu_firmware_digest() },
            MeasurementBlock { index: 1, kind: KIND_INTERFACE, digest: gpu_interface_digest() },
            MeasurementBlock { index: 2, kind: KIND_CONFIG, digest: gpu_vbios_digest() },
        ];
        Ok(MeasurementReport::sign(GPU_FW_SVN, blocks, nonce, &vendor_signing_key()))
    }

    /// Marks the report verified (host-side policy decision).
    ///
    /// # Errors
    ///
    /// [`TdispError`] when the interface is not `Locked`.
    pub fn accept_attestation(&mut self) -> Result<(), TdispError> {
        self.tdisp.apply(TdispOp::AcceptAttestation).map(|_| ())
    }

    /// `START_INTERFACE_REQUEST`: enable direct DMA.
    ///
    /// # Errors
    ///
    /// [`TdispError`] when the interface is not `Attested`.
    pub fn start(&mut self) -> Result<(), TdispError> {
        self.tdisp.apply(TdispOp::Start).map(|_| ())
    }

    /// `STOP_INTERFACE_REQUEST`: tear down to `Unlocked`.
    ///
    /// # Errors
    ///
    /// [`TdispError`] when the interface is already `Unlocked` or wedged.
    pub fn stop(&mut self) -> Result<(), TdispError> {
        self.tdisp.apply(TdispOp::Stop).map(|_| ())
    }

    /// Wedges the interface (fault injection / protocol violation).
    pub fn fault(&mut self) {
        let _ = self.tdisp.apply(TdispOp::Fault);
    }

    /// Function-level reset out of the `Error` state.
    ///
    /// # Errors
    ///
    /// [`TdispError`] when the interface is not wedged.
    pub fn reset(&mut self) -> Result<(), TdispError> {
        self.tdisp.apply(TdispOp::Reset).map(|_| ())
    }

    /// Whether DMA may target private memory directly (TDISP `Run`).
    pub fn direct_dma_enabled(&self) -> bool {
        self.tdisp.check(TdispOp::DmaPrivate).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_requires_a_locked_interface() {
        let gpu = GpuDevice::new();
        assert!(gpu.measurement_report([0; 32]).is_err());
        let mut gpu = GpuDevice::new();
        gpu.lock().unwrap();
        let report = gpu.measurement_report([3; 32]).unwrap();
        assert_eq!(report.fw_svn, GPU_FW_SVN);
        assert_eq!(report.fw_digest(), Some(gpu_firmware_digest()));
        assert_eq!(report.interface_digest(), Some(gpu_interface_digest()));
        report.verify(&vendor_verifying_key()).unwrap();
    }

    #[test]
    fn direct_dma_only_after_full_bringup() {
        let mut gpu = GpuDevice::new();
        assert!(!gpu.direct_dma_enabled());
        gpu.lock().unwrap();
        assert!(!gpu.direct_dma_enabled());
        gpu.accept_attestation().unwrap();
        assert!(!gpu.direct_dma_enabled());
        gpu.start().unwrap();
        assert!(gpu.direct_dma_enabled());
        gpu.stop().unwrap();
        assert!(!gpu.direct_dma_enabled());
    }

    #[test]
    fn fault_wedges_until_reset() {
        let mut gpu = GpuDevice::new();
        gpu.lock().unwrap();
        gpu.fault();
        assert_eq!(gpu.state(), TdispState::Error);
        assert!(gpu.lock().is_err());
        gpu.reset().unwrap();
        gpu.lock().unwrap();
    }

    #[test]
    fn kernel_cost_scales_with_macs() {
        let cost = GpuCostModel::default();
        assert!(cost.kernel_ns(1_000_000) > cost.kernel_ns(0));
        assert_eq!(cost.kernel_ns(0), cost.kernel_launch_ns as u64);
    }
}

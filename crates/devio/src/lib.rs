//! Confidential device I/O: a modeled TDISP/TEE-IO accelerator.
//!
//! The paper's TDX I/O overhead is a consequence of the swiotlb bounce
//! path: every DMA into a confidential VM must be staged through shared
//! memory. TEE-IO (TDX Connect / SEV-TIO) removes that tax by attesting
//! the device itself and then letting it DMA directly into private
//! memory. This crate models that future:
//!
//! * [`tdisp`] — the TDISP device-interface lifecycle as an explicit state
//!   machine (`Unlocked → Locked → Attested → Run`, with `Error` and
//!   teardown edges) returning typed errors for every illegal transition;
//! * [`report`] — SPDM-style signed device measurement reports with a
//!   strict binary codec (truncation, duplicated fields and bit flips all
//!   decode to clean errors, never panics);
//! * [`device`] — the modeled GPU: a TDISP interface plus a per-kernel
//!   cost model;
//! * [`engine`] — the GPU-offload execution engine that runs `tinynn`
//!   models on the device, recording batched DMA and per-kernel timing
//!   into an [`OpTrace`](confbench_types::OpTrace) while producing
//!   tensors bit-identical to the host path.
//!
//! Path selection (direct-to-private DMA vs swiotlb bounce) is *not*
//! decided here: the VM in `confbench-vmm` consults the attached device's
//! TDISP state when it replays `DevDma*` ops, so one trace measures both
//! worlds. Device attestation policy and the verification cache live in
//! `confbench-attest`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod engine;
pub mod report;
pub mod tdisp;

pub use device::{
    gpu_firmware_digest, gpu_interface_digest, gpu_vbios_digest, vendor_signing_key,
    vendor_verifying_key, GpuCostModel, GpuDevice, GPU_FW_SVN,
};
pub use engine::{model_weight_bytes, offload_forward};
pub use report::{
    MeasurementBlock, MeasurementReport, ReportError, KIND_CONFIG, KIND_FIRMWARE, KIND_INTERFACE,
    MAX_MEASUREMENT_BLOCKS, REPORT_MAGIC, REPORT_VERSION,
};
pub use tdisp::{transition, TdispError, TdispInterface, TdispOp, TdispState};

//! SPDM-style signed device measurement reports.
//!
//! A device proves what firmware and interface configuration it is
//! running by returning a signed table of measurement blocks (SPDM
//! `GET_MEASUREMENTS` semantics). The codec here is deliberately strict:
//! every structural defect — truncation, duplicated blocks, trailing
//! bytes, version skew — decodes to a typed [`ReportError`], and content
//! corruption that survives the structural checks is caught by the
//! signature. Decoding never panics on any input.
//!
//! Wire layout (big-endian):
//!
//! ```text
//! magic "SPDM" (4) | version (2) | fw_svn (4) | block_count (1)
//! | blocks: { index (1) | kind (1) | digest (32) } × count
//! | nonce (32) | signature (16)
//! ```

use std::fmt;

use confbench_crypto::{Signature, SigningKey, VerifyingKey};

/// Report magic bytes.
pub const REPORT_MAGIC: [u8; 4] = *b"SPDM";
/// Supported report version.
pub const REPORT_VERSION: u16 = 0x0110;
/// Upper bound on measurement blocks per report.
pub const MAX_MEASUREMENT_BLOCKS: usize = 16;

/// Measurement kind: immutable device firmware.
pub const KIND_FIRMWARE: u8 = 0x01;
/// Measurement kind: the locked TDISP interface configuration.
pub const KIND_INTERFACE: u8 = 0x02;
/// Measurement kind: mutable configuration (VBIOS, fuses).
pub const KIND_CONFIG: u8 = 0x03;

/// Block index carrying the firmware measurement.
pub(crate) const FIRMWARE_INDEX: u8 = 0;
/// Block index carrying the interface-config measurement.
pub(crate) const INTERFACE_INDEX: u8 = 1;

const BLOCK_BYTES: usize = 1 + 1 + 32;
const HEADER_BYTES: usize = 4 + 2 + 4 + 1;
const NONCE_BYTES: usize = 32;
const SIGNATURE_BYTES: usize = 16;

/// One measurement block: an indexed digest of some device component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementBlock {
    /// Block index (unique within a report; index 0 is firmware, 1 the
    /// interface config).
    pub index: u8,
    /// What was measured ([`KIND_FIRMWARE`], [`KIND_INTERFACE`], ...).
    pub kind: u8,
    /// SHA-256 of the measured component.
    pub digest: [u8; 32],
}

/// A signed device measurement report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementReport {
    /// Security version number of the device firmware.
    pub fw_svn: u32,
    /// Measurement blocks, as returned by the device.
    pub blocks: Vec<MeasurementBlock>,
    /// Verifier-supplied freshness nonce echoed by the device.
    pub nonce: [u8; 32],
    /// Vendor signature over everything above.
    pub signature: Signature,
}

/// Typed decode/verify failure. Every malformed input maps to exactly one
/// of these; none of them panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportError {
    /// The input ends before the structure it promises.
    Truncated {
        /// Bytes the structure requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The magic bytes are not `"SPDM"`.
    BadMagic([u8; 4]),
    /// The version field is not [`REPORT_VERSION`].
    UnsupportedVersion(u16),
    /// The block count exceeds [`MAX_MEASUREMENT_BLOCKS`].
    TooManyBlocks(usize),
    /// Two blocks share an index (a duplicated field).
    DuplicateBlock(u8),
    /// A required block (firmware or interface config) is absent.
    MissingBlock(u8),
    /// Bytes remain after the signature (an appended/duplicated field).
    TrailingBytes(usize),
    /// The vendor signature does not verify over the body.
    BadSignature,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Truncated { needed, got } => {
                write!(f, "report truncated: needs {needed} bytes, got {got}")
            }
            ReportError::BadMagic(m) => write!(f, "bad report magic {m:02x?}"),
            ReportError::UnsupportedVersion(v) => {
                write!(f, "unsupported report version {v:#06x} (expected {REPORT_VERSION:#06x})")
            }
            ReportError::TooManyBlocks(n) => {
                write!(f, "{n} measurement blocks exceeds the limit {MAX_MEASUREMENT_BLOCKS}")
            }
            ReportError::DuplicateBlock(i) => write!(f, "duplicate measurement block index {i}"),
            ReportError::MissingBlock(i) => write!(f, "required measurement block {i} missing"),
            ReportError::TrailingBytes(n) => write!(f, "{n} trailing bytes after signature"),
            ReportError::BadSignature => write!(f, "vendor signature does not verify"),
        }
    }
}

impl std::error::Error for ReportError {}

fn body_bytes(fw_svn: u32, blocks: &[MeasurementBlock], nonce: &[u8; 32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + blocks.len() * BLOCK_BYTES + NONCE_BYTES);
    out.extend_from_slice(&REPORT_MAGIC);
    out.extend_from_slice(&REPORT_VERSION.to_be_bytes());
    out.extend_from_slice(&fw_svn.to_be_bytes());
    out.push(blocks.len() as u8);
    for block in blocks {
        out.push(block.index);
        out.push(block.kind);
        out.extend_from_slice(&block.digest);
    }
    out.extend_from_slice(nonce);
    out
}

impl MeasurementReport {
    /// Builds and signs a report with the vendor key.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_MEASUREMENT_BLOCKS`] blocks are given
    /// (a device never produces that; the *decoder* errors instead).
    pub fn sign(
        fw_svn: u32,
        blocks: Vec<MeasurementBlock>,
        nonce: [u8; 32],
        key: &SigningKey,
    ) -> Self {
        assert!(blocks.len() <= MAX_MEASUREMENT_BLOCKS, "too many measurement blocks");
        let signature = key.sign(&body_bytes(fw_svn, &blocks, &nonce));
        MeasurementReport { fw_svn, blocks, nonce, signature }
    }

    /// Serializes the report to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = body_bytes(self.fw_svn, &self.blocks, &self.nonce);
        out.extend_from_slice(&self.signature.to_bytes());
        out
    }

    /// Parses a report from wire bytes, enforcing structure (not the
    /// signature — call [`verify`](Self::verify) with the vendor key).
    ///
    /// # Errors
    ///
    /// A [`ReportError`] describing the first structural defect found.
    pub fn decode(bytes: &[u8]) -> Result<Self, ReportError> {
        let min = HEADER_BYTES + NONCE_BYTES + SIGNATURE_BYTES;
        if bytes.len() < min {
            return Err(ReportError::Truncated { needed: min, got: bytes.len() });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&bytes[0..4]);
        if magic != REPORT_MAGIC {
            return Err(ReportError::BadMagic(magic));
        }
        let version = u16::from_be_bytes([bytes[4], bytes[5]]);
        if version != REPORT_VERSION {
            return Err(ReportError::UnsupportedVersion(version));
        }
        let fw_svn = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
        let count = bytes[10] as usize;
        if count > MAX_MEASUREMENT_BLOCKS {
            return Err(ReportError::TooManyBlocks(count));
        }
        let total = HEADER_BYTES + count * BLOCK_BYTES + NONCE_BYTES + SIGNATURE_BYTES;
        if bytes.len() < total {
            return Err(ReportError::Truncated { needed: total, got: bytes.len() });
        }
        if bytes.len() > total {
            return Err(ReportError::TrailingBytes(bytes.len() - total));
        }
        let mut blocks = Vec::with_capacity(count);
        let mut cursor = HEADER_BYTES;
        for _ in 0..count {
            let index = bytes[cursor];
            let kind = bytes[cursor + 1];
            let mut digest = [0u8; 32];
            digest.copy_from_slice(&bytes[cursor + 2..cursor + BLOCK_BYTES]);
            if blocks.iter().any(|b: &MeasurementBlock| b.index == index) {
                return Err(ReportError::DuplicateBlock(index));
            }
            blocks.push(MeasurementBlock { index, kind, digest });
            cursor += BLOCK_BYTES;
        }
        for required in [FIRMWARE_INDEX, INTERFACE_INDEX] {
            if !blocks.iter().any(|b| b.index == required) {
                return Err(ReportError::MissingBlock(required));
            }
        }
        let mut nonce = [0u8; 32];
        nonce.copy_from_slice(&bytes[cursor..cursor + NONCE_BYTES]);
        cursor += NONCE_BYTES;
        let mut sig = [0u8; 16];
        sig.copy_from_slice(&bytes[cursor..cursor + SIGNATURE_BYTES]);
        Ok(MeasurementReport { fw_svn, blocks, nonce, signature: Signature::from_bytes(sig) })
    }

    /// Verifies the vendor signature over the report body.
    ///
    /// # Errors
    ///
    /// [`ReportError::BadSignature`] when the signature does not verify.
    pub fn verify(&self, key: &VerifyingKey) -> Result<(), ReportError> {
        key.verify(&body_bytes(self.fw_svn, &self.blocks, &self.nonce), &self.signature)
            .map_err(|_| ReportError::BadSignature)
    }

    /// The block at `index`, if present.
    pub fn block(&self, index: u8) -> Option<&MeasurementBlock> {
        self.blocks.iter().find(|b| b.index == index)
    }

    /// The firmware measurement (block 0).
    pub fn fw_digest(&self) -> Option<[u8; 32]> {
        self.block(FIRMWARE_INDEX).map(|b| b.digest)
    }

    /// The locked interface-config measurement (block 1).
    pub fn interface_digest(&self) -> Option<[u8; 32]> {
        self.block(INTERFACE_INDEX).map(|b| b.digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_crypto::SplitMix64;

    fn sample(nonce_seed: u8) -> MeasurementReport {
        let key = crate::device::vendor_signing_key();
        let blocks = vec![
            MeasurementBlock { index: 0, kind: KIND_FIRMWARE, digest: [0xAA; 32] },
            MeasurementBlock { index: 1, kind: KIND_INTERFACE, digest: [0xBB; 32] },
            MeasurementBlock { index: 2, kind: KIND_CONFIG, digest: [0xCC; 32] },
        ];
        MeasurementReport::sign(7, blocks, [nonce_seed; 32], &key)
    }

    #[test]
    fn roundtrip_and_signature_verify() {
        let report = sample(9);
        let bytes = report.encode();
        let back = MeasurementReport::decode(&bytes).unwrap();
        assert_eq!(back, report);
        back.verify(&crate::device::vendor_verifying_key()).unwrap();
        assert_eq!(back.fw_digest(), Some([0xAA; 32]));
        assert_eq!(back.interface_digest(), Some([0xBB; 32]));
    }

    #[test]
    fn structural_defects_decode_to_typed_errors() {
        let bytes = sample(1).encode();
        // Magic.
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(MeasurementReport::decode(&b), Err(ReportError::BadMagic(_))));
        // Version.
        let mut b = bytes.clone();
        b[4] = 0x7F;
        assert!(matches!(MeasurementReport::decode(&b), Err(ReportError::UnsupportedVersion(_))));
        // Block count claims more than present.
        let mut b = bytes.clone();
        b[10] = 12;
        assert!(matches!(MeasurementReport::decode(&b), Err(ReportError::Truncated { .. })));
        // Block count over the limit.
        let mut b = bytes.clone();
        b[10] = 200;
        assert!(matches!(MeasurementReport::decode(&b), Err(ReportError::TooManyBlocks(200))));
        // Appended duplicate block without bumping the count: trailing.
        let mut b = bytes.clone();
        let dup: Vec<u8> = b[HEADER_BYTES..HEADER_BYTES + BLOCK_BYTES].to_vec();
        b.extend_from_slice(&dup);
        assert!(matches!(
            MeasurementReport::decode(&b),
            Err(ReportError::TrailingBytes(BLOCK_BYTES))
        ));
        // Duplicated index with the count bumped.
        let key = crate::device::vendor_signing_key();
        let dup_blocks = vec![
            MeasurementBlock { index: 0, kind: KIND_FIRMWARE, digest: [1; 32] },
            MeasurementBlock { index: 1, kind: KIND_INTERFACE, digest: [2; 32] },
            MeasurementBlock { index: 1, kind: KIND_CONFIG, digest: [3; 32] },
        ];
        let b = MeasurementReport::sign(7, dup_blocks, [0; 32], &key).encode();
        assert_eq!(MeasurementReport::decode(&b), Err(ReportError::DuplicateBlock(1)));
        // Missing required interface block.
        let only_fw = vec![MeasurementBlock { index: 0, kind: KIND_FIRMWARE, digest: [1; 32] }];
        let b = MeasurementReport::sign(7, only_fw, [0; 32], &key).encode();
        assert_eq!(MeasurementReport::decode(&b), Err(ReportError::MissingBlock(INTERFACE_INDEX)));
    }

    /// Satellite: deterministic structure-aware fuzz sweep. Truncations,
    /// duplicated fields and bit flips must all produce clean errors from
    /// decode + verify — never a panic, never a silently accepted report.
    #[test]
    fn fuzz_sweep_truncate_flip_duplicate() {
        let key = crate::device::vendor_verifying_key();
        let mut rng = SplitMix64::new(0xD3_710);
        let check = |bytes: &[u8]| {
            if let Ok(report) = MeasurementReport::decode(bytes) {
                assert_eq!(
                    report.verify(&key),
                    Err(ReportError::BadSignature),
                    "corrupted report must not verify"
                );
            }
        };
        for round in 0..400u64 {
            let base = sample((round % 251) as u8).encode();
            // Truncation at a random length (including zero).
            let cut = (rng.next_below(base.len() as u64 + 1)) as usize;
            if cut < base.len() {
                assert!(MeasurementReport::decode(&base[..cut]).is_err(), "cut at {cut}");
            }
            // Single bit flip anywhere.
            let mut flipped = base.clone();
            let bit = rng.next_below((base.len() * 8) as u64) as usize;
            flipped[bit / 8] ^= 1 << (bit % 8);
            check(&flipped);
            // Duplicated field: splice a random block's bytes back in.
            let mut dup = base.clone();
            let block = rng.next_below(3) as usize;
            let start = HEADER_BYTES + block * BLOCK_BYTES;
            let slice: Vec<u8> = dup[start..start + BLOCK_BYTES].to_vec();
            let at = HEADER_BYTES + (rng.next_below(3) as usize) * BLOCK_BYTES;
            for (i, byte) in slice.iter().enumerate() {
                dup.insert(at + i, *byte);
            }
            assert!(MeasurementReport::decode(&dup).is_err(), "duplicated block accepted");
        }
    }
}

//! Differential tests: for every one of the 25 FaaS workloads, the CBScript
//! implementation (interpreted, JIT-ed, and bytecode-compiled) and the
//! native twin must produce identical outputs. This is what makes the
//! paper's cross-language comparison meaningful — "a common output across
//! the diverse languages" (§IV-B).

use confbench_faasrt::{FaasFunction, FunctionLauncher};
use confbench_types::Language;
use confbench_workloads::faas_registry;

/// Small arguments so the full matrix stays fast in CI.
fn quick_args(name: &str) -> Vec<String> {
    let args: &[&str] = match name {
        "cpustress" => &["4000"],
        "memstress" => &["4"],
        "iostress" => &["2"],
        "logging" => &["50"],
        "factors" => &["360360"],
        "filesystem" => &["1"],
        "ack" => &["3", "12"],
        "fib" => &["12"],
        "primes" => &["2000"],
        "matrix" => &["10"],
        "quicksort" => &["400"],
        "mergesort" => &["400"],
        "base64" => &["900"],
        "json" => &["30"],
        "checksum" => &["2000"],
        "compress" => &["2000"],
        "mandelbrot" => &["16"],
        "nbody" => &["120"],
        "binarytrees" => &["8"],
        "spectralnorm" => &["16", "2"],
        "dijkstra" => &["8"],
        "wordcount" => &["2000"],
        "histogram" => &["2000"],
        "montecarlo" => &["2000"],
        "strings" => &["300"],
        other => panic!("no quick args for {other}"),
    };
    args.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn all_languages_agree_on_every_workload() {
    for workload in faas_registry() {
        let args = quick_args(workload.name());
        let mut outputs = Vec::new();
        for language in Language::ALL {
            let out = FunctionLauncher::new(language)
                .launch(&workload, &args)
                .unwrap_or_else(|e| panic!("{} under {language}: {e}", workload.name()));
            assert!(!out.output.is_empty(), "{} under {language}: empty output", workload.name());
            outputs.push((language, out.output));
        }
        let reference = &outputs[0].1;
        for (language, output) in &outputs {
            assert_eq!(
                output,
                reference,
                "{}: {language} diverged from {}",
                workload.name(),
                outputs[0].0
            );
        }
    }
}

#[test]
fn quicksort_and_mergesort_agree_on_checksum() {
    // Same data, same checksum — two algorithms, one answer.
    let qs = confbench_workloads::find_workload("quicksort").unwrap();
    let ms = confbench_workloads::find_workload("mergesort").unwrap();
    let go = FunctionLauncher::new(Language::Go);
    let a = go.launch(&qs, &["1500".into()]).unwrap().output;
    let b = go.launch(&ms, &["1500".into()]).unwrap().output;
    assert_eq!(a, b);
}

#[test]
fn logging_produces_log_lines_in_script_paths() {
    let logging = confbench_workloads::find_workload("logging").unwrap();
    let out = FunctionLauncher::new(Language::Lua).launch(&logging, &["10".into()]).unwrap();
    assert_eq!(out.log.lines().count(), 10);
    assert_eq!(out.output, "10");
}

#[test]
fn traces_reflect_workload_character() {
    let go = FunctionLauncher::new(Language::Go);
    let io =
        go.launch(&confbench_workloads::find_workload("iostress").unwrap(), &["4".into()]).unwrap();
    let cpu = go
        .launch(&confbench_workloads::find_workload("cpustress").unwrap(), &["20000".into()])
        .unwrap();
    assert!(io.trace.total_io_bytes() >= 8 << 20, "iostress moves megabytes");
    assert_eq!(cpu.trace.total_io_bytes(), 0, "cpustress does no I/O");
    assert!(cpu.trace.total_cpu_ops() > io.trace.total_cpu_ops());
}

#[test]
fn default_args_run_everywhere_natively() {
    // The figure-sized arguments must at least run on the native path.
    let go = FunctionLauncher::new(Language::Go);
    for workload in faas_registry() {
        let out = go
            .launch(&workload, &workload.default_args())
            .unwrap_or_else(|e| panic!("{} default args: {e}", workload.name()));
        assert!(!out.output.is_empty());
    }
}

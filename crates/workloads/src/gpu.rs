//! The gpu-inference workload: MobileNet classification offloaded to the
//! modeled confidential accelerator.
//!
//! The host path and the device path run *the same arithmetic* (the device
//! engine calls the same layer kernels), so predictions and probability
//! tensors are bit-identical; what differs is the recorded operation
//! trace. The host path charges the forward pass as guest float/memory
//! work; the device path records one batched weights+activations DMA
//! upload, one device kernel per layer, and a result DMA download — and
//! whether those DMAs go direct-to-private or through the swiotlb bounce
//! pool is decided by the VM that replays the trace, from its attached
//! device's TDISP state. One workload, both worlds.

use confbench_devio::{model_weight_bytes, offload_forward, GpuCostModel};
use confbench_tinynn::{dataset_image, mobilenet, Sequential, Tensor, DATASET_SIZE};
use confbench_types::{OpTrace, SyscallKind};

use crate::classic::InferenceRun;

/// The gpu-inference workload: the ML model of [`MlWorkload`], with the
/// forward pass offloaded to the modeled TDISP GPU.
///
/// [`MlWorkload`]: crate::MlWorkload
///
/// # Example
///
/// ```
/// use confbench_workloads::GpuInferenceWorkload;
///
/// let gpu = GpuInferenceWorkload::new(7);
/// let host = gpu.classify_host(0);
/// let dev = gpu.classify_device(0);
/// assert_eq!(host.class, dev.class, "same arithmetic, same prediction");
/// assert!(dev.trace.total_dev_dma_bytes() > 0);
/// assert_eq!(host.trace.total_dev_dma_bytes(), 0);
/// ```
pub struct GpuInferenceWorkload {
    model: Sequential,
    cost: GpuCostModel,
    seed: u64,
}

impl GpuInferenceWorkload {
    /// Input resolution fed to the model (matches `MlWorkload`).
    pub const INPUT_DIM: usize = 64;

    /// Builds the model with deterministic weights.
    pub fn new(seed: u64) -> Self {
        GpuInferenceWorkload {
            model: mobilenet(Self::INPUT_DIM, 6, 10, seed),
            cost: GpuCostModel::default(),
            seed,
        }
    }

    /// Number of images in the dataset.
    pub fn dataset_size(&self) -> usize {
        DATASET_SIZE
    }

    /// Bytes of model weights the device path uploads.
    pub fn weight_bytes(&self) -> u64 {
        model_weight_bytes(&self.model)
    }

    /// Image load + decode, shared by both paths: returns the input tensor
    /// with the load recorded into `trace`.
    fn load_input(&self, index: usize, trace: &mut OpTrace) -> Tensor {
        let image = dataset_image(index, self.seed);
        trace.syscall(SyscallKind::FileMeta, 1);
        trace.syscall(SyscallKind::FileRead, 1);
        trace.io_read(image.byte_len() as u64);
        trace.alloc(image.byte_len() as u64);
        let input = image.to_input(Self::INPUT_DIM);
        trace.mem_read(image.byte_len() as u64);
        trace.cpu(image.byte_len() as u64 / 2);
        input
    }

    /// Forward pass on the host CPU, returning the probability tensor.
    pub fn forward_host(&self, index: usize, trace: &mut OpTrace) -> Tensor {
        let input = self.load_input(index, trace);
        let cost = self.model.cost();
        let probs = self.model.forward(&input);
        trace.float(cost.flops * 2);
        trace.alloc(cost.activation_bytes);
        trace.mem_write(cost.activation_bytes);
        trace.mem_read(cost.activation_bytes);
        trace.free(cost.activation_bytes);
        probs
    }

    /// Forward pass offloaded to the device, returning the probability
    /// tensor (bit-identical to [`GpuInferenceWorkload::forward_host`]).
    pub fn forward_device(&self, index: usize, trace: &mut OpTrace) -> Tensor {
        let input = self.load_input(index, trace);
        offload_forward(&self.model, &self.cost, &input, trace)
    }

    /// Classifies dataset image `index` on the host CPU.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of dataset range.
    pub fn classify_host(&self, index: usize) -> InferenceRun {
        let mut trace = OpTrace::new();
        let probs = self.forward_host(index, &mut trace);
        InferenceRun { image_index: index, class: probs.argmax(), trace }
    }

    /// Classifies dataset image `index` on the device.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of dataset range.
    pub fn classify_device(&self, index: usize) -> InferenceRun {
        let mut trace = OpTrace::new();
        let probs = self.forward_device(index, &mut trace);
        InferenceRun { image_index: index, class: probs.argmax(), trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::Op;

    #[test]
    fn host_and_device_paths_are_bit_identical() {
        let gpu = GpuInferenceWorkload::new(3);
        for index in [0, 7, 19] {
            let mut ht = OpTrace::new();
            let mut dt = OpTrace::new();
            let host = gpu.forward_host(index, &mut ht);
            let dev = gpu.forward_device(index, &mut dt);
            assert_eq!(host.data(), dev.data(), "image {index}: tensors must match bit for bit");
        }
    }

    #[test]
    fn device_trace_records_dma_and_kernels() {
        let gpu = GpuInferenceWorkload::new(3);
        let run = gpu.classify_device(1);
        assert!(run.trace.total_dev_dma_bytes() > gpu.weight_bytes());
        let kernels = run.trace.iter().filter(|op| matches!(op, Op::DevKernel(_))).count();
        assert!(kernels > 0, "each layer launches a kernel");
        // The device path must not also charge the host float work.
        assert_eq!(run.trace.total_float_ops(), 0);
    }

    #[test]
    fn matches_ml_workload_predictions() {
        // Same model constructor, same seed: gpu-inference is the ML
        // workload with a different execution substrate.
        let gpu = GpuInferenceWorkload::new(7);
        let ml = crate::MlWorkload::new(7);
        for index in 0..4 {
            assert_eq!(gpu.classify_host(index).class, ml.classify(index).class);
        }
    }

    #[test]
    fn determinism_across_instances() {
        let a = GpuInferenceWorkload::new(11).classify_device(5);
        let b = GpuInferenceWorkload::new(11).classify_device(5);
        assert_eq!(a.class, b.class);
        assert_eq!(a.trace, b.trace);
    }
}

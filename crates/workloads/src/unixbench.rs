//! The byte-UnixBench-style OS microbenchmark suite (paper §IV-C, Fig. 4).
//!
//! UnixBench runs a series of low-level system tests and reports each as an
//! index score against a reference machine (a SPARCstation 20-61 running
//! Solaris 2.3); the aggregate is the geometric mean of the per-test
//! indexes. We mirror the single-threaded configuration's test list. Each
//! test does real (logical) work and returns the trace a VM executes; the
//! bench harness converts measured virtual time into index scores with
//! [`index_score`] and [`aggregate_index`].

use confbench_types::{OpTrace, SyscallKind};

/// One UnixBench-style test: its trace plus index bookkeeping.
#[derive(Debug, Clone)]
pub struct UnixBenchTest {
    /// Test name, matching UnixBench's vocabulary.
    pub name: &'static str,
    /// Work units the trace represents (loops/files/…, for ops-per-second).
    pub units: u64,
    /// The reference machine's ops-per-second for this test (the divisor in
    /// the index formula).
    pub baseline_ops_per_sec: f64,
    /// The operations one run performs.
    pub trace: OpTrace,
}

/// Builds the single-threaded suite at `scale` (1 = figure configuration).
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn unixbench_suite(scale: u64) -> Vec<UnixBenchTest> {
    assert!(scale > 0, "scale must be positive");
    vec![
        dhrystone(scale),
        whetstone(scale),
        syscall_overhead(scale),
        pipe_throughput(scale),
        pipe_context_switching(scale),
        process_creation(scale),
        execl_throughput(scale),
        file_copy(scale, 256, "File Copy 256 bufsize 500 maxblocks"),
        file_copy(scale, 1024, "File Copy 1024 bufsize 2000 maxblocks"),
        file_copy(scale, 4096, "File Copy 4096 bufsize 8000 maxblocks"),
        shell_scripts(scale),
    ]
}

/// Index score for a test that completed in `seconds`:
/// `(units / seconds) / baseline * 10` (UnixBench's convention).
///
/// # Panics
///
/// Panics unless `seconds > 0`.
pub fn index_score(test: &UnixBenchTest, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "elapsed time must be positive");
    (test.units as f64 / seconds) / test.baseline_ops_per_sec * 10.0
}

/// Aggregate system index: geometric mean of per-test indexes.
///
/// # Panics
///
/// Panics if `scores` is empty or any score is non-positive.
pub fn aggregate_index(scores: &[f64]) -> f64 {
    assert!(!scores.is_empty(), "need at least one score");
    assert!(scores.iter().all(|&s| s > 0.0), "scores must be positive");
    let log_sum: f64 = scores.iter().map(|s| s.ln()).sum();
    (log_sum / scores.len() as f64).exp()
}

fn dhrystone(scale: u64) -> UnixBenchTest {
    let loops = 2_000_000 * scale;
    let mut trace = OpTrace::new();
    trace.cpu(loops * 6); // string/record/integer op mix per drystone loop
    trace.mem_read(loops / 8);
    UnixBenchTest {
        name: "Dhrystone 2 using register variables",
        units: loops,
        baseline_ops_per_sec: 116_700.0, // SPARCstation reference lps
        trace,
    }
}

fn whetstone(scale: u64) -> UnixBenchTest {
    let loops = 300_000 * scale;
    let mut trace = OpTrace::new();
    trace.float(loops * 40); // transcendental-heavy
    trace.cpu(loops * 5);
    UnixBenchTest {
        name: "Double-Precision Whetstone",
        units: loops,
        baseline_ops_per_sec: 55_000.0,
        trace,
    }
}

fn syscall_overhead(scale: u64) -> UnixBenchTest {
    let calls = 1_500_000 * scale;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::Other, calls);
    trace.cpu(calls);
    UnixBenchTest {
        name: "System Call Overhead",
        units: calls,
        baseline_ops_per_sec: 15_000.0,
        trace,
    }
}

fn pipe_throughput(scale: u64) -> UnixBenchTest {
    let writes = 500_000 * scale;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::Pipe, writes * 2); // write + read
    trace.mem_write(writes * 512);
    trace.cpu(writes * 4);
    UnixBenchTest { name: "Pipe Throughput", units: writes, baseline_ops_per_sec: 12_440.0, trace }
}

fn pipe_context_switching(scale: u64) -> UnixBenchTest {
    let switches = 120_000 * scale;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::Pipe, switches * 2);
    trace.ctx_switch(switches); // the sleep/wake ping-pong the paper cites
    trace.cpu(switches * 6);
    UnixBenchTest {
        name: "Pipe-based Context Switching",
        units: switches,
        baseline_ops_per_sec: 4_000.0,
        trace,
    }
}

fn process_creation(scale: u64) -> UnixBenchTest {
    let spawns = 8_000 * scale;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::Spawn, spawns);
    trace.cpu(spawns * 200);
    UnixBenchTest { name: "Process Creation", units: spawns, baseline_ops_per_sec: 126.0, trace }
}

fn execl_throughput(scale: u64) -> UnixBenchTest {
    let execs = 3_000 * scale;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::Spawn, execs);
    trace.syscall(SyscallKind::FileRead, execs * 2); // image load
    trace.io_read(execs * 64 * 1024);
    trace.cpu(execs * 400);
    UnixBenchTest { name: "Execl Throughput", units: execs, baseline_ops_per_sec: 43.0, trace }
}

fn file_copy(scale: u64, bufsize: u64, name: &'static str) -> UnixBenchTest {
    // Copy a 500-KiB file repeatedly; smaller buffers mean more syscalls
    // for the same byte volume — the knob UnixBench sweeps.
    let copies = 60 * scale;
    let file_bytes = 500 * 1024;
    let calls_per_copy = file_bytes / bufsize;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::FileRead, copies * calls_per_copy);
    trace.syscall(SyscallKind::FileWrite, copies * calls_per_copy);
    trace.io_read(copies * file_bytes);
    trace.io_write(copies * file_bytes);
    trace.cpu(copies * calls_per_copy * 8);
    UnixBenchTest {
        name,
        units: copies * file_bytes / 1024, // KiB/s convention
        baseline_ops_per_sec: match bufsize {
            256 => 2_650.0,
            1024 => 3_960.0,
            _ => 5_800.0,
        },
        trace,
    }
}

fn shell_scripts(scale: u64) -> UnixBenchTest {
    let runs = 1_500 * scale;
    let mut trace = OpTrace::new();
    trace.syscall(SyscallKind::Spawn, runs * 3); // sh + two children
    trace.syscall(SyscallKind::FileMeta, runs * 6);
    trace.syscall(SyscallKind::FileWrite, runs * 2);
    trace.io_write(runs * 2 * 1024);
    trace.cpu(runs * 900);
    UnixBenchTest {
        name: "Shell Scripts (1 concurrent)",
        units: runs,
        baseline_ops_per_sec: 42.4,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_tests_with_unique_names() {
        let suite = unixbench_suite(1);
        assert_eq!(suite.len(), 11);
        let mut names: Vec<_> = suite.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn traces_are_nonempty_and_scale() {
        let s1 = unixbench_suite(1);
        let s3 = unixbench_suite(3);
        for (a, b) in s1.iter().zip(&s3) {
            assert!(!a.trace.is_empty(), "{}", a.name);
            assert_eq!(b.units, 3 * a.units, "{}", a.name);
            assert!(b.trace.total_syscalls() >= a.trace.total_syscalls());
        }
    }

    #[test]
    fn smaller_copy_buffers_mean_more_syscalls() {
        let suite = unixbench_suite(1);
        let syscalls = |needle: &str| {
            suite.iter().find(|t| t.name.contains(needle)).unwrap().trace.total_syscalls()
        };
        assert!(syscalls("256 bufsize") > syscalls("1024 bufsize"));
        assert!(syscalls("1024 bufsize") > syscalls("4096 bufsize"));
    }

    #[test]
    fn index_math_matches_unixbench_convention() {
        let t = dhrystone(1);
        // Reference machine speed exactly -> index 10.
        let seconds = t.units as f64 / t.baseline_ops_per_sec;
        assert!((index_score(&t, seconds) - 10.0).abs() < 1e-9);
        // Twice as fast -> 20.
        assert!((index_score(&t, seconds / 2.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_is_geometric_mean() {
        assert!((aggregate_index(&[10.0, 1000.0]) - 100.0).abs() < 1e-9);
        assert!((aggregate_index(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scores must be positive")]
    fn aggregate_rejects_nonpositive() {
        aggregate_index(&[1.0, 0.0]);
    }

    #[test]
    fn ctx_switch_test_carries_context_switches() {
        let suite = unixbench_suite(1);
        let pipe_cs = suite.iter().find(|t| t.name.contains("Context Switching")).unwrap();
        let has_cs = pipe_cs.trace.iter().any(|op| matches!(op, confbench_types::Op::CtxSwitch(_)));
        assert!(has_cs);
    }
}

//! The ConfBench workload suite: 25 FaaS functions, the UnixBench-style OS
//! microbenchmarks, and the classic workloads (ML inference, DBMS stress).
//!
//! Every FaaS workload exists twice, by design: as a CBScript program (run
//! for real by the Lua interpreter, the LuaJIT tracing VM, and the Wasmi
//! bytecode VM in `confbench-faasrt`) and as a native Rust twin (used by the
//! Python/Node/Ruby/Go launcher paths). Differential tests pin both
//! implementations to identical outputs.
//!
//! # Example
//!
//! ```
//! use confbench_faasrt::FunctionLauncher;
//! use confbench_types::Language;
//! use confbench_workloads::find_workload;
//!
//! let factors = find_workload("factors").unwrap();
//! let out = FunctionLauncher::new(Language::Go).launch(&factors, &["28".into()])?;
//! assert_eq!(out.output, "56"); // 1+2+4+7+14+28
//! # Ok::<(), confbench_faasrt::LaunchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classic;
mod faas;
mod gpu;
mod native;
mod scripts;
mod unixbench;

pub use classic::{dbms_speedtest, InferenceRun, MlWorkload};
pub use faas::{faas_registry, find_workload, FaasWorkload, WorkloadCategory};
pub use gpu::GpuInferenceWorkload;
pub use unixbench::{aggregate_index, index_score, unixbench_suite, UnixBenchTest};

//! Native (Rust) implementations of the 25 FaaS workloads.
//!
//! These are the twins of the CBScript sources in [`crate::scripts`]: they
//! perform the same computation (bit-identical outputs, enforced by
//! differential tests) and record the *logical* operation trace the
//! Python/Node/Ruby/Go launcher paths inflate through runtime profiles.

use confbench_types::{OpTrace, SyscallKind};

/// Shared LCG, mirroring the in-script generator exactly.
pub(crate) fn lcg(x: i64) -> i64 {
    (x * 1103515245 + 12345) % 2147483648
}

fn arg_i64(args: &[String], idx: usize, name: &str) -> Result<i64, String> {
    args.get(idx)
        .ok_or_else(|| format!("{name}: missing argument {idx}"))?
        .parse::<i64>()
        .map_err(|e| format!("{name}: bad argument {idx}: {e}"))
}

pub(crate) fn cpustress(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "cpustress")?;
    let mut acc: i64 = 0;
    let mut s = 0.0f64;
    for i in 0..n {
        acc = (acc + i * i + (i % 7) * 31) % 1_000_000_007;
        s = s + (i as f64 * 0.001).sin() + (i as f64 * 0.002).cos();
    }
    trace.cpu(n as u64 * 8);
    trace.float(n as u64 * 28); // two libm calls + adds
    Ok((acc + (s * 1000.0) as i64).to_string())
}

pub(crate) fn memstress(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let mb = arg_i64(args, 0, "memstress")?;
    for _ in 0..mb {
        trace.alloc(1 << 20);
        trace.mem_write(1 << 20);
        trace.cpu(200);
    }
    Ok(mb.to_string())
}

pub(crate) fn iostress(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let mb = arg_i64(args, 0, "iostress")?;
    for _ in 0..mb {
        trace.syscall(SyscallKind::FileMeta, 1);
        trace.syscall(SyscallKind::FileWrite, 1);
        trace.io_write(1 << 20);
        trace.cpu(400);
    }
    for _ in 0..mb {
        trace.syscall(SyscallKind::FileRead, 1);
        trace.io_read(1 << 20);
        trace.cpu(400);
    }
    Ok((mb * 2).to_string())
}

pub(crate) fn logging(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "logging")?;
    let mut bytes = 0u64;
    for i in 0..n {
        bytes += format!("log message number {i}\n").len() as u64;
    }
    trace.cpu(n as u64 * 30);
    trace.log(bytes);
    Ok(n.to_string())
}

pub(crate) fn factors(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "factors")?;
    let mut sum: i64 = 0;
    let mut d: i64 = 1;
    let mut iters = 0u64;
    while d * d <= n {
        if n % d == 0 {
            sum += d;
            let q = n / d;
            if q != d {
                sum += q;
            }
        }
        d += 1;
        iters += 1;
    }
    trace.cpu(iters * 7);
    Ok(sum.to_string())
}

pub(crate) fn filesystem(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let rounds = arg_i64(args, 0, "filesystem")?;
    for _ in 0..rounds {
        trace.syscall(SyscallKind::DirOp, 2);
        trace.syscall(SyscallKind::FileMeta, 1);
        trace.syscall(SyscallKind::FileWrite, 1);
        trace.io_write(1 << 20);
        trace.syscall(SyscallKind::FileRead, 1);
        trace.io_read(1 << 20);
        trace.syscall(SyscallKind::FileMeta, 1);
        trace.syscall(SyscallKind::DirOp, 3);
        trace.cpu(1_000);
    }
    Ok(rounds.to_string())
}

fn ack(m: i64, n: i64, calls: &mut u64) -> i64 {
    *calls += 1;
    if m == 0 {
        return n + 1;
    }
    if n == 0 {
        return ack(m - 1, 1, calls);
    }
    let inner = ack(m, n - 1, calls);
    ack(m - 1, inner, calls)
}

pub(crate) fn ackermann(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let reps = arg_i64(args, 0, "ackermann")?;
    let n = arg_i64(args, 1, "ackermann")?;
    let mut total: i64 = 0;
    let mut calls = 0u64;
    for _ in 0..reps {
        total += ack(2, n, &mut calls);
    }
    trace.cpu(calls * 12); // call/return + comparisons
    trace.alloc(calls / 8); // frame churn
    Ok(total.to_string())
}

fn fib_rec(n: i64, calls: &mut u64) -> i64 {
    *calls += 1;
    if n < 2 {
        n
    } else {
        fib_rec(n - 1, calls) + fib_rec(n - 2, calls)
    }
}

pub(crate) fn fib(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "fib")?;
    let mut calls = 0u64;
    let out = fib_rec(n, &mut calls);
    trace.cpu(calls * 10);
    Ok(out.to_string())
}

pub(crate) fn primes(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let limit = arg_i64(args, 0, "primes")? as usize;
    let mut sieve = vec![1u8; limit];
    sieve[0] = 0;
    sieve[1] = 0;
    let mut i = 2;
    let mut marks = 0u64;
    while i * i < limit {
        if sieve[i] == 1 {
            let mut j = i * i;
            while j < limit {
                sieve[j] = 0;
                j += i;
                marks += 1;
            }
        }
        i += 1;
    }
    let count: i64 = sieve.iter().map(|&b| b as i64).sum();
    trace.alloc(limit as u64);
    trace.mem_write(limit as u64);
    trace.cpu(marks * 4 + limit as u64 * 3);
    trace.mem_read(limit as u64);
    Ok(count.to_string())
}

pub(crate) fn matrix(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "matrix")? as usize;
    let mut a = vec![0i64; n * n];
    let mut b = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i * j + i) % 10) as i64;
            b[i * n + j] = ((i + j * 2) % 10) as i64;
        }
    }
    let mut check: i64 = 0;
    for i in 0..n {
        for j in 0..n {
            let mut acc: i64 = 0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            check = (check + acc * (i + j + 1) as i64) % 1_000_000_007;
        }
    }
    let nn = (n * n) as u64;
    trace.alloc(nn * 16);
    trace.cpu(nn * n as u64 * 3);
    trace.mem_read(nn * n as u64 / 4); // blocked access approximation
    Ok(check.to_string())
}

fn lcg_array(n: usize) -> Vec<i64> {
    let mut x = 42i64;
    (0..n)
        .map(|_| {
            x = lcg(x);
            x % 100_000
        })
        .collect()
}

fn sorted_checksum(a: &[i64]) -> i64 {
    let mut check: i64 = 0;
    let mut i = 0;
    while i < a.len() {
        check = (check + a[i] * (i as i64 + 1)) % 1_000_000_007;
        i += 97;
    }
    check
}

pub(crate) fn quicksort(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "quicksort")? as usize;
    let mut a = lcg_array(n);
    fn qsort(a: &mut [i64], lo: isize, hi: isize, ops: &mut u64) {
        if lo < hi {
            let pivot = a[hi as usize];
            let mut i = lo;
            for j in lo..hi {
                *ops += 3;
                if a[j as usize] < pivot {
                    a.swap(i as usize, j as usize);
                    i += 1;
                }
            }
            a.swap(i as usize, hi as usize);
            qsort(a, lo, i - 1, ops);
            qsort(a, i + 1, hi, ops);
        }
    }
    let mut ops = 0u64;
    qsort(&mut a, 0, n as isize - 1, &mut ops);
    trace.alloc(n as u64 * 16);
    trace.cpu(ops);
    trace.mem_read(ops * 8);
    Ok(sorted_checksum(&a).to_string())
}

pub(crate) fn mergesort(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "mergesort")? as usize;
    let mut a = lcg_array(n);
    let mut buf = vec![0i64; n];
    let mut width = 1;
    let mut ops = 0u64;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                ops += 3;
                if a[i] <= a[j] {
                    buf[k] = a[i];
                    i += 1;
                } else {
                    buf[k] = a[j];
                    j += 1;
                }
                k += 1;
            }
            while i < mid {
                buf[k] = a[i];
                i += 1;
                k += 1;
                ops += 1;
            }
            while j < hi {
                buf[k] = a[j];
                j += 1;
                k += 1;
                ops += 1;
            }
            a[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    trace.alloc(n as u64 * 32);
    trace.cpu(ops * 2);
    trace.mem_read(ops * 16);
    Ok(sorted_checksum(&a).to_string())
}

pub(crate) fn base64(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "base64")?;
    let mut x = 42i64;
    let mut check: i64 = 0;
    let mut i = 0i64;
    while i + 2 < n {
        x = lcg(x);
        let b0 = x % 256;
        x = lcg(x);
        let b1 = x % 256;
        x = lcg(x);
        let b2 = x % 256;
        let triple = b0 * 65536 + b1 * 256 + b2;
        let s0 = triple / 262144;
        let s1 = (triple / 4096) % 64;
        let s2 = (triple / 64) % 64;
        let s3 = triple % 64;
        check = (check + s0 + s1 * 2 + s2 * 3 + s3 * 5) % 1_000_000_007;
        i += 3;
    }
    trace.cpu(n as u64 * 10);
    trace.mem_read(n as u64);
    Ok(check.to_string())
}

pub(crate) fn json(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "json")?;
    let mut braces: i64 = 0;
    let mut colons: i64 = 0;
    let mut chars: i64 = 0;
    for i in 0..n {
        let rec =
            format!("{{\"id\":{i},\"name\":\"user{}\",\"score\":{}}}", i % 100, i * 37 % 1000);
        chars += rec.len() as i64;
        for c in rec.bytes() {
            if c == b'{' {
                braces += 1;
            }
            if c == b':' {
                colons += 1;
            }
        }
        trace.alloc(rec.len() as u64);
    }
    trace.cpu(chars as u64 * 4);
    trace.mem_read(chars as u64);
    Ok((braces * 1_000_000 + colons % 1_000_000 + chars % 997).to_string())
}

pub(crate) fn checksum(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "checksum")?;
    let mut x = 42i64;
    let mut c: i64 = 0;
    for _ in 0..n {
        x = lcg(x);
        c = (c * 31 + x % 256) % 2_147_483_647;
    }
    trace.cpu(n as u64 * 7);
    Ok(c.to_string())
}

pub(crate) fn compress(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "compress")?;
    let mut x = 42i64;
    let mut prev: i64 = -1;
    let mut run: i64 = 0;
    let mut tokens: i64 = 0;
    let mut check: i64 = 0;
    for _ in 0..n {
        x = lcg(x);
        let v = (x / 1024) % 4;
        if v == prev {
            run += 1;
        } else {
            if prev >= 0 {
                tokens += 1;
                check = (check + prev * 7 + run) % 1_000_000_007;
            }
            prev = v;
            run = 1;
        }
    }
    tokens += 1;
    check = (check + prev * 7 + run) % 1_000_000_007;
    trace.cpu(n as u64 * 6);
    trace.mem_read(n as u64);
    Ok((tokens * 1_000_000_007 % 999_999_937 + check).to_string())
}

pub(crate) fn mandelbrot(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let dim = arg_i64(args, 0, "mandelbrot")?;
    let mut inside: i64 = 0;
    let mut flops = 0u64;
    for py in 0..dim {
        for px in 0..dim {
            let x0 = px as f64 * 3.0 / dim as f64 - 2.0;
            let y0 = py as f64 * 3.0 / dim as f64 - 1.5;
            let mut x = 0.0f64;
            let mut y = 0.0f64;
            let mut it = 0;
            while it < 50 && x * x + y * y <= 4.0 {
                let xt = x * x - y * y + x0;
                y = 2.0 * x * y + y0;
                x = xt;
                it += 1;
                flops += 10;
            }
            if it == 50 {
                inside += 1;
            }
        }
    }
    trace.float(flops);
    trace.cpu(dim as u64 * dim as u64 * 4);
    Ok(inside.to_string())
}

pub(crate) fn nbody(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let steps = arg_i64(args, 0, "nbody")?;
    let mut px = [0.0f64, 3.0, -3.0];
    let mut py = [0.0f64, 0.0, 0.0];
    let mut vx = [0.0f64, 0.0, 0.0];
    let mut vy = [0.0f64, 0.2, -0.2];
    let m = [10.0f64, 1.0, 1.0];
    let dt = 0.01;
    for _ in 0..steps {
        for i in 0..3 {
            let mut ax = 0.0;
            let mut ay = 0.0;
            for j in 0..3 {
                if i != j {
                    let dx = px[j] - px[i];
                    let dy = py[j] - py[i];
                    let d2 = dx * dx + dy * dy + 0.01;
                    let inv = m[j] / (d2 * d2.sqrt());
                    ax += dx * inv;
                    ay += dy * inv;
                }
            }
            vx[i] += ax * dt;
            vy[i] += ay * dt;
        }
        for i in 0..3 {
            px[i] += vx[i] * dt;
            py[i] += vy[i] * dt;
        }
    }
    let mut e = 0.0;
    for i in 0..3 {
        e += 0.5 * m[i] * (vx[i] * vx[i] + vy[i] * vy[i]);
    }
    trace.float(steps as u64 * 150);
    trace.cpu(steps as u64 * 30);
    Ok(((e * 100_000.0) as i64).to_string())
}

pub(crate) fn binarytrees(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let depth = arg_i64(args, 0, "binarytrees")?;
    let nodes: i64 = 1 << (depth + 1);
    let total = (nodes - 1) as usize;
    let mut left = vec![-1i64; nodes as usize];
    let mut right = vec![-1i64; nodes as usize];
    let mut val = vec![0i64; nodes as usize];
    for i in 0..total {
        val[i] = (i % 97) as i64;
        if 2 * i + 2 < total {
            left[i] = (2 * i + 1) as i64;
            right[i] = (2 * i + 2) as i64;
        }
    }
    let mut stack = vec![0i64; 64];
    let mut top = 1usize;
    stack[0] = 0;
    let mut check: i64 = 0;
    let mut visits = 0u64;
    while top > 0 {
        top -= 1;
        let node = stack[top] as usize;
        check = (check + val[node]) % 1_000_003;
        visits += 1;
        if left[node] >= 0 {
            stack[top] = left[node];
            top += 1;
            stack[top] = right[node];
            top += 1;
        }
    }
    trace.alloc(nodes as u64 * 48);
    trace.mem_write(nodes as u64 * 48);
    trace.cpu(visits * 8);
    trace.mem_read(visits * 24);
    Ok(check.to_string())
}

pub(crate) fn spectralnorm(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "spectralnorm")? as usize;
    let iters = arg_i64(args, 1, "spectralnorm")?;
    let mut u = vec![1.0f64; n];
    let mut v = vec![0.0f64; n];
    for _ in 0..iters {
        for (i, vi) in v.iter_mut().enumerate() {
            let mut s = 0.0;
            for (j, uj) in u.iter().enumerate() {
                let denom = ((i + j) * (i + j + 1) / 2 + i + 1) as f64;
                s += uj / denom;
            }
            *vi = s;
        }
        for (i, ui) in u.iter_mut().enumerate() {
            let mut s = 0.0;
            for (j, vj) in v.iter().enumerate() {
                let denom = ((i + j) * (i + j + 1) / 2 + j + 1) as f64;
                s += vj / denom;
            }
            *ui = s;
        }
    }
    let mut uv = 0.0;
    let mut vv = 0.0;
    for i in 0..n {
        uv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    trace.float(iters as u64 * (n * n) as u64 * 6);
    trace.cpu(iters as u64 * (n * n) as u64 * 4);
    Ok((((uv / vv).sqrt() * 1_000_000.0) as i64).to_string())
}

pub(crate) fn dijkstra(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let dim = arg_i64(args, 0, "dijkstra")? as usize;
    let n = dim * dim;
    let mut x = 42i64;
    let weight: Vec<i64> = (0..n)
        .map(|_| {
            x = lcg(x);
            x % 9 + 1
        })
        .collect();
    let mut dist = vec![1_000_000_000i64; n];
    let mut done = vec![false; n];
    dist[0] = 0;
    let mut scans = 0u64;
    for _ in 0..n {
        let mut best: isize = -1;
        let mut bestd = 1_000_000_000i64;
        for i in 0..n {
            scans += 1;
            if !done[i] && dist[i] < bestd {
                bestd = dist[i];
                best = i as isize;
            }
        }
        if best < 0 {
            break;
        }
        let best = best as usize;
        done[best] = true;
        let (r, c) = (best / dim, best % dim);
        let relax = |t: usize, dist: &mut Vec<i64>| {
            if dist[best] + weight[t] < dist[t] {
                dist[t] = dist[best] + weight[t];
            }
        };
        if c + 1 < dim {
            relax(best + 1, &mut dist);
        }
        if c > 0 {
            relax(best - 1, &mut dist);
        }
        if r + 1 < dim {
            relax(best + dim, &mut dist);
        }
        if r > 0 {
            relax(best - dim, &mut dist);
        }
    }
    trace.alloc(n as u64 * 24);
    trace.cpu(scans * 4);
    trace.mem_read(scans * 9);
    Ok(dist[n - 1].to_string())
}

pub(crate) fn wordcount(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "wordcount")?;
    let mut counts = [0i64; 100];
    let mut x = 42i64;
    for _ in 0..n {
        x = lcg(x);
        counts[(x % 100) as usize] += 1;
    }
    let mut maxc = 0i64;
    let mut maxw = 0i64;
    for (w, &c) in counts.iter().enumerate() {
        if c > maxc {
            maxc = c;
            maxw = w as i64;
        }
    }
    trace.cpu(n as u64 * 6);
    trace.mem_read(n as u64 * 8);
    Ok((maxw * 1_000_000 + maxc).to_string())
}

pub(crate) fn histogram(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "histogram")?;
    let mut bins = [0i64; 64];
    let mut x = 42i64;
    for _ in 0..n {
        x = lcg(x);
        bins[((x / 4096) % 64) as usize] += 1;
    }
    let mut check: i64 = 0;
    for (b, &c) in bins.iter().enumerate() {
        check = (check + c * (b as i64 + 1)) % 1_000_000_007;
    }
    trace.cpu(n as u64 * 5);
    trace.mem_read(n as u64 * 8);
    Ok(check.to_string())
}

pub(crate) fn montecarlo(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "montecarlo")?;
    let mut x = 42i64;
    let mut hits: i64 = 0;
    for _ in 0..n {
        x = lcg(x);
        let fx = x as f64 / 2_147_483_648.0;
        x = lcg(x);
        let fy = x as f64 / 2_147_483_648.0;
        if fx * fx + fy * fy < 1.0 {
            hits += 1;
        }
    }
    trace.cpu(n as u64 * 6);
    trace.float(n as u64 * 5);
    Ok(hits.to_string())
}

pub(crate) fn strings(args: &[String], trace: &mut OpTrace) -> Result<String, String> {
    let n = arg_i64(args, 0, "strings")?;
    let mut pal: i64 = 0;
    let mut bytes = 0u64;
    for i in 0..n {
        let s = (i * 13 % 10_000).to_string();
        let b = s.as_bytes();
        bytes += b.len() as u64;
        let mut isp = 1i64;
        for j in 0..b.len() / 2 {
            if b[j] != b[b.len() - 1 - j] {
                isp = 0;
            }
        }
        pal += isp;
    }
    trace.cpu(n as u64 * 14);
    trace.alloc(bytes);
    trace.mem_read(bytes);
    Ok(pal.to_string())
}

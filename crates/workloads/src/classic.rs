//! Classic (non-FaaS) workload adapters: confidential ML inference and the
//! DBMS stress suite (paper §IV-C).

use confbench_minidb::{run_speedtest, DbError, SpeedTestReport};
use confbench_tinynn::{dataset_image, mobilenet, Sequential, DATASET_SIZE};
use confbench_types::{OpTrace, SyscallKind};

/// One image-classification inference with its recorded operations.
#[derive(Debug, Clone)]
pub struct InferenceRun {
    /// Dataset index of the classified image.
    pub image_index: usize,
    /// Predicted class.
    pub class: usize,
    /// Operations: image load (I/O), decode/resize, and the forward pass.
    pub trace: OpTrace,
}

/// The confidential-ML workload: a MobileNet-shaped model classifying the
/// 40-image synthetic dataset, mirroring the paper's TensorFlow-Lite
/// experiment. Inference really runs; the trace captures image load I/O,
/// preprocessing, and the forward pass's float/memory work.
///
/// # Example
///
/// ```
/// use confbench_workloads::MlWorkload;
///
/// let ml = MlWorkload::new(7);
/// let run = ml.classify(0);
/// assert!(run.class < 10);
/// assert!(run.trace.total_io_bytes() > 700_000, "1-MB-class image load");
/// ```
pub struct MlWorkload {
    model: Sequential,
    seed: u64,
}

impl MlWorkload {
    /// Input resolution fed to the model.
    pub const INPUT_DIM: usize = 64;

    /// Builds the model with deterministic weights.
    pub fn new(seed: u64) -> Self {
        MlWorkload { model: mobilenet(Self::INPUT_DIM, 6, 10, seed), seed }
    }

    /// Number of images in the dataset (the paper's 40).
    pub fn dataset_size(&self) -> usize {
        DATASET_SIZE
    }

    /// Classifies dataset image `index`, returning the prediction and trace.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of dataset range.
    pub fn classify(&self, index: usize) -> InferenceRun {
        let mut trace = OpTrace::new();
        let image = dataset_image(index, self.seed);

        // 1. Load the ~1-MB image from storage.
        trace.syscall(SyscallKind::FileMeta, 1);
        trace.syscall(SyscallKind::FileRead, 1);
        trace.io_read(image.byte_len() as u64);
        trace.alloc(image.byte_len() as u64);

        // 2. Decode + resize: every source pixel is touched once.
        let input = image.to_input(Self::INPUT_DIM);
        trace.mem_read(image.byte_len() as u64);
        trace.cpu(image.byte_len() as u64 / 2);

        // 3. Forward pass: MACs as float ops, activations as memory traffic.
        let cost = self.model.cost();
        let probs = self.model.forward(&input);
        trace.float(cost.flops * 2); // multiply + accumulate
        trace.alloc(cost.activation_bytes);
        trace.mem_write(cost.activation_bytes);
        trace.mem_read(cost.activation_bytes);

        // 4. Buffers are released after the prediction (the runtime reuses
        //    its arenas across inferences, so TEE page acceptance amortizes).
        trace.free(cost.activation_bytes);
        trace.free(image.byte_len() as u64);

        InferenceRun { image_index: index, class: probs.argmax(), trace }
    }

    /// Classifies the whole dataset.
    pub fn classify_all(&self) -> Vec<InferenceRun> {
        (0..self.dataset_size()).map(|i| self.classify(i)).collect()
    }
}

/// The confidential-DBMS workload: the speedtest suite at the paper's
/// default relative size 100 (smaller sizes for quick runs).
///
/// # Errors
///
/// Propagates database errors.
pub fn dbms_speedtest(size: u32, seed: u64) -> Result<Vec<SpeedTestReport>, DbError> {
    run_speedtest(size, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_deterministic_and_varied() {
        let ml = MlWorkload::new(3);
        let a = ml.classify(0);
        let b = ml.classify(0);
        assert_eq!(a.class, b.class);
        assert_eq!(a.trace, b.trace);
        // Different images must produce different output distributions
        // (an untrained model may still map them to one argmax class).
        let model = mobilenet(MlWorkload::INPUT_DIM, 6, 10, 3);
        let p0 = model.forward(&dataset_image(0, 3).to_input(MlWorkload::INPUT_DIM));
        let p2 = model.forward(&dataset_image(2, 3).to_input(MlWorkload::INPUT_DIM));
        assert_ne!(p0, p2, "distinct images yield distinct distributions");
    }

    #[test]
    fn trace_shape_is_io_then_compute() {
        let ml = MlWorkload::new(1);
        let run = ml.classify(5);
        assert!(run.trace.total_io_bytes() >= 3 * 512 * 512);
        assert!(run.trace.total_float_ops() > 1_000_000, "real conv work");
        assert!(run.trace.total_alloc_bytes() > 0);
    }

    #[test]
    fn classify_all_covers_dataset() {
        let ml = MlWorkload::new(1);
        assert_eq!(ml.classify_all().len(), 40);
    }

    #[test]
    fn dbms_adapter_passes_through() {
        let reports = dbms_speedtest(5, 1).unwrap();
        assert_eq!(reports.len(), 15);
    }
}

//! CBScript sources for the 25 FaaS workloads.
//!
//! These are the programs the Lua path interprets, the LuaJIT path trace-
//! compiles, and the Wasm path runs as bytecode. Every script must produce
//! *exactly* the same `result(..)` string as its native twin in
//! `crate::native` — differential tests enforce this for every workload.
//!
//! Where a workload needs randomness it uses the shared LCG
//! (`x' = (x * 1103515245 + 12345) mod 2^31`), mirrored bit-for-bit on the
//! native side.

/// Intensive trigonometric and arithmetic operations in a large loop
/// (paper §IV-D).
pub const CPUSTRESS: &str = r#"
let n = int(ARGS[0]);
let acc = 0;
let s = 0.0;
for i in 0, n {
    acc = (acc + i * i + (i % 7) * 31) % 1000000007;
    s = s + sin(float(i) * 0.001) + cos(float(i) * 0.002);
}
result(acc + int(s * 1000.0));
"#;

/// Repeated allocation of 1-MiB buffers to cover a memory target
/// (paper §IV-D: half the machine's memory; scaled by the argument).
pub const MEMSTRESS: &str = r#"
let mb = int(ARGS[0]);
let sum = 0;
for i in 0, mb {
    alloc(1048576);
    mem_touch(1048576);
    sum = sum + 1;
}
result(sum);
"#;

/// Intensive read/write of large (1-MiB) files, dd-style (paper §IV-D).
pub const IOSTRESS: &str = r#"
let mb = int(ARGS[0]);
for i in 0, mb {
    file_meta(1);
    io_write(1048576);
}
for i in 0, mb {
    io_read(1048576);
}
result(mb * 2);
"#;

/// Print a large number of messages (paper §IV-D: 3000).
pub const LOGGING: &str = r#"
let n = int(ARGS[0]);
for i in 0, n {
    log("log message number " + str(i));
}
result(n);
"#;

/// Sum of the divisors of a number (paper §IV-D "factors").
pub const FACTORS: &str = r#"
let n = int(ARGS[0]);
let sum = 0;
let d = 1;
while d * d <= n {
    if n % d == 0 {
        sum = sum + d;
        let q = n / d;
        if q != d {
            sum = sum + q;
        }
    }
    d = d + 1;
}
result(sum);
"#;

/// Create and manage folders and files with read/write and cleanup
/// (paper §IV-D "filesystem").
pub const FILESYSTEM: &str = r#"
let rounds = int(ARGS[0]);
let ok = 0;
for i in 0, rounds {
    dir_op(2);
    file_meta(1);
    io_write(1048576);
    io_read(1048576);
    file_meta(1);
    dir_op(3);
    ok = ok + 1;
}
result(ok);
"#;

/// Ackermann function, iterated (paper Fig. 6 "ack").
pub const ACKERMANN: &str = r#"
fn ack(m, n) {
    if m == 0 { return n + 1; }
    if n == 0 { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
let reps = int(ARGS[0]);
let n = int(ARGS[1]);
let total = 0;
for i in 0, reps {
    total = total + ack(2, n);
}
result(total);
"#;

/// Naive recursive Fibonacci.
pub const FIB: &str = r#"
fn fib(n) {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
result(fib(int(ARGS[0])));
"#;

/// Sieve of Eratosthenes: count primes below the limit.
pub const PRIMES: &str = r#"
let limit = int(ARGS[0]);
let sieve = array_new(limit, 1);
sieve[0] = 0;
sieve[1] = 0;
let i = 2;
while i * i < limit {
    if sieve[i] == 1 {
        let j = i * i;
        while j < limit {
            sieve[j] = 0;
            j = j + i;
        }
    }
    i = i + 1;
}
let count = 0;
for k in 0, limit {
    count = count + sieve[k];
}
result(count);
"#;

/// Integer matrix multiplication with a checksum of the product.
pub const MATRIX: &str = r#"
let n = int(ARGS[0]);
let a = array_new(n * n, 0);
let b = array_new(n * n, 0);
for i in 0, n {
    for j in 0, n {
        a[i * n + j] = (i * j + i) % 10;
        b[i * n + j] = (i + j * 2) % 10;
    }
}
let check = 0;
for i in 0, n {
    for j in 0, n {
        let acc = 0;
        for k in 0, n {
            acc = acc + a[i * n + k] * b[k * n + j];
        }
        check = (check + acc * (i + j + 1)) % 1000000007;
    }
}
result(check);
"#;

/// Quicksort over LCG data; checksum of the sorted array.
pub const QUICKSORT: &str = r#"
fn partition(a, lo, hi) {
    let pivot = a[hi];
    let i = lo;
    for j in lo, hi {
        if a[j] < pivot {
            let t = a[i]; a[i] = a[j]; a[j] = t;
            i = i + 1;
        }
    }
    let t = a[i]; a[i] = a[hi]; a[hi] = t;
    return i;
}
fn qsort(a, lo, hi) {
    if lo < hi {
        let p = partition(a, lo, hi);
        qsort(a, lo, p - 1);
        qsort(a, p + 1, hi);
    }
    return 0;
}
let n = int(ARGS[0]);
let a = array_new(n, 0);
let x = 42;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    a[i] = x % 100000;
}
qsort(a, 0, n - 1);
let check = 0;
let i = 0;
while i < n {
    check = (check + a[i] * (i + 1)) % 1000000007;
    i = i + 97;
}
result(check);
"#;

/// Bottom-up mergesort over the same data; the checksum must match
/// quicksort's.
pub const MERGESORT: &str = r#"
let n = int(ARGS[0]);
let a = array_new(n, 0);
let x = 42;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    a[i] = x % 100000;
}
let buf = array_new(n, 0);
let width = 1;
while width < n {
    let lo = 0;
    while lo < n {
        let mid = lo + width;
        let hi = lo + 2 * width;
        if mid > n { mid = n; }
        if hi > n { hi = n; }
        let i = lo; let j = mid; let k = lo;
        while i < mid && j < hi {
            if a[i] <= a[j] { buf[k] = a[i]; i = i + 1; }
            else { buf[k] = a[j]; j = j + 1; }
            k = k + 1;
        }
        while i < mid { buf[k] = a[i]; i = i + 1; k = k + 1; }
        while j < hi { buf[k] = a[j]; j = j + 1; k = k + 1; }
        let c = lo;
        while c < hi { a[c] = buf[c]; c = c + 1; }
        lo = lo + 2 * width;
    }
    width = width * 2;
}
let check = 0;
let i = 0;
while i < n {
    check = (check + a[i] * (i + 1)) % 1000000007;
    i = i + 97;
}
result(check);
"#;

/// Base64-style 6-bit regrouping of LCG bytes; checksum of emitted symbols.
pub const BASE64: &str = r#"
let n = int(ARGS[0]);
let x = 42;
let check = 0;
let i = 0;
while i + 2 < n {
    x = (x * 1103515245 + 12345) % 2147483648;
    let b0 = x % 256;
    x = (x * 1103515245 + 12345) % 2147483648;
    let b1 = x % 256;
    x = (x * 1103515245 + 12345) % 2147483648;
    let b2 = x % 256;
    let triple = b0 * 65536 + b1 * 256 + b2;
    let s0 = triple / 262144;
    let s1 = (triple / 4096) % 64;
    let s2 = (triple / 64) % 64;
    let s3 = triple % 64;
    check = (check + s0 + s1 * 2 + s2 * 3 + s3 * 5) % 1000000007;
    i = i + 3;
}
result(check);
"#;

/// Serialize records to a JSON document and re-scan it for structure.
pub const JSON: &str = r#"
let n = int(ARGS[0]);
let braces = 0;
let colons = 0;
let chars = 0;
for i in 0, n {
    let rec = "{\"id\":" + str(i) + ",\"name\":\"user" + str(i % 100) + "\",\"score\":" + str(i * 37 % 1000) + "}";
    let l = len(rec);
    chars = chars + l;
    for j in 0, l {
        let c = rec[j];
        if c == 123 { braces = braces + 1; }
        if c == 58 { colons = colons + 1; }
    }
}
result(braces * 1000000 + colons % 1000000 + chars % 997);
"#;

/// Multiplicative checksum over an LCG byte stream ("crc"-class workload).
pub const CHECKSUM: &str = r#"
let n = int(ARGS[0]);
let x = 42;
let c = 0;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    c = (c * 31 + x % 256) % 2147483647;
}
result(c);
"#;

/// Run-length encoding of a run-prone LCG stream; counts emitted tokens.
pub const COMPRESS: &str = r#"
let n = int(ARGS[0]);
let x = 42;
let prev = 0 - 1;
let run = 0;
let tokens = 0;
let check = 0;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    let v = (x / 1024) % 4;
    if v == prev {
        run = run + 1;
    } else {
        if prev >= 0 {
            tokens = tokens + 1;
            check = (check + prev * 7 + run) % 1000000007;
        }
        prev = v;
        run = 1;
    }
}
tokens = tokens + 1;
check = (check + prev * 7 + run) % 1000000007;
result(tokens * 1000000007 % 999999937 + check);
"#;

/// Mandelbrot escape counting on a dim×dim grid.
pub const MANDELBROT: &str = r#"
let dim = int(ARGS[0]);
let inside = 0;
for py in 0, dim {
    for px in 0, dim {
        let x0 = float(px) * 3.0 / float(dim) - 2.0;
        let y0 = float(py) * 3.0 / float(dim) - 1.5;
        let x = 0.0;
        let y = 0.0;
        let it = 0;
        while it < 50 && x * x + y * y <= 4.0 {
            let xt = x * x - y * y + x0;
            y = 2.0 * x * y + y0;
            x = xt;
            it = it + 1;
        }
        if it == 50 { inside = inside + 1; }
    }
}
result(inside);
"#;

/// Symmetric 3-body gravity simulation; quantized energy drift.
pub const NBODY: &str = r#"
let steps = int(ARGS[0]);
let px = [0.0, 3.0, 0.0 - 3.0];
let py = [0.0, 0.0, 0.0];
let vx = [0.0, 0.0, 0.0];
let vy = [0.0, 0.2, 0.0 - 0.2];
let m = [10.0, 1.0, 1.0];
let dt = 0.01;
for s in 0, steps {
    for i in 0, 3 {
        let ax = 0.0;
        let ay = 0.0;
        for j in 0, 3 {
            if i != j {
                let dx = px[j] - px[i];
                let dy = py[j] - py[i];
                let d2 = dx * dx + dy * dy + 0.01;
                let inv = m[j] / (d2 * sqrt(d2));
                ax = ax + dx * inv;
                ay = ay + dy * inv;
            }
        }
        vx[i] = vx[i] + ax * dt;
        vy[i] = vy[i] + ay * dt;
    }
    for i in 0, 3 {
        px[i] = px[i] + vx[i] * dt;
        py[i] = py[i] + vy[i] * dt;
    }
}
let e = 0.0;
for i in 0, 3 {
    e = e + 0.5 * m[i] * (vx[i] * vx[i] + vy[i] * vy[i]);
}
result(int(e * 100000.0));
"#;

/// Array-pool binary trees: build, checksum, discard (allocation churn).
pub const BINARYTREES: &str = r#"
let depth = int(ARGS[0]);
let nodes = 1;
let d = 0;
while d <= depth {
    nodes = nodes * 2;
    d = d + 1;
}
let left = array_new(nodes, 0 - 1);
let right = array_new(nodes, 0 - 1);
let val = array_new(nodes, 0);
# Iterative build: heap layout, node i has children 2i+1, 2i+2.
let total = nodes - 1;
for i in 0, total {
    val[i] = i % 97;
    if 2 * i + 2 < total {
        left[i] = 2 * i + 1;
        right[i] = 2 * i + 2;
    }
}
# Checksum via explicit stack traversal.
let stack = array_new(64, 0);
let top = 1;
stack[0] = 0;
let check = 0;
while top > 0 {
    top = top - 1;
    let node = stack[top];
    check = (check + val[node]) % 1000003;
    if left[node] >= 0 {
        stack[top] = left[node];
        top = top + 1;
        stack[top] = right[node];
        top = top + 1;
    }
}
result(check);
"#;

/// Power-iteration estimate of a structured matrix norm.
pub const SPECTRALNORM: &str = r#"
let n = int(ARGS[0]);
let iters = int(ARGS[1]);
let u = array_new(n, 1.0);
let v = array_new(n, 0.0);
for it in 0, iters {
    for i in 0, n {
        let s = 0.0;
        for j in 0, n {
            let denom = float((i + j) * (i + j + 1) / 2 + i + 1);
            s = s + u[j] / denom;
        }
        v[i] = s;
    }
    for i in 0, n {
        let s = 0.0;
        for j in 0, n {
            let denom = float((i + j) * (i + j + 1) / 2 + j + 1);
            s = s + v[j] / denom;
        }
        u[i] = s;
    }
}
let uv = 0.0;
let vv = 0.0;
for i in 0, n {
    uv = uv + u[i] * v[i];
    vv = vv + v[i] * v[i];
}
result(int(sqrt(uv / vv) * 1000000.0));
"#;

/// Dijkstra over a dim×dim grid with LCG edge weights (O(V²) scan).
pub const DIJKSTRA: &str = r#"
let dim = int(ARGS[0]);
let n = dim * dim;
let weight = array_new(n, 0);
let x = 42;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    weight[i] = x % 9 + 1;
}
let dist = array_new(n, 1000000000);
let done = array_new(n, 0);
dist[0] = 0;
for round in 0, n {
    let best = 0 - 1;
    let bestd = 1000000000;
    for i in 0, n {
        if done[i] == 0 && dist[i] < bestd {
            bestd = dist[i];
            best = i;
        }
    }
    if best < 0 { break; }
    done[best] = 1;
    let r = best / dim;
    let c = best % dim;
    if c + 1 < dim {
        let t = best + 1;
        if dist[best] + weight[t] < dist[t] { dist[t] = dist[best] + weight[t]; }
    }
    if c > 0 {
        let t = best - 1;
        if dist[best] + weight[t] < dist[t] { dist[t] = dist[best] + weight[t]; }
    }
    if r + 1 < dim {
        let t = best + dim;
        if dist[best] + weight[t] < dist[t] { dist[t] = dist[best] + weight[t]; }
    }
    if r > 0 {
        let t = best - dim;
        if dist[best] + weight[t] < dist[t] { dist[t] = dist[best] + weight[t]; }
    }
}
result(dist[n - 1]);
"#;

/// Generate LCG "words" and count occurrences of each of 100 word ids.
pub const WORDCOUNT: &str = r#"
let n = int(ARGS[0]);
let counts = array_new(100, 0);
let x = 42;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    let w = x % 100;
    counts[w] = counts[w] + 1;
}
let maxc = 0;
let maxw = 0;
for w in 0, 100 {
    if counts[w] > maxc {
        maxc = counts[w];
        maxw = w;
    }
}
result(maxw * 1000000 + maxc);
"#;

/// Bucket an LCG stream into a 64-bin histogram.
pub const HISTOGRAM: &str = r#"
let n = int(ARGS[0]);
let bins = array_new(64, 0);
let x = 42;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    let b = (x / 4096) % 64;
    bins[b] = bins[b] + 1;
}
let check = 0;
for b in 0, 64 {
    check = (check + bins[b] * (b + 1)) % 1000000007;
}
result(check);
"#;

/// Monte-Carlo estimation of pi: count LCG points inside the unit circle.
pub const MONTECARLO: &str = r#"
let n = int(ARGS[0]);
let x = 42;
let hits = 0;
for i in 0, n {
    x = (x * 1103515245 + 12345) % 2147483648;
    let fx = float(x) / 2147483648.0;
    x = (x * 1103515245 + 12345) % 2147483648;
    let fy = float(x) / 2147483648.0;
    if fx * fx + fy * fy < 1.0 {
        hits = hits + 1;
    }
}
result(hits);
"#;

/// String manipulation: render integers, test for palindromes by byte
/// comparison.
pub const STRINGS: &str = r#"
let n = int(ARGS[0]);
let pal = 0;
for i in 0, n {
    let s = str(i * 13 % 10000);
    let l = len(s);
    let isp = 1;
    for j in 0, l / 2 {
        if s[j] != s[l - 1 - j] { isp = 0; }
    }
    pal = pal + isp;
}
result(pal);
"#;

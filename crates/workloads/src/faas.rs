//! The FaaS workload registry: 25 functions spanning CPU, memory, I/O and
//! mixed behaviour (paper §IV-D; sources follow the FaaSdom /
//! faas-benchmark / Lua-Benchmarks / wasmi-benchmarks suites the paper
//! draws from).

use confbench_faasrt::FaasFunction;
use confbench_types::OpTrace;

use crate::native;
use crate::scripts;

/// Dominant resource of a workload (used to discuss heatmap structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadCategory {
    /// Compute-bound (integer/float).
    Cpu,
    /// Allocation/memory-bandwidth-bound.
    Memory,
    /// Device-I/O-bound.
    Io,
    /// Syscall/logging/filesystem mixes.
    Mixed,
}

type NativeFn = fn(&[String], &mut OpTrace) -> Result<String, String>;

/// One registered FaaS workload: a CBScript source, its native twin, and
/// default arguments sized for the figure runs.
#[derive(Clone)]
pub struct FaasWorkload {
    name: &'static str,
    script: &'static str,
    native: NativeFn,
    default_args: &'static [&'static str],
    category: WorkloadCategory,
}

impl std::fmt::Debug for FaasWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasWorkload")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish_non_exhaustive()
    }
}

impl FaasWorkload {
    /// The workload's dominant-resource category.
    pub fn category(&self) -> WorkloadCategory {
        self.category
    }

    /// Default arguments used by the paper-figure runs.
    pub fn default_args(&self) -> Vec<String> {
        self.default_args.iter().map(|s| (*s).to_owned()).collect()
    }
}

impl FaasFunction for FaasWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn script(&self) -> &str {
        self.script
    }

    fn run_native(&self, args: &[String], trace: &mut OpTrace) -> Result<String, String> {
        (self.native)(args, trace)
    }
}

/// The 25-workload registry, in the paper's heatmap column order.
pub fn faas_registry() -> Vec<FaasWorkload> {
    use WorkloadCategory::*;
    vec![
        w("cpustress", scripts::CPUSTRESS, native::cpustress, &["120000"], Cpu),
        w("memstress", scripts::MEMSTRESS, native::memstress, &["48"], Memory),
        w("iostress", scripts::IOSTRESS, native::iostress, &["6"], Io),
        w("logging", scripts::LOGGING, native::logging, &["3000"], Mixed),
        w("factors", scripts::FACTORS, native::factors, &["1234567"], Cpu),
        w("filesystem", scripts::FILESYSTEM, native::filesystem, &["2"], Mixed),
        w("ack", scripts::ACKERMANN, native::ackermann, &["40", "40"], Cpu),
        w("fib", scripts::FIB, native::fib, &["18"], Cpu),
        w("primes", scripts::PRIMES, native::primes, &["40000"], Memory),
        w("matrix", scripts::MATRIX, native::matrix, &["26"], Cpu),
        w("quicksort", scripts::QUICKSORT, native::quicksort, &["3000"], Memory),
        w("mergesort", scripts::MERGESORT, native::mergesort, &["3000"], Memory),
        w("base64", scripts::BASE64, native::base64, &["30000"], Cpu),
        w("json", scripts::JSON, native::json, &["250"], Mixed),
        w("checksum", scripts::CHECKSUM, native::checksum, &["60000"], Cpu),
        w("compress", scripts::COMPRESS, native::compress, &["30000"], Cpu),
        w("mandelbrot", scripts::MANDELBROT, native::mandelbrot, &["48"], Cpu),
        w("nbody", scripts::NBODY, native::nbody, &["1500"], Cpu),
        w("binarytrees", scripts::BINARYTREES, native::binarytrees, &["12"], Memory),
        w("spectralnorm", scripts::SPECTRALNORM, native::spectralnorm, &["48", "4"], Cpu),
        w("dijkstra", scripts::DIJKSTRA, native::dijkstra, &["22"], Memory),
        w("wordcount", scripts::WORDCOUNT, native::wordcount, &["40000"], Cpu),
        w("histogram", scripts::HISTOGRAM, native::histogram, &["50000"], Memory),
        w("montecarlo", scripts::MONTECARLO, native::montecarlo, &["25000"], Cpu),
        w("strings", scripts::STRINGS, native::strings, &["2500"], Memory),
    ]
}

/// Looks up a workload by name.
pub fn find_workload(name: &str) -> Option<FaasWorkload> {
    faas_registry().into_iter().find(|w| w.name == name)
}

fn w(
    name: &'static str,
    script: &'static str,
    native: NativeFn,
    default_args: &'static [&'static str],
    category: WorkloadCategory,
) -> FaasWorkload {
    FaasWorkload { name, script, native, default_args, category }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_25_unique_workloads() {
        let reg = faas_registry();
        assert_eq!(reg.len(), 25);
        let mut names: Vec<&str> = reg.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn paper_headline_functions_present() {
        for name in
            ["cpustress", "memstress", "iostress", "logging", "factors", "filesystem", "ack"]
        {
            assert!(find_workload(name).is_some(), "{name} missing");
        }
        assert!(find_workload("nope").is_none());
    }

    #[test]
    fn categories_cover_all_classes() {
        use std::collections::HashSet;
        let cats: HashSet<_> = faas_registry().iter().map(|w| w.category()).collect();
        assert_eq!(cats.len(), 4, "all four categories represented");
    }

    #[test]
    fn every_workload_has_args_and_script() {
        for wl in faas_registry() {
            assert!(!wl.default_args().is_empty(), "{}", wl.name);
            assert!(wl.script().contains("result("), "{} script must emit a result", wl.name);
        }
    }
}

//! The metrics registry: monotonic counters and fixed-bucket histograms.
//!
//! Hot-path updates are single atomic operations; the registry's lock is
//! taken only to register or look up an instrument by name. Values are
//! plain integers fed by the simulation's deterministic counts — no
//! wall-clock reads, so test assertions on metric values are exact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, in-flight jobs,
/// cache entries). Stored as a `u64` — the quantities ConfBench gauges are
/// counts, never negative — with saturating decrement.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements by one, saturating at zero.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Decrements by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, inclusive upper bounds (`value <= bound` lands in
/// that bucket; larger values land in the implicit overflow bucket).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bounds (sorted, deduplicated).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Serializable point-in-time state of one [`Histogram`].
///
/// `buckets` has one more entry than `bounds`: the final entry is the
/// overflow bucket for values above the largest bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (last entry = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Serializable point-in-time state of a whole [`MetricsRegistry`]
/// (the JSON body of `GET /v1/metrics?format=json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (absent from pre-scheduler peers).
    #[serde(default)]
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A named collection of counters and histograms, shared via `Arc`.
///
/// Instruments are created on first use and live for the registry's
/// lifetime; repeated lookups return the same instrument, so callers may
/// either cache the `Arc` (hot paths) or look up by name each time.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns (creating if needed) the counter named `name`.
    ///
    /// Names follow the Prometheus convention — `snake_case` with a unit
    /// suffix, optionally with `{key="value"}` labels baked into the name
    /// (the registry treats the whole string as the identity).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_owned()).or_default())
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name.to_owned()).or_default())
    }

    /// Returns (creating if needed) the histogram named `name` with the
    /// given inclusive upper `bounds`. Bounds are fixed at first
    /// registration; later calls ignore the argument.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// The value of counter `name`, or `None` if it was never created.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.lock().get(name).map(|c| c.get())
    }

    /// The value of gauge `name`, or `None` if it was never created.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.lock().get(name).map(|g| g.get())
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (counters as `name value`, histograms as `_bucket`/`_sum`/`_count`
    /// series), names sorted for deterministic output.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        // BTreeMap order keeps labeled series of one family adjacent, so a
        // single `# TYPE` line per family is just TYPE-on-base-change.
        let mut last_family = String::new();
        for (name, value) in &snap.counters {
            let base = base_name(name);
            if base != last_family {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_family = base.to_owned();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_family.clear();
        for (name, value) in &snap.gauges {
            let base = base_name(name);
            if base != last_family {
                let _ = writeln!(out, "# TYPE {base} gauge");
                last_family = base.to_owned();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_family.clear();
        for (name, h) in &snap.histograms {
            let (base, labels) = split_labels(name);
            if base != last_family {
                let _ = writeln!(out, "# TYPE {base} histogram");
                last_family = base.to_owned();
            }
            let with_le = |le: &str| match labels {
                "" => format!("{{le=\"{le}\"}}"),
                labels => format!("{{{labels},le=\"{le}\"}}"),
            };
            let plain = match labels {
                "" => String::new(),
                labels => format!("{{{labels}}}"),
            };
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = match h.bounds.get(i) {
                    Some(le) => le.to_string(),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(out, "{base}_bucket{} {cumulative}", with_le(&le));
            }
            let _ = writeln!(out, "{base}_sum{plain} {}", h.sum);
            let _ = writeln!(out, "{base}_count{plain} {}", h.count);
        }
        out
    }
}

/// Strips baked-in `{labels}` from a metric name for `# TYPE` lines.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splits `name{k="v"}` into `("name", "k=\"v\"")`; labels are empty when
/// the name carries none.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(41);
        assert_eq!(reg.counter_value("requests_total"), Some(42));
        assert_eq!(reg.counter_value("absent"), None);
    }

    #[test]
    fn histogram_buckets_values_inclusively() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ms", &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 0, 1]); // <=10: {1,10}; <=100: {11,100}; overflow: 5000
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5122);
    }

    #[test]
    fn gauges_move_both_ways_and_saturate_at_zero() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("queue_depth");
        g.add(5);
        g.dec();
        assert_eq!(reg.gauge_value("queue_depth"), Some(4));
        g.sub(10);
        assert_eq!(g.get(), 0, "decrement saturates at zero");
        g.set(42);
        assert_eq!(reg.gauge_value("queue_depth"), Some(42));
        assert_eq!(reg.gauge_value("absent"), None);
    }

    #[test]
    fn gauges_render_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.gauge("sched_queue_depth").set(3);
        reg.counter("c_total").inc();
        let text = reg.render_text();
        assert!(text.contains("# TYPE sched_queue_depth gauge"), "{text}");
        assert!(text.contains("sched_queue_depth 3"), "{text}");
        let json = serde_json::to_string(&reg.snapshot()).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.gauges["sched_queue_depth"], 3);
        // Old peers omit the gauges key entirely; default applies.
        let legacy: RegistrySnapshot =
            serde_json::from_str(r#"{"counters":{},"histograms":{}}"#).unwrap();
        assert!(legacy.gauges.is_empty());
    }

    #[test]
    fn histogram_bounds_sorted_and_deduped() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x", &[100, 10, 100, 1]);
        assert_eq!(h.bounds(), &[1, 10, 100]);
    }

    #[test]
    fn text_rendering_is_prometheus_shaped_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(2);
        reg.counter("a_total{platform=\"tdx\"}").inc();
        reg.histogram("lat_ms", &[5]).observe(3);
        reg.histogram("lat_ms", &[5]).observe(9);
        let text = reg.render_text();
        let a = text.find("a_total{platform=\"tdx\"} 1").expect("labeled counter");
        let b = text.find("b_total 2").expect("plain counter");
        assert!(a < b, "names must render sorted:\n{text}");
        assert!(text.contains("# TYPE a_total counter"), "label stripped in TYPE line");
        assert!(text.contains("lat_ms_bucket{le=\"5\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 2"), "cumulative buckets");
        assert!(text.contains("lat_ms_sum 12"));
        assert!(text.contains("lat_ms_count 2"));
    }

    #[test]
    fn one_type_line_per_family_and_labeled_histogram_series() {
        let reg = MetricsRegistry::new();
        reg.counter("served_total{platform=\"snp\"}").inc();
        reg.counter("served_total{platform=\"tdx\"}").add(2);
        reg.histogram("lat_ms{platform=\"tdx\"}", &[5]).observe(3);
        let text = reg.render_text();
        assert_eq!(
            text.matches("# TYPE served_total counter").count(),
            1,
            "adjacent labeled series share one TYPE line:\n{text}"
        );
        assert!(text.contains("lat_ms_bucket{platform=\"tdx\",le=\"5\"} 1"), "{text}");
        assert!(text.contains("lat_ms_sum{platform=\"tdx\"} 3"), "{text}");
        assert!(text.contains("lat_ms_count{platform=\"tdx\"} 1"), "{text}");
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(7);
        reg.histogram("h", &[1]).observe(2);
        let json = serde_json::to_string(&reg.snapshot()).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters["c"], 7);
        assert_eq!(back.histograms["h"].count, 1);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRegistry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits_total");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter_value("hits_total"), Some(4000));
    }
}

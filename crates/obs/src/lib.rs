//! End-to-end observability for the ConfBench pipeline.
//!
//! The paper's core mechanism (§III-B) is that measurement data is
//! piggybacked onto every dispatched run. This crate supplies the two
//! primitives that make the *pipeline itself* observable, not just the
//! workload:
//!
//! * [`SpanRecorder`] / [`ActiveSpan`] — lightweight structured trace spans
//!   with parent/child nesting, timestamped on the injectable
//!   [`Clock`](confbench_types::Clock) (deterministic under
//!   [`ManualClock`](confbench_types::ManualClock)), finishing into the
//!   [`TraceSpan`](confbench_types::TraceSpan) wire type that rides on
//!   [`RunResult`](confbench_types::RunResult);
//! * [`MetricsRegistry`] — monotonic [`Counter`]s, bidirectional [`Gauge`]s
//!   (queue depth, in-flight jobs), and fixed-bucket [`Histogram`]s, shared
//!   via `Arc`, lock-cheap (atomics on the hot path, a registry lock only on
//!   first registration), rendered as text or JSON by `GET /v1/metrics`.
//!
//! Everything here is deterministic: no wall-clock reads happen unless the
//! injected clock performs them, and no randomness is involved.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use confbench_obs::{MetricsRegistry, SpanRecorder};
//! use confbench_types::ManualClock;
//!
//! let clock = Arc::new(ManualClock::new());
//! let recorder = SpanRecorder::new(clock.clone());
//! let mut root = recorder.root("gateway.run");
//! clock.advance(5);
//! let mut child = root.child("host.execute");
//! child.add_attr("vm_exits", 12);
//! clock.advance(3);
//! root.finish_child(child);
//! let tree = root.finish();
//! assert_eq!(tree.duration_ms(), 8);
//! assert_eq!(tree.find("host.execute").unwrap().attr("vm_exits"), Some(12));
//!
//! let metrics = Arc::new(MetricsRegistry::new());
//! metrics.counter("gateway_requests_total").inc();
//! assert_eq!(metrics.counter("gateway_requests_total").get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use span::{ActiveSpan, SpanRecorder};

//! Span recording: building [`TraceSpan`] trees against an injectable clock.

use std::sync::Arc;

use confbench_types::{Clock, SystemClock, TraceSpan};

/// Factory for root spans, bound to a [`Clock`].
///
/// Cheap to clone (one `Arc`); every layer of the pipeline that opens spans
/// holds one, and all of them share the same clock so timestamps across the
/// tree are coherent.
#[derive(Clone)]
pub struct SpanRecorder {
    clock: Arc<dyn Clock>,
}

impl Default for SpanRecorder {
    /// A recorder on the wall clock.
    fn default() -> Self {
        SpanRecorder::new(Arc::new(SystemClock))
    }
}

impl SpanRecorder {
    /// Creates a recorder reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        SpanRecorder { clock }
    }

    /// The recorder's clock (shared with every span it opens).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Opens a root span starting now.
    pub fn root(&self, name: impl Into<String>) -> ActiveSpan {
        ActiveSpan {
            clock: Arc::clone(&self.clock),
            span: TraceSpan::new(name, self.clock.now_ms()),
        }
    }
}

/// An open span under construction.
///
/// Children are opened with [`ActiveSpan::child`] and re-attached with
/// [`ActiveSpan::finish_child`] (which stamps their end time); already-built
/// subtrees — e.g. a trace that round-tripped from a remote host — are
/// attached verbatim with [`ActiveSpan::adopt`]. Dropping an `ActiveSpan`
/// without calling [`ActiveSpan::finish`] discards it.
pub struct ActiveSpan {
    clock: Arc<dyn Clock>,
    span: TraceSpan,
}

impl ActiveSpan {
    /// The span's name.
    pub fn name(&self) -> &str {
        &self.span.name
    }

    /// Opens a child span starting now. The child is *detached* until passed
    /// back through [`ActiveSpan::finish_child`].
    pub fn child(&self, name: impl Into<String>) -> ActiveSpan {
        ActiveSpan {
            clock: Arc::clone(&self.clock),
            span: TraceSpan::new(name, self.clock.now_ms()),
        }
    }

    /// Stamps `child`'s end time and attaches it under this span.
    pub fn finish_child(&mut self, mut child: ActiveSpan) {
        child.span.end_ms = self.clock.now_ms();
        self.span.children.push(child.span);
    }

    /// Attaches an already-finished subtree (e.g. one deserialized from a
    /// remote host's result) without touching its timestamps.
    pub fn adopt(&mut self, subtree: TraceSpan) {
        self.span.children.push(subtree);
    }

    /// Sets (overwriting) an attribute on this span.
    pub fn set_attr(&mut self, key: impl Into<String>, value: u64) {
        self.span.set_attr(key, value);
    }

    /// Adds to an attribute on this span, creating it at zero first.
    pub fn add_attr(&mut self, key: impl Into<String>, delta: u64) {
        self.span.add_attr(key, delta);
    }

    /// Stamps the end time and returns the finished wire span.
    pub fn finish(mut self) -> TraceSpan {
        self.span.end_ms = self.clock.now_ms();
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::ManualClock;

    fn recorder() -> (SpanRecorder, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (SpanRecorder::new(clock.clone()), clock)
    }

    #[test]
    fn nesting_and_timestamps_follow_the_clock() {
        let (rec, clock) = recorder();
        clock.advance(100);
        let mut root = rec.root("gateway.run");
        clock.advance(10);
        let mut host = root.child("host.execute");
        clock.advance(5);
        let vm = host.child("tdx.seamcall");
        clock.advance(2);
        host.finish_child(vm);
        clock.advance(1);
        root.finish_child(host);
        let tree = root.finish();

        assert_eq!(tree.start_ms, 100);
        assert_eq!(tree.end_ms, 118);
        let host = &tree.children[0];
        assert_eq!((host.start_ms, host.end_ms), (110, 118));
        let vm = &host.children[0];
        assert_eq!((vm.start_ms, vm.end_ms), (115, 117));
    }

    #[test]
    fn attrs_and_adoption() {
        let (rec, _clock) = recorder();
        let mut root = rec.root("r");
        root.add_attr("retries", 1);
        root.add_attr("retries", 1);
        root.set_attr("platform", 7);

        let mut remote = TraceSpan::new("remote.execute", 400);
        remote.end_ms = 450;
        root.adopt(remote);

        let tree = root.finish();
        assert_eq!(tree.attr("retries"), Some(2));
        assert_eq!(tree.attr("platform"), Some(7));
        // Adopted subtree keeps foreign timestamps untouched.
        assert_eq!(tree.children[0].start_ms, 400);
        assert_eq!(tree.children[0].end_ms, 450);
    }

    #[test]
    fn default_recorder_uses_wall_clock() {
        let rec = SpanRecorder::default();
        let root = rec.root("r");
        let tree = root.finish();
        assert!(tree.end_ms >= tree.start_ms);
    }

    #[test]
    fn children_record_in_order() {
        let (rec, clock) = recorder();
        let mut root = rec.root("r");
        for name in ["a", "b", "c"] {
            let c = root.child(name);
            clock.advance(1);
            root.finish_child(c);
        }
        let tree = root.finish();
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}

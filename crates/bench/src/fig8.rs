//! Fig. 8 — CCA: box-and-whiskers of raw execution times, secure realm vs
//! normal VM, per (function, language).
//!
//! Paper shape: the confidential series have visibly longer whiskers
//! (higher trial variance) — the simulator's timing noise plus realm
//! overheads — and higher medians. The paper plots this detail because it
//! is the first CCA baseline in the literature.

use confbench_faasrt::FaasFunction as _;
use confbench_stats::Summary;
use confbench_types::{Language, TeePlatform};
use confbench_workloads::find_workload;

use crate::{measure_function, ExperimentConfig, Scale};

/// One (function, language) pair's raw distributions on CCA.
#[derive(Debug, Clone)]
pub struct CcaDistribution {
    /// Function name.
    pub workload: String,
    /// Language measured.
    pub language: Language,
    /// Raw secure-realm trial times (ms).
    pub secure_ms: Vec<f64>,
    /// Raw normal-VM trial times (ms).
    pub normal_ms: Vec<f64>,
}

impl CcaDistribution {
    /// Summaries (secure, normal).
    pub fn summaries(&self) -> (Summary, Summary) {
        (Summary::from_samples(&self.secure_ms), Summary::from_samples(&self.normal_ms))
    }
}

/// The functions Fig. 8 details (a representative subset spanning the
/// resource classes).
pub const FIG8_WORKLOADS: [&str; 6] =
    ["cpustress", "memstress", "iostress", "logging", "factors", "filesystem"];

/// Languages shown in the figure's panels.
pub const FIG8_LANGUAGES: [Language; 3] = [Language::Python, Language::Lua, Language::Go];

/// Runs the distributions.
pub fn run(cfg: ExperimentConfig) -> Vec<CcaDistribution> {
    let mut out = Vec::new();
    for name in FIG8_WORKLOADS {
        let workload = find_workload(name).expect("known workload");
        let args = match cfg.scale {
            Scale::Paper => workload.default_args(),
            Scale::Quick => crate::heatmap_quick_args(name),
        };
        for language in FIG8_LANGUAGES {
            let (secure_ms, normal_ms) = measure_function(
                &workload,
                &args,
                language,
                TeePlatform::Cca,
                cfg.trials().max(10), // distributions need samples
                cfg.seed,
            )
            .expect("workload runs");
            out.push(CcaDistribution {
                workload: workload.name().to_owned(),
                language,
                secure_ms,
                normal_ms,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_longer_whiskers_in_realms() {
        let dists = run(ExperimentConfig::quick(17));
        assert_eq!(dists.len(), FIG8_WORKLOADS.len() * FIG8_LANGUAGES.len());

        let mut secure_wider = 0usize;
        for d in &dists {
            let (secure, normal) = d.summaries();
            assert!(secure.n >= 10 && normal.n >= 10);
            if secure.rel_spread() > normal.rel_spread() {
                secure_wider += 1;
            }
            // Realms are slower in the median for the vast majority of
            // cells (checked in aggregate below via means).
        }
        // "The length of the whiskers tends to be larger" — a strong
        // majority, not necessarily every single cell.
        assert!(
            secure_wider * 3 >= dists.len() * 2,
            "only {secure_wider}/{} cells had wider secure whiskers",
            dists.len()
        );

        let mean_ratio: f64 = dists
            .iter()
            .map(|d| {
                let (s, n) = d.summaries();
                s.median() / n.median()
            })
            .sum::<f64>()
            / dists.len() as f64;
        assert!(mean_ratio > 1.3, "cca medians must sit well above normal: {mean_ratio}");
    }
}

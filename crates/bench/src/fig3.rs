//! Fig. 3 — Confidential ML: distribution (stacked percentiles) of observed
//! inference times, secure vs normal, for all three TEEs, log scale.
//!
//! Paper shape: TDX ≈ SEV-SNP at close-to-native speed (TDX with a limited
//! advantage); CCA up to ~1.33× its own baseline and far slower in absolute
//! terms (the FVP tax).

use confbench_stats::Summary;
use confbench_types::{TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;
use confbench_workloads::MlWorkload;

use crate::{ExperimentConfig, Scale};

/// One series of Fig. 3: the per-inference wall times of a target.
#[derive(Debug, Clone)]
pub struct MlSeries {
    /// Which VM this series measures.
    pub target: VmTarget,
    /// One sample per (image × trial): inference wall ms.
    pub inference_ms: Vec<f64>,
}

impl MlSeries {
    /// Summary of the series.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.inference_ms)
    }
}

/// Results for the figure: six series (3 platforms × 2 kinds).
#[derive(Debug, Clone)]
pub struct MlFigure {
    /// Series in plotting order (per platform: secure then normal).
    pub series: Vec<MlSeries>,
}

impl MlFigure {
    /// Secure/normal mean-time ratio for a platform.
    ///
    /// # Panics
    ///
    /// Panics if the platform's series are missing.
    pub fn ratio(&self, platform: TeePlatform) -> f64 {
        let get = |kind| {
            self.series
                .iter()
                .find(|s| s.target == VmTarget { platform, kind })
                .expect("series present")
                .summary()
                .mean
        };
        get(VmKind::Secure) / get(VmKind::Normal)
    }
}

/// Runs the experiment: a MobileNet-class model classifying the 40-image
/// dataset in every VM (subset of images under `Scale::Quick`).
pub fn run(cfg: ExperimentConfig) -> MlFigure {
    let ml = MlWorkload::new(cfg.seed);
    let images = match cfg.scale {
        Scale::Quick => 6,
        Scale::Paper => ml.dataset_size(),
    };
    let runs: Vec<_> = (0..images).map(|i| ml.classify(i)).collect();

    let mut series = Vec::new();
    for platform in TeePlatform::ALL {
        for kind in VmKind::ALL {
            let target = VmTarget { platform, kind };
            let mut vm = TeeVmBuilder::new(target).seed(cfg.seed).build();
            let mut inference_ms = Vec::new();
            for _trial in 0..cfg.trials() {
                for run in &runs {
                    inference_ms.push(vm.execute(&run.trace).wall_ms);
                }
            }
            series.push(MlSeries { target, inference_ms });
        }
    }
    MlFigure { series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let fig = run(ExperimentConfig::quick(7));
        assert_eq!(fig.series.len(), 6);

        // TDX and SNP near-native; TDX with a limited advantage.
        let tdx = fig.ratio(TeePlatform::Tdx);
        let snp = fig.ratio(TeePlatform::SevSnp);
        assert!((0.93..1.18).contains(&tdx), "tdx ml ratio {tdx}");
        assert!((0.93..1.22).contains(&snp), "snp ml ratio {snp}");

        // CCA overhead larger, up to ~1.33x.
        let cca = fig.ratio(TeePlatform::Cca);
        assert!((1.02..1.5).contains(&cca), "cca ml ratio {cca}");
        assert!(cca > tdx && cca > snp);

        // Absolute CCA times dwarf the hardware TEEs (log scale in the
        // paper for this reason).
        let mean_of = |platform, kind| {
            fig.series
                .iter()
                .find(|s| s.target == VmTarget { platform, kind })
                .unwrap()
                .summary()
                .mean
        };
        assert!(
            mean_of(TeePlatform::Cca, VmKind::Normal)
                > 4.0 * mean_of(TeePlatform::Tdx, VmKind::Normal)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run(ExperimentConfig::quick(3));
        let b = run(ExperimentConfig::quick(3));
        assert_eq!(a.series[0].inference_ms, b.series[0].inference_ms);
    }
}

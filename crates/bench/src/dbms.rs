//! §IV-C "Confidential DBMS" — the speedtest suite's secure/normal ratios
//! per TEE (the paper reports these textually: TDX and SEV-SNP ≈ 1, CCA up
//! to ~10× on average).

use confbench_minidb::SpeedTestCase;
use confbench_types::{TeePlatform, VmKind, VmTarget};
use confbench_workloads::dbms_speedtest;

use crate::{mean, run_trace, ExperimentConfig, Scale};

/// One row of the DBMS table: a speedtest case's ratio on each platform.
#[derive(Debug, Clone)]
pub struct DbmsRow {
    /// The test case.
    pub case: SpeedTestCase,
    /// Rows the test touched.
    pub rows: u64,
    /// Secure/normal mean ratio per platform, in [`TeePlatform::ALL`] order.
    pub ratios: [f64; 3],
}

/// The full DBMS experiment result.
#[derive(Debug, Clone)]
pub struct DbmsResults {
    /// One row per speedtest case.
    pub rows: Vec<DbmsRow>,
}

impl DbmsResults {
    /// Mean ratio across all cases for a platform.
    pub fn average_ratio(&self, platform: TeePlatform) -> f64 {
        let idx = TeePlatform::ALL.iter().position(|&p| p == platform).expect("known platform");
        mean(&self.rows.iter().map(|r| r.ratios[idx]).collect::<Vec<_>>())
    }

    /// Worst-case ratio across all cases for a platform (the paper's "up
    /// to" figure).
    pub fn max_ratio(&self, platform: TeePlatform) -> f64 {
        let idx = TeePlatform::ALL.iter().position(|&p| p == platform).expect("known platform");
        self.rows.iter().map(|r| r.ratios[idx]).fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Runs the speedtest suite once to record traces, then measures each test's
/// trace on every target.
///
/// # Panics
///
/// Panics if the (deterministic) suite itself fails.
pub fn run(cfg: ExperimentConfig) -> DbmsResults {
    let size = match cfg.scale {
        Scale::Quick => 10,
        Scale::Paper => 100, // speedtest1's default relative size, per the paper
    };
    let reports = dbms_speedtest(size, cfg.seed).expect("speedtest runs");
    let empty = confbench_types::OpTrace::new();

    let mut rows = Vec::new();
    for report in reports {
        let mut ratios = [0.0f64; 3];
        for (i, platform) in TeePlatform::ALL.iter().enumerate() {
            let seed = crate::mix_seed(cfg.seed, report.case.name());
            let secure = run_trace(
                VmTarget { platform: *platform, kind: VmKind::Secure },
                &empty,
                &report.trace,
                cfg.trials(),
                seed,
            );
            let normal = run_trace(
                VmTarget { platform: *platform, kind: VmKind::Normal },
                &empty,
                &report.trace,
                cfg.trials(),
                seed,
            );
            ratios[i] = mean(&secure) / mean(&normal);
        }
        rows.push(DbmsRow { case: report.case, rows: report.rows, ratios });
    }
    DbmsResults { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbms_shape_matches_paper() {
        let results = run(ExperimentConfig::quick(5));
        assert_eq!(results.rows.len(), 15);

        // TDX and SEV-SNP: "overheads very similar and close to 1".
        let tdx = results.average_ratio(TeePlatform::Tdx);
        let snp = results.average_ratio(TeePlatform::SevSnp);
        assert!((0.95..1.35).contains(&tdx), "tdx dbms avg {tdx}");
        assert!((0.95..1.35).contains(&snp), "snp dbms avg {snp}");
        assert!((tdx - snp).abs() < 0.25, "tdx {tdx} vs snp {snp} should be similar");

        // CCA: "the largest, on average up to 10x" — a worst case far
        // above the hardware TEEs.
        let cca = results.average_ratio(TeePlatform::Cca);
        assert!(cca > 2.2, "cca dbms avg {cca}");
        assert!(
            results.max_ratio(TeePlatform::Cca) > 3.0,
            "cca worst case {}",
            results.max_ratio(TeePlatform::Cca)
        );
        assert!(results.max_ratio(TeePlatform::Cca) < 14.0);
        assert!(cca > 2.0 * tdx.max(snp));
    }

    #[test]
    fn autocommit_ratio_highest_on_cca() {
        // The fsync-per-statement test is the most syscall-bound — CCA's
        // worst case should be an fsync-heavy or I/O-heavy case.
        let results = run(ExperimentConfig::quick(5));
        let idx = 2; // CCA column
        let auto =
            results.rows.iter().find(|r| r.case == SpeedTestCase::InsertAutocommit).unwrap().ratios
                [idx];
        let txn = results
            .rows
            .iter()
            .find(|r| r.case == SpeedTestCase::InsertTransaction)
            .unwrap()
            .ratios[idx];
        assert!(auto > txn, "autocommit {auto} should exceed batched {txn} on CCA");
    }
}

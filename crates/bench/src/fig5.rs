//! Fig. 5 — Attestation: absolute wall-clock latencies of report/quote
//! creation ("attest") and validation ("check") for TDX and SEV-SNP, log
//! scale.
//!
//! Paper shape: both phases are faster on SEV-SNP; TDX's check phase is the
//! slowest by far because the DCAP verifier fetches TCB info and CRLs from
//! the Intel PCS over the network, while SNP's certificates come from the
//! local hardware.

use std::sync::{Arc, Barrier};

use confbench_attest::{
    quote_runtime, Evidence, SessionCache, SessionConfig, SnpEcosystem, TdxEcosystem,
};
use confbench_stats::Summary;
use confbench_types::{Clock, ManualClock, TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

use crate::ExperimentConfig;

/// The four bars of Fig. 5.
#[derive(Debug, Clone)]
pub struct AttestationFigure {
    /// TDX quote generation latencies (ms).
    pub tdx_attest_ms: Vec<f64>,
    /// TDX quote verification latencies (ms).
    pub tdx_check_ms: Vec<f64>,
    /// SNP report generation latencies (ms).
    pub snp_attest_ms: Vec<f64>,
    /// SNP report verification latencies (ms).
    pub snp_check_ms: Vec<f64>,
}

impl AttestationFigure {
    /// Summaries in the figure's bar order: tdx-attest, tdx-check,
    /// snp-attest, snp-check.
    pub fn summaries(&self) -> [(&'static str, Summary); 4] {
        [
            ("tdx/attest", Summary::from_samples(&self.tdx_attest_ms)),
            ("tdx/check", Summary::from_samples(&self.tdx_check_ms)),
            ("snp/attest", Summary::from_samples(&self.snp_attest_ms)),
            ("snp/check", Summary::from_samples(&self.snp_check_ms)),
        ]
    }
}

/// Runs `trials` full attestation flows per platform.
pub fn run(cfg: ExperimentConfig) -> AttestationFigure {
    let trials = cfg.trials();

    let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(cfg.seed).build();
    let tdx = TdxEcosystem::new(cfg.seed);
    let mut tdx_attest_ms = Vec::new();
    let mut tdx_check_ms = Vec::new();
    for i in 0..trials {
        let nonce = TdxEcosystem::report_data_for_nonce(cfg.seed ^ u64::from(i));
        let (quote, attest) = tdx.generate_quote(&mut td, nonce).expect("td quote");
        let check = tdx.verify_quote(&quote, nonce).expect("quote verifies");
        tdx_attest_ms.push(attest.latency_ms);
        tdx_check_ms.push(check.latency_ms);
    }

    let mut guest = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(cfg.seed).build();
    let snp = SnpEcosystem::new(cfg.seed);
    let mut snp_attest_ms = Vec::new();
    let mut snp_check_ms = Vec::new();
    for i in 0..trials {
        let mut nonce = [0u8; 64];
        nonce[..8].copy_from_slice(&(cfg.seed ^ u64::from(i)).to_be_bytes());
        let (report, attest) = snp.request_report(&mut guest, nonce).expect("snp report");
        let check = snp.verify_report(&report, nonce).expect("report verifies");
        snp_attest_ms.push(attest.latency_ms);
        snp_check_ms.push(check.latency_ms);
    }

    AttestationFigure { tdx_attest_ms, tdx_check_ms, snp_attest_ms, snp_check_ms }
}

/// Threads racing the fresh session cache in the contended scenario.
pub const FLEET_CONTENDERS: usize = 32;

/// The fleet-amortized extension of Fig. 5: per-caller TDX verification
/// latency when a gateway fleet shares one attestation-session cache.
///
/// Three scenarios: `cold` (fresh cache, every verification pays the full
/// DCAP cycle against the live PCS), `warm` (a live session answers from
/// the cache — one lookup, zero network), and `contended` (32 callers rush
/// one fresh cache; single-flight funds one verification and every waiter
/// inherits its latency).
#[derive(Debug, Clone)]
pub struct FleetAmortizedFigure {
    /// Cold, uncached verification latencies (ms).
    pub cold_ms: Vec<f64>,
    /// Warm cache-hit latencies (ms).
    pub warm_ms: Vec<f64>,
    /// Per-caller latencies of the 32-way cold rush (ms).
    pub contended_ms: Vec<f64>,
}

impl FleetAmortizedFigure {
    /// Summaries in row order: cold, warm, contended.
    pub fn summaries(&self) -> [(&'static str, Summary); 3] {
        [
            ("tdx/cold", Summary::from_samples(&self.cold_ms)),
            ("tdx/warm-session", Summary::from_samples(&self.warm_ms)),
            ("tdx/32-way-rush", Summary::from_samples(&self.contended_ms)),
        ]
    }

    /// p99 latency of a scenario's samples.
    pub fn p99(samples: &[f64]) -> f64 {
        Summary::from_samples(samples).percentile(99.0)
    }
}

/// TDX evidence (quote + e-vTPM runtime snapshot) from a fresh fleet VM.
fn fleet_evidence(eco: &TdxEcosystem, seed: u64, nonce: u64) -> (Evidence, [u8; 64]) {
    let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(seed).build();
    let data = TdxEcosystem::report_data_for_nonce(nonce);
    let (quote, _) = eco.generate_quote(&mut vm, data).expect("td quote");
    let runtime = quote_runtime(&vm).expect("runtime snapshot").0;
    (Evidence::tdx(quote).with_runtime(runtime), data)
}

/// Runs the fleet-amortized scenarios (the Fig. 5 "fleet" row).
pub fn fleet_amortized(cfg: ExperimentConfig) -> FleetAmortizedFigure {
    let trials = cfg.trials();

    // Cold: a fresh cache and ecosystem per trial, so every verification
    // pays quote crypto plus the three PCS round trips.
    let mut cold_ms = Vec::new();
    for i in 0..trials {
        let clock = Arc::new(ManualClock::new());
        let cache = SessionCache::new(clock as Arc<dyn Clock>, SessionConfig::default());
        let eco = TdxEcosystem::new(cfg.seed ^ u64::from(i));
        let (evidence, data) = fleet_evidence(&eco, cfg.seed, cfg.seed ^ u64::from(i));
        let outcome = cache.verify_or_join(&eco, &evidence, data).expect("cold verification");
        cold_ms.push(outcome.timing.latency_ms);
    }

    // Warm: one live session, every later caller hits the cache.
    let clock = Arc::new(ManualClock::new());
    let cache = SessionCache::new(clock as Arc<dyn Clock>, SessionConfig::default());
    let eco = TdxEcosystem::new(cfg.seed);
    let (evidence, data) = fleet_evidence(&eco, cfg.seed, cfg.seed);
    cache.verify_or_join(&eco, &evidence, data).expect("warm-up verification");
    let mut warm_ms = Vec::new();
    for _ in 0..trials {
        let outcome = cache.verify_or_join(&eco, &evidence, data).expect("warm hit");
        warm_ms.push(outcome.timing.latency_ms);
    }

    // Contended: 32 callers rush a fresh cache at once; single-flight
    // elects one verification and the rest inherit its latency.
    let cache = Arc::new(SessionCache::new(
        Arc::new(ManualClock::new()) as Arc<dyn Clock>,
        SessionConfig::default(),
    ));
    let eco = Arc::new(TdxEcosystem::new(cfg.seed ^ 0xf1ee));
    let (evidence, data) = fleet_evidence(&eco, cfg.seed, cfg.seed ^ 0xf1ee);
    let barrier = Arc::new(Barrier::new(FLEET_CONTENDERS));
    let contended_ms = (0..FLEET_CONTENDERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let eco = Arc::clone(&eco);
            let evidence = evidence.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache.verify_or_join(eco.as_ref(), &evidence, data).expect("rush").timing.latency_ms
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("contender"))
        .collect();
    assert_eq!(eco.collateral_fetches(), 1, "the rush must cost one PCS round trip");

    FleetAmortizedFigure { cold_ms, warm_ms, contended_ms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean;

    #[test]
    fn fig5_shape_matches_paper() {
        let fig = run(ExperimentConfig::quick(11));

        let tdx_attest = mean(&fig.tdx_attest_ms);
        let tdx_check = mean(&fig.tdx_check_ms);
        let snp_attest = mean(&fig.snp_attest_ms);
        let snp_check = mean(&fig.snp_check_ms);

        // Both phases faster on SNP.
        assert!(snp_attest < tdx_attest, "snp attest {snp_attest} vs tdx {tdx_attest}");
        assert!(snp_check < tdx_check, "snp check {snp_check} vs tdx {tdx_check}");
        // The TDX check is network-dominated: by far the largest bar
        // (log-scale-worthy gap).
        assert!(tdx_check > 5.0 * tdx_attest, "tdx check {tdx_check} vs attest {tdx_attest}");
        assert!(tdx_check > 10.0 * snp_check, "tdx check {tdx_check} vs snp check {snp_check}");
        // Absolute plausibility: tens of ms for local flows, >100 ms for
        // the PCS-bound check.
        assert!((1.0..200.0).contains(&snp_attest));
        assert!((1.0..200.0).contains(&snp_check));
        assert!(tdx_check > 100.0);
    }

    #[test]
    fn fleet_amortized_warm_p99_is_at_least_10x_below_cold() {
        let fig = fleet_amortized(ExperimentConfig::quick(11));
        let cold = FleetAmortizedFigure::p99(&fig.cold_ms);
        let warm = FleetAmortizedFigure::p99(&fig.warm_ms);
        let contended = FleetAmortizedFigure::p99(&fig.contended_ms);
        assert!(cold > 100.0, "cold p99 {cold} must be PCS-dominated");
        assert!(warm * 10.0 < cold, "warm p99 {warm} must be >=10x below cold {cold}");
        assert!(warm < 1.0, "cache hits are a lookup, not crypto: {warm}");
        assert!(
            contended < cold * 2.0,
            "32 contenders amortize one verification: p99 {contended} vs cold {cold}"
        );
        assert_eq!(fig.contended_ms.len(), FLEET_CONTENDERS);
    }

    #[test]
    fn trials_vary_with_network_jitter() {
        let fig = run(ExperimentConfig::quick(1));
        let s = Summary::from_samples(&fig.tdx_check_ms);
        assert!(s.stddev > 0.0, "WAN jitter must show in the check phase");
        let s = Summary::from_samples(&fig.snp_attest_ms);
        assert_eq!(s.stddev, 0.0, "local firmware latency is stable in the model");
    }
}

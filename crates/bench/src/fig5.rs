//! Fig. 5 — Attestation: absolute wall-clock latencies of report/quote
//! creation ("attest") and validation ("check") for TDX and SEV-SNP, log
//! scale.
//!
//! Paper shape: both phases are faster on SEV-SNP; TDX's check phase is the
//! slowest by far because the DCAP verifier fetches TCB info and CRLs from
//! the Intel PCS over the network, while SNP's certificates come from the
//! local hardware.

use confbench_attest::{SnpEcosystem, TdxEcosystem};
use confbench_stats::Summary;
use confbench_types::{TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

use crate::ExperimentConfig;

/// The four bars of Fig. 5.
#[derive(Debug, Clone)]
pub struct AttestationFigure {
    /// TDX quote generation latencies (ms).
    pub tdx_attest_ms: Vec<f64>,
    /// TDX quote verification latencies (ms).
    pub tdx_check_ms: Vec<f64>,
    /// SNP report generation latencies (ms).
    pub snp_attest_ms: Vec<f64>,
    /// SNP report verification latencies (ms).
    pub snp_check_ms: Vec<f64>,
}

impl AttestationFigure {
    /// Summaries in the figure's bar order: tdx-attest, tdx-check,
    /// snp-attest, snp-check.
    pub fn summaries(&self) -> [(&'static str, Summary); 4] {
        [
            ("tdx/attest", Summary::from_samples(&self.tdx_attest_ms)),
            ("tdx/check", Summary::from_samples(&self.tdx_check_ms)),
            ("snp/attest", Summary::from_samples(&self.snp_attest_ms)),
            ("snp/check", Summary::from_samples(&self.snp_check_ms)),
        ]
    }
}

/// Runs `trials` full attestation flows per platform.
pub fn run(cfg: ExperimentConfig) -> AttestationFigure {
    let trials = cfg.trials();

    let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(cfg.seed).build();
    let tdx = TdxEcosystem::new(cfg.seed);
    let mut tdx_attest_ms = Vec::new();
    let mut tdx_check_ms = Vec::new();
    for i in 0..trials {
        let nonce = TdxEcosystem::report_data_for_nonce(cfg.seed ^ u64::from(i));
        let (quote, attest) = tdx.generate_quote(&mut td, nonce).expect("td quote");
        let check = tdx.verify_quote(&quote, nonce).expect("quote verifies");
        tdx_attest_ms.push(attest.latency_ms);
        tdx_check_ms.push(check.latency_ms);
    }

    let mut guest = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(cfg.seed).build();
    let snp = SnpEcosystem::new(cfg.seed);
    let mut snp_attest_ms = Vec::new();
    let mut snp_check_ms = Vec::new();
    for i in 0..trials {
        let mut nonce = [0u8; 64];
        nonce[..8].copy_from_slice(&(cfg.seed ^ u64::from(i)).to_be_bytes());
        let (report, attest) = snp.request_report(&mut guest, nonce).expect("snp report");
        let check = snp.verify_report(&report, nonce).expect("report verifies");
        snp_attest_ms.push(attest.latency_ms);
        snp_check_ms.push(check.latency_ms);
    }

    AttestationFigure { tdx_attest_ms, tdx_check_ms, snp_attest_ms, snp_check_ms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean;

    #[test]
    fn fig5_shape_matches_paper() {
        let fig = run(ExperimentConfig::quick(11));

        let tdx_attest = mean(&fig.tdx_attest_ms);
        let tdx_check = mean(&fig.tdx_check_ms);
        let snp_attest = mean(&fig.snp_attest_ms);
        let snp_check = mean(&fig.snp_check_ms);

        // Both phases faster on SNP.
        assert!(snp_attest < tdx_attest, "snp attest {snp_attest} vs tdx {tdx_attest}");
        assert!(snp_check < tdx_check, "snp check {snp_check} vs tdx {tdx_check}");
        // The TDX check is network-dominated: by far the largest bar
        // (log-scale-worthy gap).
        assert!(tdx_check > 5.0 * tdx_attest, "tdx check {tdx_check} vs attest {tdx_attest}");
        assert!(tdx_check > 10.0 * snp_check, "tdx check {tdx_check} vs snp check {snp_check}");
        // Absolute plausibility: tens of ms for local flows, >100 ms for
        // the PCS-bound check.
        assert!((1.0..200.0).contains(&snp_attest));
        assert!((1.0..200.0).contains(&snp_check));
        assert!(tdx_check > 100.0);
    }

    #[test]
    fn trials_vary_with_network_jitter() {
        let fig = run(ExperimentConfig::quick(1));
        let s = Summary::from_samples(&fig.tdx_check_ms);
        assert!(s.stddev > 0.0, "WAN jitter must show in the check phase");
        let s = Summary::from_samples(&fig.snp_attest_ms);
        assert_eq!(s.stddev, 0.0, "local firmware latency is stable in the model");
    }
}

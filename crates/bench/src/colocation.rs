//! Extension experiment — multi-tenant co-location (the paper's §VI future
//! work: "study the overheads of co-locating and executing several
//! TEE-aware VMs inside the same host, as it happens in a typical
//! cloud-based multi-tenant scenario").
//!
//! For each platform and tenant count, runs a workload on every co-resident
//! VM simultaneously and reports the slowdown relative to running alone.

use confbench_faasrt::{FaasFunction, FunctionLauncher};
use confbench_types::{Language, TeePlatform, VmTarget};
use confbench_vmm::SharedHost;
use confbench_workloads::find_workload;

use crate::{heatmap_quick_args, ExperimentConfig, Scale};

/// One row: a platform's co-location slowdowns per tenant count.
#[derive(Debug, Clone)]
pub struct ColocationRow {
    /// Platform measured (secure VMs).
    pub platform: TeePlatform,
    /// Workload name.
    pub workload: String,
    /// `(tenants, slowdown)` pairs.
    pub slowdowns: Vec<(usize, f64)>,
}

/// Tenant counts swept by the experiment.
pub const TENANT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Workloads spanning the contention channels: memory-bound, exit-bound,
/// and CPU-bound (the control).
pub const COLOCATION_WORKLOADS: [&str; 3] = ["memstress", "iostress", "checksum"];

/// Runs the sweep.
pub fn run(cfg: ExperimentConfig) -> Vec<ColocationRow> {
    let mut rows = Vec::new();
    for name in COLOCATION_WORKLOADS {
        let workload = find_workload(name).expect("known workload");
        let args = match cfg.scale {
            Scale::Paper => workload.default_args(),
            Scale::Quick => heatmap_quick_args(name),
        };
        let output = FunctionLauncher::new(Language::Go)
            .launch(&workload, &args)
            .expect("workload launches");
        for platform in TeePlatform::ALL {
            let mut slowdowns = Vec::new();
            for &tenants in &TENANT_COUNTS {
                let mut host = SharedHost::new(VmTarget::secure(platform), tenants, cfg.seed);
                let _ = host.run_solo(&output.startup_trace);
                slowdowns.push((tenants, host.colocation_slowdown(&output.trace, cfg.trials())));
            }
            rows.push(ColocationRow { platform, workload: workload.name().to_owned(), slowdowns });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_sweep_shapes() {
        let rows = run(ExperimentConfig::quick(31));
        assert_eq!(rows.len(), COLOCATION_WORKLOADS.len() * 3);
        for row in &rows {
            // A single tenant sees no contention, and slowdown grows with
            // tenant count.
            let single = row.slowdowns[0].1;
            assert!((0.99..1.01).contains(&single), "{row:?}");
            let pairs = &row.slowdowns;
            assert!(pairs.windows(2).all(|w| w[1].1 >= w[0].1 - 0.02), "monotone: {row:?}");
            if row.workload == "memstress" {
                assert!(pairs.last().unwrap().1 > 1.15, "memstress contends: {row:?}");
            }
        }
        // The CPU-bound control contends the least at full occupancy.
        for platform in [TeePlatform::Tdx, TeePlatform::SevSnp, TeePlatform::Cca] {
            let at8 = |name: &str| {
                rows.iter()
                    .find(|r| r.platform == platform && r.workload == name)
                    .unwrap()
                    .slowdowns
                    .last()
                    .unwrap()
                    .1
            };
            assert!(
                at8("checksum") <= at8("memstress") + 0.02,
                "{platform:?}: cpu control {} vs memstress {}",
                at8("checksum"),
                at8("memstress")
            );
        }
    }
}

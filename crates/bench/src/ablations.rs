//! Ablations of the cost-model design choices DESIGN.md calls out.
//!
//! 1. **Bounce buffers off** for TDX I/O — approximates the TDX Connect
//!    direct-I/O future the paper anticipates ("we expect these results to
//!    improve considerably").
//! 2. **FVP slowdown sweep** for CCA — separates the simulator tax from the
//!    realm tax, the open question the paper defers to real hardware.
//! 3. **Cache model off** — removes the sub-1.0 heatmap cells, validating
//!    the paper's cache-hit explanation of them.
//! 4. **Runtime footprint sensitivity** — scaling the Python profile's
//!    footprint moves its TEE ratio, the causal channel behind the
//!    managed-runtime finding.

use confbench_faasrt::{FaasFunction, FunctionLauncher, RuntimeProfile};
use confbench_types::{Language, OpTrace, TeePlatform, VmKind, VmTarget};
use confbench_vmm::{Fvp, TeeVmBuilder};
use confbench_workloads::find_workload;

use crate::{heatmap_quick_args, mean, ExperimentConfig, Scale};

/// Ratio measurement with configurable VM options.
fn ratio_with(
    trace: &OpTrace,
    startup: &OpTrace,
    platform: TeePlatform,
    trials: u32,
    seed: u64,
    configure: impl Fn(TeeVmBuilder) -> TeeVmBuilder,
) -> f64 {
    let run = |kind| {
        let builder = TeeVmBuilder::new(VmTarget { platform, kind }).seed(seed);
        let mut vm = configure(builder).build();
        let _ = vm.execute(startup);
        let ms: Vec<f64> = vm.execute_trials(trace, trials).iter().map(|r| r.wall_ms).collect();
        mean(&ms)
    };
    run(VmKind::Secure) / run(VmKind::Normal)
}

fn launched(name: &str, language: Language, scale: Scale) -> (OpTrace, OpTrace) {
    let workload = find_workload(name).expect("known workload");
    let args = match scale {
        Scale::Paper => workload.default_args(),
        Scale::Quick => heatmap_quick_args(name),
    };
    let out = FunctionLauncher::new(language).launch(&workload, &args).expect("launches");
    (out.trace, out.startup_trace)
}

/// Result of the bounce-buffer ablation: the secure/normal ratio plus the
/// swiotlb byte traffic that explains it, for each configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BounceAblation {
    /// TDX `iostress` ratio with bounce buffers on (today's hardware).
    pub with_ratio: f64,
    /// Bytes the secure VM staged through the bounce pool, bounce on.
    pub with_bounce_bytes: u64,
    /// The same ratio with bounce buffers off (the TDX Connect future).
    pub without_ratio: f64,
    /// Bytes staged with bounce buffers off — zero, which *is* the causal
    /// story: no staging traffic, no I/O amplification.
    pub without_bounce_bytes: u64,
}

/// Ablation 1: TDX `iostress` ratio with and without bounce buffers,
/// alongside the per-config swiotlb byte counts that attribute the gap.
pub fn bounce_buffer_ablation(cfg: ExperimentConfig) -> BounceAblation {
    let (trace, startup) = launched("iostress", Language::Go, cfg.scale);
    let probe = |bounce: bool| {
        let run = |kind| {
            let mut vm = TeeVmBuilder::new(VmTarget { platform: TeePlatform::Tdx, kind })
                .seed(cfg.seed)
                .bounce_buffers(bounce)
                .build();
            let _ = vm.execute(&startup);
            let reports = vm.execute_trials(&trace, cfg.trials());
            let ms: Vec<f64> = reports.iter().map(|r| r.wall_ms).collect();
            (mean(&ms), reports.iter().map(|r| r.events.bounce_bytes).sum::<u64>())
        };
        let (secure_ms, secure_bytes) = run(VmKind::Secure);
        let (normal_ms, _) = run(VmKind::Normal);
        (secure_ms / normal_ms, secure_bytes)
    };
    let (with_ratio, with_bounce_bytes) = probe(true);
    let (without_ratio, without_bounce_bytes) = probe(false);
    BounceAblation { with_ratio, with_bounce_bytes, without_ratio, without_bounce_bytes }
}

/// Ablation 2: CCA `cpustress` ratio across FVP slowdown factors. The
/// secure/normal *ratio* should be nearly invariant (the tax hits both),
/// while absolute time scales — exactly why the paper trusts only relative
/// CCA comparisons. Returns `(slowdown, ratio, secure_mean_ms)` triples.
pub fn fvp_sweep(cfg: ExperimentConfig, slowdowns: &[f64]) -> Vec<(f64, f64, f64)> {
    let (trace, startup) = launched("cpustress", Language::Go, cfg.scale);
    slowdowns
        .iter()
        .map(|&slowdown| {
            let fvp = Fvp { slowdown, jitter_rel_std: 0.05 };
            let make = |kind| {
                let mut vm = TeeVmBuilder::new(VmTarget { platform: TeePlatform::Cca, kind })
                    .seed(cfg.seed)
                    .fvp(fvp.clone())
                    .build();
                let _ = vm.execute(&startup);
                let ms: Vec<f64> =
                    vm.execute_trials(&trace, cfg.trials()).iter().map(|r| r.wall_ms).collect();
                mean(&ms)
            };
            let secure = make(VmKind::Secure);
            let normal = make(VmKind::Normal);
            (slowdown, secure / normal, secure)
        })
        .collect()
}

/// Ablation 3: a conflict-prone access pattern whose TDX ratio dips below
/// 1.0 with the cache model on, and returns to ≥ 1.0 with it off.
/// Returns `(ratio_with_cache, ratio_without_cache)`.
pub fn cache_model_ablation(cfg: ExperimentConfig) -> (f64, f64) {
    // The strided pattern from the vmm calibration suite.
    let mut trace = OpTrace::new();
    for _ in 0..4u64 {
        for i in 0..256u64 {
            trace.mem_read_at(0x4000_0000 + i * (1 << 13), 64);
        }
    }
    trace.cpu(1_000);
    let startup = OpTrace::new();
    let trials = cfg.trials().max(8);
    let mut best_with = f64::INFINITY;
    for stride_log in 12..16u32 {
        let mut t = OpTrace::new();
        for _ in 0..4u64 {
            for i in 0..256u64 {
                t.mem_read_at(0x4000_0000 + i * (1u64 << stride_log), 64);
            }
        }
        t.cpu(1_000);
        let r = ratio_with(&t, &startup, TeePlatform::Tdx, trials, cfg.seed, |b| b);
        if r < best_with {
            best_with = r;
            trace = t;
        }
    }
    let without =
        ratio_with(&trace, &startup, TeePlatform::Tdx, trials, cfg.seed, |b| b.cache_model(false));
    (best_with, without)
}

/// Ablation 4: the Python ratio on TDX as a function of the runtime's
/// resident footprint (scaled 0.25×, 1×, 4×). Returns `(scale, ratio)`.
pub fn footprint_sensitivity(cfg: ExperimentConfig) -> Vec<(f64, f64)> {
    let workload = find_workload("checksum").expect("known workload");
    let args = match cfg.scale {
        Scale::Paper => workload.default_args(),
        Scale::Quick => heatmap_quick_args("checksum"),
    };
    // Logical trace from the native twin.
    let mut logical = OpTrace::new();
    workload.run_native(&args, &mut logical).expect("native runs");
    let base = RuntimeProfile::for_language(Language::Python).expect("python profile");

    [0.25f64, 1.0, 4.0]
        .iter()
        .map(|&scale| {
            let profile = RuntimeProfile {
                footprint_bytes: (base.footprint_bytes as f64 * scale) as u64,
                ..base
            };
            let trace = profile.apply(&logical);
            let startup = OpTrace::new();
            let ratio =
                ratio_with(&trace, &startup, TeePlatform::Tdx, cfg.trials(), cfg.seed, |b| b);
            (scale, ratio)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounce_buffers_explain_tdx_io_overhead() {
        let a = bounce_buffer_ablation(ExperimentConfig::quick(23));
        assert!(a.with_ratio > 1.3, "with bounce buffers: {}", a.with_ratio);
        assert!(
            a.without_ratio < a.with_ratio - 0.25,
            "tdx-connect-style: {} vs {}",
            a.without_ratio,
            a.with_ratio
        );
        // Byte accounting attributes the gap: staging traffic only exists
        // in the bounce-on configuration.
        assert!(a.with_bounce_bytes > 0, "bounce-on stages real bytes");
        assert_eq!(a.without_bounce_bytes, 0, "bounce-off stages nothing");
    }

    #[test]
    fn fvp_tax_cancels_in_ratios_but_not_absolutes() {
        let rows = fvp_sweep(ExperimentConfig::quick(23), &[1.0, 4.0, 16.0]);
        let ratios: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let spread = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.25, "ratio nearly invariant across slowdowns: {ratios:?}");
        assert!(rows[2].2 > 8.0 * rows[0].2, "absolute time scales with the simulator tax");
    }

    #[test]
    fn cache_model_creates_the_sub_unity_cells() {
        let (with, without) = cache_model_ablation(ExperimentConfig::quick(23));
        assert!(with < 1.0, "some pattern wins in the TEE with caching on: {with}");
        assert!(without >= 0.99, "effect gone without the cache model: {without}");
    }

    #[test]
    fn bigger_runtime_footprints_raise_tee_ratios() {
        let rows = footprint_sensitivity(ExperimentConfig::quick(23));
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].1 >= rows[0].1,
            "footprint 4x ({:.3}) should not beat 0.25x ({:.3})",
            rows[2].1,
            rows[0].1
        );
    }
}

//! Fig. 6 through the scheduler: the same FaaS heatmap matrix, submitted as
//! one [`CampaignSpec`] to `confbench-sched` instead of a hand-rolled loop.
//!
//! The driver runs the campaign twice on the same scheduler. The first
//! (cold) pass executes every cell on the VMs; the second, identical
//! submission is answered entirely from the content-addressed result cache.
//! Comparing the two wall-clock times is the scheduler's memoization
//! headline number (EXPERIMENTS.md "cold vs memoized").

use std::sync::Arc;
use std::time::Instant;

use confbench::Gateway;
use confbench_faasrt::FaasFunction as _;
use confbench_sched::{Scheduler, SchedulerConfig};
use confbench_types::{
    CampaignFunction, CampaignSpec, CampaignStatus, Language, Priority, SystemClock, TeePlatform,
    VmKind,
};
use confbench_workloads::faas_registry;

use crate::{ExperimentConfig, Scale};

/// One scheduler-driven heatmap pass pair (cold + memoized).
#[derive(Debug)]
pub struct CampaignHeatmap {
    /// The platform measured.
    pub platform: TeePlatform,
    /// Row labels (languages).
    pub languages: Vec<Language>,
    /// Column labels (function names).
    pub workloads: Vec<String>,
    /// Secure/normal mean-time ratios, row-major.
    pub ratios: Vec<f64>,
    /// Wall-clock of the cold pass (every cell executed).
    pub cold_wall_ms: f64,
    /// Wall-clock of the identical resubmission (every cell memoized).
    pub memo_wall_ms: f64,
    /// Final status of the memoized pass (for cache-hit accounting).
    pub memo_status: CampaignStatus,
}

impl CampaignHeatmap {
    /// Cold-over-memoized wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.cold_wall_ms / self.memo_wall_ms.max(f64::EPSILON)
    }
}

/// The Fig. 6 matrix as a campaign spec: every suite workload × every
/// language × both VM kinds on `platform`.
pub fn fig6_spec(
    cfg: ExperimentConfig,
    platform: TeePlatform,
    workload_filter: Option<&[&str]>,
) -> CampaignSpec {
    let functions = faas_registry()
        .into_iter()
        .filter(|w| workload_filter.map(|names| names.contains(&w.name())).unwrap_or(true))
        .map(|w| {
            let args = match cfg.scale {
                Scale::Paper => w.default_args(),
                Scale::Quick => crate::heatmap_quick_args(w.name()),
            };
            let mut f = CampaignFunction::new(w.name());
            f.args = args;
            f
        })
        .collect();
    CampaignSpec {
        functions,
        languages: Language::ALL.to_vec(),
        platforms: vec![platform],
        modes: vec![VmKind::Secure, VmKind::Normal],
        trials: cfg.trials(),
        seed: cfg.seed,
        priority: Priority::Normal,
        deadline_ms: None,
        device: None,
    }
}

/// Runs the Fig. 6 matrix twice through one scheduler (cold, then fully
/// memoized) and folds the secure/normal cells into heatmap ratios.
///
/// # Panics
///
/// Panics if any cell fails to execute (the suite workloads never do).
pub fn run(
    cfg: ExperimentConfig,
    platform: TeePlatform,
    workload_filter: Option<&[&str]>,
) -> CampaignHeatmap {
    let gateway = Arc::new(Gateway::builder().seed(cfg.seed).local_host(platform).build());
    let spec = fig6_spec(cfg, platform, workload_filter);
    let config = SchedulerConfig {
        queue_capacity: spec.cell_count().max(1),
        retry_after_secs: gateway.retry_policy().retry_after_secs(),
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::with_metrics(
        Arc::clone(&gateway) as Arc<dyn confbench_sched::Executor>,
        Arc::new(SystemClock),
        config,
        Arc::clone(gateway.metrics()),
    );

    let (cold_status, cold_wall_ms) = drain_one(&sched, &spec);
    assert_eq!(cold_status.failed, 0, "suite cells must not fail: {cold_status:?}");
    let (memo_status, memo_wall_ms) = drain_one(&sched, &spec);
    assert_eq!(memo_status.cache_hits, memo_status.total_jobs, "second pass fully memoized");

    let languages = spec.languages.clone();
    let workloads: Vec<String> = spec.functions.iter().map(|f| f.name.clone()).collect();
    let mut ratios = Vec::with_capacity(languages.len() * workloads.len());
    for &language in &languages {
        for workload in &workloads {
            let mean_of = |kind: VmKind| {
                cold_status
                    .cells
                    .iter()
                    .find(|c| {
                        c.cell.function.name == *workload
                            && c.cell.language == language
                            && c.cell.kind == kind
                    })
                    .unwrap_or_else(|| panic!("missing cell {workload}/{language}/{kind}"))
                    .mean_ms
            };
            ratios.push(mean_of(VmKind::Secure) / mean_of(VmKind::Normal));
        }
    }
    CampaignHeatmap {
        platform,
        languages,
        workloads,
        ratios,
        cold_wall_ms,
        memo_wall_ms,
        memo_status,
    }
}

fn drain_one(sched: &Scheduler, spec: &CampaignSpec) -> (CampaignStatus, f64) {
    let start = Instant::now();
    let receipt = sched.submit(spec.clone()).expect("campaign admitted");
    sched.drain();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (sched.campaign_status(&receipt.id).expect("campaign exists"), wall_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_SET: &[&str] = &["cpustress", "iostress", "factors", "checksum"];

    #[test]
    fn scheduler_heatmap_matches_fig6_shape() {
        let cfg = ExperimentConfig::quick(13);
        let hm = run(cfg, TeePlatform::Tdx, Some(QUICK_SET));
        assert_eq!(hm.workloads.len(), QUICK_SET.len());
        assert_eq!(hm.ratios.len(), hm.languages.len() * hm.workloads.len());
        assert!(hm.ratios.iter().all(|r| r.is_finite() && *r > 0.0));
        // I/O-bound cells sit clearly above CPU-bound ones on TDX.
        let io = hm.workloads.iter().position(|w| w == "iostress").unwrap();
        let cpu = hm.workloads.iter().position(|w| w == "checksum").unwrap();
        let w = hm.workloads.len();
        let io_mean = crate::mean(
            &(0..hm.languages.len()).map(|r| hm.ratios[r * w + io]).collect::<Vec<_>>(),
        );
        let cpu_mean = crate::mean(
            &(0..hm.languages.len()).map(|r| hm.ratios[r * w + cpu]).collect::<Vec<_>>(),
        );
        assert!(io_mean > cpu_mean, "iostress {io_mean} vs checksum {cpu_mean}");
        // Every cell of the second pass came from the cache.
        assert_eq!(hm.memo_status.cache_hits, hm.memo_status.total_jobs);
        assert!(hm.memo_status.cells.iter().all(|c| c.from_cache));
    }
}

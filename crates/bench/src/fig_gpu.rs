//! The TEE-IO figure: gpu-inference across all three platforms, with the
//! TDISP on/off ablation.
//!
//! The headline claim of confidential device I/O is that *attested* direct
//! DMA makes accelerator offload nearly free inside a TEE: once the GPU's
//! TDISP interface reaches `Run`, its DMA targets private memory directly
//! and the secure/normal ratio stays ≈ 1.0. Refusing (or skipping) device
//! attestation leaves the interface merely `Locked`, every DMA detours
//! through the swiotlb bounce pool, and the same workload pays a staging
//! tax well above the attested path. The figure reports both ratios per
//! platform, plus the DMA byte accounting that proves which path ran.

use confbench::ConfBench;
use confbench_attest::{DeviceVerifier, Evidence, Verifier};
use confbench_types::{DeviceKind, OpTrace, TeePlatform, VmKind, VmTarget};
use confbench_vmm::{TeeVmBuilder, Vm};
use confbench_workloads::GpuInferenceWorkload;

use crate::{mean, ExperimentConfig};

/// One platform's row of the TEE-IO figure.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRow {
    /// The platform measured.
    pub platform: TeePlatform,
    /// Full-stack gateway ratio for `gpu-inference` with the attested GPU
    /// (supervisor bring-up, device session through the attestation cache).
    /// Includes the workload's host-side image load and memory traffic, so
    /// it sits above the pure DMA ratio on I/O-taxing platforms.
    pub gateway_ratio: f64,
    /// Device-DMA cycle ratio with an attested device (TDISP on): a
    /// DMA-dominated probe sized from the workload's real transfer volume,
    /// secure over normal. Near 1.0 — the TEE-IO headline.
    pub direct_ratio: f64,
    /// The same probe with a locked-but-unattested device (TDISP off):
    /// every DMA bounces through swiotlb, elevating the ratio.
    pub bounce_ratio: f64,
    /// Device DMA bytes that went direct-to-private on the attested run.
    pub dma_direct_bytes: u64,
    /// Device DMA bytes that staged through the bounce pool on the
    /// unattested run.
    pub dma_bounce_bytes: u64,
}

/// Brings the plugged GPU to `Run` the same way the production supervisor
/// does: signed SPDM report out, vendor-key verification in
/// `confbench-attest`, then interface start.
///
/// # Panics
///
/// Panics if the device is absent, the report is refused, or the
/// interface cannot start — none of which happen on a fresh secure VM.
pub fn attest_device(vm: &mut Vm, platform: TeePlatform, nonce: [u8; 32]) {
    let report = vm.device_report(nonce).expect("locked device emits a report");
    let verifier = DeviceVerifier::new(platform);
    let evidence = Evidence::device(platform, report);
    let mut report_data = [0u8; 64];
    report_data[..32].copy_from_slice(&nonce);
    Verifier::verify(&verifier, &evidence, report_data).expect("vendor signature verifies");
    vm.enable_device().expect("attested device starts");
}

/// Runs the TEE-IO figure: one [`GpuRow`] per platform, deterministic in
/// the seed.
///
/// # Panics
///
/// Panics if any gateway run or device bring-up fails (they never do for
/// the built-in gpu-inference workload).
pub fn run(cfg: ExperimentConfig) -> Vec<GpuRow> {
    let bench = ConfBench::local(cfg.seed);
    let workload = GpuInferenceWorkload::new(cfg.seed);
    let trials = cfg.trials();
    let nonce = [0x5a; 32];

    // The DMA-path probe: the workload's real per-inference transfer
    // volume (weights + activations up, result down), scaled to a batch so
    // DMA dominates, with a sliver of CPU work framing it. This isolates
    // the path-selection effect from the workload's host-side I/O.
    let inference = workload.classify_device(0).trace;
    let upload = workload.weight_bytes();
    let download = inference.total_dev_dma_bytes() - upload;
    let batch = match cfg.scale {
        crate::Scale::Quick => 8,
        crate::Scale::Paper => 32,
    };
    let mut probe = OpTrace::new();
    probe.cpu(5_000);
    probe.dev_dma_in(upload * batch);
    probe.dev_dma_out(download * batch);

    TeePlatform::ALL
        .iter()
        .map(|&platform| {
            let gateway_ratio =
                bench.measure_gpu_ratio(platform, trials).expect("gpu-inference runs").ratio;

            let build = |kind| {
                TeeVmBuilder::new(VmTarget { platform, kind })
                    .seed(cfg.seed)
                    .device(DeviceKind::Gpu)
                    .build()
            };
            let mut normal = build(VmKind::Normal);
            let mut attested = build(VmKind::Secure);
            attest_device(&mut attested, platform, nonce);
            let mut locked = build(VmKind::Secure);

            let measure = |vm: &mut Vm| {
                let reports = vm.execute_trials(&probe, trials);
                let cycles: Vec<f64> = reports.iter().map(|r| r.cycles.get() as f64).collect();
                let direct = reports.iter().map(|r| r.events.dma_direct_bytes).sum::<u64>();
                let bounce = reports.iter().map(|r| r.events.dma_bounce_bytes).sum::<u64>();
                (mean(&cycles), direct, bounce)
            };
            let (base, _, _) = measure(&mut normal);
            let (direct_cycles, dma_direct_bytes, direct_leak) = measure(&mut attested);
            let (bounce_cycles, bounce_leak, dma_bounce_bytes) = measure(&mut locked);
            assert_eq!(direct_leak, 0, "attested DMA never bounces");
            assert_eq!(bounce_leak, 0, "unattested DMA never goes direct");

            GpuRow {
                platform,
                gateway_ratio,
                direct_ratio: direct_cycles / base,
                bounce_ratio: bounce_cycles / base,
                dma_direct_bytes,
                dma_bounce_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attested_offload_is_near_native_and_tdisp_off_is_not() {
        let rows = run(ExperimentConfig::quick(29));
        assert_eq!(rows.len(), TeePlatform::ALL.len());
        for row in &rows {
            let p = row.platform;
            assert!(
                (0.8..1.25).contains(&row.direct_ratio),
                "{p}: attested DMA should be near-native, got {:.2}",
                row.direct_ratio
            );
            assert!(
                row.bounce_ratio > row.direct_ratio * 1.5,
                "{p}: TDISP-off must pay the staging tax ({:.2} vs {:.2})",
                row.bounce_ratio,
                row.direct_ratio
            );
            assert!(
                row.gateway_ratio.is_finite() && row.gateway_ratio > 0.0,
                "{p}: gateway ratio {}",
                row.gateway_ratio
            );
            assert!(row.dma_direct_bytes > 0, "{p}: attested run moved real DMA");
            assert_eq!(
                row.dma_direct_bytes, row.dma_bounce_bytes,
                "{p}: same trace, same bytes — only the path differs"
            );
        }
    }

    #[test]
    fn figure_is_deterministic_in_the_seed() {
        let a = run(ExperimentConfig::quick(31));
        let b = run(ExperimentConfig::quick(31));
        assert_eq!(a, b);
    }
}

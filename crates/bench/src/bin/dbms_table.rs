//! Regenerates the **§IV-C Confidential DBMS** findings: per-speedtest-case
//! secure/normal ratios for every TEE (the paper reports these textually
//! and omits the plot for space).
//!
//! Usage: `dbms_table [--quick] [--seed N]`

use confbench_bench::{dbms, ExperimentConfig};
use confbench_stats::table;
use confbench_types::TeePlatform;

fn main() {
    let cfg = ExperimentConfig::from_cli(5);
    println!("=== §IV-C: Confidential DBMS — speedtest secure/normal ratios ===\n");
    let results = dbms::run(cfg);

    let headers: Vec<String> =
        ["test", "rows", "tdx", "sev-snp", "cca"].iter().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = results
        .rows
        .iter()
        .map(|r| {
            vec![
                r.case.name().to_owned(),
                r.rows.to_string(),
                format!("{:.2}", r.ratios[0]),
                format!("{:.2}", r.ratios[1]),
                format!("{:.2}", r.ratios[2]),
            ]
        })
        .collect();
    println!("{}", table(&headers, &rows));

    println!("averages:");
    for platform in TeePlatform::ALL {
        println!(
            "  {:8} avg {:.2}  worst {:.2}",
            platform.to_string(),
            results.average_ratio(platform),
            results.max_ratio(platform)
        );
    }
    println!(
        "\npaper shape: TDX and SEV-SNP very similar and close to 1;\n\
         CCA the largest by far (the paper reports up to ~10x on average),\n\
         which we attribute to realm kernel entries under the FVP's RME model."
    );
}

//! The TEE-IO figure: gpu-inference secure/normal ratios on all three
//! platforms, attested (TDISP on, direct DMA) vs locked-only (TDISP off,
//! swiotlb bounce), with DMA byte accounting.
//!
//! Usage: `fig_gpu [--quick|--smoke] [--seed N]`

use confbench_bench::{fig_gpu, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_cli(29);

    println!("=== gpu-inference with a TDISP GPU: secure/normal ratios ===\n");
    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>14} {:>14}",
        "platform", "gateway", "attested", "tdisp-off", "direct bytes", "bounce bytes"
    );
    for row in fig_gpu::run(cfg) {
        println!(
            "{:<10} {:>8.2}x {:>10.2}x {:>10.2}x {:>14} {:>14}",
            row.platform.to_string(),
            row.gateway_ratio,
            row.direct_ratio,
            row.bounce_ratio,
            row.dma_direct_bytes,
            row.dma_bounce_bytes
        );
    }
    println!("\n-> attested direct DMA keeps accelerator offload near-native inside");
    println!("   the TEE; skipping device attestation leaves the interface Locked");
    println!("   and every DMA pays the swiotlb staging tax.");
}

//! Regenerates the **fleet & migration** figure — live-migration downtime
//! per platform (stop-and-copy + re-attest blackout), pre-copy
//! convergence, and cross-shard work-steal counts for a hot-shard
//! rebalance.
//!
//! Usage: `fig_migration [--quick|--smoke] [--seed N]`

use confbench_bench::{fig_migration, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_cli(11);
    println!("=== Fleet & migration: downtime, convergence, stealing ===\n");
    let fig = fig_migration::run(cfg);

    for row in &fig.rows {
        let min = row.downtime_us.iter().min().copied().unwrap_or(0);
        let max = row.downtime_us.iter().max().copied().unwrap_or(0);
        println!(
            "{:<12} downtime median {:>6} us (min {} / max {}), {} pre-copy rounds, \
             {} pages, {} wire bytes, session {}",
            row.label,
            row.median_us(),
            min,
            max,
            row.precopy_rounds,
            row.pages_total,
            row.wire_bytes,
            row.session,
        );
    }

    let r = &fig.rebalance;
    println!(
        "\nrebalance: {} jobs on a 3-shard fleet, {} cross-shard steals, \
         {} executions (dedup exact)",
        r.jobs, r.steals, r.executions
    );
    assert_eq!(r.executions, r.jobs, "stealing must never duplicate work");
    println!(
        "\npaper shape: downtime is dominated by the re-attest leg on the\n\
         cold identity and collapses once the fleet session cache is warm;\n\
         pre-copy converges in one or two rounds for these working sets."
    );
}

//! Regenerates **Fig. 6** through the campaign scheduler: the full FaaS
//! heatmap matrix submitted as one `CampaignSpec` per platform, executed
//! cold and then resubmitted to measure the content-addressed result
//! cache's wall-clock savings.
//!
//! Usage: `campaign_fig6 [--quick] [--seed N]`

use confbench_bench::{campaign, ExperimentConfig};
use confbench_types::TeePlatform;

fn main() {
    let cfg = ExperimentConfig::from_cli(13);
    for platform in [TeePlatform::Tdx, TeePlatform::SevSnp] {
        println!("=== Fig. 6 via confbench-sched ({platform}) ===\n");
        let hm = campaign::run(cfg, platform, None);
        let rows: Vec<String> = hm.languages.iter().map(|l| l.to_string()).collect();
        println!("{}", confbench_stats::heatmap(&rows, &hm.workloads, &hm.ratios));
        println!(
            "cold pass      : {:>10.1} ms wall ({} cells executed)",
            hm.cold_wall_ms, hm.memo_status.total_jobs
        );
        println!(
            "memoized pass  : {:>10.1} ms wall ({} cache hits)",
            hm.memo_wall_ms, hm.memo_status.cache_hits
        );
        println!("speedup        : {:>10.1}x\n", hm.speedup());
    }
    println!(
        "paper shape preserved: the scheduler-driven matrix reproduces the\n\
         loop-driven Fig. 6 cells exactly (same per-cell seeds), and the\n\
         identical resubmission never touches a VM."
    );
}

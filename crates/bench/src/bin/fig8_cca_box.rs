//! Regenerates **Fig. 8** — CCA: distribution of execution times from
//! secure and normal VMs per (function, language), box-and-whiskers.
//!
//! Usage: `fig8_cca_box [--quick] [--seed N]`

use confbench_bench::{fig8, ExperimentConfig};
use confbench_stats::boxplot;

fn main() {
    let cfg = ExperimentConfig::from_cli(17);
    println!("=== Fig. 8 (cca): execution-time distributions, secure vs normal (ms) ===\n");
    let dists = fig8::run(cfg);
    for d in &dists {
        let (secure, normal) = d.summaries();
        println!("--- {} / {} ---", d.workload, d.language);
        println!(
            "{}",
            boxplot(&[("secure".to_owned(), secure), ("normal".to_owned(), normal)], 64)
        );
    }
    println!(
        "paper shape: confidential series have longer whiskers (more trial\n\
         variance) and higher medians; these plots are the first CCA baseline\n\
         in the literature, to be revisited on real silicon."
    );
}

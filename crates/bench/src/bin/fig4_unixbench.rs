//! Regenerates **Fig. 4** — UnixBench: secure vs normal index scores and
//! their ratios per TEE (single-threaded configuration).
//!
//! Usage: `fig4_unixbench [--quick] [--seed N]`

use confbench_bench::{fig4, ExperimentConfig};
use confbench_stats::table;

fn main() {
    let cfg = ExperimentConfig::from_cli(9);
    println!("=== Fig. 4: UnixBench index scores (vs SPARCstation 20-61 baseline) ===\n");
    let results = fig4::run(cfg);

    for platform in &results {
        println!("--- {} ---", platform.platform);
        let headers: Vec<String> = ["test", "secure idx", "normal idx", "overhead"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = platform
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_owned(),
                    format!("{:.1}", r.secure_index),
                    format!("{:.1}", r.normal_index),
                    format!("{:.2}x", r.overhead_ratio()),
                ]
            })
            .collect();
        println!("{}", table(&headers, &rows));
        println!(
            "aggregate index: secure {:.1}, normal {:.1}  → overhead {:.2}x\n",
            platform.secure_aggregate,
            platform.normal_aggregate,
            platform.aggregate_ratio()
        );
    }
    println!(
        "paper shape: TDX introduces the least overhead, SEV-SNP analogous,\n\
         CCA the most; overheads larger than in ML/DBMS, driven by frequent\n\
         sleep/wake (TDVMCALL/VMEXIT) events."
    );
}

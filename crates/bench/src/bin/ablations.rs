//! Runs the design-choice ablations from DESIGN.md §5:
//!
//! 1. TDX bounce buffers on/off (the TDX Connect prediction);
//! 2. FVP slowdown sweep (simulator tax vs realm tax);
//! 3. cache model on/off (the sub-1.0 cells);
//! 4. managed-runtime footprint sensitivity.
//!
//! Usage: `ablations [--quick] [--seed N]`

use confbench_bench::{ablations, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_cli(23);

    println!("=== Ablation 1: TDX iostress ratio, bounce buffers on/off ===");
    let bounce = ablations::bounce_buffer_ablation(cfg);
    println!(
        "  with bounce buffers   : {:.2}x ({} bytes staged)",
        bounce.with_ratio, bounce.with_bounce_bytes
    );
    println!(
        "  without (TDX-Connect) : {:.2}x ({} bytes staged)",
        bounce.without_ratio, bounce.without_bounce_bytes
    );
    println!("  -> the paper expects I/O results 'to improve considerably'\n");

    println!("=== Ablation 2: CCA cpustress across FVP slowdown factors ===");
    for (slowdown, ratio, secure_ms) in ablations::fvp_sweep(cfg, &[1.0, 3.0, 9.0, 27.0]) {
        println!("  slowdown {slowdown:>5.1}x: ratio {ratio:.3}, secure mean {secure_ms:.2} ms");
    }
    println!("  -> the ratio is simulator-invariant; absolute times are not.");
    println!("     Only relative comparisons within one simulator are sound (§IV-A).\n");

    println!("=== Ablation 3: the sub-1.0 cells need the cache model ===");
    let (with_cache, without_cache) = ablations::cache_model_ablation(cfg);
    println!("  best strided-pattern TDX ratio, cache model on : {with_cache:.3}");
    println!("  same pattern, cache model off                  : {without_cache:.3}");
    println!("  -> reproduces the paper's cache-hit explanation (§IV-D).\n");

    println!("=== Ablation 4: Python ratio vs runtime footprint (TDX) ===");
    for (scale, ratio) in ablations::footprint_sensitivity(cfg) {
        println!("  footprint x{scale:<4}: ratio {ratio:.3}");
    }
    println!("  -> heavier managed runtimes burden TEE operation more (§IV-B).");
}

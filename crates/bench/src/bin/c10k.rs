//! C10k-style reactor stress: request latency percentiles as a function of
//! open keep-alive connection count.
//!
//! One `confbench-httpd` server instance holds 100 / 1k / 5k / 10k idle
//! keep-alive connections while a measurement loop issues requests across
//! them; the table reports p50/p95/p99 latency plus the server's thread
//! count at each level. Under the old thread-per-connection design the 5k
//! and 10k points were unreachable (each idle socket pinned a 16 MiB-stack
//! worker); the epoll reactor holds them in one thread.
//!
//! Usage: `c10k [--smoke] [--workers N]`
//!
//! `--smoke` runs the 100/1k points with a smaller sample for CI. Levels
//! are clamped to the process's open-files limit (each in-process
//! connection costs two fds), so constrained runners measure what they can
//! instead of dying on `EMFILE`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use confbench_httpd::{Method, Response, Router, Server, ServerConfig};
use confbench_stats::table;

const FULL_LEVELS: [usize; 4] = [100, 1_000, 5_000, 10_000];
const SMOKE_LEVELS: [usize; 2] = [100, 1_000];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let samples = if smoke { 400 } else { 2_000 };
    let levels: &[usize] = if smoke { &SMOKE_LEVELS } else { &FULL_LEVELS };

    let baseline_threads = thread_count();
    let mut router = Router::new();
    router.add(Method::Get, "/ok", |_, _| Response::text("ok"));
    let config = ServerConfig {
        workers,
        backlog: 32 << 10,
        keep_alive_idle: Duration::from_secs(300),
        max_requests_per_conn: u64::MAX,
        ..ServerConfig::default()
    };
    let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let fd_budget = (open_files_limit().saturating_sub(128)) / 2;

    println!(
        "=== C10k: latency vs open keep-alive connections (one server, {workers} workers) ===\n"
    );
    let headers: Vec<String> = ["connections", "p50", "p95", "p99", "server threads"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for &level in levels {
        let target = level.min(fd_budget);
        if target < level {
            println!("[clamp] {level} connections → {target} (open-files limit)");
        }
        if target == 0 {
            continue;
        }
        let mut conns: Vec<TcpStream> = (0..target)
            .map(|_| {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                stream.set_nodelay(true).unwrap();
                stream
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(30);
        while (server.active_connections() as usize) < target {
            assert!(
                Instant::now() < deadline,
                "only {}/{target} connections admitted",
                server.active_connections()
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // Warm every socket once so the measured rounds never see a cold
        // first-request path, then measure round-robin across a spread of
        // the open connections (every socket idles between its turns —
        // exactly the keep-alive pattern that used to pin workers).
        for stream in conns.iter_mut() {
            roundtrip(stream);
        }
        let stride = (target / 64).max(1);
        let mut latencies = Vec::with_capacity(samples);
        for i in 0..samples {
            let stream = &mut conns[(i * stride) % target];
            let start = Instant::now();
            roundtrip(stream);
            latencies.push(start.elapsed());
        }
        latencies.sort_unstable();
        rows.push(vec![
            target.to_string(),
            format_us(percentile(&latencies, 50.0)),
            format_us(percentile(&latencies, 95.0)),
            format_us(percentile(&latencies, 99.0)),
            thread_count().saturating_sub(baseline_threads).to_string(),
        ]);
        drop(conns);
        // Let the reactor reap the closed sockets before the next level.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    println!("{}", table(&headers, &rows));
    println!(
        "paper shape: latency percentiles stay flat as idle keep-alive\n\
         connections grow 100 → 10k, and the server's thread count stays\n\
         O(workers) — idle sockets are reactor state, not threads."
    );
    server.shutdown();
}

/// One GET /ok request + response on a keep-alive socket.
fn roundtrip(stream: &mut TcpStream) {
    stream.write_all(b"GET /ok HTTP/1.1\r\n\r\n").expect("write request");
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed keep-alive socket mid-response");
        out.extend_from_slice(&buf[..n]);
        if let Some(pos) = out.windows(4).position(|w| w == b"\r\n\r\n") {
            if out.len() >= pos + 4 + 2 {
                // body is "ok"
                return;
            }
        }
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn format_us(d: Duration) -> String {
    format!("{:.0} µs", d.as_secs_f64() * 1e6)
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| l.strip_prefix("Threads:")).map(str::trim).map(str::to_owned)
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn open_files_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits
                .lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).map(str::to_owned))
        })
        .and_then(|soft| soft.parse().ok())
        .unwrap_or(256)
}

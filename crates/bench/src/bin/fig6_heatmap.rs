//! Regenerates **Fig. 6** — TDX and SEV-SNP: ratios between mean execution
//! times from secure and normal VMs for the 25 FaaS functions in 7
//! languages (heatmap).
//!
//! Usage: `fig6_heatmap [--quick] [--seed N]`

use confbench_bench::{heatmap, ExperimentConfig};
use confbench_types::TeePlatform;

fn main() {
    let cfg = ExperimentConfig::from_cli(13);
    for platform in [TeePlatform::Tdx, TeePlatform::SevSnp] {
        println!("=== Fig. 6 ({platform}): secure/normal mean-time ratios ===\n");
        let hm = heatmap::run(cfg, platform, None);
        let rows: Vec<String> = hm.languages.iter().map(|l| l.to_string()).collect();
        println!("{}", confbench_stats::heatmap(&rows, &hm.workloads, &hm.ratios));
        println!(
            "overall mean {:.3}; sub-1.0 cells: {}\n",
            hm.overall_mean(),
            hm.sub_unity_cells()
        );
    }
    println!(
        "paper shape: the two TEEs are very similar; TDX faster on CPU/memory\n\
         cells, SEV-SNP faster on I/O (iostress); heavier managed runtimes\n\
         show larger ratios; a few cells dip below 1.0 (cache-hit effects)."
    );
}

//! Regenerates **Fig. 7** — CCA: ratios between mean execution times from
//! secure (realm) and normal VMs for the FaaS suite (heatmap).
//!
//! Usage: `fig7_cca_heatmap [--quick] [--seed N]`

use confbench_bench::{heatmap, ExperimentConfig};
use confbench_types::TeePlatform;

fn main() {
    let cfg = ExperimentConfig::from_cli(13);
    println!("=== Fig. 7 (cca): secure/normal mean-time ratios ===\n");
    let hm = heatmap::run(cfg, TeePlatform::Cca, None);
    let rows: Vec<String> = hm.languages.iter().map(|l| l.to_string()).collect();
    println!("{}", confbench_stats::heatmap(&rows, &hm.workloads, &hm.ratios));
    println!("overall mean {:.3}\n", hm.overall_mean());
    println!(
        "paper shape: much higher overheads than TDX/SEV-SNP across the board\n\
         (visually, more light/red cells), attributed to the FVP-simulated\n\
         environment; only intra-CCA comparisons are considered sound."
    );
}

//! Regenerates **Fig. 5** — absolute times for the creation ("attest") and
//! validation ("check") of attestation reports in TDX and SEV-SNP
//! (log-scale in the paper).
//!
//! Usage: `fig5_attestation [--quick] [--seed N]`

use confbench_bench::{fig5, ExperimentConfig};
use confbench_stats::{boxplot, stacked_percentiles};

fn main() {
    let cfg = ExperimentConfig::from_cli(11);
    println!("=== Fig. 5: Attestation latencies (ms, plotted log-scale in the paper) ===\n");
    let fig = fig5::run(cfg);
    let entries: Vec<(String, confbench_stats::Summary)> =
        fig.summaries().iter().map(|(label, s)| ((*label).to_owned(), s.clone())).collect();
    println!("{}", stacked_percentiles(&entries));
    println!("{}", boxplot(&entries, 64));
    println!(
        "paper shape: both phases faster on SEV-SNP; TDX 'check' dominates\n\
         because the DCAP verifier fetches TCB info and CRLs from the Intel\n\
         PCS over the network, while snpguest reads certificates locally."
    );
}

//! Regenerates **Fig. 5** — absolute times for the creation ("attest") and
//! validation ("check") of attestation reports in TDX and SEV-SNP
//! (log-scale in the paper).
//!
//! Usage: `fig5_attestation [--quick|--smoke] [--seed N]`

use confbench_bench::fig5::FleetAmortizedFigure;
use confbench_bench::{fig5, ExperimentConfig};
use confbench_stats::{boxplot, stacked_percentiles};

fn main() {
    let cfg = ExperimentConfig::from_cli(11);
    println!("=== Fig. 5: Attestation latencies (ms, plotted log-scale in the paper) ===\n");
    let fig = fig5::run(cfg);
    let entries: Vec<(String, confbench_stats::Summary)> =
        fig.summaries().iter().map(|(label, s)| ((*label).to_owned(), s.clone())).collect();
    println!("{}", stacked_percentiles(&entries));
    println!("{}", boxplot(&entries, 64));
    println!(
        "paper shape: both phases faster on SEV-SNP; TDX 'check' dominates\n\
         because the DCAP verifier fetches TCB info and CRLs from the Intel\n\
         PCS over the network, while snpguest reads certificates locally.\n"
    );

    println!("=== Fleet-amortized verification (attestation-session cache) ===\n");
    let fleet = fig5::fleet_amortized(cfg);
    let entries: Vec<(String, confbench_stats::Summary)> =
        fleet.summaries().iter().map(|(label, s)| ((*label).to_owned(), s.clone())).collect();
    println!("{}", stacked_percentiles(&entries));
    let cold = FleetAmortizedFigure::p99(&fleet.cold_ms);
    let warm = FleetAmortizedFigure::p99(&fleet.warm_ms);
    let contended = FleetAmortizedFigure::p99(&fleet.contended_ms);
    println!(
        "p99: cold {cold:.3} ms, warm session {warm:.3} ms ({:.0}x lower), \
         32-way cold rush {contended:.3} ms per caller (one PCS trip total)",
        cold / warm
    );
}

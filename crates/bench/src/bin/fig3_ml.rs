//! Regenerates **Fig. 3** — Confidential ML workloads: distribution (as
//! stacked percentiles) of the observed inference times.
//!
//! Usage: `fig3_ml [--quick] [--seed N]`

use confbench_bench::{fig3, ExperimentConfig};
use confbench_stats::stacked_percentiles;
use confbench_types::TeePlatform;

fn main() {
    let cfg = ExperimentConfig::from_cli(7);
    println!("=== Fig. 3: Confidential ML — inference time distributions (ms) ===\n");
    let fig = fig3::run(cfg);

    let entries: Vec<(String, confbench_stats::Summary)> =
        fig.series.iter().map(|s| (s.target.to_string(), s.summary())).collect();
    println!("{}", stacked_percentiles(&entries));

    println!("secure/normal mean ratios:");
    for platform in TeePlatform::ALL {
        println!("  {:8} {:.3}", platform.to_string(), fig.ratio(platform));
    }
    println!(
        "\npaper shape: TDX ≈ SEV-SNP at close-to-native speed (TDX slightly ahead);\n\
         CCA up to ~1.33x its own baseline and far slower in absolute terms (FVP)."
    );
}

//! Runs the multi-tenant co-location extension experiment (the paper's §VI
//! future work): slowdown of secure VMs as co-residents increase.
//!
//! Usage: `colocation [--quick] [--seed N]`

use confbench_bench::{colocation, ExperimentConfig};
use confbench_stats::table;

fn main() {
    let cfg = ExperimentConfig::from_cli(31);
    println!("=== Extension: multi-tenant co-location slowdowns (secure VMs) ===\n");
    let rows = colocation::run(cfg);

    let mut headers = vec!["workload".to_owned(), "platform".to_owned()];
    headers.extend(colocation::TENANT_COUNTS.iter().map(|t| format!("{t} vm")));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let mut cells = vec![row.workload.clone(), row.platform.to_string()];
            cells.extend(row.slowdowns.iter().map(|(_, s)| format!("{s:.2}x")));
            cells
        })
        .collect();
    println!("{}", table(&headers, &table_rows));
    println!(
        "memory- and exit-bound workloads contend on the shared memory system\n\
         and hypervisor path; CPU-bound tenants co-locate almost for free."
    );
}

//! Fig. 4 — UnixBench: secure/normal index ratios per TEE.
//!
//! Paper shape: TDX introduces the least overhead, SEV-SNP analogous, CCA
//! the most; overheads larger than in the ML and DBMS workloads, driven by
//! frequent sleep/wake (TDVMCALL/VMEXIT) events.

use confbench_stats::geometric_mean;
use confbench_types::{OpTrace, TeePlatform, VmKind, VmTarget};
use confbench_workloads::{aggregate_index, index_score, unixbench_suite};

use crate::{mean, run_trace, ExperimentConfig};

/// Per-test UnixBench outcome on one platform.
#[derive(Debug, Clone)]
pub struct UnixBenchRow {
    /// Test name.
    pub name: &'static str,
    /// Index score in the secure VM.
    pub secure_index: f64,
    /// Index score in the normal VM.
    pub normal_index: f64,
}

impl UnixBenchRow {
    /// Normal/secure index ratio (> 1 means the TEE lost index points;
    /// equivalently the secure/normal time ratio, since index ∝ 1/time).
    pub fn overhead_ratio(&self) -> f64 {
        self.normal_index / self.secure_index
    }
}

/// UnixBench results for one platform.
#[derive(Debug, Clone)]
pub struct UnixBenchPlatform {
    /// The platform measured.
    pub platform: TeePlatform,
    /// Per-test rows.
    pub rows: Vec<UnixBenchRow>,
    /// Aggregate index (geometric mean) in the secure VM.
    pub secure_aggregate: f64,
    /// Aggregate index in the normal VM.
    pub normal_aggregate: f64,
}

impl UnixBenchPlatform {
    /// Aggregate overhead ratio (normal aggregate / secure aggregate).
    pub fn aggregate_ratio(&self) -> f64 {
        self.normal_aggregate / self.secure_aggregate
    }
}

/// Runs the suite on every platform.
pub fn run(cfg: ExperimentConfig) -> Vec<UnixBenchPlatform> {
    let suite = unixbench_suite(1);
    let empty = OpTrace::new();
    TeePlatform::ALL
        .iter()
        .map(|&platform| {
            let mut rows = Vec::new();
            for test in &suite {
                let index_for = |kind| {
                    let ms = run_trace(
                        VmTarget { platform, kind },
                        &empty,
                        &test.trace,
                        cfg.trials(),
                        crate::mix_seed(cfg.seed, test.name),
                    );
                    index_score(test, mean(&ms) / 1000.0)
                };
                rows.push(UnixBenchRow {
                    name: test.name,
                    secure_index: index_for(VmKind::Secure),
                    normal_index: index_for(VmKind::Normal),
                });
            }
            let secure_aggregate =
                aggregate_index(&rows.iter().map(|r| r.secure_index).collect::<Vec<_>>());
            let normal_aggregate =
                aggregate_index(&rows.iter().map(|r| r.normal_index).collect::<Vec<_>>());
            UnixBenchPlatform { platform, rows, secure_aggregate, normal_aggregate }
        })
        .collect()
}

/// The figure's headline: aggregate overhead ratio per platform, in
/// [`TeePlatform::ALL`] order.
pub fn aggregate_ratios(results: &[UnixBenchPlatform]) -> Vec<f64> {
    results.iter().map(UnixBenchPlatform::aggregate_ratio).collect()
}

/// Geometric mean across per-test overheads (alternative aggregation used
/// for cross-checking).
pub fn per_test_geomean(platform_results: &UnixBenchPlatform) -> f64 {
    geometric_mean(
        &platform_results.rows.iter().map(UnixBenchRow::overhead_ratio).collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let results = run(ExperimentConfig::quick(9));
        assert_eq!(results.len(), 3);
        let [tdx, snp, cca] =
            [&results[0], &results[1], &results[2]].map(UnixBenchPlatform::aggregate_ratio);

        // TDX least overhead, SNP analogous, CCA most.
        assert!(tdx < snp * 1.15, "tdx {tdx} vs snp {snp}");
        assert!(cca > tdx && cca > snp, "cca {cca} must be worst");
        // Larger than ML/DBMS-class overheads on the hardware TEEs.
        assert!(tdx > 1.02, "tdx unixbench ratio {tdx}");
        assert!((1.02..2.2).contains(&tdx));
        assert!((1.02..2.2).contains(&snp));
        assert!(cca > 2.0, "cca unixbench ratio {cca}");
    }

    #[test]
    fn ctx_switch_heavy_tests_hurt_most_on_hardware_tees() {
        let results = run(ExperimentConfig::quick(9));
        let tdx = &results[0];
        let by_name = |needle: &str| {
            tdx.rows.iter().find(|r| r.name.contains(needle)).unwrap().overhead_ratio()
        };
        // The paper attributes UnixBench slowdowns to sleep/wake exits:
        // context switching must hurt more than pure CPU tests.
        assert!(by_name("Context Switching") > by_name("Dhrystone"));
        assert!(by_name("Context Switching") > by_name("Whetstone"));
    }

    #[test]
    fn aggregate_is_consistent_with_rows() {
        let results = run(ExperimentConfig::quick(2));
        for platform in &results {
            let agg = platform.aggregate_ratio();
            let geo = per_test_geomean(platform);
            assert!((agg - geo).abs() / geo < 0.05, "{agg} vs {geo}");
        }
    }
}

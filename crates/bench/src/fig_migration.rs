//! Fleet & migration experiment: measured live-migration downtime per
//! platform (stop-and-copy + re-attest blackout), pre-copy convergence
//! (rounds, pages, wire bytes), and a fleet rebalance run counting
//! cross-shard work steals.
//!
//! Downtime here is the wall-clock window between pausing the source and
//! resuming the target — the interval a caller would observe the VM
//! unresponsive. Re-attestation rides the fleet-shared session cache, so
//! only the first migration of an identity pays a collateral cycle; the
//! figure reports both the cold and the warm downtime.

use std::sync::Arc;

use confbench::{AttestConfig, AttestService, ManualClock};
use confbench_fleet::{migrate, Fleet, FleetConfig, MigrationConfig};
use confbench_types::{
    CampaignFunction, CampaignSpec, Language, OpTrace, Priority, TeePlatform, VmKind, VmTarget,
};
use confbench_vmm::TeeVmBuilder;

use crate::{ExperimentConfig, Scale};

/// One measured migration series (a platform/kind pair over N trials).
#[derive(Debug, Clone)]
pub struct MigrationRow {
    /// Display label, e.g. `tdx/secure`.
    pub label: String,
    /// Measured stop-and-copy + re-attest blackout per trial, microseconds.
    pub downtime_us: Vec<u64>,
    /// Pre-copy rounds of the last trial.
    pub precopy_rounds: u32,
    /// Pages moved (all rounds + stop-and-copy) in the last trial.
    pub pages_total: u64,
    /// Encoded wire-stream size of the last trial, bytes.
    pub wire_bytes: usize,
    /// Re-attestation session id of the last trial.
    pub session: String,
}

impl MigrationRow {
    /// Median downtime of the series, microseconds.
    pub fn median_us(&self) -> u64 {
        let mut sorted = self.downtime_us.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

/// Outcome of the fleet rebalance run.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceRow {
    /// Cells placed on the fleet.
    pub jobs: u64,
    /// Cross-shard steals observed while draining.
    pub steals: u64,
    /// Total executions fleet-wide (dedup exact: equals `jobs`).
    pub executions: u64,
}

/// The full figure: per-platform migration series plus the rebalance run.
#[derive(Debug, Clone)]
pub struct MigrationFigure {
    /// Migration series.
    pub rows: Vec<MigrationRow>,
    /// Fleet rebalance outcome.
    pub rebalance: RebalanceRow,
}

fn warm_trace(scale: Scale) -> OpTrace {
    let mut warm = OpTrace::new();
    match scale {
        Scale::Quick => {
            warm.cpu(1_000_000);
            warm.alloc(16 * 4096);
        }
        Scale::Paper => {
            warm.cpu(10_000_000);
            warm.alloc(64 * 4096);
            warm.cpu(2_000_000);
        }
    }
    warm
}

/// A workload arriving while pre-copy runs: it dirties pages, forcing
/// extra copy rounds before convergence.
fn midstream_trace(scale: Scale) -> OpTrace {
    let mut mid = OpTrace::new();
    match scale {
        Scale::Quick => {
            mid.alloc(8 * 4096);
            mid.cpu(250_000);
        }
        Scale::Paper => {
            mid.alloc(32 * 4096);
            mid.cpu(1_000_000);
        }
    }
    mid
}

/// Runs the migration series and the rebalance run at `cfg`.
pub fn run(cfg: ExperimentConfig) -> MigrationFigure {
    let attest =
        AttestService::new(cfg.seed, AttestConfig::from_env(), Arc::new(ManualClock::new()), None);
    let warm = warm_trace(cfg.scale);
    let mid = midstream_trace(cfg.scale);

    let series = [
        ("tdx/secure", TeePlatform::Tdx, VmKind::Secure),
        ("snp/secure", TeePlatform::SevSnp, VmKind::Secure),
        ("tdx/normal", TeePlatform::Tdx, VmKind::Normal),
    ];
    let mut rows = Vec::new();
    for (label, platform, kind) in series {
        let target = VmTarget { platform, kind };
        let mut downtime_us = Vec::new();
        let mut last = None;
        for trial in 0..cfg.trials() {
            let seed = cfg.seed + u64::from(trial);
            let mut source = TeeVmBuilder::new(target).seed(seed).build();
            source.execute(&warm);
            let (_vm, report) = migrate(
                source,
                TeeVmBuilder::new(target).seed(seed ^ 0x5EED),
                &attest,
                std::slice::from_ref(&mid),
                &MigrationConfig::default(),
            )
            .expect("migration series must converge");
            downtime_us.push(report.downtime_us);
            last = Some(report);
        }
        let last = last.expect("at least one trial");
        rows.push(MigrationRow {
            label: label.to_owned(),
            downtime_us,
            precopy_rounds: last.precopy_rounds,
            pages_total: last.pages_total,
            wire_bytes: last.wire_bytes,
            session: last.session,
        });
    }

    MigrationFigure { rows, rebalance: rebalance(cfg) }
}

/// The rebalance run: a single-platform campaign leaves two of three
/// shards idle on that lane, so they steal from the hot shard's queue.
fn rebalance(cfg: ExperimentConfig) -> RebalanceRow {
    let fleet = Fleet::new(FleetConfig {
        shards: 3,
        seed: cfg.seed,
        clock: Arc::new(ManualClock::new()),
        ..FleetConfig::default()
    });
    let spec = CampaignSpec {
        functions: vec![
            CampaignFunction::new("factors").arg("360360"),
            CampaignFunction::new("factors").arg("720720"),
            CampaignFunction::new("factors").arg("30030"),
            CampaignFunction::new("checksum").arg("30000"),
        ],
        languages: vec![Language::Go],
        platforms: vec![TeePlatform::Tdx],
        modes: vec![VmKind::Secure, VmKind::Normal],
        trials: cfg.trials(),
        seed: cfg.seed,
        priority: Priority::Normal,
        deadline_ms: None,
        device: None,
    };
    let receipt = fleet.submit(spec).expect("rebalance campaign admitted");
    fleet.drain();
    RebalanceRow {
        jobs: receipt.jobs as u64,
        steals: fleet.steals(),
        executions: fleet.total_executions(),
    }
}

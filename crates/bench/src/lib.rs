//! The ConfBench-RS experiment harness: one driver per table/figure in the
//! paper's evaluation (§IV), regenerating the same rows and series.
//!
//! | Paper artifact | Driver | Binary |
//! |---|---|---|
//! | Fig. 3 (confidential ML, stacked percentiles)     | [`fig3::run`] | `fig3_ml` |
//! | §IV-C DBMS findings (speedtest ratios)            | [`dbms::run`] | `dbms_table` |
//! | Fig. 4 (UnixBench index ratios)                   | [`fig4::run`] | `fig4_unixbench` |
//! | Fig. 5 (attestation latencies)                    | [`fig5::run`] | `fig5_attestation` |
//! | Fig. 6 (TDX & SEV-SNP FaaS heatmap)               | [`heatmap::run`] | `fig6_heatmap` |
//! | Fig. 7 (CCA FaaS heatmap)                         | [`heatmap::run`] | `fig7_cca_heatmap` |
//! | Fig. 8 (CCA distributions, box-and-whiskers)      | [`fig8::run`] | `fig8_cca_box` |
//! | Fig. 6 via the campaign scheduler (cold vs memoized) | [`campaign::run`] | `campaign_fig6` |
//! | TEE-IO gpu-inference + TDISP on/off ablation      | [`fig_gpu::run`] | `fig_gpu` |
//! | Design-choice ablations (DESIGN.md §5)            | [`ablations`] | `ablations` |
//!
//! All drivers are deterministic in the seed; `Scale::Quick` shrinks
//! workload arguments and trial counts for tests, `Scale::Paper` matches
//! the paper's configuration (10 trials, default sizes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use confbench_faasrt::{FaasFunction, FunctionLauncher};
use confbench_types::{Language, OpTrace, TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small arguments, 3 trials — for tests and smoke runs.
    Quick,
    /// The paper's configuration: default arguments, 10 trials.
    Paper,
}

/// Common experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Scale of arguments and trials.
    pub scale: Scale,
}

impl ExperimentConfig {
    /// Quick configuration at `seed`.
    pub fn quick(seed: u64) -> Self {
        ExperimentConfig { seed, scale: Scale::Quick }
    }

    /// Paper configuration at `seed`.
    pub fn paper(seed: u64) -> Self {
        ExperimentConfig { seed, scale: Scale::Paper }
    }

    /// Trials per measurement (paper: 10 independent runs).
    pub fn trials(&self) -> u32 {
        match self.scale {
            Scale::Quick => 3,
            Scale::Paper => 10,
        }
    }

    /// Parses the figure binaries' common CLI: `[--quick|--smoke] [--seed N]`
    /// (`--smoke` is the CI alias for `--quick`).
    pub fn from_cli(default_seed: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_seed);
        if quick {
            ExperimentConfig::quick(seed)
        } else {
            ExperimentConfig::paper(seed)
        }
    }
}

/// Executes a prepared trace on a fresh VM for `target`: boots, replays the
/// unmeasured startup trace, then measures `trials` executions.
/// Returns per-trial wall milliseconds.
pub fn run_trace(
    target: VmTarget,
    startup: &OpTrace,
    trace: &OpTrace,
    trials: u32,
    seed: u64,
) -> Vec<f64> {
    let mut vm = TeeVmBuilder::new(target).seed(seed).build();
    let _ = vm.execute(startup);
    vm.execute_trials(trace, trials).iter().map(|r| r.wall_ms).collect()
}

/// Launches `function` under `language` once (launch is deterministic) and
/// measures it on the secure and normal VM of `platform`.
/// Returns (secure ms trials, normal ms trials).
pub fn measure_function(
    function: &dyn FaasFunction,
    args: &[String],
    language: Language,
    platform: TeePlatform,
    trials: u32,
    seed: u64,
) -> Result<(Vec<f64>, Vec<f64>), String> {
    let output =
        FunctionLauncher::new(language).launch(function, args).map_err(|e| e.to_string())?;
    let seed = mix_seed(seed, &format!("{}/{}", function.name(), language));
    let secure = run_trace(
        VmTarget { platform, kind: VmKind::Secure },
        &output.startup_trace,
        &output.trace,
        trials,
        seed,
    );
    let normal = run_trace(
        VmTarget { platform, kind: VmKind::Normal },
        &output.startup_trace,
        &output.trace,
        trials,
        seed,
    );
    Ok((secure, normal))
}

/// Mean of a slice (helper used across drivers).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mixes a measurement label into a seed (FNV-1a), so each experiment cell
/// gets an independent jitter stream; a shared seed would correlate the
/// noise of every cell and bias whole figures.
pub fn mix_seed(seed: u64, tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Quick-scale arguments for a suite workload (small enough for tests,
/// large enough that ratios are stable).
///
/// # Panics
///
/// Panics for unknown workload names.
pub fn heatmap_quick_args(name: &str) -> Vec<String> {
    let args: &[&str] = match name {
        "cpustress" => &["8000"],
        "memstress" => &["6"],
        "iostress" => &["2"],
        "logging" => &["150"],
        "factors" => &["360360"],
        "filesystem" => &["1"],
        "ack" => &["4", "16"],
        "fib" => &["13"],
        "primes" => &["4000"],
        "matrix" => &["12"],
        "quicksort" => &["600"],
        "mergesort" => &["600"],
        "base64" => &["1500"],
        "json" => &["40"],
        "checksum" => &["4000"],
        "compress" => &["4000"],
        "mandelbrot" => &["20"],
        "nbody" => &["200"],
        "binarytrees" => &["9"],
        "spectralnorm" => &["20", "2"],
        "dijkstra" => &["10"],
        "wordcount" => &["4000"],
        "histogram" => &["4000"],
        "montecarlo" => &["3000"],
        "strings" => &["400"],
        other => panic!("no quick args for {other}"),
    };
    args.iter().map(|s| (*s).to_owned()).collect()
}

pub mod ablations;
pub mod campaign;
pub mod colocation;
pub mod dbms;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod fig_gpu;
pub mod fig_migration;
pub mod heatmap;

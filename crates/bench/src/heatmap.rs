//! Figs. 6 and 7 — FaaS heatmaps: secure/normal mean-execution-time ratios
//! for every (language × function) cell, per platform.
//!
//! Paper shape (Fig. 6, TDX & SEV-SNP): overheads very similar between the
//! two; TDX faster on CPU/memory-intensive cells, SEV-SNP faster on I/O
//! cells (`iostress`); heavier managed runtimes (Python, Node, Ruby) show
//! larger ratios than Lua/LuaJIT/Go/Wasm; a few cells dip below 1.0
//! (cache-hit differences). Fig. 7 (CCA): much lighter cells overall —
//! larger overheads everywhere.

use confbench_types::{Language, TeePlatform};
use confbench_workloads::faas_registry;

use crate::{mean, measure_function, ExperimentConfig, Scale};

/// A complete heatmap for one platform.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// The platform measured.
    pub platform: TeePlatform,
    /// Row labels (languages, the paper's row axis).
    pub languages: Vec<Language>,
    /// Column labels (function names).
    pub workloads: Vec<String>,
    /// Ratios, row-major (`languages.len() * workloads.len()`).
    pub ratios: Vec<f64>,
}

impl Heatmap {
    /// The ratio for a cell.
    ///
    /// # Panics
    ///
    /// Panics if the language or workload is not in the map.
    pub fn cell(&self, language: Language, workload: &str) -> f64 {
        let r = self.languages.iter().position(|&l| l == language).expect("language row");
        let c = self.workloads.iter().position(|w| w == workload).expect("workload column");
        self.ratios[r * self.workloads.len() + c]
    }

    /// Mean ratio of a language's row.
    pub fn row_mean(&self, language: Language) -> f64 {
        let r = self.languages.iter().position(|&l| l == language).expect("language row");
        let w = self.workloads.len();
        mean(&self.ratios[r * w..(r + 1) * w])
    }

    /// Mean ratio of a workload's column.
    pub fn col_mean(&self, workload: &str) -> f64 {
        let c = self.workloads.iter().position(|w| w == workload).expect("workload column");
        let w = self.workloads.len();
        let vals: Vec<f64> = (0..self.languages.len()).map(|r| self.ratios[r * w + c]).collect();
        mean(&vals)
    }

    /// Mean over every cell.
    pub fn overall_mean(&self) -> f64 {
        mean(&self.ratios)
    }

    /// Number of cells with ratio < 1.0 (the counter-intuitive ones).
    pub fn sub_unity_cells(&self) -> usize {
        self.ratios.iter().filter(|&&r| r < 1.0).count()
    }
}

/// Workload arguments per scale (quick mirrors the differential tests').
fn args_for(name: &str, scale: Scale) -> Vec<String> {
    if scale == Scale::Paper {
        return confbench_workloads::find_workload(name).expect("known workload").default_args();
    }
    crate::heatmap_quick_args(name)
}

/// Builds the heatmap for one platform; `workload_filter` optionally
/// restricts columns (used by quick tests and Fig. 8's subset).
pub fn run(
    cfg: ExperimentConfig,
    platform: TeePlatform,
    workload_filter: Option<&[&str]>,
) -> Heatmap {
    let languages: Vec<Language> = Language::ALL.to_vec();
    let registry = faas_registry();
    let workloads: Vec<_> = registry
        .into_iter()
        .filter(|w| workload_filter.map(|names| names.contains(&w.name())).unwrap_or(true))
        .collect();
    let names: Vec<String> = workloads.iter().map(|w| w.name().to_owned()).collect();

    let mut ratios = Vec::with_capacity(languages.len() * workloads.len());
    for &language in &languages {
        for workload in &workloads {
            let args = args_for(workload.name(), cfg.scale);
            let (secure, normal) =
                measure_function(workload, &args, language, platform, cfg.trials(), cfg.seed)
                    .expect("workload runs");
            ratios.push(mean(&secure) / mean(&normal));
        }
    }
    Heatmap { platform, languages, workloads: names, ratios }
}

use confbench_faasrt::FaasFunction as _;

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_SET: &[&str] =
        &["cpustress", "memstress", "iostress", "logging", "factors", "checksum"];

    #[test]
    fn fig6_shape_tdx_vs_snp() {
        let cfg = ExperimentConfig::quick(13);
        let tdx = run(cfg, TeePlatform::Tdx, Some(QUICK_SET));
        let snp = run(cfg, TeePlatform::SevSnp, Some(QUICK_SET));

        // Overall overheads "very similar" between the two.
        assert!((tdx.overall_mean() - snp.overall_mean()).abs() < 0.4);

        // SEV-SNP faster with I/O tasks.
        assert!(
            snp.col_mean("iostress") < tdx.col_mean("iostress"),
            "snp io {} vs tdx io {}",
            snp.col_mean("iostress"),
            tdx.col_mean("iostress")
        );
        // TDX at least as good on the CPU-bound columns.
        assert!(tdx.col_mean("checksum") < snp.col_mean("checksum") + 0.08);

        // Heavier managed runtimes impose larger ratios on compute-bound
        // cells (the paper's FaaS finding; I/O columns are dominated by
        // the identical device path in every language). Measured at a
        // size where the runtimes' GC behaviour is active.
        let wl = confbench_workloads::find_workload("cpustress").unwrap();
        let args = vec!["60000".to_owned()];
        for platform in [TeePlatform::Tdx, TeePlatform::SevSnp] {
            let ratio = |language| {
                let (s, n) =
                    crate::measure_function(&wl, &args, language, platform, 6, cfg.seed).unwrap();
                mean(&s) / mean(&n)
            };
            let python = ratio(Language::Python);
            let go = ratio(Language::Go);
            assert!(python > go, "python {python} vs go {go} on {platform:?}");
        }
    }

    #[test]
    fn fig7_cca_is_much_worse() {
        let cfg = ExperimentConfig::quick(13);
        let tdx = run(cfg, TeePlatform::Tdx, Some(QUICK_SET));
        let cca = run(cfg, TeePlatform::Cca, Some(QUICK_SET));
        assert!(
            cca.overall_mean() > 1.5 * tdx.overall_mean(),
            "cca {} vs tdx {}",
            cca.overall_mean(),
            tdx.overall_mean()
        );
        // I/O-ish cells go deep red on CCA.
        assert!(cca.col_mean("iostress") > 2.0);
    }

    #[test]
    fn heatmap_indexing_consistent() {
        let cfg = ExperimentConfig::quick(1);
        let hm = run(cfg, TeePlatform::Tdx, Some(&["factors", "iostress"]));
        assert_eq!(hm.ratios.len(), 7 * 2);
        // Columns keep registry order; cell() must agree with the raw grid.
        let first_col = hm.workloads[0].clone();
        assert_eq!(hm.cell(Language::Python, &first_col), hm.ratios[0]);
        assert!(hm.cell(Language::Go, "iostress") > 1.0);
    }
}

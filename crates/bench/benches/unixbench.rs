//! Criterion bench for the Fig. 4 experiment: replaying UnixBench-style
//! test traces on each VM target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use confbench_types::{TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;
use confbench_workloads::unixbench_suite;

fn bench_unixbench(c: &mut Criterion) {
    let suite = unixbench_suite(1);
    let ctx_switching =
        suite.iter().find(|t| t.name.contains("Context Switching")).expect("test present");
    let dhrystone = suite.iter().find(|t| t.name.contains("Dhrystone")).expect("test present");

    for (label, test) in [("pipe_ctx_switching", ctx_switching), ("dhrystone", dhrystone)] {
        let mut group = c.benchmark_group(format!("fig4_{label}"));
        for platform in [TeePlatform::Tdx, TeePlatform::SevSnp] {
            for kind in VmKind::ALL {
                let target = VmTarget { platform, kind };
                let mut vm = TeeVmBuilder::new(target).seed(9).build();
                group.bench_with_input(BenchmarkId::from_parameter(target), &test.trace, |b, t| {
                    b.iter(|| black_box(vm.execute(t)))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_unixbench);
criterion_main!(benches);

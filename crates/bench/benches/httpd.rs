//! Criterion bench for the HTTP connection layer: gateway round-trips over
//! a persistent keep-alive socket vs paying a fresh TCP connect per
//! request (the pre-keep-alive client behaviour), on both the plain
//! health path and the remote-dispatch execute path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use confbench::Gateway;
use confbench_httpd::{Client, Method, Request};
use confbench_types::TeePlatform;

fn bench_httpd(c: &mut Criterion) {
    let gateway = Arc::new(Gateway::builder().seed(3).local_host(TeePlatform::Tdx).build());
    let server = Arc::clone(&gateway).serve().expect("bind");
    let addr = server.addr();
    let health = Request::new(Method::Get, "/v1/health");

    // One client for the whole run: after the first request every
    // iteration rides the same pooled keep-alive socket.
    c.bench_function("gateway_roundtrip_keep_alive", |b| {
        let client = Client::new(addr);
        b.iter(|| black_box(client.send(&health).expect("health")))
    });
    // A fresh client per iteration has an empty pool, so every request
    // pays connect + first-byte — the old per-request-connect behaviour.
    c.bench_function("gateway_roundtrip_per_request_connect", |b| {
        b.iter(|| {
            let client = Client::new(addr);
            black_box(client.send(&health).expect("health"))
        })
    });
    server.shutdown();
}

criterion_group!(benches, bench_httpd);
criterion_main!(benches);

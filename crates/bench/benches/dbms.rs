//! Criterion bench for the DBMS experiment: real speedtest execution (the
//! substrate itself) and replay of its traces on each VM target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use confbench_minidb::{SpeedTest, SpeedTestCase};
use confbench_types::{TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;

fn bench_dbms(c: &mut Criterion) {
    c.bench_function("minidb_speedtest_insert_txn", |b| {
        b.iter(|| {
            let mut runner = SpeedTest::new(5, 1);
            black_box(runner.run(SpeedTestCase::InsertTransaction).unwrap())
        })
    });

    // Trace replay: the paper's measurement step.
    let mut runner = SpeedTest::new(5, 1);
    let report = runner.run(SpeedTestCase::InsertAutocommit).unwrap();
    let mut group = c.benchmark_group("dbms_autocommit_trace");
    for platform in TeePlatform::ALL {
        for kind in VmKind::ALL {
            let target = VmTarget { platform, kind };
            let mut vm = TeeVmBuilder::new(target).seed(1).build();
            group.bench_with_input(BenchmarkId::from_parameter(target), &report.trace, |b, t| {
                b.iter(|| black_box(vm.execute(t)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dbms);
criterion_main!(benches);

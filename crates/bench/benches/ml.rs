//! Criterion bench for the Fig. 3 experiment: executing one ML-inference
//! trace on each VM target (and the real tinynn forward pass itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use confbench_types::{TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;
use confbench_workloads::MlWorkload;

fn bench_ml(c: &mut Criterion) {
    let ml = MlWorkload::new(7);
    let run = ml.classify(0);

    let mut group = c.benchmark_group("fig3_ml_inference_trace");
    for platform in TeePlatform::ALL {
        for kind in VmKind::ALL {
            let target = VmTarget { platform, kind };
            let mut vm = TeeVmBuilder::new(target).seed(7).build();
            group.bench_with_input(BenchmarkId::from_parameter(target), &run.trace, |b, trace| {
                b.iter(|| black_box(vm.execute(trace)))
            });
        }
    }
    group.finish();

    c.bench_function("tinynn_forward_pass", |b| {
        let input = confbench_tinynn::dataset_image(0, 7).to_input(MlWorkload::INPUT_DIM);
        let model = confbench_tinynn::mobilenet(MlWorkload::INPUT_DIM, 6, 10, 7);
        b.iter(|| black_box(model.forward(&input)))
    });
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);

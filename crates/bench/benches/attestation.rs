//! Criterion bench for the Fig. 5 experiment: full attestation flows
//! (generation + verification) for TDX and SEV-SNP.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use confbench_attest::{SnpEcosystem, TdxEcosystem};
use confbench_types::{TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

fn bench_attestation(c: &mut Criterion) {
    c.bench_function("fig5_tdx_quote_roundtrip", |b| {
        let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(11).build();
        let eco = TdxEcosystem::new(11);
        let nonce = TdxEcosystem::report_data_for_nonce(1);
        b.iter(|| {
            let (quote, attest) = eco.generate_quote(&mut td, nonce).unwrap();
            let check = eco.verify_quote(&quote, nonce).unwrap();
            black_box((attest.latency_ms, check.latency_ms))
        })
    });

    c.bench_function("fig5_snp_report_roundtrip", |b| {
        let mut guest = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(11).build();
        let eco = SnpEcosystem::new(11);
        let nonce = [7u8; 64];
        b.iter(|| {
            let (report, attest) = eco.request_report(&mut guest, nonce).unwrap();
            let check = eco.verify_report(&report, nonce).unwrap();
            black_box((attest.latency_ms, check.latency_ms))
        })
    });

    c.bench_function("simsig_sign_verify", |b| {
        let sk = confbench_crypto::SigningKey::from_seed(3);
        let vk = sk.verifying_key();
        b.iter(|| {
            let sig = sk.sign(b"attestation evidence");
            black_box(vk.verify(b"attestation evidence", &sig).is_ok())
        })
    });
}

criterion_group!(benches, bench_attestation);
criterion_main!(benches);

//! Criterion bench for the Figs. 6/7 experiment: the per-language launcher
//! paths (real interpretation / compilation) and heatmap-cell measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use confbench_bench::{heatmap_quick_args, measure_function};
use confbench_faasrt::FunctionLauncher;
use confbench_types::{Language, TeePlatform};
use confbench_workloads::find_workload;

fn bench_faas(c: &mut Criterion) {
    let workload = find_workload("factors").expect("registered");
    let args = heatmap_quick_args("factors");

    let mut group = c.benchmark_group("fig6_launcher_factors");
    for language in Language::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(language), &language, |b, &lang| {
            let launcher = FunctionLauncher::new(lang);
            b.iter(|| black_box(launcher.launch(&workload, &args).unwrap()))
        });
    }
    group.finish();

    c.bench_function("fig6_heatmap_cell_tdx_go", |b| {
        b.iter(|| {
            black_box(
                measure_function(&workload, &args, Language::Go, TeePlatform::Tdx, 3, 13).unwrap(),
            )
        })
    });

    // The crypto-free engine hot paths on their own.
    c.bench_function("cbscript_interpret_sum_loop", |b| {
        let program =
            confbench_faasrt::parse("let s = 0; for i in 0, 5000 { s = s + i; } result(s);")
                .unwrap();
        b.iter(|| {
            black_box(confbench_faasrt::run_program(&program, &[], 14, 10_000_000).unwrap().result)
        })
    });

    c.bench_function("cbscript_stackvm_sum_loop", |b| {
        let program =
            confbench_faasrt::parse("let s = 0; for i in 0, 5000 { s = s + i; } result(s);")
                .unwrap();
        let module = confbench_faasrt::compile(&program).unwrap();
        let vm = confbench_faasrt::StackVm::new(confbench_faasrt::JitMode::wasmi(), 10_000_000);
        b.iter(|| black_box(vm.run(&module, &[]).unwrap().result))
    });
}

criterion_group!(benches, bench_faas);
criterion_main!(benches);

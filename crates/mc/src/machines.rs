//! Adapters binding the five TEE state machines to the [`Machine`] trait,
//! plus their standard small worlds and invariant sets.
//!
//! Each adapter snapshots the simulator into a canonical value (sorted
//! vectors, no hash maps), replays one operation through the *real*
//! implementation in `confbench-memsim`/`confbench-devio`, and snapshots
//! again — the checker never re-implements transition rules, so a divergence
//! between model and invariant is always a finding about the shipped code.
//!
//! The small worlds are the minimum that exhibits every cross-owner
//! interaction the invariants speak about: two pages/granules/GPAs, two
//! guests/realms, two host frames. Each world closes (no new states) within
//! the default depth bound, so the invariants hold for sequences of any
//! length.

use confbench_devio::{transition, TdispError, TdispOp, TdispState};
use confbench_fleet::{MigrationFsm, MigrationOp, MigrationPhase, SourceVm};
use confbench_memsim::{
    GranuleError, GranuleState, GranuleTable, PageNum, Rmp, RmpEntry, RmpError, RmpOwner,
    SecureEpt, SeptError, SeptPageState, World,
};

use crate::{Machine, Outcome, StateInvariant, StepInvariant};

fn rmp_code(e: RmpError) -> &'static str {
    match e {
        RmpError::OutOfRange(_) => "out-of-range",
        RmpError::AlreadyAssigned(_) => "already-assigned",
        RmpError::NotOwner(_) => "not-owner",
        RmpError::DoubleValidation(_) => "double-validation",
        RmpError::NotValidated(_) => "not-validated",
        RmpError::VmplDenied(_) => "vmpl-denied",
    }
}

/// One bound RMP operation in the small world.
#[derive(Debug, Clone, Copy)]
pub enum RmpOp {
    /// `RMPUPDATE`: hypervisor assigns `page` to `asid`.
    Assign {
        /// Target page.
        page: u64,
        /// Receiving guest.
        asid: u32,
    },
    /// `PVALIDATE` by `asid`.
    Pvalidate {
        /// Target page.
        page: u64,
        /// Issuing guest.
        asid: u32,
    },
    /// `RMPADJUST` setting the VMPL mask.
    Rmpadjust {
        /// Target page.
        page: u64,
        /// Issuing guest.
        asid: u32,
        /// New VMPL permission mask.
        mask: u8,
    },
    /// Hypervisor reclaim.
    Reclaim {
        /// Target page.
        page: u64,
    },
    /// Guest data access from a VMPL.
    GuestRead {
        /// Target page.
        page: u64,
        /// Accessing guest.
        asid: u32,
        /// Accessing privilege level.
        vmpl: u8,
    },
    /// Hypervisor write.
    HostWrite {
        /// Target page.
        page: u64,
    },
}

/// The AMD SNP Reverse Map Table in a small world.
pub struct RmpMachine {
    pages: u64,
    asids: Vec<u32>,
    masks: Vec<u8>,
    vmpls: Vec<u8>,
}

impl RmpMachine {
    /// Two pages, two guests, a restrictive and a permissive VMPL mask, and
    /// accesses from VMPL 0 and 1 — enough to reach every fault class.
    pub fn standard() -> Self {
        RmpMachine { pages: 2, asids: vec![1, 2], masks: vec![0b0001, 0b1111], vmpls: vec![0, 1] }
    }
}

impl Machine for RmpMachine {
    type State = Vec<RmpEntry>;
    type Op = RmpOp;

    fn name(&self) -> &'static str {
        "rmp"
    }

    fn initial(&self) -> Self::State {
        Rmp::new(self.pages).entries().to_vec()
    }

    fn ops(&self) -> Vec<RmpOp> {
        let mut ops = Vec::new();
        for page in 0..self.pages {
            for &asid in &self.asids {
                ops.push(RmpOp::Assign { page, asid });
                ops.push(RmpOp::Pvalidate { page, asid });
                for &mask in &self.masks {
                    ops.push(RmpOp::Rmpadjust { page, asid, mask });
                }
                for &vmpl in &self.vmpls {
                    ops.push(RmpOp::GuestRead { page, asid, vmpl });
                }
            }
            ops.push(RmpOp::Reclaim { page });
            ops.push(RmpOp::HostWrite { page });
        }
        ops
    }

    fn apply(&self, state: &Self::State, op: &RmpOp) -> Outcome<Self::State> {
        let mut rmp = Rmp::from_entries(state.clone());
        let result = match *op {
            RmpOp::Assign { page, asid } => rmp.assign(PageNum(page), asid),
            RmpOp::Pvalidate { page, asid } => rmp.pvalidate(PageNum(page), asid),
            RmpOp::Rmpadjust { page, asid, mask } => rmp.rmpadjust(PageNum(page), asid, mask),
            RmpOp::Reclaim { page } => rmp.reclaim(PageNum(page)),
            RmpOp::GuestRead { page, asid, vmpl } => {
                rmp.check_guest_access_vmpl(PageNum(page), asid, vmpl)
            }
            RmpOp::HostWrite { page } => rmp.check_host_write(PageNum(page)),
        };
        match result {
            Ok(()) => Outcome::ok(rmp.entries().to_vec()),
            Err(e) => Outcome::rejected(rmp.entries().to_vec(), rmp_code(e)),
        }
    }
}

/// RMP state invariants.
pub fn rmp_state_invariants() -> Vec<StateInvariant<RmpMachine>> {
    vec![StateInvariant {
        // The stale-state class the issue names: a validated bit surviving
        // an ownership transition back to the hypervisor.
        name: "hypervisor-page-never-validated",
        check: |s| {
            for (i, e) in s.iter().enumerate() {
                if e.owner == RmpOwner::Hypervisor && e.validated {
                    return Err(format!("page {i} is hypervisor-owned yet validated"));
                }
            }
            Ok(())
        },
    }]
}

/// RMP transition invariants.
pub fn rmp_step_invariants() -> Vec<StepInvariant<RmpMachine>> {
    vec![
        StepInvariant {
            name: "rejection-leaves-state-unchanged",
            check: |pre, _op, out| {
                if !out.accepted && out.next != *pre {
                    return Err("a rejected operation mutated the table".into());
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "assign-yields-unvalidated-page",
            check: |_pre, op, out| {
                if let RmpOp::Assign { page, asid } = *op {
                    if out.accepted {
                        let e = out.next[page as usize];
                        if e.validated || e.owner != (RmpOwner::Guest { asid }) {
                            return Err(format!("assign produced {e:?}"));
                        }
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "guest-access-requires-owned-validated-vmpl",
            check: |pre, op, out| {
                if let RmpOp::GuestRead { page, asid, vmpl } = *op {
                    let e = pre[page as usize];
                    let legal = e.owner == (RmpOwner::Guest { asid })
                        && e.validated
                        && vmpl <= 3
                        && e.vmpl_mask & (1 << vmpl) != 0;
                    if out.accepted != legal {
                        return Err(format!(
                            "access from asid {asid} vmpl {vmpl} on {e:?}: accepted={}",
                            out.accepted
                        ));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "host-write-faults-iff-guest-owned",
            check: |pre, op, out| {
                if let RmpOp::HostWrite { page } = *op {
                    let hyp = pre[page as usize].owner == RmpOwner::Hypervisor;
                    if out.accepted != hyp {
                        return Err(format!(
                            "host write on {:?}: accepted={}",
                            pre[page as usize], out.accepted
                        ));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            // Fault-class reachability: #NPF(not-validated) only fires on a
            // page the accessing guest owns but has not validated.
            name: "not-validated-fault-only-from-owned-unvalidated",
            check: |pre, op, out| {
                if out.code != "not-validated" {
                    return Ok(());
                }
                if let RmpOp::GuestRead { page, asid, .. } = *op {
                    let e = pre[page as usize];
                    if e.owner != (RmpOwner::Guest { asid }) || e.validated {
                        return Err(format!("not-validated fault from {e:?}"));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "double-validation-fault-only-when-validated",
            check: |pre, op, out| {
                if out.code != "double-validation" {
                    return Ok(());
                }
                if let RmpOp::Pvalidate { page, asid } = *op {
                    let e = pre[page as usize];
                    if e.owner != (RmpOwner::Guest { asid }) || !e.validated {
                        return Err(format!("double-validation fault from {e:?}"));
                    }
                }
                Ok(())
            },
        },
    ]
}

fn sept_code(e: SeptError) -> &'static str {
    match e {
        SeptError::AlreadyMapped(_) => "already-mapped",
        SeptError::NotMapped(_) => "not-mapped",
        SeptError::NotPending(_) => "not-pending",
        SeptError::PendingAccess(_) => "pending-access",
        SeptError::BlockedAccess(_) => "blocked-access",
        SeptError::SharedBitSet(_) => "shared-bit",
        SeptError::HpaInUse(_) => "hpa-in-use",
    }
}

/// One bound SEPT operation in the small world.
#[derive(Debug, Clone, Copy)]
pub enum SeptOp {
    /// `TDH.MEM.PAGE.AUG`.
    Aug {
        /// Guest page.
        gpa: u64,
        /// Host page.
        hpa: u64,
    },
    /// `TDH.MEM.PAGE.ADD`.
    Add {
        /// Guest page.
        gpa: u64,
        /// Host page.
        hpa: u64,
    },
    /// `TDG.MEM.PAGE.ACCEPT`.
    Accept {
        /// Guest page.
        gpa: u64,
    },
    /// `TDH.MEM.RANGE.BLOCK`.
    Block {
        /// Guest page.
        gpa: u64,
    },
    /// `TDH.MEM.PAGE.REMOVE`.
    Remove {
        /// Guest page.
        gpa: u64,
    },
    /// Guest access through the SEPT walker.
    Access {
        /// Guest page.
        gpa: u64,
    },
}

/// The Intel TDX Secure EPT in a small world.
pub struct SeptMachine {
    gpas: Vec<u64>,
    hpas: Vec<u64>,
}

impl SeptMachine {
    /// Two guest pages over two host frames: the minimum world where
    /// aliasing (two GPAs onto one HPA) is expressible.
    pub fn standard() -> Self {
        SeptMachine { gpas: vec![1, 2], hpas: vec![100, 101] }
    }
}

impl Machine for SeptMachine {
    type State = Vec<(PageNum, PageNum, SeptPageState)>;
    type Op = SeptOp;

    fn name(&self) -> &'static str {
        "sept"
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn ops(&self) -> Vec<SeptOp> {
        let mut ops = Vec::new();
        for &gpa in &self.gpas {
            for &hpa in &self.hpas {
                ops.push(SeptOp::Aug { gpa, hpa });
                ops.push(SeptOp::Add { gpa, hpa });
            }
            ops.push(SeptOp::Accept { gpa });
            ops.push(SeptOp::Block { gpa });
            ops.push(SeptOp::Remove { gpa });
            ops.push(SeptOp::Access { gpa });
        }
        ops
    }

    fn apply(&self, state: &Self::State, op: &SeptOp) -> Outcome<Self::State> {
        let mut sept = SecureEpt::from_snapshot(state);
        let result = match *op {
            SeptOp::Aug { gpa, hpa } => sept.aug(PageNum(gpa), PageNum(hpa)),
            SeptOp::Add { gpa, hpa } => sept.add(PageNum(gpa), PageNum(hpa)),
            SeptOp::Accept { gpa } => sept.accept(PageNum(gpa)),
            SeptOp::Block { gpa } => sept.block(PageNum(gpa)),
            SeptOp::Remove { gpa } => sept.remove(PageNum(gpa)).map(|_| ()),
            SeptOp::Access { gpa } => sept.check_access(PageNum(gpa)).map(|_| ()),
        };
        match result {
            Ok(()) => Outcome::ok(sept.snapshot()),
            Err(e) => Outcome::rejected(sept.snapshot(), sept_code(e)),
        }
    }
}

fn sept_entry(
    state: &[(PageNum, PageNum, SeptPageState)],
    gpa: u64,
) -> Option<(PageNum, SeptPageState)> {
    state.iter().find(|(g, _, _)| g.0 == gpa).map(|(_, h, s)| (*h, *s))
}

/// SEPT state invariants.
pub fn sept_state_invariants() -> Vec<StateInvariant<SeptMachine>> {
    vec![StateInvariant {
        // The harvested bug: before the `HpaInUse` guard, the trace
        // [Aug{gpa:1,hpa:100}, Aug{gpa:2,hpa:100}] violated this at depth 2.
        name: "no-host-page-backs-two-mappings",
        check: |s| {
            for (i, (_, hpa_a, _)) in s.iter().enumerate() {
                if s.iter().skip(i + 1).any(|(_, hpa_b, _)| hpa_a == hpa_b) {
                    return Err(format!("hpa {} mapped at two GPAs", hpa_a.0));
                }
            }
            Ok(())
        },
    }]
}

/// SEPT transition invariants.
pub fn sept_step_invariants() -> Vec<StepInvariant<SeptMachine>> {
    vec![
        StepInvariant {
            name: "rejection-leaves-state-unchanged",
            check: |pre, _op, out| {
                if !out.accepted && out.next != *pre {
                    return Err("a rejected operation mutated the table".into());
                }
                Ok(())
            },
        },
        StepInvariant {
            // The TDX analog of "no accept of an unvalidated granule":
            // ACCEPT must only succeed on a page the VMM staged as Pending.
            name: "accept-only-from-pending",
            check: |pre, op, out| {
                if let SeptOp::Accept { gpa } = *op {
                    let pending = matches!(sept_entry(pre, gpa), Some((_, SeptPageState::Pending)));
                    if out.accepted != pending {
                        return Err(format!(
                            "accept of gpa {gpa} ({:?}): accepted={}",
                            sept_entry(pre, gpa),
                            out.accepted
                        ));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "access-only-through-mapped-pages",
            check: |pre, op, out| {
                if let SeptOp::Access { gpa } = *op {
                    let mapped = matches!(sept_entry(pre, gpa), Some((_, SeptPageState::Mapped)));
                    if out.accepted != mapped {
                        return Err(format!(
                            "access to gpa {gpa} ({:?}): accepted={}",
                            sept_entry(pre, gpa),
                            out.accepted
                        ));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "remove-only-blocked-pages",
            check: |pre, op, out| {
                if let SeptOp::Remove { gpa } = *op {
                    let blocked = matches!(sept_entry(pre, gpa), Some((_, SeptPageState::Blocked)));
                    if out.accepted != blocked {
                        return Err(format!(
                            "remove of gpa {gpa} ({:?}): accepted={}",
                            sept_entry(pre, gpa),
                            out.accepted
                        ));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            // Fault-class reachability: the #VE for pending pages only
            // fires on pages actually pending acceptance.
            name: "pending-access-fault-only-from-pending",
            check: |pre, op, out| {
                if out.code != "pending-access" {
                    return Ok(());
                }
                if let SeptOp::Access { gpa } = *op {
                    if !matches!(sept_entry(pre, gpa), Some((_, SeptPageState::Pending))) {
                        return Err(format!(
                            "#VE from non-pending entry {:?}",
                            sept_entry(pre, gpa)
                        ));
                    }
                }
                Ok(())
            },
        },
    ]
}

fn gpt_code(e: GranuleError) -> &'static str {
    match e {
        GranuleError::OutOfRange(_) => "out-of-range",
        GranuleError::WrongWorld(..) => "wrong-world",
        GranuleError::WrongState(_) => "wrong-state",
        GranuleError::ProtectionFault(..) => "protection-fault",
    }
}

/// One bound GPT operation in the small world.
#[derive(Debug, Clone, Copy)]
pub enum GptOp {
    /// Host RMI `GRANULE.DELEGATE`.
    Delegate {
        /// Target granule.
        g: u64,
    },
    /// Host RMI `GRANULE.UNDELEGATE`.
    Undelegate {
        /// Target granule.
        g: u64,
    },
    /// RMM: assign to a realm.
    Assign {
        /// Target granule.
        g: u64,
        /// Receiving realm descriptor.
        rd: u32,
    },
    /// RMM: release from a realm.
    Release {
        /// Target granule.
        g: u64,
        /// Releasing realm descriptor.
        rd: u32,
    },
    /// Hardware GPT check from a world.
    Access {
        /// Target granule.
        g: u64,
        /// Accessing world.
        from: World,
    },
}

/// The ARM CCA Granule Protection Table in a small world.
pub struct GptMachine {
    granules: u64,
    realms: Vec<u32>,
}

impl GptMachine {
    /// Two granules, two realms, accesses from all four worlds.
    pub fn standard() -> Self {
        GptMachine { granules: 2, realms: vec![1, 2] }
    }
}

impl Machine for GptMachine {
    type State = Vec<(World, GranuleState)>;
    type Op = GptOp;

    fn name(&self) -> &'static str {
        "gpt"
    }

    fn initial(&self) -> Self::State {
        GranuleTable::new(self.granules).snapshot()
    }

    fn ops(&self) -> Vec<GptOp> {
        let mut ops = Vec::new();
        for g in 0..self.granules {
            ops.push(GptOp::Delegate { g });
            ops.push(GptOp::Undelegate { g });
            for &rd in &self.realms {
                ops.push(GptOp::Assign { g, rd });
                ops.push(GptOp::Release { g, rd });
            }
            for from in [World::NonSecure, World::Secure, World::Realm, World::Root] {
                ops.push(GptOp::Access { g, from });
            }
        }
        ops
    }

    fn apply(&self, state: &Self::State, op: &GptOp) -> Outcome<Self::State> {
        let mut gpt = GranuleTable::from_snapshot(state);
        let result = match *op {
            GptOp::Delegate { g } => gpt.delegate(PageNum(g)),
            GptOp::Undelegate { g } => gpt.undelegate(PageNum(g)),
            GptOp::Assign { g, rd } => gpt.assign_to_realm(PageNum(g), rd),
            GptOp::Release { g, rd } => gpt.release_from_realm(PageNum(g), rd),
            GptOp::Access { g, from } => gpt.check_access(PageNum(g), from),
        };
        match result {
            Ok(()) => Outcome::ok(gpt.snapshot()),
            Err(e) => Outcome::rejected(gpt.snapshot(), gpt_code(e)),
        }
    }
}

/// GPT state invariants.
pub fn gpt_state_invariants() -> Vec<StateInvariant<GptMachine>> {
    vec![
        StateInvariant {
            // "No accept of an unvalidated granule": a granule only reaches
            // Assigned through Delegated, so realm data never lives in a
            // granule another world can reach.
            name: "assigned-granule-is-realm-world",
            check: |s| {
                for (i, (w, st)) in s.iter().enumerate() {
                    if matches!(st, GranuleState::Assigned { .. }) && *w != World::Realm {
                        return Err(format!("granule {i} assigned while in world {w:?}"));
                    }
                }
                Ok(())
            },
        },
        StateInvariant {
            name: "nonsecure-granule-is-undelegated",
            check: |s| {
                for (i, (w, st)) in s.iter().enumerate() {
                    if *w == World::NonSecure && *st != GranuleState::Undelegated {
                        return Err(format!("granule {i} in NS world with state {st:?}"));
                    }
                }
                Ok(())
            },
        },
    ]
}

/// GPT transition invariants.
pub fn gpt_step_invariants() -> Vec<StepInvariant<GptMachine>> {
    vec![
        StepInvariant {
            name: "rejection-leaves-state-unchanged",
            check: |pre, _op, out| {
                if !out.accepted && out.next != *pre {
                    return Err("a rejected operation mutated the table".into());
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "assign-only-from-delegated",
            check: |pre, op, out| {
                if let GptOp::Assign { g, .. } = *op {
                    let delegated = pre[g as usize] == (World::Realm, GranuleState::Delegated);
                    if out.accepted != delegated {
                        return Err(format!(
                            "assign of granule {g} ({:?}): accepted={}",
                            pre[g as usize], out.accepted
                        ));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            // Undelegating an Assigned granule would hand realm data back
            // to the normal world without the RMM wipe.
            name: "undelegate-never-assigned",
            check: |pre, op, out| {
                if let GptOp::Undelegate { g } = *op {
                    if out.accepted && matches!(pre[g as usize].1, GranuleState::Assigned { .. }) {
                        return Err(format!("undelegated assigned granule {g}"));
                    }
                }
                Ok(())
            },
        },
        StepInvariant {
            // GPF reachability: faults exactly on a world mismatch from a
            // non-root world, never spuriously.
            name: "access-respects-world-boundaries",
            check: |pre, op, out| {
                if let GptOp::Access { g, from } = *op {
                    let legal = from == World::Root || pre[g as usize].0 == from;
                    if out.accepted != legal {
                        return Err(format!(
                            "access from {from:?} to granule {g} ({:?}): accepted={}",
                            pre[g as usize], out.accepted
                        ));
                    }
                    if !out.accepted && out.code != "protection-fault" {
                        return Err(format!("world mismatch produced {:?}", out.code));
                    }
                }
                Ok(())
            },
        },
    ]
}

fn tdisp_code(e: TdispError) -> &'static str {
    match e {
        TdispError::InvalidTransition { .. } => "invalid-transition",
        TdispError::DmaNotPermitted { .. } => "dma-not-permitted",
        TdispError::Wedged { .. } => "wedged",
    }
}

/// The TDISP interface machine (its world is the machine itself: five
/// states, eight operations).
pub struct TdispMachine;

impl Machine for TdispMachine {
    type State = TdispState;
    type Op = TdispOp;

    fn name(&self) -> &'static str {
        "tdisp"
    }

    fn initial(&self) -> TdispState {
        TdispState::Unlocked
    }

    fn ops(&self) -> Vec<TdispOp> {
        TdispOp::ALL.to_vec()
    }

    fn apply(&self, state: &TdispState, op: &TdispOp) -> Outcome<TdispState> {
        match transition(*state, *op) {
            Ok(next) => Outcome::ok(next),
            Err(e) => Outcome::rejected(*state, tdisp_code(e)),
        }
    }
}

/// TDISP state invariants (none beyond the enum's own well-formedness; the
/// interesting properties are all transition-level).
pub fn tdisp_state_invariants() -> Vec<StateInvariant<TdispMachine>> {
    Vec::new()
}

/// TDISP transition invariants.
pub fn tdisp_step_invariants() -> Vec<StepInvariant<TdispMachine>> {
    vec![
        StepInvariant {
            name: "rejection-leaves-state-unchanged",
            check: |pre, _op, out| {
                if !out.accepted && out.next != *pre {
                    return Err("a rejected operation changed the interface state".into());
                }
                Ok(())
            },
        },
        StepInvariant {
            // The issue's headline device invariant: no DMA-direct from a
            // non-`Run` interface.
            name: "private-dma-only-in-run",
            check: |pre, op, out| {
                if *op == TdispOp::DmaPrivate && out.accepted && *pre != TdispState::Run {
                    return Err(format!("private DMA accepted in {pre}"));
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "start-requires-attestation",
            check: |pre, op, out| {
                if *op == TdispOp::Start && out.accepted && *pre != TdispState::Attested {
                    return Err(format!("start accepted in {pre}"));
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "error-only-leaves-via-reset",
            check: |pre, op, out| {
                if *pre == TdispState::Error
                    && out.accepted
                    && !matches!(op, TdispOp::Reset | TdispOp::Fault)
                {
                    return Err(format!("{op} escaped the Error state"));
                }
                Ok(())
            },
        },
        StepInvariant {
            // Wedged-fault reachability: the "reset required" rejection
            // only ever comes from an interface actually in Error.
            name: "wedged-fault-only-in-error",
            check: |pre, _op, out| {
                if out.code == "wedged" && *pre != TdispState::Error {
                    return Err(format!("wedged rejection from {pre}"));
                }
                Ok(())
            },
        },
    ]
}

/// Live-migration state machine
/// (`Idle → Draining → PreCopy → StopAndCopy → ReAttest →
/// Resumed/Aborted`) in a small world: a 4-page tracking capacity, a
/// 2-page resident image, single-page touches, and one- or two-page copy
/// rounds — enough to reach every phase, every accounting rejection, and
/// the abort edge from every live phase. Unlike the other four adapters
/// this one checks a machine from `confbench-fleet`; the fleet's
/// orchestrator drives the *same* `MigrationFsm::apply`, so the closure
/// proven here covers every path a real migration can take.
#[derive(Debug, Clone, Copy)]
pub struct MigrationMachine {
    /// Dirty-tracking capacity of the small world.
    pub cap: u64,
    /// Resident pages at `BeginPreCopy`.
    pub resident: u64,
}

impl MigrationMachine {
    /// The standard small world: capacity 4, resident image of 2.
    pub fn standard() -> Self {
        MigrationMachine { cap: 4, resident: 2 }
    }
}

impl Machine for MigrationMachine {
    type State = MigrationFsm;
    type Op = MigrationOp;

    fn name(&self) -> &'static str {
        "migration"
    }

    fn initial(&self) -> MigrationFsm {
        MigrationFsm::new(self.cap)
    }

    fn ops(&self) -> Vec<MigrationOp> {
        vec![
            MigrationOp::Drain,
            MigrationOp::BeginPreCopy { resident: self.resident },
            MigrationOp::Touch { pages: 1 },
            MigrationOp::CopyRound { copied: 1 },
            MigrationOp::CopyRound { copied: 2 },
            MigrationOp::Pause,
            MigrationOp::FinalCopy,
            MigrationOp::BeginReAttest,
            MigrationOp::Attest,
            MigrationOp::Resume,
            MigrationOp::Abort,
        ]
    }

    fn apply(&self, state: &MigrationFsm, op: &MigrationOp) -> Outcome<MigrationFsm> {
        match state.apply(*op) {
            Ok(next) => Outcome::ok(next),
            Err(e) => Outcome::rejected(*state, e.code()),
        }
    }
}

/// Migration state invariants — the issue's three headline properties
/// plus accounting sanity.
pub fn migration_state_invariants() -> Vec<StateInvariant<MigrationMachine>> {
    vec![
        StateInvariant {
            // Never resumed without re-attest, and no dirty page left
            // uncopied at resume.
            name: "resumed-implies-attested-and-clean",
            check: |s| {
                if s.phase == MigrationPhase::Resumed {
                    if !s.attested {
                        return Err("resumed without a verified re-attestation".into());
                    }
                    if s.dirty != 0 {
                        return Err(format!("resumed with {} dirty pages uncopied", s.dirty));
                    }
                    if s.source != SourceVm::Retired {
                        return Err("resumed while the source VM still runs".into());
                    }
                }
                Ok(())
            },
        },
        StateInvariant {
            // Abort always returns the source VM to a runnable state.
            name: "aborted-source-runnable",
            check: |s| {
                if s.phase == MigrationPhase::Aborted && s.source != SourceVm::Running {
                    return Err(format!("aborted but source is {:?}", s.source));
                }
                Ok(())
            },
        },
        StateInvariant {
            // At most one live incarnation of the VM: the source only ever
            // retires on a successful resume.
            name: "source-retired-only-after-resume",
            check: |s| {
                if s.source == SourceVm::Retired && s.phase != MigrationPhase::Resumed {
                    return Err(format!("source retired in phase {}", s.phase));
                }
                Ok(())
            },
        },
        StateInvariant {
            name: "dirty-within-capacity",
            check: |s| {
                if s.dirty > s.cap {
                    return Err(format!("dirty {} exceeds capacity {}", s.dirty, s.cap));
                }
                Ok(())
            },
        },
        StateInvariant {
            // The pause window is exactly stop-and-copy and re-attest.
            name: "paused-only-during-blackout",
            check: |s| {
                let blackout =
                    matches!(s.phase, MigrationPhase::StopAndCopy | MigrationPhase::ReAttest);
                if s.source == SourceVm::Paused && !blackout {
                    return Err(format!("source paused in phase {}", s.phase));
                }
                Ok(())
            },
        },
    ]
}

/// Migration transition invariants.
pub fn migration_step_invariants() -> Vec<StepInvariant<MigrationMachine>> {
    vec![
        StepInvariant {
            name: "rejection-leaves-state-unchanged",
            check: |pre, _op, out| {
                if !out.accepted && out.next != *pre {
                    return Err("a rejected operation changed the migration state".into());
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "resume-requires-attest-and-clean",
            check: |pre, op, out| {
                if *op == MigrationOp::Resume && out.accepted && (!pre.attested || pre.dirty != 0) {
                    return Err(format!(
                        "resume accepted with attested={} dirty={}",
                        pre.attested, pre.dirty
                    ));
                }
                Ok(())
            },
        },
        StepInvariant {
            // A paused source must not dirty pages.
            name: "touch-only-while-source-runs",
            check: |pre, op, out| {
                if matches!(op, MigrationOp::Touch { .. })
                    && out.accepted
                    && pre.source != SourceVm::Running
                {
                    return Err(format!("touch accepted with source {:?}", pre.source));
                }
                Ok(())
            },
        },
        StepInvariant {
            name: "abort-restores-runnable",
            check: |_pre, op, out| {
                if *op == MigrationOp::Abort && out.accepted && out.next.source != SourceVm::Running
                {
                    return Err(format!("abort left source {:?}", out.next.source));
                }
                Ok(())
            },
        },
        StepInvariant {
            // Stop-and-copy is final: after FinalCopy nothing is dirty
            // (the paused source cannot re-dirty, and re-attest checks it).
            name: "final-copy-clears-dirty",
            check: |_pre, op, out| {
                if *op == MigrationOp::FinalCopy && out.accepted && out.next.dirty != 0 {
                    return Err(format!("final copy left {} dirty pages", out.next.dirty));
                }
                Ok(())
            },
        },
    ]
}

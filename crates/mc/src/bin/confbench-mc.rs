//! `confbench-mc` — exhaustive bounded model checking of the TEE state
//! machines.
//!
//! ```text
//! confbench-mc [--machine all|rmp|sept|gpt|tdisp|migration] [--depth N]
//! ```
//!
//! Exits non-zero when any invariant is violated, printing a minimal
//! counterexample trace per violated invariant. CI runs this as the
//! `model-check` step.

use std::process::ExitCode;

use confbench_mc::{
    check, check_all, machines, CheckConfig, GptMachine, MigrationMachine, Report, RmpMachine,
    SeptMachine, TdispMachine,
};

fn usage() -> ! {
    eprintln!("usage: confbench-mc [--machine all|rmp|sept|gpt|tdisp|migration] [--depth N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut machine = String::from("all");
    let mut cfg = CheckConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => machine = args.next().unwrap_or_else(|| usage()),
            "--depth" => {
                cfg.depth = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let reports: Vec<Report> = match machine.as_str() {
        "all" => check_all(&cfg),
        "rmp" => vec![check(
            &RmpMachine::standard(),
            &cfg,
            &machines::rmp_state_invariants(),
            &machines::rmp_step_invariants(),
        )],
        "sept" => vec![check(
            &SeptMachine::standard(),
            &cfg,
            &machines::sept_state_invariants(),
            &machines::sept_step_invariants(),
        )],
        "gpt" => vec![check(
            &GptMachine::standard(),
            &cfg,
            &machines::gpt_state_invariants(),
            &machines::gpt_step_invariants(),
        )],
        "tdisp" => vec![check(
            &TdispMachine,
            &cfg,
            &machines::tdisp_state_invariants(),
            &machines::tdisp_step_invariants(),
        )],
        "migration" => vec![check(
            &MigrationMachine::standard(),
            &cfg,
            &machines::migration_state_invariants(),
            &machines::migration_step_invariants(),
        )],
        _ => usage(),
    };

    let mut failed = false;
    for report in &reports {
        print!("{}", report.render());
        failed |= !report.violations.is_empty();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

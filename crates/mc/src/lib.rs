//! Bounded model checking for ConfBench's TEE state machines.
//!
//! The RMP, Secure-EPT, CCA granule-table, TDISP, and live-migration models
//! encode the security invariants every measurement in the tool depends on —
//! and every scale PR rewrites one of them under time pressure. This crate checks them
//! the way "Formal Verification of Secure Encrypted Virtualization" checked
//! the SEV page lifecycle: enumerate *every* (state × operation) sequence up
//! to a depth bound and evaluate the invariants as executable predicates,
//! printing a minimal counterexample trace on violation.
//!
//! The checker is a breadth-first search over canonical state snapshots with
//! a visited set, so each reachable state is expanded once and — because BFS
//! visits states in distance order — the first trace that reaches a
//! violation is a shortest one. Small worlds (two pages, two guests, two
//! host frames) keep the state spaces in the tens-to-hundreds while still
//! exhibiting every cross-owner interaction the invariants speak about; the
//! search reports when it *closed* the state space (a level added no new
//! state), which the standard worlds all do well inside the default depth.
//!
//! # Example
//!
//! ```
//! use confbench_mc::{check_all, CheckConfig};
//!
//! let reports = check_all(&CheckConfig::default());
//! for r in &reports {
//!     assert!(r.violations.is_empty(), "{}", r.render());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub mod machines;

pub use machines::{GptMachine, MigrationMachine, RmpMachine, SeptMachine, TdispMachine};

/// Stable code for an accepted operation, used in [`Outcome::code`].
pub const OK: &str = "ok";

/// What applying one operation to one state produced.
#[derive(Debug, Clone)]
pub struct Outcome<S> {
    /// The successor state (unchanged from the input state when the machine
    /// rejected the operation — all five TEE machines reject without
    /// mutating, and the step invariants verify that).
    pub next: S,
    /// Whether the machine accepted the operation.
    pub accepted: bool,
    /// Stable label for the result: [`OK`] when accepted, otherwise a
    /// machine-defined fault-class tag (e.g. `"not-validated"`). Invariants
    /// key on these to pin *which* fault a state must produce.
    pub code: &'static str,
}

impl<S> Outcome<S> {
    /// An accepted transition into `next`.
    pub fn ok(next: S) -> Self {
        Outcome { next, accepted: true, code: OK }
    }

    /// A rejected operation leaving the machine in `state`, tagged with the
    /// fault-class `code`.
    pub fn rejected(state: S, code: &'static str) -> Self {
        Outcome { next: state, accepted: false, code }
    }
}

/// A state machine the checker can enumerate.
///
/// `State` must be a *canonical* snapshot: two snapshots compare equal iff
/// the underlying machine states are indistinguishable (use sorted vectors,
/// not hash maps).
pub trait Machine {
    /// Canonical state snapshot.
    type State: Clone + Eq + Hash + fmt::Debug;
    /// One operation, with its operands bound (e.g. `Assign { page: 0,
    /// asid: 1 }`).
    type Op: Clone + fmt::Debug;

    /// Machine name for reports.
    fn name(&self) -> &'static str;
    /// The initial state.
    fn initial(&self) -> Self::State;
    /// Every operation the small world admits. Same list for every state —
    /// illegal combinations are exactly what the machine must reject.
    fn ops(&self) -> Vec<Self::Op>;
    /// Applies `op` to `state`.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> Outcome<Self::State>;
}

/// A predicate over a single reachable state.
pub struct StateInvariant<M: Machine> {
    /// Invariant name, shown in violation reports.
    pub name: &'static str,
    /// Returns `Err(detail)` when `state` violates the invariant.
    pub check: fn(&M::State) -> Result<(), String>,
}

/// Signature of a step-invariant predicate: pre-state, operation, outcome.
pub type StepCheck<M> = fn(
    &<M as Machine>::State,
    &<M as Machine>::Op,
    &Outcome<<M as Machine>::State>,
) -> Result<(), String>;

/// A predicate over one transition: the pre-state, the operation, and its
/// outcome. This is where fault-class reachability lives ("this error is
/// only produced by states that can produce it") and where acceptance
/// conditions live ("private DMA is only accepted in `Run`").
pub struct StepInvariant<M: Machine> {
    /// Invariant name, shown in violation reports.
    pub name: &'static str,
    /// Returns `Err(detail)` when the transition violates the invariant.
    pub check: StepCheck<M>,
}

/// Search bounds.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Maximum operation-sequence length explored.
    pub depth: usize,
    /// Safety valve on distinct states (the small worlds stay far below
    /// it; hitting it marks the report incomplete instead of looping).
    pub max_states: usize,
}

impl Default for CheckConfig {
    /// Depth 8 closes every standard world; 1M states is a generous valve.
    fn default() -> Self {
        CheckConfig { depth: 8, max_states: 1_000_000 }
    }
}

/// One invariant violation with its minimal witness.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant's name.
    pub invariant: &'static str,
    /// What the predicate reported.
    pub detail: String,
    /// Shortest operation sequence from the initial state reaching the
    /// violation (rendered `Debug` forms of the ops).
    pub trace: Vec<String>,
    /// The state in which the invariant failed (rendered `Debug` form).
    pub state: String,
}

/// Result of checking one machine.
#[derive(Debug, Clone)]
pub struct Report {
    /// Machine name.
    pub machine: &'static str,
    /// Depth bound used.
    pub depth: usize,
    /// Distinct reachable states visited.
    pub states: usize,
    /// (state × operation) transitions evaluated.
    pub transitions: u64,
    /// Whether the search *closed* the state space (some BFS level added no
    /// new states before the depth bound ran out) — i.e. the invariants
    /// hold for sequences of **any** length, not just up to `depth`.
    pub closed: bool,
    /// Violations found, each with a minimal trace. At most one per
    /// invariant (the first, which BFS order makes a shortest witness).
    pub violations: Vec<Violation>,
}

impl Report {
    /// Renders the report as the human-readable block the CLI prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let closure = if self.closed { "state space closed" } else { "depth bound reached" };
        let _ = writeln!(
            out,
            "{}: {} states, {} transitions, depth {} ({closure})",
            self.machine, self.states, self.transitions, self.depth
        );
        if self.violations.is_empty() {
            let _ = writeln!(out, "  all invariants hold");
        }
        for v in &self.violations {
            let _ = writeln!(out, "  VIOLATION of `{}`: {}", v.invariant, v.detail);
            for (i, op) in v.trace.iter().enumerate() {
                let _ = writeln!(out, "    {:>2}. {op}", i + 1);
            }
            let _ = writeln!(out, "    => {}", v.state);
        }
        out
    }
}

/// One arena entry: a discovered state plus the back-pointer (parent index,
/// rendered op) that first reached it — `None` for the initial state.
type Node<M> = (<M as Machine>::State, Option<(usize, String)>);

/// Exhaustively explores `machine` up to `cfg.depth`, checking every state
/// against `state_invs` and every transition against `step_invs`.
///
/// Reports at most one violation per invariant — the first one found, which
/// breadth-first order guarantees is reached by a shortest trace.
pub fn check<M: Machine>(
    machine: &M,
    cfg: &CheckConfig,
    state_invs: &[StateInvariant<M>],
    step_invs: &[StepInvariant<M>],
) -> Report {
    // Arena of discovered states with back-pointers for trace rebuilding:
    // nodes[i] = (state, Some((parent index, op that produced it))).
    let mut nodes: Vec<Node<M>> = Vec::new();
    let mut seen: HashMap<M::State, usize> = HashMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut violated: Vec<&'static str> = Vec::new();
    let mut transitions = 0u64;

    let trace_to = |nodes: &[Node<M>], idx: usize| -> Vec<String> {
        let mut ops = Vec::new();
        let mut cur = idx;
        while let Some((parent, op)) = &nodes[cur].1 {
            ops.push(op.clone());
            cur = *parent;
        }
        ops.reverse();
        ops
    };

    let ops = machine.ops();
    let initial = machine.initial();
    nodes.push((initial.clone(), None));
    seen.insert(initial, 0);

    for inv in state_invs {
        if let Err(detail) = (inv.check)(&nodes[0].0) {
            violations.push(Violation {
                invariant: inv.name,
                detail,
                trace: Vec::new(),
                state: format!("{:?}", nodes[0].0),
            });
            violated.push(inv.name);
        }
    }

    let mut frontier: Vec<usize> = vec![0];
    let mut closed = false;
    for _level in 0..cfg.depth {
        if frontier.is_empty() {
            closed = true;
            break;
        }
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let state = nodes[idx].0.clone();
            for op in &ops {
                transitions += 1;
                let outcome = machine.apply(&state, op);
                for inv in step_invs {
                    if violated.contains(&inv.name) {
                        continue;
                    }
                    if let Err(detail) = (inv.check)(&state, op, &outcome) {
                        let mut trace = trace_to(&nodes, idx);
                        trace.push(format!("{op:?}"));
                        violations.push(Violation {
                            invariant: inv.name,
                            detail,
                            trace,
                            state: format!("{:?}", outcome.next),
                        });
                        violated.push(inv.name);
                    }
                }
                if seen.contains_key(&outcome.next) {
                    continue;
                }
                let new_idx = nodes.len();
                nodes.push((outcome.next.clone(), Some((idx, format!("{op:?}")))));
                seen.insert(outcome.next.clone(), new_idx);
                for inv in state_invs {
                    if violated.contains(&inv.name) {
                        continue;
                    }
                    if let Err(detail) = (inv.check)(&outcome.next) {
                        violations.push(Violation {
                            invariant: inv.name,
                            detail,
                            trace: trace_to(&nodes, new_idx),
                            state: format!("{:?}", outcome.next),
                        });
                        violated.push(inv.name);
                    }
                }
                next_frontier.push(new_idx);
                if nodes.len() >= cfg.max_states {
                    return Report {
                        machine: machine.name(),
                        depth: cfg.depth,
                        states: nodes.len(),
                        transitions,
                        closed: false,
                        violations,
                    };
                }
            }
        }
        frontier = next_frontier;
    }
    if frontier.is_empty() {
        closed = true;
    }

    Report {
        machine: machine.name(),
        depth: cfg.depth,
        states: nodes.len(),
        transitions,
        closed,
        violations,
    }
}

/// Checks all five TEE machines with their standard small worlds and
/// invariant sets. This is the library form of the `confbench-mc` CLI and
/// the body of the tier-1 smoke test.
pub fn check_all(cfg: &CheckConfig) -> Vec<Report> {
    vec![
        check(
            &RmpMachine::standard(),
            cfg,
            &machines::rmp_state_invariants(),
            &machines::rmp_step_invariants(),
        ),
        check(
            &SeptMachine::standard(),
            cfg,
            &machines::sept_state_invariants(),
            &machines::sept_step_invariants(),
        ),
        check(
            &GptMachine::standard(),
            cfg,
            &machines::gpt_state_invariants(),
            &machines::gpt_step_invariants(),
        ),
        check(
            &TdispMachine,
            cfg,
            &machines::tdisp_state_invariants(),
            &machines::tdisp_step_invariants(),
        ),
        check(
            &MigrationMachine::standard(),
            cfg,
            &machines::migration_state_invariants(),
            &machines::migration_step_invariants(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately buggy two-slot mapper reproducing the SEPT aliasing
    /// bug before its fix: `Map { slot, frame }` does not check whether
    /// `frame` already backs the other slot. The checker must find the
    /// violation with a *minimal* (2-op) trace.
    struct AliasingMapper;

    impl Machine for AliasingMapper {
        type State = [Option<u8>; 2];
        type Op = (usize, u8);

        fn name(&self) -> &'static str {
            "aliasing-mapper"
        }
        fn initial(&self) -> Self::State {
            [None, None]
        }
        fn ops(&self) -> Vec<Self::Op> {
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        }
        fn apply(&self, state: &Self::State, op: &Self::Op) -> Outcome<Self::State> {
            let (slot, frame) = *op;
            if state[slot].is_some() {
                return Outcome::rejected(*state, "already-mapped");
            }
            let mut next = *state;
            next[slot] = Some(frame);
            Outcome::ok(next)
        }
    }

    fn no_aliasing() -> StateInvariant<AliasingMapper> {
        StateInvariant {
            name: "no-frame-aliasing",
            check: |s| match s {
                [Some(a), Some(b)] if a == b => Err(format!("frame {a} mapped twice")),
                _ => Ok(()),
            },
        }
    }

    #[test]
    fn checker_finds_minimal_counterexample() {
        let report = check(&AliasingMapper, &CheckConfig::default(), &[no_aliasing()], &[]);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.invariant, "no-frame-aliasing");
        assert_eq!(v.trace.len(), 2, "BFS must produce a shortest witness: {:?}", v.trace);
        assert!(report.closed, "4 ops over 2 slots close quickly");
        assert!(report.render().contains("VIOLATION"));
    }

    #[test]
    fn all_tee_machines_hold_their_invariants() {
        for report in check_all(&CheckConfig::default()) {
            assert!(report.violations.is_empty(), "{}", report.render());
            assert!(report.closed, "{}: state space must close within depth 8", report.machine);
        }
    }

    #[test]
    fn depth_bound_is_respected() {
        // Depth 1 from the initial state cannot close the RMP world.
        let cfg = CheckConfig { depth: 1, max_states: 1_000_000 };
        let r = check(
            &RmpMachine::standard(),
            &cfg,
            &machines::rmp_state_invariants(),
            &machines::rmp_step_invariants(),
        );
        assert!(!r.closed);
        assert!(r.states > 1);
    }
}

//! Property tests for the crypto substrate.

use confbench_crypto::{
    hmac_sha256, miller_rabin, mod_inverse, mod_mul, mod_pow, Sha256, SigningKey,
};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot hashing for every split.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600),
                                         cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..6)) {
        let want = Sha256::digest(&data);
        let mut offsets: Vec<usize> = cuts.iter().map(|i| i.index(data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        let mut h = Sha256::new();
        for pair in offsets.windows(2) {
            h.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(h.finalize(), want);
    }

    /// Distinct inputs produce distinct digests (collision-freedom at the
    /// scale we can test).
    #[test]
    fn sha256_injective_on_small_inputs(a in proptest::collection::vec(any::<u8>(), 0..64),
                                        b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
    }

    /// HMAC differs when either key or message differs.
    #[test]
    fn hmac_is_key_and_message_sensitive(key in proptest::collection::vec(any::<u8>(), 1..80),
                                         msg in proptest::collection::vec(any::<u8>(), 0..80),
                                         flip in any::<prop::sample::Index>()) {
        let tag = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        let at = flip.index(key2.len());
        key2[at] ^= 1;
        prop_assert_ne!(hmac_sha256(&key2, &msg), tag);
        let mut msg2 = msg.clone();
        if msg2.is_empty() {
            msg2.push(0);
        } else {
            let at = flip.index(msg2.len());
            msg2[at] ^= 1;
        }
        prop_assert_ne!(hmac_sha256(&key, &msg2), tag);
    }

    /// Signatures verify for the signed message only.
    #[test]
    fn signatures_bind_messages(seed in any::<u64>(),
                                msg in proptest::collection::vec(any::<u8>(), 0..200),
                                other in proptest::collection::vec(any::<u8>(), 0..200)) {
        let sk = SigningKey::from_seed(seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
        if other != msg {
            prop_assert!(sk.verifying_key().verify(&other, &sig).is_err());
        }
    }

    /// mod_pow obeys the law of exponents.
    #[test]
    fn mod_pow_exponent_law(base in 1u64..1_000_000, a in 0u64..1_000, b in 0u64..1_000) {
        let m = 1_000_000_007u64;
        let left = mod_pow(base, a + b, m);
        let right = mod_mul(mod_pow(base, a, m), mod_pow(base, b, m), m);
        prop_assert_eq!(left, right);
    }

    /// The inverse really inverts (whenever it exists).
    #[test]
    fn mod_inverse_inverts(a in 1u64..1_000_000, m in 2u64..1_000_000) {
        if let Some(inv) = mod_inverse(a, m) {
            prop_assert_eq!(mod_mul(a % m, inv, m), 1 % m);
        }
    }

    /// Miller–Rabin agrees with trial division on small numbers.
    #[test]
    fn miller_rabin_matches_trial_division(n in 0u64..50_000) {
        let by_trial = n >= 2 && (2..).take_while(|d| d * d <= n).all(|d| n % d != 0);
        prop_assert_eq!(miller_rabin(n), by_trial, "{}", n);
    }
}

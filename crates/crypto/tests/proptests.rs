//! Property tests for the crypto substrate.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use confbench_crypto::{
    hmac_sha256, miller_rabin, mod_inverse, mod_mul, mod_pow, Sha256, SigningKey, SplitMix64,
};

const CASES: u64 = 96;

fn bytes(rng: &mut SplitMix64, max_len: u64) -> Vec<u8> {
    let n = rng.next_below(max_len + 1) as usize;
    let mut buf = vec![0u8; n];
    rng.fill_bytes(&mut buf);
    buf
}

/// Incremental hashing equals one-shot hashing for every split.
#[test]
fn sha256_incremental_equals_oneshot() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0FE_0001 ^ case);
        let data = bytes(&mut rng, 599);
        let want = Sha256::digest(&data);
        let mut offsets: Vec<usize> = (0..rng.next_below(6))
            .map(|_| rng.next_below(data.len() as u64 + 1) as usize)
            .collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        let mut h = Sha256::new();
        for pair in offsets.windows(2) {
            h.update(&data[pair[0]..pair[1]]);
        }
        assert_eq!(h.finalize(), want, "case {case}");
    }
}

/// Distinct inputs produce distinct digests (collision-freedom at the scale
/// we can test).
#[test]
fn sha256_injective_on_small_inputs() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0FE_0002 ^ case);
        let a = bytes(&mut rng, 63);
        let b = bytes(&mut rng, 63);
        if a != b {
            assert_ne!(Sha256::digest(&a), Sha256::digest(&b), "case {case}");
        }
    }
}

/// HMAC differs when either key or message differs.
#[test]
fn hmac_is_key_and_message_sensitive() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0FE_0003 ^ case);
        let mut key = bytes(&mut rng, 78);
        key.push(rng.next_u64() as u8); // ensure non-empty
        let msg = bytes(&mut rng, 79);
        let tag = hmac_sha256(&key, &msg);

        let mut key2 = key.clone();
        let at = rng.next_below(key2.len() as u64) as usize;
        key2[at] ^= 1;
        assert_ne!(hmac_sha256(&key2, &msg), tag, "case {case}: key flip");

        let mut msg2 = msg.clone();
        if msg2.is_empty() {
            msg2.push(0);
        } else {
            let at = rng.next_below(msg2.len() as u64) as usize;
            msg2[at] ^= 1;
        }
        assert_ne!(hmac_sha256(&key, &msg2), tag, "case {case}: msg flip");
    }
}

/// Signatures verify for the signed message only.
#[test]
fn signatures_bind_messages() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0FE_0004 ^ case);
        let sk = SigningKey::from_seed(rng.next_u64());
        let msg = bytes(&mut rng, 199);
        let other = bytes(&mut rng, 199);
        let sig = sk.sign(&msg);
        assert!(sk.verifying_key().verify(&msg, &sig).is_ok(), "case {case}");
        if other != msg {
            assert!(sk.verifying_key().verify(&other, &sig).is_err(), "case {case}");
        }
    }
}

/// mod_pow obeys the law of exponents.
#[test]
fn mod_pow_exponent_law() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0FE_0005 ^ case);
        let base = 1 + rng.next_below(999_999);
        let a = rng.next_below(1_000);
        let b = rng.next_below(1_000);
        let m = 1_000_000_007u64;
        let left = mod_pow(base, a + b, m);
        let right = mod_mul(mod_pow(base, a, m), mod_pow(base, b, m), m);
        assert_eq!(left, right, "case {case}: base {base}, a {a}, b {b}");
    }
}

/// The inverse really inverts (whenever it exists).
#[test]
fn mod_inverse_inverts() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0FE_0006 ^ case);
        let a = 1 + rng.next_below(999_999);
        let m = 2 + rng.next_below(999_998);
        if let Some(inv) = mod_inverse(a, m) {
            assert_eq!(mod_mul(a % m, inv, m), 1 % m, "case {case}: a {a}, m {m}");
        }
    }
}

/// Miller–Rabin agrees with trial division on small numbers.
#[test]
fn miller_rabin_matches_trial_division() {
    // Exhaustive over a small prefix plus a seeded sweep of the wider range.
    let check = |n: u64| {
        let by_trial = n >= 2 && (2..).take_while(|d| d * d <= n).all(|d| !n.is_multiple_of(d));
        assert_eq!(miller_rabin(n), by_trial, "{n}");
    };
    for n in 0..2_000 {
        check(n);
    }
    let mut rng = SplitMix64::new(0xC0FE_0007);
    for _ in 0..500 {
        check(rng.next_below(50_000));
    }
}

//! Deterministic structure-aware mutation for fuzz sweeps.
//!
//! Every production-facing parser in the workspace (HTTP framing, campaign
//! JSON, attestation wire decoding) runs a seeded sweep in its own tests:
//! take a valid corpus input, apply one of the four classic byte-level
//! mutations, and require a clean `Err` — never a panic, never a silent
//! accept. This module is the shared mutation engine so every sweep draws
//! from the same distribution and replays bit-for-bit from its seed.
//!
//! The iteration budget is environment-tunable: sweeps run a small default
//! under `cargo test -q` and CI raises it via `CONFBENCH_FUZZ_ITERS` in the
//! dedicated `fuzz-sweep` step (see [`sweep_iters`]).

use crate::prng::SplitMix64;

/// Default number of mutations per corpus input under plain `cargo test`.
pub const DEFAULT_SWEEP_ITERS: usize = 400;

/// Number of mutations per corpus input for a fuzz sweep: the value of the
/// `CONFBENCH_FUZZ_ITERS` environment variable when set and parseable,
/// otherwise [`DEFAULT_SWEEP_ITERS`].
pub fn sweep_iters() -> usize {
    std::env::var("CONFBENCH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SWEEP_ITERS)
}

/// A deterministic byte-buffer mutator over a [`SplitMix64`] stream.
///
/// # Example
///
/// ```
/// use confbench_crypto::fuzz::Mutator;
///
/// let mut m = Mutator::new(0xD3_710);
/// let a = m.mutate(b"GET / HTTP/1.1\r\n\r\n");
/// let mut m2 = Mutator::new(0xD3_710);
/// assert_eq!(a, m2.mutate(b"GET / HTTP/1.1\r\n\r\n"), "replayable from the seed");
/// ```
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: SplitMix64,
}

impl Mutator {
    /// Creates a mutator; the same seed replays the same mutation stream.
    pub fn new(seed: u64) -> Self {
        Mutator { rng: SplitMix64::new(seed) }
    }

    /// Produces one mutant of `base` by truncation, bit-flipping, chunk
    /// duplication, or oversizing — the four shapes parser bugs hide in
    /// (lost framing, corrupted fields, repeated sections, length blowups).
    pub fn mutate(&mut self, base: &[u8]) -> Vec<u8> {
        match self.rng.next_below(4) {
            0 => self.truncate(base),
            1 => self.bit_flip(base),
            2 => self.duplicate(base),
            _ => self.oversize(base),
        }
    }

    /// Cuts `base` off at a pseudo-random point (possibly to empty).
    pub fn truncate(&mut self, base: &[u8]) -> Vec<u8> {
        if base.is_empty() {
            return Vec::new();
        }
        let cut = self.rng.next_below(base.len() as u64) as usize;
        base[..cut].to_vec()
    }

    /// Flips one to four pseudo-random bits.
    pub fn bit_flip(&mut self, base: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        if out.is_empty() {
            return out;
        }
        let flips = 1 + self.rng.next_below(4) as usize;
        for _ in 0..flips {
            let idx = self.rng.next_below(out.len() as u64) as usize;
            let bit = self.rng.next_below(8) as u32;
            out[idx] ^= 1 << bit;
        }
        out
    }

    /// Copies a pseudo-random chunk of `base` and splices it in at a
    /// pseudo-random offset.
    pub fn duplicate(&mut self, base: &[u8]) -> Vec<u8> {
        if base.is_empty() {
            return Vec::new();
        }
        let len = base.len() as u64;
        let start = self.rng.next_below(len) as usize;
        let end = start + 1 + self.rng.next_below(len - start as u64) as usize;
        let at = self.rng.next_below(len + 1) as usize;
        let mut out = base[..at].to_vec();
        out.extend_from_slice(&base[start..end]);
        out.extend_from_slice(&base[at..]);
        out
    }

    /// Appends a pseudo-random run (up to 4 KiB) of a pseudo-random byte —
    /// the cheap way to probe length-field and allocation handling.
    pub fn oversize(&mut self, base: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        let extra = 1 + self.rng.next_below(4096) as usize;
        let byte = self.rng.next_below(256) as u8;
        out.extend(std::iter::repeat_n(byte, extra));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base = b"the quick brown fox";
        let run = |seed| {
            let mut m = Mutator::new(seed);
            (0..32).map(|_| m.mutate(base)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn every_mutation_shape_is_exercised_and_differs() {
        let base = b"0123456789abcdef";
        let mut m = Mutator::new(1);
        let mut shapes = [false; 4];
        for _ in 0..256 {
            let out = m.mutate(base);
            match out.len().cmp(&base.len()) {
                std::cmp::Ordering::Less => shapes[0] = true,
                std::cmp::Ordering::Equal => shapes[1] = true,
                std::cmp::Ordering::Greater => shapes[2] = true,
            }
            if out.len() > base.len() + 1024 {
                shapes[3] = true; // a real oversize, not just a duplicate
            }
        }
        assert_eq!(shapes, [true; 4]);
    }

    #[test]
    fn empty_input_never_panics() {
        let mut m = Mutator::new(3);
        for _ in 0..64 {
            let _ = m.mutate(b"");
        }
    }

    #[test]
    fn sweep_iters_defaults_sanely() {
        // The env var is not set under plain `cargo test`.
        assert!(sweep_iters() >= 1);
    }
}

//! Deterministic seed-expansion PRNG.

/// SplitMix64 — a tiny, fast, deterministic PRNG.
///
/// Used across the workspace wherever a component needs a reproducible
/// pseudo-random stream derived from a user-supplied seed (jitter models,
/// synthetic datasets, address-stream hashing). Not cryptographically secure.
///
/// # Example
///
/// ```
/// use confbench_crypto::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state. `SplitMix64::new(state)` reproduces the
    /// generator exactly from here — the serialization hook live-migration
    /// uses to hand a VM's jitter stream to the target host mid-sequence.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 uniformly pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction (Lemire); bias is negligible for
        // simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal sample via Box–Muller (two uniforms per call).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_reference_value() {
        // SplitMix64(0) first output, per the reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(123);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut r = SplitMix64::new(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! HMAC-SHA256 (RFC 2104).

use crate::sha256::{Digest, Sha256};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are pre-hashed, per RFC 2104.
///
/// # Example
///
/// ```
/// use confbench_crypto::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert!(tag.to_string().starts_with("f7bc83f4"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let inner = Sha256::digest_parts(&[&ipad, message]);
    Sha256::digest_parts(&[&opad, inner.as_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_string(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_string(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            tag.to_string(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_string(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"a", b"msg"), hmac_sha256(b"b", b"msg"));
        assert_ne!(hmac_sha256(b"a", b"msg"), hmac_sha256(b"a", b"msh"));
    }
}

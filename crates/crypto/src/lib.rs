//! Simulation-grade cryptographic primitives for ConfBench-RS.
//!
//! The attestation flows the paper measures (TDX DCAP quotes, SEV-SNP
//! reports) need *real* hashing and *a* signature scheme with realistic cost
//! structure and tamper detection. This crate provides:
//!
//! * [`Sha256`] — a from-scratch FIPS 180-4 SHA-256 with incremental and
//!   one-shot APIs (validated against the NIST test vectors in unit tests);
//! * [`hmac_sha256`] — HMAC per RFC 2104 (validated against RFC 4231);
//! * [`SigningKey`] / [`VerifyingKey`] — a Schnorr signature over a 62-bit
//!   safe-prime group;
//! * [`SplitMix64`] — a tiny deterministic PRNG for seed expansion;
//! * [`miller_rabin`] — deterministic 64-bit primality testing (used to
//!   verify the group parameters in tests, and by workloads).
//!
//! # Security
//!
//! **The signature scheme is NOT cryptographically secure** — a 62-bit group
//! is trivially breakable. It exists to give the simulated attestation
//! pipeline authentic *structure* (key generation, deterministic nonces,
//! signing cost proportional to exponentiation work, verification that really
//! rejects tampered claims). Do not reuse outside the simulator.
//!
//! # Example
//!
//! ```
//! use confbench_crypto::{Sha256, SigningKey};
//!
//! let digest = Sha256::digest(b"hello");
//! let sk = SigningKey::from_seed(7);
//! let sig = sk.sign(digest.as_ref());
//! assert!(sk.verifying_key().verify(digest.as_ref(), &sig).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
mod hmac;
mod numeric;
mod prng;
mod sha256;
mod simsig;

pub use hmac::hmac_sha256;
pub use numeric::{miller_rabin, mod_inverse, mod_mul, mod_pow};
pub use prng::SplitMix64;
pub use sha256::{Digest, Sha256};
pub use simsig::{
    Signature, SignatureError, SigningKey, VerifyingKey, GROUP_GENERATOR, GROUP_PRIME,
};

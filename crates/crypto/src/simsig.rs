//! Schnorr signatures over a 62-bit safe-prime group (simulation-grade).
//!
//! Parameters: `p = 2q + 1` is a safe prime, `g` generates the order-`q`
//! subgroup of `Z_p*`. Signing uses deterministic nonces (RFC 6979-style:
//! `k = HMAC(sk, msg)` reduced mod `q`), so signatures are reproducible.
//!
//! The unit tests verify the group parameters with [`crate::miller_rabin`].

use std::fmt;

use crate::hmac::hmac_sha256;
use crate::numeric::{mod_mul, mod_pow};
use crate::sha256::Sha256;

/// The safe prime `p` defining the group `Z_p*` (62 bits).
pub const GROUP_PRIME: u64 = 4_611_686_018_427_394_499; // 0x40000000000019c3

/// Order of the prime-order subgroup: `q = (p - 1) / 2`.
pub const GROUP_ORDER: u64 = (GROUP_PRIME - 1) / 2;

/// Generator of the order-`q` subgroup (`g = 2^2 mod p`).
pub const GROUP_GENERATOR: u64 = 4;

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

impl Signature {
    /// Serializes to 16 bytes (big-endian `e`, then `s`).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Deserializes from the [`Signature::to_bytes`] encoding.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Signature {
            e: u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")),
            s: u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig({:016x},{:016x})", self.e, self.s)
    }
}

/// Error returned when signature verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// A Schnorr signing key (the secret scalar).
///
/// # Example
///
/// ```
/// use confbench_crypto::SigningKey;
///
/// let sk = SigningKey::from_seed(1);
/// let sig = sk.sign(b"report");
/// sk.verifying_key().verify(b"report", &sig)?;
/// assert!(sk.verifying_key().verify(b"tampered", &sig).is_err());
/// # Ok::<(), confbench_crypto::SignatureError>(())
/// ```
#[derive(Clone)]
pub struct SigningKey {
    sk: u64,
    pk: u64,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("SigningKey").field("pk", &self.pk).finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Derives a key pair deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let digest = Sha256::digest_parts(&[b"confbench-simsig-key", &seed.to_be_bytes()]);
        let sk = digest.to_u64() % (GROUP_ORDER - 1) + 1; // in [1, q)
        let pk = mod_pow(GROUP_GENERATOR, sk, GROUP_PRIME);
        SigningKey { sk, pk }
    }

    /// The corresponding public verification key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { pk: self.pk }
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        // Deterministic nonce k in [1, q).
        let k = hmac_sha256(&self.sk.to_be_bytes(), message).to_u64() % (GROUP_ORDER - 1) + 1;
        let r = mod_pow(GROUP_GENERATOR, k, GROUP_PRIME);
        let e = challenge(r, self.pk, message);
        // s = k + e * sk mod q
        let s = (k as u128 + mod_mul(e, self.sk, GROUP_ORDER) as u128) % GROUP_ORDER as u128;
        Signature { e, s: s as u64 }
    }
}

/// A Schnorr verification (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    pk: u64,
}

impl VerifyingKey {
    /// Constructs a key from its group element.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] if `pk` is not a valid element of the
    /// order-`q` subgroup.
    pub fn from_element(pk: u64) -> Result<Self, SignatureError> {
        if pk <= 1 || pk >= GROUP_PRIME || mod_pow(pk, GROUP_ORDER, GROUP_PRIME) != 1 {
            return Err(SignatureError);
        }
        Ok(VerifyingKey { pk })
    }

    /// The underlying group element.
    pub fn element(&self) -> u64 {
        self.pk
    }

    /// Verifies `sig` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] when the signature does not match.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        if sig.s >= GROUP_ORDER {
            return Err(SignatureError);
        }
        // r' = g^s * pk^{-e} = g^s * pk^{q - e mod q}
        let gs = mod_pow(GROUP_GENERATOR, sig.s, GROUP_PRIME);
        let neg_e = (GROUP_ORDER - sig.e % GROUP_ORDER) % GROUP_ORDER;
        let pke = mod_pow(self.pk, neg_e, GROUP_PRIME);
        let r = mod_mul(gs, pke, GROUP_PRIME);
        if challenge(r, self.pk, message) == sig.e {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

fn challenge(r: u64, pk: u64, message: &[u8]) -> u64 {
    Sha256::digest_parts(&[&r.to_be_bytes(), &pk.to_be_bytes(), message]).to_u64() % GROUP_ORDER
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::miller_rabin;

    #[test]
    fn group_parameters_are_a_safe_prime_group() {
        assert!(miller_rabin(GROUP_PRIME), "p must be prime");
        assert!(miller_rabin(GROUP_ORDER), "q must be prime");
        assert_eq!(GROUP_PRIME, 2 * GROUP_ORDER + 1);
        assert_eq!(mod_pow(GROUP_GENERATOR, GROUP_ORDER, GROUP_PRIME), 1);
        assert_ne!(GROUP_GENERATOR, 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::from_seed(42);
        for msg in [&b"a"[..], b"", b"the quick brown fox", &[0u8; 1000]] {
            let sig = sk.sign(msg);
            sk.verifying_key().verify(msg, &sig).unwrap();
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = SigningKey::from_seed(1);
        let sig = sk.sign(b"genuine measurement");
        assert_eq!(sk.verifying_key().verify(b"forged measurement", &sig), Err(SignatureError));
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_seed(1);
        let mut sig = sk.sign(b"msg");
        sig.s ^= 1;
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
        let mut sig2 = sk.sign(b"msg");
        sig2.e ^= 1;
        assert!(sk.verifying_key().verify(b"msg", &sig2).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_seed(1);
        let sk2 = SigningKey::from_seed(2);
        let sig = sk1.sign(b"msg");
        assert!(sk2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn signatures_are_deterministic() {
        let sk = SigningKey::from_seed(9);
        assert_eq!(sk.sign(b"x"), sk.sign(b"x"));
        assert_ne!(sk.sign(b"x"), sk.sign(b"y"));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sig = SigningKey::from_seed(3).sign(b"payload");
        assert_eq!(Signature::from_bytes(sig.to_bytes()), sig);
    }

    #[test]
    fn from_element_validates_subgroup_membership() {
        let good = SigningKey::from_seed(5).verifying_key();
        assert!(VerifyingKey::from_element(good.element()).is_ok());
        assert!(VerifyingKey::from_element(0).is_err());
        assert!(VerifyingKey::from_element(1).is_err());
        assert!(VerifyingKey::from_element(GROUP_PRIME).is_err());
        // p - 1 has order 2, not q.
        assert!(VerifyingKey::from_element(GROUP_PRIME - 1).is_err());
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let sk = SigningKey::from_seed(4);
        let dbg = format!("{sk:?}");
        assert!(dbg.contains("pk"));
        assert!(!dbg.contains(&sk.sk.to_string()));
    }

    #[test]
    fn out_of_range_s_rejected() {
        let sk = SigningKey::from_seed(6);
        let sig = Signature { e: 1, s: GROUP_ORDER };
        assert!(sk.verifying_key().verify(b"m", &sig).is_err());
    }
}

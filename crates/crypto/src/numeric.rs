//! 64-bit modular arithmetic and deterministic primality testing.

/// Modular multiplication `a * b mod m` without overflow (via `u128`).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo `m` via the extended Euclidean algorithm.
///
/// Returns `None` when `gcd(a, m) != 1`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    assert!(m != 0, "modulus must be nonzero");
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

/// Deterministic Miller–Rabin primality test, correct for every `u64`.
///
/// Uses the known-sufficient base set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
/// 31, 37} (Sorenson & Webster).
///
/// # Example
///
/// ```
/// use confbench_crypto::miller_rabin;
///
/// assert!(miller_rabin(2_147_483_647)); // 2^31 - 1, a Mersenne prime
/// assert!(!miller_rabin(2_147_483_649));
/// ```
pub fn miller_rabin(n: u64) -> bool {
    const BASES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
    if n < 2 {
        return false;
    }
    for &p in &BASES {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'outer: for &a in &BASES {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..r {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_mul_no_overflow() {
        let big = u64::MAX - 58; // close to 2^64
        assert_eq!(mod_mul(big, big, u64::MAX), mod_mul_ref(big, big, u64::MAX));
    }

    fn mod_mul_ref(a: u64, b: u64, m: u64) -> u64 {
        ((a as u128 * b as u128) % m as u128) as u64
    }

    #[test]
    fn mod_pow_known_values() {
        assert_eq!(mod_pow(2, 10, 1_000), 24);
        assert_eq!(mod_pow(3, 0, 7), 1);
        assert_eq!(mod_pow(0, 5, 7), 0);
        assert_eq!(mod_pow(5, 117, 19), mod_pow(5, 117 % 18, 19)); // Fermat
    }

    #[test]
    fn mod_pow_modulus_one() {
        assert_eq!(mod_pow(12345, 678, 1), 0);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = 1_000_000_007;
        for a in [1u64, 2, 3, 999, 123_456_789] {
            let inv = mod_inverse(a, m).unwrap();
            assert_eq!(mod_mul(a, inv, m), 1);
        }
    }

    #[test]
    fn inverse_of_noncoprime_is_none() {
        assert_eq!(mod_inverse(6, 9), None);
        assert_eq!(mod_inverse(0, 7), None);
    }

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 9, 91, 561, 1105, 6601]; // incl. Carmichael
        for p in primes {
            assert!(miller_rabin(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!miller_rabin(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Strong pseudoprimes to base 2 that fooled single-base MR.
        for n in [2047u64, 3277, 4033, 4681, 8321, 3215031751] {
            assert!(!miller_rabin(n), "{n} is composite");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(miller_rabin(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(miller_rabin(4_611_686_018_427_394_499)); // our group prime p
        assert!(miller_rabin((4_611_686_018_427_394_499 - 1) / 2)); // safe: q prime
    }
}

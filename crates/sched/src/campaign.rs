//! Campaign expansion: turning one [`CampaignSpec`] into its cells, with
//! deterministic per-cell seed derivation.
//!
//! Expansion order is the nested matrix order `functions × languages ×
//! platforms × modes` (outermost to innermost), matching how the paper's
//! heatmaps are laid out. Per-cell seeds are derived by hashing the campaign
//! seed together with the cell's *identity* — not its index — so the same
//! cell always gets the same seed no matter which campaign it appears in.
//! That identity-based derivation is what makes the content-addressed result
//! cache effective across campaigns.

use confbench_crypto::Sha256;
use confbench_types::{CampaignCell, CampaignSpec};

/// Derives the deterministic seed for one cell from the campaign seed and
/// the cell's identity string.
fn derive_seed(campaign_seed: u64, identity: &str) -> u64 {
    let mut hasher = Sha256::new();
    hasher.update(b"confbench.cell-seed.v1\n");
    hasher.update(&campaign_seed.to_be_bytes());
    hasher.update(identity.as_bytes());
    hasher.finalize().to_u64()
}

/// The canonical identity string of a cell *before* seed assignment: every
/// field that distinguishes one cell from another, newline-framed so no two
/// distinct cells can collide by concatenation.
fn cell_identity(
    function: &confbench_types::CampaignFunction,
    language: confbench_types::Language,
    platform: confbench_types::TeePlatform,
    kind: confbench_types::VmKind,
    trials: u32,
    device: Option<confbench_types::DeviceKind>,
) -> String {
    let mut s = String::new();
    s.push_str("fn=");
    s.push_str(&function.name);
    for arg in &function.args {
        s.push_str("\narg=");
        s.push_str(arg);
    }
    s.push_str(&format!("\nlang={language}\nplatform={platform}\nkind={kind}\ntrials={trials}"));
    // Device-less cells keep their pre-device identity string, so every
    // seed derived before the device axis existed stays stable.
    if let Some(device) = device {
        s.push_str(&format!("\ndevice={device}"));
    }
    s
}

/// Expands a (validated) spec into its cells, in deterministic matrix order.
///
/// Call [`CampaignSpec::validate`] first; expansion itself never fails, but
/// an unvalidated spec may expand to zero cells or an enormous vector.
pub fn expand(spec: &CampaignSpec) -> Vec<CampaignCell> {
    let mut cells = Vec::with_capacity(spec.cell_count());
    for function in &spec.functions {
        for &language in &spec.languages {
            for &platform in &spec.platforms {
                for &kind in &spec.modes {
                    let identity =
                        cell_identity(function, language, platform, kind, spec.trials, spec.device);
                    cells.push(CampaignCell {
                        function: function.clone(),
                        language,
                        platform,
                        kind,
                        trials: spec.trials,
                        seed: derive_seed(spec.seed, &identity),
                        device: spec.device,
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{CampaignFunction, Language, Priority, TeePlatform, VmKind};

    fn spec() -> CampaignSpec {
        CampaignSpec {
            functions: vec![
                CampaignFunction::new("factors").arg("360360"),
                CampaignFunction::new("fib").arg("15"),
            ],
            languages: vec![Language::Go, Language::Lua],
            platforms: vec![TeePlatform::Tdx, TeePlatform::SevSnp],
            modes: vec![VmKind::Secure, VmKind::Normal],
            trials: 3,
            seed: 42,
            priority: Priority::Normal,
            deadline_ms: None,
            device: None,
        }
    }

    #[test]
    fn expansion_covers_the_full_matrix_in_order() {
        let cells = expand(&spec());
        assert_eq!(cells.len(), 16);
        // Outermost axis is the function; innermost is the mode.
        assert_eq!(cells[0].function.name, "factors");
        assert_eq!(cells[0].kind, VmKind::Secure);
        assert_eq!(cells[1].kind, VmKind::Normal);
        assert_eq!(cells[8].function.name, "fib");
        // Every (function, language, platform, kind) combination is unique.
        let mut keys: Vec<String> = cells
            .iter()
            .map(|c| format!("{}/{}/{}/{}", c.function.name, c.language, c.platform, c.kind))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 16);
    }

    #[test]
    fn expansion_is_deterministic() {
        assert_eq!(expand(&spec()), expand(&spec()));
    }

    #[test]
    fn cell_seeds_differ_across_cells_but_not_across_campaigns() {
        let a = expand(&spec());
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "each cell gets its own seed");

        // A differently shaped spec containing one identical cell derives
        // the identical seed for it (identity-based, not index-based).
        let mut small = spec();
        small.functions = vec![CampaignFunction::new("fib").arg("15")];
        small.languages = vec![Language::Lua];
        small.platforms = vec![TeePlatform::SevSnp];
        small.modes = vec![VmKind::Normal];
        let b = expand(&small);
        assert_eq!(b.len(), 1);
        let twin = a
            .iter()
            .find(|c| {
                c.function.name == "fib"
                    && c.language == Language::Lua
                    && c.platform == TeePlatform::SevSnp
                    && c.kind == VmKind::Normal
            })
            .unwrap();
        assert_eq!(b[0].seed, twin.seed);
    }

    #[test]
    fn campaign_seed_perturbs_every_cell_seed() {
        let a = expand(&spec());
        let mut other = spec();
        other.seed = 43;
        let b = expand(&other);
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.seed, y.seed);
        }
    }

    #[test]
    fn arg_framing_cannot_collide() {
        // ("ab", "c") and ("a", "bc") must hash differently.
        let mut s1 = spec();
        s1.functions = vec![CampaignFunction::new("f").arg("ab").arg("c")];
        s1.languages = vec![Language::Go];
        s1.platforms = vec![TeePlatform::Tdx];
        s1.modes = vec![VmKind::Secure];
        let mut s2 = s1.clone();
        s2.functions = vec![CampaignFunction::new("f").arg("a").arg("bc")];
        assert_ne!(expand(&s1)[0].seed, expand(&s2)[0].seed);
    }
}

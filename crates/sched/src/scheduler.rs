//! The campaign scheduler: expansion, admission, execution, aggregation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

use confbench_obs::{MetricsRegistry, SpanRecorder};
use confbench_stats::Summary;
use confbench_types::{
    CampaignCell, CampaignId, CampaignReceipt, CampaignSpec, CampaignState, CampaignStatus,
    CellSummary, Clock, Error, FunctionSpec, InvalidCampaign, JobId, JobState, JobStatus, Priority,
    RunRequest, TeePlatform, TraceSpan, VmTarget,
};
use parking_lot::Mutex;

use crate::cache::{cache_key, CachedCell, ResultCache};
use crate::queue::BoundedQueue;
use crate::{campaign, Executor};

/// Tunables of a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Global queue capacity (jobs across all platforms and priorities).
    pub queue_capacity: usize,
    /// The `Retry-After` value (seconds) surfaced when admission rejects a
    /// campaign with 429. Wired from the gateway's backoff policy so the
    /// hint and the retry machinery agree.
    pub retry_after_secs: u64,
    /// Entry cap of the result cache (LRU eviction beyond it). Wired from
    /// the gateway's `--cache-capacity` flag.
    pub cache_capacity: usize,
    /// Most cells one campaign may expand to. Enforced at admission —
    /// *before* expansion allocates anything — and clamped to
    /// [`confbench_types::MAX_CAMPAIGN_CELLS`], so a deployment
    /// can tighten the bound but never remove it.
    pub max_cells: usize,
}

impl Default for SchedulerConfig {
    /// 256 queued jobs, `Retry-After: 1`, 4096 cached results, cells capped
    /// at the workspace-wide [`confbench_types::MAX_CAMPAIGN_CELLS`].
    fn default() -> Self {
        SchedulerConfig {
            queue_capacity: 256,
            retry_after_secs: 1,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            max_cells: confbench_types::MAX_CAMPAIGN_CELLS,
        }
    }
}

/// Why [`Scheduler::submit`] refused a campaign.
#[derive(Debug)]
pub enum SubmitError {
    /// The spec failed validation (maps to 400).
    Invalid(InvalidCampaign),
    /// The bounded queue cannot admit the whole matrix (maps to 429 with a
    /// `Retry-After` header). Admission is all-or-nothing: a campaign never
    /// gets partially enqueued.
    QueueFull {
        /// Jobs currently queued.
        queued: usize,
        /// Queue capacity.
        capacity: usize,
        /// Suggested retry delay in seconds.
        retry_after_secs: u64,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid(e) => e.fmt(f),
            SubmitError::QueueFull { queued, capacity, .. } => {
                write!(f, "{queued}/{capacity} jobs queued; campaign does not fit")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for Error {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Invalid(inner) => inner.into(),
            SubmitError::QueueFull { .. } => Error::QueueFull(e.to_string()),
        }
    }
}

struct JobRecord {
    id: JobId,
    campaign: CampaignId,
    cell: CampaignCell,
    priority: Priority,
    state: JobState,
    enqueued_at_ms: u64,
    expires_at_ms: Option<u64>,
    summary: Option<CellSummary>,
    error: Option<String>,
    trace: Option<TraceSpan>,
}

struct CampaignRecord {
    job_ids: Vec<JobId>,
    cancelled: bool,
}

#[derive(Default)]
struct Inner {
    next_campaign: u64,
    campaigns: BTreeMap<CampaignId, CampaignRecord>,
    jobs: BTreeMap<JobId, JobRecord>,
    queue: Option<BoundedQueue>,
}

impl Inner {
    fn queue(&mut self) -> &mut BoundedQueue {
        self.queue.as_mut().expect("queue initialized in new()")
    }
}

/// Wakeup channel between submitters and worker threads. The vendored
/// `parking_lot` stand-in has no `Condvar`, so this one spot uses the std
/// primitives (generation counter + stop flag under a std mutex).
#[derive(Default)]
struct WorkerSignal {
    state: std::sync::Mutex<(u64, bool)>,
    cv: std::sync::Condvar,
}

impl WorkerSignal {
    fn notify(&self) {
        self.state.lock().expect("signal lock").0 += 1;
        self.cv.notify_all();
    }

    fn stop(&self) {
        self.state.lock().expect("signal lock").1 = true;
        self.cv.notify_all();
    }

    fn stopped(&self) -> bool {
        self.state.lock().expect("signal lock").1
    }

    /// Blocks until the generation moves past `seen`, stop is requested, or
    /// the timeout elapses. Returns the latest generation.
    fn wait(&self, seen: u64) -> u64 {
        let guard = self.state.lock().expect("signal lock");
        let (guard, _) = self
            .cv
            .wait_timeout_while(
                guard,
                std::time::Duration::from_millis(25),
                |(generation, stop)| *generation == seen && !*stop,
            )
            .expect("signal lock");
        guard.0
    }
}

/// The campaign scheduler.
///
/// Deterministic by construction: all timing comes from the injected
/// [`Clock`], execution is delegated to an [`Executor`], and tests drive
/// progress with [`Scheduler::step`]/[`Scheduler::drain`] instead of
/// threads. Production deployments call [`Scheduler::spawn_workers`] for
/// per-platform worker pools that drain the queue continuously.
pub struct Scheduler {
    executor: Arc<dyn Executor>,
    clock: Arc<dyn Clock>,
    config: SchedulerConfig,
    metrics: Arc<MetricsRegistry>,
    #[allow(dead_code)] // kept so future spans share the scheduler's clock
    recorder: SpanRecorder,
    cache: ResultCache,
    inner: Mutex<Inner>,
    signal: WorkerSignal,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Creates a scheduler with its own [`MetricsRegistry`].
    pub fn new(
        executor: Arc<dyn Executor>,
        clock: Arc<dyn Clock>,
        config: SchedulerConfig,
    ) -> Self {
        Scheduler::with_metrics(executor, clock, config, Arc::new(MetricsRegistry::new()))
    }

    /// Creates a scheduler publishing into a shared [`MetricsRegistry`]
    /// (the gateway's, so `GET /v1/metrics` covers both layers).
    pub fn with_metrics(
        executor: Arc<dyn Executor>,
        clock: Arc<dyn Clock>,
        config: SchedulerConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let recorder = SpanRecorder::new(Arc::clone(&clock));
        let inner =
            Inner { queue: Some(BoundedQueue::new(config.queue_capacity)), ..Inner::default() };
        Scheduler {
            executor,
            clock,
            cache: ResultCache::with_capacity(config.cache_capacity),
            config,
            metrics,
            recorder,
            inner: Mutex::new(inner),
            signal: WorkerSignal::default(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The metrics registry the scheduler publishes into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The configured `Retry-After` hint in seconds.
    pub fn retry_after_secs(&self) -> u64 {
        self.config.retry_after_secs
    }

    /// The scheduler's result cache (read access: snapshots, occupancy).
    pub fn result_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Validates, expands, and enqueues a campaign.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on a malformed or oversized spec (all size
    /// bounds — axis lengths and the configured `max_cells` — are enforced
    /// here, before expansion allocates anything); [`SubmitError::QueueFull`]
    /// when the bounded queue cannot take the whole matrix.
    pub fn submit(&self, spec: CampaignSpec) -> Result<CampaignReceipt, SubmitError> {
        spec.validate_with_limit(self.config.max_cells).map_err(SubmitError::Invalid)?;
        let cells = campaign::expand(&spec);
        self.submit_cells(cells, spec.priority, spec.deadline_ms)
    }

    /// Enqueues pre-expanded cells as one campaign. The fleet layer uses
    /// this to place a partition of a campaign's matrix on the shard that
    /// owns those cells' content addresses (and to re-place the remainder
    /// after a shard dies); [`Scheduler::submit`] is the
    /// expand-then-enqueue wrapper.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue cannot take every
    /// cell (admission stays all-or-nothing).
    pub fn submit_cells(
        &self,
        cells: Vec<CampaignCell>,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> Result<CampaignReceipt, SubmitError> {
        let now = self.clock.now_ms();

        let receipt = {
            let mut inner = self.inner.lock();
            if !inner.queue().can_admit(cells.len()) {
                self.metrics.counter("sched_jobs_rejected_total").add(cells.len() as u64);
                return Err(SubmitError::QueueFull {
                    queued: inner.queue().depth(),
                    capacity: inner.queue().capacity(),
                    retry_after_secs: self.config.retry_after_secs,
                });
            }
            inner.next_campaign += 1;
            let id = CampaignId(format!("c{}", inner.next_campaign));
            let mut job_ids = Vec::with_capacity(cells.len());
            for (idx, cell) in cells.into_iter().enumerate() {
                let job_id = JobId(format!("{id}-j{idx}"));
                inner.queue().push(cell.platform, priority, job_id.clone());
                inner.jobs.insert(
                    job_id.clone(),
                    JobRecord {
                        id: job_id.clone(),
                        campaign: id.clone(),
                        cell,
                        priority,
                        state: JobState::Queued,
                        enqueued_at_ms: now,
                        expires_at_ms: deadline_ms.map(|d| now.saturating_add(d)),
                        summary: None,
                        error: None,
                        trace: None,
                    },
                );
                job_ids.push(job_id);
            }
            let jobs = job_ids.len();
            inner.campaigns.insert(id.clone(), CampaignRecord { job_ids, cancelled: false });
            self.metrics.counter("sched_campaigns_total").inc();
            self.metrics.counter("sched_jobs_enqueued_total").add(jobs as u64);
            self.metrics.gauge("sched_queue_depth").set(inner.queue().depth() as u64);
            CampaignReceipt { id, jobs }
        };
        self.signal.notify();
        Ok(receipt)
    }

    /// Processes at most one queued job for `platform`: dequeues it, expires
    /// it if its queue deadline passed, serves it from the result cache, or
    /// executes it through the [`Executor`]. Returns whether a job was
    /// processed (i.e. whether the platform's queue was non-empty).
    ///
    /// This is the worker loop body; tests call it directly for fully
    /// deterministic, single-threaded draining.
    pub fn step(&self, platform: TeePlatform) -> bool {
        self.step_with(platform, self.executor.as_ref())
    }

    /// [`Scheduler::step`] with the execution delegated to an arbitrary
    /// [`Executor`] — the work-stealing primitive. A thief shard calls this
    /// on the *victim's* scheduler with its own gateway as the executor:
    /// the victim keeps all bookkeeping (queue, job records, result cache,
    /// metrics), only the VM execution itself happens on the thief's
    /// hosts. Content addressing still goes through the scheduler's own
    /// executor so the cache key is the victim's view of the function.
    pub fn step_with(&self, platform: TeePlatform, executor: &dyn Executor) -> bool {
        // Phase 1 (locked): dequeue and classify.
        let (job_id, cell, key, enqueued_at_ms) = {
            let mut inner = self.inner.lock();
            let Some(job_id) = inner.queue().pop(platform) else {
                return false;
            };
            self.metrics.gauge("sched_queue_depth").set(inner.queue().depth() as u64);
            let now = self.clock.now_ms();
            let job = inner.jobs.get_mut(&job_id).expect("queued job is recorded");
            if job.expires_at_ms.is_some_and(|t| now >= t) {
                job.state = JobState::Expired;
                job.error = Some(format!(
                    "queued past its {}ms deadline",
                    job.expires_at_ms.unwrap_or(0).saturating_sub(job.enqueued_at_ms)
                ));
                self.metrics.counter("sched_jobs_expired_total").inc();
                return true;
            }
            job.state = JobState::Running;
            let cell = job.cell.clone();
            let enqueued_at_ms = job.enqueued_at_ms;

            // Content address: only functions the executor knows have a
            // fingerprint; unknown ones fall through to execution, which
            // reports the precise error.
            let key = self
                .executor
                .function_fingerprint(&cell.function.name)
                .map(|fp| cache_key(&cell, &fp));
            if let Some(key) = &key {
                if let Some(hit) = self.cache.get(key) {
                    let summary = build_summary(&job_id, &cell, &hit, true, key);
                    job.state = JobState::Completed;
                    job.summary = Some(summary);
                    self.metrics.counter("sched_cache_hits_total").inc();
                    self.metrics.counter("sched_jobs_completed_total").inc();
                    return true;
                }
                self.metrics.counter("sched_cache_misses_total").inc();
            }
            (job_id, cell, key, enqueued_at_ms)
        };

        // Phase 2 (unlocked): execute — potentially slow, must not hold the
        // scheduler lock so other platforms keep draining.
        self.metrics.gauge("sched_jobs_inflight").inc();
        let dequeued_at_ms = self.clock.now_ms();
        let request = RunRequest {
            function: FunctionSpec {
                name: cell.function.name.clone(),
                language: cell.language,
                args: cell.function.args.clone(),
            },
            target: VmTarget { platform: cell.platform, kind: cell.kind },
            trials: cell.trials,
            seed: cell.seed,
            deadline_ms: None,
            attest_session: None,
            device: cell.device,
        };
        let outcome = executor.execute(&request);

        // Phase 3 (locked): record the outcome and the span tree.
        let mut span = self.recorder.root("sched.execute");
        span.set_attr("trials", u64::from(cell.trials));
        span.set_attr("seed", cell.seed);
        let mut queued_span = TraceSpan::new("sched.enqueue", enqueued_at_ms);
        queued_span.end_ms = dequeued_at_ms;
        span.adopt(queued_span);

        let mut inner = self.inner.lock();
        let job = inner.jobs.get_mut(&job_id).expect("running job is recorded");
        match outcome {
            Ok(result) => {
                if let Some(subtree) = result.trace.clone() {
                    span.adopt(subtree);
                }
                let stats = Summary::from_samples(&result.trial_ms);
                let cached = CachedCell {
                    mean_ms: stats.mean,
                    median_ms: stats.median(),
                    min_ms: stats.min,
                    max_ms: stats.max,
                    stddev_ms: stats.stddev,
                    output: result.output,
                };
                let key = key.unwrap_or_else(|| {
                    // Executed successfully without a fingerprint (function
                    // appeared mid-flight); address it now for completeness.
                    self.executor
                        .function_fingerprint(&cell.function.name)
                        .map(|fp| cache_key(&cell, &fp))
                        .unwrap_or_default()
                });
                let summary = build_summary(&job_id, &cell, &cached, false, &key);
                if !key.is_empty() {
                    let evicted = self.cache.insert(key, cached);
                    self.metrics.gauge("sched_cache_entries").set(self.cache.len() as u64);
                    self.metrics.counter("sched_cache_evictions_total").add(evicted);
                }
                job.state = JobState::Completed;
                job.summary = Some(summary);
                job.trace = Some(span.finish());
                self.metrics.counter("sched_jobs_completed_total").inc();
            }
            Err(e) => {
                job.state = JobState::Failed;
                job.error = Some(e.to_string());
                job.trace = Some(span.finish());
                self.metrics.counter("sched_jobs_failed_total").inc();
            }
        }
        self.metrics.gauge("sched_jobs_inflight").dec();
        true
    }

    /// Drains every platform's queue to empty, single-threaded. The test
    /// and CLI workhorse: after `drain` returns, every submitted job is in
    /// a terminal state.
    pub fn drain(&self) {
        while TeePlatform::ALL.iter().any(|&p| self.step(p)) {}
    }

    /// Spawns `per_platform` worker threads for each TEE platform. Workers
    /// drain their platform's queue and sleep on a condition variable when
    /// idle; [`Scheduler::shutdown`] stops and joins them.
    pub fn spawn_workers(self: &Arc<Self>, per_platform: usize) {
        let mut workers = self.workers.lock();
        for platform in TeePlatform::ALL {
            for _ in 0..per_platform {
                let sched = Arc::clone(self);
                workers.push(std::thread::spawn(move || {
                    let mut seen = 0;
                    while !sched.signal.stopped() {
                        if !sched.step(platform) {
                            seen = sched.signal.wait(seen);
                        }
                    }
                }));
            }
        }
    }

    /// Signals all workers to stop and joins them. Queued jobs stay queued.
    pub fn shutdown(&self) {
        self.signal.stop();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Cancels a campaign: its queued jobs are pulled out of the queue
    /// immediately (they will *never* reach a VM) and marked
    /// [`JobState::Cancelled`]; jobs already running finish normally.
    /// Returns the post-cancellation status, or `None` for an unknown id.
    pub fn cancel_campaign(&self, id: &CampaignId) -> Option<CampaignStatus> {
        {
            let mut inner = self.inner.lock();
            let record = inner.campaigns.get_mut(id)?;
            record.cancelled = true;
            let queued: Vec<JobId> = record
                .job_ids
                .clone()
                .into_iter()
                .filter(|j| inner.jobs.get(j).is_some_and(|job| job.state == JobState::Queued))
                .collect();
            let removed = inner.queue().remove(&queued);
            debug_assert_eq!(removed, queued.len(), "queued jobs live in the queue");
            for job_id in &queued {
                let job = inner.jobs.get_mut(job_id).expect("job recorded");
                job.state = JobState::Cancelled;
            }
            self.metrics.counter("sched_jobs_cancelled_total").add(queued.len() as u64);
            self.metrics.gauge("sched_queue_depth").set(inner.queue().depth() as u64);
        }
        self.campaign_status(id)
    }

    /// Point-in-time status of a campaign, or `None` for an unknown id.
    /// Cells appear in expansion order as their jobs complete, so polling
    /// observes monotone progress.
    pub fn campaign_status(&self, id: &CampaignId) -> Option<CampaignStatus> {
        let inner = self.inner.lock();
        let record = inner.campaigns.get(id)?;
        let mut status = CampaignStatus {
            id: id.clone(),
            state: CampaignState::Active,
            total_jobs: record.job_ids.len(),
            queued: 0,
            running: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            expired: 0,
            cache_hits: 0,
            cells: Vec::new(),
        };
        for job_id in &record.job_ids {
            let job = inner.jobs.get(job_id).expect("job recorded");
            match job.state {
                JobState::Queued => status.queued += 1,
                JobState::Running => status.running += 1,
                JobState::Completed => status.completed += 1,
                JobState::Failed => status.failed += 1,
                JobState::Cancelled => status.cancelled += 1,
                JobState::Expired => status.expired += 1,
            }
            if let Some(summary) = &job.summary {
                if summary.from_cache {
                    status.cache_hits += 1;
                }
                status.cells.push(summary.clone());
            }
        }
        status.state = if record.cancelled {
            CampaignState::Cancelled
        } else if status.is_done() {
            CampaignState::Completed
        } else {
            CampaignState::Active
        };
        Some(status)
    }

    /// Point-in-time status of one job, or `None` for an unknown id.
    pub fn job_status(&self, id: &JobId) -> Option<JobStatus> {
        let inner = self.inner.lock();
        let job = inner.jobs.get(id)?;
        Some(JobStatus {
            id: job.id.clone(),
            campaign: job.campaign.clone(),
            state: job.state,
            cell: job.cell.clone(),
            summary: job.summary.clone(),
            error: job.error.clone(),
            trace: job.trace.clone(),
        })
    }

    /// Total jobs currently queued (all platforms).
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().queue().depth()
    }

    /// Jobs currently queued for one platform — what a work-stealing fleet
    /// inspects to pick the deepest victim.
    pub fn queue_depth_for(&self, platform: TeePlatform) -> usize {
        self.inner.lock().queue().depth_for(platform)
    }

    /// Priority a job was enqueued with (test/debug introspection).
    pub fn job_priority(&self, id: &JobId) -> Option<Priority> {
        self.inner.lock().jobs.get(id).map(|j| j.priority)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.signal.stop();
        for handle in std::mem::take(&mut *self.workers.lock()) {
            let _ = handle.join();
        }
    }
}

fn build_summary(
    job: &JobId,
    cell: &CampaignCell,
    cached: &CachedCell,
    from_cache: bool,
    key: &str,
) -> CellSummary {
    CellSummary {
        job: job.clone(),
        cell: cell.clone(),
        mean_ms: cached.mean_ms,
        median_ms: cached.median_ms,
        min_ms: cached.min_ms,
        max_ms: cached.max_ms,
        stddev_ms: cached.stddev_ms,
        output: cached.output.clone(),
        from_cache,
        cache_key: key.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use confbench_types::{CampaignFunction, Language, ManualClock, Result, RunResult, VmKind};

    /// Deterministic synthetic executor: trial times derive from the seed,
    /// executions are counted, and unknown functions fail.
    struct SimExec {
        executions: AtomicUsize,
    }

    impl SimExec {
        fn new() -> Self {
            SimExec { executions: AtomicUsize::new(0) }
        }
    }

    impl Executor for SimExec {
        fn execute(&self, req: &RunRequest) -> Result<RunResult> {
            self.executions.fetch_add(1, Ordering::SeqCst);
            if req.function.name == "missing" {
                return Err(Error::UnknownFunction(req.function.name.clone()));
            }
            let trial_ms: Vec<f64> =
                (0..req.trials).map(|t| ((req.seed % 7) + u64::from(t)) as f64 + 1.0).collect();
            Ok(RunResult {
                function: req.function.name.clone(),
                language: req.function.language,
                target: req.target,
                stats: RunResult::compute_stats(&trial_ms),
                trial_ms,
                trial_cycles: Vec::new(),
                perf: Default::default(),
                output: format!("out-{}", req.seed % 97),
                trace: Some(TraceSpan::new("gateway.run", 0)),
            })
        }

        fn function_fingerprint(&self, name: &str) -> Option<String> {
            (name != "missing").then(|| format!("src-of-{name}"))
        }
    }

    fn harness(capacity: usize) -> (Arc<Scheduler>, Arc<SimExec>, Arc<ManualClock>) {
        let exec = Arc::new(SimExec::new());
        let clock = Arc::new(ManualClock::new());
        let config = SchedulerConfig {
            queue_capacity: capacity,
            retry_after_secs: 3,
            ..SchedulerConfig::default()
        };
        let sched =
            Arc::new(Scheduler::new(exec.clone() as Arc<dyn Executor>, clock.clone(), config));
        (sched, exec, clock)
    }

    fn spec() -> CampaignSpec {
        CampaignSpec {
            functions: vec![CampaignFunction::new("fib").arg("10")],
            languages: vec![Language::Go, Language::Lua],
            platforms: vec![TeePlatform::Tdx, TeePlatform::SevSnp],
            modes: vec![VmKind::Secure],
            trials: 3,
            seed: 5,
            priority: Priority::Normal,
            deadline_ms: None,
            device: None,
        }
    }

    #[test]
    fn submit_drain_complete() {
        let (sched, exec, _) = harness(64);
        let receipt = sched.submit(spec()).unwrap();
        assert_eq!(receipt.jobs, 4);
        assert_eq!(sched.queue_depth(), 4);
        sched.drain();
        assert_eq!(sched.queue_depth(), 0);
        assert_eq!(exec.executions.load(Ordering::SeqCst), 4);
        let status = sched.campaign_status(&receipt.id).unwrap();
        assert_eq!(status.state, CampaignState::Completed);
        assert_eq!(status.completed, 4);
        assert_eq!(status.cells.len(), 4);
        assert!(status.cells.iter().all(|c| !c.from_cache && c.cache_key.len() == 64));
        // Every job exposes a span tree with the queue wait adopted in.
        for job_id in status.cells.iter().map(|c| &c.job) {
            let job = sched.job_status(job_id).unwrap();
            let trace = job.trace.unwrap();
            assert_eq!(trace.name, "sched.execute");
            assert!(trace.children.iter().any(|c| c.name == "sched.enqueue"));
            assert!(trace.children.iter().any(|c| c.name == "gateway.run"));
        }
    }

    #[test]
    fn resubmission_is_served_entirely_from_cache() {
        let (sched, exec, _) = harness(64);
        let first = sched.submit(spec()).unwrap();
        sched.drain();
        let cold = sched.campaign_status(&first.id).unwrap();
        assert_eq!(exec.executions.load(Ordering::SeqCst), 4);

        let second = sched.submit(spec()).unwrap();
        assert_ne!(second.id, first.id, "each submission gets a fresh id");
        sched.drain();
        assert_eq!(exec.executions.load(Ordering::SeqCst), 4, "no re-execution");
        let warm = sched.campaign_status(&second.id).unwrap();
        assert_eq!(warm.cache_hits, 4);
        assert!(warm.cells.iter().all(|c| c.from_cache));
        assert_eq!(sched.metrics().counter("sched_cache_hits_total").get(), 4);

        // Byte-identical summaries modulo provenance (job id, from_cache).
        for (a, b) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.cache_key, b.cache_key);
            assert_eq!(
                (a.mean_ms, a.median_ms, a.min_ms, a.max_ms, a.stddev_ms, &a.output),
                (b.mean_ms, b.median_ms, b.min_ms, b.max_ms, b.stddev_ms, &b.output)
            );
        }
    }

    #[test]
    fn cache_capacity_bounds_entries_and_counts_evictions() {
        let exec = Arc::new(SimExec::new());
        let clock = Arc::new(ManualClock::new());
        let config = SchedulerConfig { cache_capacity: 2, ..SchedulerConfig::default() };
        let sched = Scheduler::new(exec.clone() as Arc<dyn Executor>, clock, config);
        let receipt = sched.submit(spec()).unwrap();
        assert_eq!(receipt.jobs, 4);
        sched.drain();
        // Four distinct results flowed through a 2-entry cache: two evicted.
        assert_eq!(sched.metrics().gauge("sched_cache_entries").get(), 2);
        assert_eq!(sched.metrics().counter("sched_cache_evictions_total").get(), 2);
        // A resubmission scans the cells in the same order, and a 4-cell
        // working set thrashes a 2-entry LRU: every lookup misses, every
        // completion evicts. The cache stays bounded; that's the contract.
        sched.submit(spec()).unwrap();
        sched.drain();
        assert_eq!(exec.executions.load(Ordering::SeqCst), 8);
        assert_eq!(sched.metrics().gauge("sched_cache_entries").get(), 2);
        assert_eq!(sched.metrics().counter("sched_cache_evictions_total").get(), 6);
    }

    #[test]
    fn queue_full_is_all_or_nothing() {
        let (sched, _, _) = harness(5);
        sched.submit(spec()).unwrap(); // 4 of 5 slots
        let err = sched.submit(spec()).unwrap_err(); // needs 4, only 1 free
        match err {
            SubmitError::QueueFull { queued, capacity, retry_after_secs } => {
                assert_eq!((queued, capacity, retry_after_secs), (4, 5, 3));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Nothing from the rejected campaign leaked into the queue.
        assert_eq!(sched.queue_depth(), 4);
        assert_eq!(sched.metrics().counter("sched_jobs_rejected_total").get(), 4);
        let e: Error = sched.submit(spec()).unwrap_err().into();
        assert_eq!(e.rest_status(), 429);
    }

    #[test]
    fn priorities_drain_high_first() {
        let (sched, _, _) = harness(64);
        let mut low = spec();
        low.platforms = vec![TeePlatform::Tdx];
        low.languages = vec![Language::Go];
        low.priority = Priority::Low;
        let mut high = low.clone();
        high.priority = Priority::High;
        high.seed = 99; // distinct cells so both execute
        let low_r = sched.submit(low).unwrap();
        let high_r = sched.submit(high).unwrap();
        assert!(sched.step(TeePlatform::Tdx));
        let high_status = sched.campaign_status(&high_r.id).unwrap();
        let low_status = sched.campaign_status(&low_r.id).unwrap();
        assert_eq!(high_status.completed, 1, "high priority jumped the queue");
        assert_eq!(low_status.completed, 0);
        let low_job = first_job_of(&sched, &low_r.id);
        assert_eq!(sched.job_priority(&low_job), Some(Priority::Low));
    }

    fn first_job_of(sched: &Scheduler, id: &CampaignId) -> JobId {
        sched.inner.lock().campaigns[id].job_ids[0].clone()
    }

    #[test]
    fn cancellation_prevents_queued_jobs_from_executing() {
        let (sched, exec, _) = harness(64);
        let receipt = sched.submit(spec()).unwrap();
        let status = sched.cancel_campaign(&receipt.id).unwrap();
        assert_eq!(status.state, CampaignState::Cancelled);
        assert_eq!(status.cancelled, 4);
        assert_eq!(sched.queue_depth(), 0);
        sched.drain();
        assert_eq!(exec.executions.load(Ordering::SeqCst), 0, "cancelled jobs never execute");
        assert!(sched.cancel_campaign(&CampaignId("nope".into())).is_none());
    }

    #[test]
    fn queue_deadline_expires_stale_jobs() {
        let (sched, exec, clock) = harness(64);
        let mut s = spec();
        s.deadline_ms = Some(10);
        let receipt = sched.submit(s).unwrap();
        clock.advance(10);
        sched.drain();
        let status = sched.campaign_status(&receipt.id).unwrap();
        assert_eq!(status.expired, 4);
        assert_eq!(status.state, CampaignState::Completed);
        assert_eq!(exec.executions.load(Ordering::SeqCst), 0);
        assert_eq!(sched.metrics().counter("sched_jobs_expired_total").get(), 4);
        // A fresh submission with headroom executes normally.
        let mut s = spec();
        s.deadline_ms = Some(10);
        s.seed = 6;
        let receipt = sched.submit(s).unwrap();
        clock.advance(9);
        sched.drain();
        assert_eq!(sched.campaign_status(&receipt.id).unwrap().completed, 4);
    }

    #[test]
    fn failed_jobs_record_the_error() {
        let (sched, _, _) = harness(64);
        let mut s = spec();
        s.functions = vec![CampaignFunction::new("missing")];
        s.platforms = vec![TeePlatform::Tdx];
        s.languages = vec![Language::Go];
        let receipt = sched.submit(s).unwrap();
        sched.drain();
        let status = sched.campaign_status(&receipt.id).unwrap();
        assert_eq!(status.failed, 1);
        assert_eq!(status.state, CampaignState::Completed);
        let inner = sched.inner.lock();
        let job = inner.jobs.values().find(|j| j.state == JobState::Failed).unwrap();
        assert!(job.error.as_deref().unwrap().contains("unknown function"));
    }

    #[test]
    fn invalid_spec_is_rejected_up_front() {
        let (sched, _, _) = harness(64);
        let mut s = spec();
        s.trials = 0;
        assert!(matches!(sched.submit(s), Err(SubmitError::Invalid(_))));
        assert_eq!(sched.queue_depth(), 0);
    }

    #[test]
    fn worker_threads_drain_and_shut_down() {
        let (sched, _, _) = harness(64);
        sched.spawn_workers(2);
        let receipt = sched.submit(spec()).unwrap();
        // Workers run free-threaded; poll until they finish the campaign.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let status = sched.campaign_status(&receipt.id).unwrap();
            if status.is_done() {
                assert_eq!(status.completed, 4);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "workers did not drain in time");
            std::thread::yield_now();
        }
        sched.shutdown();
        assert!(sched.workers.lock().is_empty());
    }

    #[test]
    fn metrics_track_queue_and_cache() {
        let (sched, _, _) = harness(64);
        sched.submit(spec()).unwrap();
        assert_eq!(sched.metrics().gauge_value("sched_queue_depth"), Some(4));
        sched.drain();
        assert_eq!(sched.metrics().gauge_value("sched_queue_depth"), Some(0));
        assert_eq!(sched.metrics().gauge_value("sched_cache_entries"), Some(4));
        assert_eq!(sched.metrics().counter("sched_cache_misses_total").get(), 4);
        assert_eq!(sched.metrics().counter("sched_jobs_enqueued_total").get(), 4);
        assert_eq!(sched.metrics().counter("sched_jobs_completed_total").get(), 4);
    }
}

//! Content-addressed memoization of cell results.
//!
//! Execution here is deterministic: the same (function source, platform,
//! language, VM kind, trials, seed) always yields the same trial times and
//! output. The cache exploits that by addressing results with a SHA-256
//! over exactly those inputs — so a resubmitted campaign is served without
//! touching a VM, and editing a function's source changes its fingerprint
//! and invalidates precisely that function's entries.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use confbench_crypto::Sha256;
use confbench_types::CampaignCell;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Computes the content address of a cell's result: lowercase-hex SHA-256
/// over the cell identity plus the function-source fingerprint.
///
/// Fields are newline-framed with `key=` prefixes so distinct inputs cannot
/// collide by concatenation, and the string is versioned so a future layout
/// change cannot silently alias old entries.
pub fn cache_key(cell: &CampaignCell, fingerprint: &str) -> String {
    let mut hasher = Sha256::new();
    hasher.update(b"confbench.result-cache.v1\n");
    hasher.update(format!("fn={}\n", cell.function.name).as_bytes());
    for arg in &cell.function.args {
        hasher.update(format!("arg={arg}\n").as_bytes());
    }
    hasher.update(format!("src={fingerprint}\n").as_bytes());
    hasher.update(
        format!(
            "lang={}\nplatform={}\nkind={}\ntrials={}\nseed={}",
            cell.language, cell.platform, cell.kind, cell.trials, cell.seed
        )
        .as_bytes(),
    );
    // Appended (not interleaved) so device-less cells keep their pre-device
    // addresses and old cache entries stay valid.
    if let Some(device) = cell.device {
        hasher.update(format!("\ndevice={device}").as_bytes());
    }
    hasher.finalize().to_string()
}

/// The memoized portion of a completed cell: everything a
/// [`CellSummary`](confbench_types::CellSummary) needs except the serving
/// job's identity and cache provenance (which differ per lookup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedCell {
    /// Mean trial time in milliseconds.
    pub mean_ms: f64,
    /// Median (p50) trial time in milliseconds.
    pub median_ms: f64,
    /// Minimum trial time in milliseconds.
    pub min_ms: f64,
    /// Maximum trial time in milliseconds.
    pub max_ms: f64,
    /// Sample standard deviation in milliseconds.
    pub stddev_ms: f64,
    /// Function output.
    pub output: String,
}

/// Default entry cap for [`ResultCache::new`]; override with
/// [`ResultCache::with_capacity`] (gateway flag `--cache-capacity`).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Entries plus a recency index. `tick` is a logical clock bumped on every
/// touch; `order` maps tick → key so the least-recently-used entry is the
/// first in the map.
#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, (CachedCell, u64)>,
    order: BTreeMap<u64, String>,
    tick: u64,
}

impl CacheInner {
    fn touch(&mut self, key: &str) {
        self.tick += 1;
        if let Some((_, at)) = self.entries.get_mut(key) {
            let prev = std::mem::replace(at, self.tick);
            self.order.remove(&prev);
            self.order.insert(self.tick, key.to_owned());
        }
    }
}

/// A thread-safe content-addressed store of [`CachedCell`]s, bounded by an
/// entry cap with least-recently-used eviction.
///
/// Both hits ([`get`](ResultCache::get)) and stores
/// ([`insert`](ResultCache::insert)) refresh an entry's recency; when a new
/// key would exceed the cap the stalest entry is dropped and counted in
/// [`evictions`](ResultCache::evictions).
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl ResultCache {
    /// Creates an empty cache holding up to [`DEFAULT_CACHE_CAPACITY`] entries.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Creates an empty cache holding up to `capacity` entries (clamped to
    /// ≥ 1 — a zero-capacity cache could never serve a hit).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            evictions: AtomicU64::new(0),
        }
    }

    /// The entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a result by its content address, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<CachedCell> {
        let mut inner = self.inner.lock();
        let hit = inner.entries.get(key).map(|(cell, _)| cell.clone());
        if hit.is_some() {
            inner.touch(key);
        }
        hit
    }

    /// Stores a result under its content address, evicting the
    /// least-recently-used entries if the cache is full. Returns how many
    /// entries were evicted (so callers can bump an evictions counter).
    pub fn insert(&self, key: String, cell: CachedCell) -> u64 {
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(&key) {
            inner.touch(&key);
            inner.entries.get_mut(&key).expect("touched entry exists").0 = cell;
            return 0;
        }
        let mut evicted = 0;
        while inner.entries.len() >= self.capacity {
            let Some((_, stale)) = inner.order.pop_first() else { break };
            inner.entries.remove(&stale);
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::SeqCst);
        inner.tick += 1;
        let tick = inner.tick;
        inner.order.insert(tick, key.clone());
        inner.entries.insert(key, (cell, tick));
        evicted
    }

    /// A sorted copy of the cache contents (key → cell), without touching
    /// recency. Serializing a snapshot gives a canonical byte string — the
    /// chaos suite compares snapshots from a faulted and a fault-free
    /// campaign to prove recovery changes nothing measurable.
    pub fn snapshot(&self) -> BTreeMap<String, CachedCell> {
        self.inner.lock().entries.iter().map(|(k, (cell, _))| (k.clone(), cell.clone())).collect()
    }

    /// Entries evicted to stay under the cap since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::SeqCst)
    }

    /// Number of distinct results stored.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{CampaignFunction, Language, TeePlatform, VmKind};

    fn cell() -> CampaignCell {
        CampaignCell {
            function: CampaignFunction::new("fib").arg("15"),
            language: Language::Go,
            platform: TeePlatform::Tdx,
            kind: VmKind::Secure,
            trials: 10,
            seed: 42,
            device: None,
        }
    }

    fn cached() -> CachedCell {
        CachedCell {
            mean_ms: 2.0,
            median_ms: 2.0,
            min_ms: 1.0,
            max_ms: 3.0,
            stddev_ms: 0.5,
            output: "610".into(),
        }
    }

    #[test]
    fn key_is_hex_sha256_and_deterministic() {
        let k = cache_key(&cell(), "srchash");
        assert_eq!(k.len(), 64);
        assert!(k.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(k, cache_key(&cell(), "srchash"));
    }

    #[test]
    fn every_identity_field_perturbs_the_key() {
        let base = cache_key(&cell(), "src");
        assert_ne!(base, cache_key(&cell(), "other-src"));

        let mut c = cell();
        c.function.name = "fact".into();
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.function.args = vec!["16".into()];
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.language = Language::Lua;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.platform = TeePlatform::SevSnp;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.kind = VmKind::Normal;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.trials = 11;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.seed = 43;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.device = Some(confbench_types::DeviceKind::Gpu);
        assert_ne!(base, cache_key(&c, "src"));
    }

    #[test]
    fn store_and_retrieve() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        let key = cache_key(&cell(), "src");
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), cached());
        assert_eq!(cache.get(&key), Some(cached()));
        assert_eq!(cache.len(), 1);
        // Re-inserting the same address does not grow the store.
        cache.insert(key, cached());
        assert_eq!(cache.len(), 1);
    }

    fn entry(output: &str) -> CachedCell {
        CachedCell { output: output.into(), ..cached() }
    }

    #[test]
    fn eviction_is_least_recently_used_order() {
        let cache = ResultCache::with_capacity(3);
        cache.insert("a".into(), entry("a"));
        cache.insert("b".into(), entry("b"));
        cache.insert("c".into(), entry("c"));
        assert_eq!(cache.evictions(), 0);
        // Full: inserting a fourth key evicts the stalest ("a").
        cache.insert("d".into(), entry("d"));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("a").is_none(), "LRU entry evicted first");
        // "b" is now stalest; the next insert drops it.
        cache.insert("e".into(), entry("e"));
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("old".into(), entry("old"));
        cache.insert("new".into(), entry("new"));
        // Touch "old" so "new" becomes the eviction candidate.
        assert!(cache.get("old").is_some());
        cache.insert("third".into(), entry("third"));
        assert!(cache.get("old").is_some(), "recently read entry survives");
        assert!(cache.get("new").is_none(), "unread entry was evicted");
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("a".into(), entry("v1"));
        cache.insert("b".into(), entry("b"));
        // Same key: overwrite in place, no eviction even though full.
        cache.insert("a".into(), entry("v2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get("a").unwrap().output, "v2");
        // The overwrite also refreshed "a", so "b" evicts next.
        cache.insert("c".into(), entry("c"));
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
    }

    #[test]
    fn capacity_clamps_to_one() {
        let cache = ResultCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert("a".into(), entry("a"));
        assert!(cache.get("a").is_some(), "cap-1 cache still serves hits");
        cache.insert("b".into(), entry("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }
}

//! Content-addressed memoization of cell results.
//!
//! Execution here is deterministic: the same (function source, platform,
//! language, VM kind, trials, seed) always yields the same trial times and
//! output. The cache exploits that by addressing results with a SHA-256
//! over exactly those inputs — so a resubmitted campaign is served without
//! touching a VM, and editing a function's source changes its fingerprint
//! and invalidates precisely that function's entries.

use std::collections::HashMap;

use confbench_crypto::Sha256;
use confbench_types::CampaignCell;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Computes the content address of a cell's result: lowercase-hex SHA-256
/// over the cell identity plus the function-source fingerprint.
///
/// Fields are newline-framed with `key=` prefixes so distinct inputs cannot
/// collide by concatenation, and the string is versioned so a future layout
/// change cannot silently alias old entries.
pub fn cache_key(cell: &CampaignCell, fingerprint: &str) -> String {
    let mut hasher = Sha256::new();
    hasher.update(b"confbench.result-cache.v1\n");
    hasher.update(format!("fn={}\n", cell.function.name).as_bytes());
    for arg in &cell.function.args {
        hasher.update(format!("arg={arg}\n").as_bytes());
    }
    hasher.update(format!("src={fingerprint}\n").as_bytes());
    hasher.update(
        format!(
            "lang={}\nplatform={}\nkind={}\ntrials={}\nseed={}",
            cell.language, cell.platform, cell.kind, cell.trials, cell.seed
        )
        .as_bytes(),
    );
    hasher.finalize().to_string()
}

/// The memoized portion of a completed cell: everything a
/// [`CellSummary`](confbench_types::CellSummary) needs except the serving
/// job's identity and cache provenance (which differ per lookup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedCell {
    /// Mean trial time in milliseconds.
    pub mean_ms: f64,
    /// Median (p50) trial time in milliseconds.
    pub median_ms: f64,
    /// Minimum trial time in milliseconds.
    pub min_ms: f64,
    /// Maximum trial time in milliseconds.
    pub max_ms: f64,
    /// Sample standard deviation in milliseconds.
    pub stddev_ms: f64,
    /// Function output.
    pub output: String,
}

/// A thread-safe content-addressed store of [`CachedCell`]s.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<String, CachedCell>>,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a result by its content address.
    pub fn get(&self, key: &str) -> Option<CachedCell> {
        self.entries.lock().get(key).cloned()
    }

    /// Stores a result under its content address.
    pub fn insert(&self, key: String, cell: CachedCell) {
        self.entries.lock().insert(key, cell);
    }

    /// Number of distinct results stored.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{CampaignFunction, Language, TeePlatform, VmKind};

    fn cell() -> CampaignCell {
        CampaignCell {
            function: CampaignFunction::new("fib").arg("15"),
            language: Language::Go,
            platform: TeePlatform::Tdx,
            kind: VmKind::Secure,
            trials: 10,
            seed: 42,
        }
    }

    fn cached() -> CachedCell {
        CachedCell {
            mean_ms: 2.0,
            median_ms: 2.0,
            min_ms: 1.0,
            max_ms: 3.0,
            stddev_ms: 0.5,
            output: "610".into(),
        }
    }

    #[test]
    fn key_is_hex_sha256_and_deterministic() {
        let k = cache_key(&cell(), "srchash");
        assert_eq!(k.len(), 64);
        assert!(k.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(k, cache_key(&cell(), "srchash"));
    }

    #[test]
    fn every_identity_field_perturbs_the_key() {
        let base = cache_key(&cell(), "src");
        assert_ne!(base, cache_key(&cell(), "other-src"));

        let mut c = cell();
        c.function.name = "fact".into();
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.function.args = vec!["16".into()];
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.language = Language::Lua;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.platform = TeePlatform::SevSnp;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.kind = VmKind::Normal;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.trials = 11;
        assert_ne!(base, cache_key(&c, "src"));
        let mut c = cell();
        c.seed = 43;
        assert_ne!(base, cache_key(&c, "src"));
    }

    #[test]
    fn store_and_retrieve() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        let key = cache_key(&cell(), "src");
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), cached());
        assert_eq!(cache.get(&key), Some(cached()));
        assert_eq!(cache.len(), 1);
        // Re-inserting the same address does not grow the store.
        cache.insert(key, cached());
        assert_eq!(cache.len(), 1);
    }
}

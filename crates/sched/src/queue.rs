//! The bounded, priority job queue.
//!
//! One queue per scheduler, internally split by platform (each platform's
//! worker pool drains only its own jobs) and by priority (higher priorities
//! drain first; FIFO within a priority). The *capacity bound is global*
//! across all platforms — it models the scheduler's total backlog budget,
//! and overflowing it is what surfaces to users as HTTP 429.

use std::collections::{HashMap, VecDeque};

use confbench_types::{JobId, Priority, TeePlatform};

/// A bounded multi-priority queue of job ids, segmented by platform.
///
/// Not internally synchronized: the scheduler holds it inside its state
/// lock, so admission checks and pushes are naturally atomic.
#[derive(Debug)]
pub struct BoundedQueue {
    capacity: usize,
    depth: usize,
    lanes: HashMap<TeePlatform, [VecDeque<JobId>; 3]>,
}

impl BoundedQueue {
    /// Creates an empty queue holding at most `capacity` jobs in total.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue { capacity, depth: 0, lanes: HashMap::new() }
    }

    /// Total jobs queued across all platforms and priorities.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The configured global capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs queued for one platform across all priorities — what the fleet
    /// layer's work stealing compares to pick the deepest victim.
    pub fn depth_for(&self, platform: TeePlatform) -> usize {
        self.lanes.get(&platform).map_or(0, |lanes| lanes.iter().map(VecDeque::len).sum())
    }

    /// Whether `n` more jobs fit. Campaign admission is all-or-nothing:
    /// the scheduler checks the whole matrix before pushing any job.
    pub fn can_admit(&self, n: usize) -> bool {
        self.depth.saturating_add(n) <= self.capacity
    }

    /// Enqueues a job. Callers must have checked [`BoundedQueue::can_admit`];
    /// pushing past capacity panics, because it means admission control was
    /// bypassed.
    pub fn push(&mut self, platform: TeePlatform, priority: Priority, job: JobId) {
        assert!(self.depth < self.capacity, "queue admission bypassed");
        self.lanes.entry(platform).or_default()[lane(priority)].push_back(job);
        self.depth += 1;
    }

    /// Dequeues the next job for `platform`: highest priority first, FIFO
    /// within a priority. `None` when the platform has nothing queued.
    pub fn pop(&mut self, platform: TeePlatform) -> Option<JobId> {
        let lanes = self.lanes.get_mut(&platform)?;
        for p in Priority::DESCENDING {
            if let Some(job) = lanes[lane(p)].pop_front() {
                self.depth -= 1;
                return Some(job);
            }
        }
        None
    }

    /// Removes specific jobs wherever they are queued (cancellation),
    /// returning how many were actually present (and therefore removed
    /// before any worker could pick them up).
    pub fn remove(&mut self, jobs: &[JobId]) -> usize {
        let mut removed = 0;
        for lanes in self.lanes.values_mut() {
            for queue in lanes.iter_mut() {
                let before = queue.len();
                queue.retain(|j| !jobs.contains(j));
                removed += before - queue.len();
            }
        }
        self.depth -= removed;
        removed
    }
}

fn lane(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> JobId {
        JobId(s.to_owned())
    }

    #[test]
    fn fifo_within_priority_and_priority_order_across() {
        let mut q = BoundedQueue::new(10);
        q.push(TeePlatform::Tdx, Priority::Normal, id("n1"));
        q.push(TeePlatform::Tdx, Priority::Low, id("l1"));
        q.push(TeePlatform::Tdx, Priority::High, id("h1"));
        q.push(TeePlatform::Tdx, Priority::Normal, id("n2"));
        q.push(TeePlatform::Tdx, Priority::High, id("h2"));
        let order: Vec<String> =
            std::iter::from_fn(|| q.pop(TeePlatform::Tdx)).map(|j| j.0).collect();
        assert_eq!(order, vec!["h1", "h2", "n1", "n2", "l1"]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn platforms_are_independent_lanes() {
        let mut q = BoundedQueue::new(10);
        q.push(TeePlatform::Tdx, Priority::Normal, id("t1"));
        q.push(TeePlatform::SevSnp, Priority::Normal, id("s1"));
        assert!(q.pop(TeePlatform::Cca).is_none());
        assert_eq!(q.pop(TeePlatform::SevSnp), Some(id("s1")));
        assert_eq!(q.pop(TeePlatform::SevSnp), None);
        assert_eq!(q.pop(TeePlatform::Tdx), Some(id("t1")));
    }

    #[test]
    fn capacity_is_global_across_platforms() {
        let mut q = BoundedQueue::new(3);
        assert!(q.can_admit(3));
        assert!(!q.can_admit(4));
        q.push(TeePlatform::Tdx, Priority::Normal, id("a"));
        q.push(TeePlatform::SevSnp, Priority::Normal, id("b"));
        assert!(q.can_admit(1));
        assert!(!q.can_admit(2));
        q.push(TeePlatform::Cca, Priority::Normal, id("c"));
        assert!(!q.can_admit(1));
        q.pop(TeePlatform::Cca).unwrap();
        assert!(q.can_admit(1));
    }

    #[test]
    #[should_panic(expected = "admission bypassed")]
    fn push_past_capacity_panics() {
        let mut q = BoundedQueue::new(1);
        q.push(TeePlatform::Tdx, Priority::Normal, id("a"));
        q.push(TeePlatform::Tdx, Priority::Normal, id("b"));
    }

    #[test]
    fn remove_plucks_queued_jobs_only() {
        let mut q = BoundedQueue::new(10);
        q.push(TeePlatform::Tdx, Priority::Normal, id("a"));
        q.push(TeePlatform::Tdx, Priority::High, id("b"));
        q.push(TeePlatform::SevSnp, Priority::Low, id("c"));
        // "b" and "c" are queued, "z" never was.
        let removed = q.remove(&[id("b"), id("c"), id("z")]);
        assert_eq!(removed, 2);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.pop(TeePlatform::Tdx), Some(id("a")));
        assert!(q.pop(TeePlatform::SevSnp).is_none());
    }
}

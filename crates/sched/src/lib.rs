//! Asynchronous campaign scheduling for ConfBench.
//!
//! The paper's workflow (§III) submits one run at a time; reproducing a
//! figure like the Fig. 6 heatmap means hundreds of runs. This crate adds
//! the batching layer on top of the gateway:
//!
//! * [`campaign::expand`] — turns one [`CampaignSpec`](confbench_types::CampaignSpec)
//!   into its matrix of cells, with deterministic per-cell seeds;
//! * [`BoundedQueue`] — a bounded, priority job queue with per-platform
//!   sub-queues; admission is all-or-nothing per campaign, and rejection
//!   surfaces as HTTP 429 with a `Retry-After` header;
//! * [`ResultCache`] — content-addressed memoization of cell results, keyed
//!   on a SHA-256 over (function identity *and source*, platform, language,
//!   VM kind, trials, seed), so replaying a campaign is free and editing a
//!   function's source invalidates exactly its cells;
//! * [`Scheduler`] — ties the above together: expands campaigns, enqueues
//!   jobs, executes them through an [`Executor`] (the gateway), aggregates
//!   per-cell summaries with `confbench-stats`, and exposes cancellation,
//!   queue deadlines, metrics, and trace spans;
//! * [`rest::add_routes`] — the `/v1/campaigns` and `/v1/jobs` REST surface.
//!
//! Everything is deterministic under a
//! [`ManualClock`](confbench_types::ManualClock): tests drive workers with
//! [`Scheduler::step`]/[`Scheduler::drain`] instead of spawning threads, and
//! no wall-clock or RNG state leaks into results.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use confbench_sched::{Executor, Scheduler, SchedulerConfig};
//! use confbench_types::{
//!     CampaignFunction, CampaignSpec, Language, ManualClock, Priority, RunRequest, RunResult,
//!     TeePlatform, VmKind,
//! };
//!
//! struct Echo;
//! impl Executor for Echo {
//!     fn execute(&self, req: &RunRequest) -> confbench_types::Result<RunResult> {
//!         let trial_ms = vec![1.0; req.trials as usize];
//!         Ok(RunResult {
//!             function: req.function.name.clone(),
//!             language: req.function.language,
//!             target: req.target,
//!             stats: RunResult::compute_stats(&trial_ms),
//!             trial_ms,
//!             trial_cycles: Vec::new(),
//!             perf: Default::default(),
//!             output: "ok".into(),
//!             trace: None,
//!         })
//!     }
//!     fn function_fingerprint(&self, _name: &str) -> Option<String> {
//!         Some("source-hash".into())
//!     }
//! }
//!
//! let clock = Arc::new(ManualClock::new());
//! let sched = Scheduler::new(Arc::new(Echo), clock, SchedulerConfig::default());
//! let spec = CampaignSpec {
//!     functions: vec![CampaignFunction::new("fib").arg("10")],
//!     languages: vec![Language::Go],
//!     platforms: vec![TeePlatform::Tdx],
//!     modes: vec![VmKind::Secure, VmKind::Normal],
//!     trials: 3,
//!     seed: 1,
//!     priority: Priority::Normal,
//!     deadline_ms: None,
//!     device: None,
//! };
//! let receipt = sched.submit(spec).unwrap();
//! assert_eq!(receipt.jobs, 2);
//! sched.drain();
//! let status = sched.campaign_status(&receipt.id).unwrap();
//! assert!(status.is_done());
//! assert_eq!(status.completed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod campaign;
mod queue;
pub mod rest;
mod scheduler;

use confbench_types::{Result, RunRequest, RunResult};

pub use cache::{cache_key, CachedCell, ResultCache, DEFAULT_CACHE_CAPACITY};
pub use queue::BoundedQueue;
pub use scheduler::{Scheduler, SchedulerConfig, SubmitError};

/// The execution backend the scheduler dispatches jobs through.
///
/// The gateway implements this (`confbench` depends on this crate, not the
/// other way round, so the scheduler stays free of dispatch internals and
/// tests can plug in synthetic executors).
pub trait Executor: Send + Sync {
    /// Executes one run synchronously.
    ///
    /// # Errors
    ///
    /// Whatever the dispatch path surfaces — unknown function, no VM,
    /// deadline exceeded, workload failure.
    fn execute(&self, request: &RunRequest) -> Result<RunResult>;

    /// A stable fingerprint of the named function's *source* (e.g. a hash of
    /// the uploaded script), or `None` when the function is unknown.
    ///
    /// The fingerprint is folded into result-cache keys so editing a
    /// function's source invalidates exactly that function's cached cells.
    fn function_fingerprint(&self, name: &str) -> Option<String>;
}

//! The scheduler's REST surface.
//!
//! Mounted by the gateway next to its own routes (all under the canonical
//! `/v1` prefix — campaigns are new API, so no legacy aliases exist):
//!
//! | method | path                  | status | body |
//! |--------|-----------------------|--------|------|
//! | POST   | `/v1/campaigns`       | 202    | [`CampaignReceipt`](confbench_types::CampaignReceipt) |
//! | GET    | `/v1/campaigns/{id}`  | 200    | [`CampaignStatus`](confbench_types::CampaignStatus), partial while active |
//! | DELETE | `/v1/campaigns/{id}`  | 200    | post-cancellation [`CampaignStatus`](confbench_types::CampaignStatus) |
//! | GET    | `/v1/jobs/{id}`       | 200    | [`JobStatus`](confbench_types::JobStatus) |
//!
//! Error mapping follows the shared [`Error::rest_status`] table: 400 for a
//! malformed spec, 404 for unknown ids, and 429 — with a `Retry-After`
//! header derived from the gateway's backoff policy — when the bounded
//! queue cannot admit the campaign.

use std::sync::Arc;

use confbench_httpd::{Method, Response, Router};
use confbench_types::{CampaignId, CampaignSpec, Error, JobId};

use crate::scheduler::{Scheduler, SubmitError};

/// Registers the campaign and job routes on `router`.
pub fn add_routes(router: &mut Router, sched: Arc<Scheduler>) {
    let s = Arc::clone(&sched);
    router.add(Method::Post, "/v1/campaigns", move |req, _| {
        let spec: CampaignSpec = match req.body_json() {
            Ok(spec) => spec,
            Err(e) => return Response::error(400, format!("invalid campaign spec: {e}")),
        };
        match s.submit(spec) {
            Ok(receipt) => {
                let mut resp = Response::json(&receipt);
                resp.status = 202;
                resp
            }
            Err(e @ SubmitError::Invalid(_)) => {
                // 400 for malformed specs, 413 for well-formed-but-oversized
                // ones — the shared `rest_status` table decides.
                let err = Error::from(e);
                Response::error(err.rest_status(), err.to_string())
            }
            Err(e @ SubmitError::QueueFull { retry_after_secs, .. }) => {
                let mut resp = Response::error(429, Error::from(e).to_string());
                resp.headers.insert("retry-after".into(), retry_after_secs.to_string());
                resp
            }
        }
    });

    let s = Arc::clone(&sched);
    router.add(Method::Get, "/v1/campaigns/:id", move |_, params| {
        match s.campaign_status(&CampaignId(params["id"].clone())) {
            Some(status) => Response::json(&status),
            None => not_found("campaign", &params["id"]),
        }
    });

    let s = Arc::clone(&sched);
    router.add(Method::Delete, "/v1/campaigns/:id", move |_, params| {
        match s.cancel_campaign(&CampaignId(params["id"].clone())) {
            Some(status) => Response::json(&status),
            None => not_found("campaign", &params["id"]),
        }
    });

    let s = sched;
    router.add(Method::Get, "/v1/jobs/:id", move |_, params| {
        match s.job_status(&JobId(params["id"].clone())) {
            Some(status) => Response::json(&status),
            None => not_found("job", &params["id"]),
        }
    });
}

fn not_found(kind: &str, id: &str) -> Response {
    Response::error(404, format!("unknown {kind}: {id}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_httpd::Request;
    use confbench_types::{
        CampaignFunction, CampaignReceipt, CampaignStatus, JobStatus, Language, ManualClock,
        Priority, Result, RunRequest, RunResult, TeePlatform, VmKind,
    };

    use crate::{Executor, SchedulerConfig};

    struct Echo;
    impl Executor for Echo {
        fn execute(&self, req: &RunRequest) -> Result<RunResult> {
            let trial_ms = vec![2.0; req.trials as usize];
            Ok(RunResult {
                function: req.function.name.clone(),
                language: req.function.language,
                target: req.target,
                stats: RunResult::compute_stats(&trial_ms),
                trial_ms,
                trial_cycles: Vec::new(),
                perf: Default::default(),
                output: "ok".into(),
                trace: None,
            })
        }
        fn function_fingerprint(&self, _name: &str) -> Option<String> {
            Some("src".into())
        }
    }

    fn router(capacity: usize) -> (Router, Arc<Scheduler>) {
        let clock = Arc::new(ManualClock::new());
        let config = SchedulerConfig {
            queue_capacity: capacity,
            retry_after_secs: 7,
            ..SchedulerConfig::default()
        };
        let sched = Arc::new(Scheduler::new(Arc::new(Echo), clock, config));
        let mut router = Router::new();
        add_routes(&mut router, Arc::clone(&sched));
        (router, sched)
    }

    fn spec() -> CampaignSpec {
        CampaignSpec {
            functions: vec![CampaignFunction::new("fib").arg("10")],
            languages: vec![Language::Go],
            platforms: vec![TeePlatform::Tdx],
            modes: vec![VmKind::Secure],
            trials: 2,
            seed: 0,
            priority: Priority::Normal,
            deadline_ms: None,
            device: None,
        }
    }

    #[test]
    fn submit_poll_and_job_lookup() {
        let (router, sched) = router(16);
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&spec()));
        assert_eq!(resp.status, 202);
        let receipt: CampaignReceipt = resp.body_json().unwrap();
        assert_eq!(receipt.jobs, 1);

        sched.drain();
        let resp =
            router.dispatch(&Request::new(Method::Get, &format!("/v1/campaigns/{}", receipt.id)));
        assert_eq!(resp.status, 200);
        let status: CampaignStatus = resp.body_json().unwrap();
        assert_eq!(status.completed, 1);

        let job = &status.cells[0].job;
        let resp = router.dispatch(&Request::new(Method::Get, &format!("/v1/jobs/{job}")));
        assert_eq!(resp.status, 200);
        let job: JobStatus = resp.body_json().unwrap();
        assert!(job.summary.is_some());
    }

    #[test]
    fn unknown_ids_are_404() {
        let (router, _sched) = router(16);
        assert_eq!(router.dispatch(&Request::new(Method::Get, "/v1/campaigns/cX")).status, 404);
        assert_eq!(router.dispatch(&Request::new(Method::Delete, "/v1/campaigns/cX")).status, 404);
        assert_eq!(router.dispatch(&Request::new(Method::Get, "/v1/jobs/cX-j0")).status, 404);
    }

    #[test]
    fn malformed_and_invalid_specs_are_400() {
        let (router, _sched) = router(16);
        let mut req = Request::new(Method::Post, "/v1/campaigns");
        req.body = b"not json".to_vec();
        assert_eq!(router.dispatch(&req).status, 400);

        let mut bad = spec();
        bad.trials = 0;
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&bad));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("trials"));
    }

    #[test]
    fn queue_full_maps_to_429_with_retry_after() {
        let (router, _sched) = router(1);
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&spec()));
        assert_eq!(resp.status, 202);
        let mut big = spec();
        big.languages = vec![Language::Go, Language::Lua];
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&big));
        assert_eq!(resp.status, 429);
        assert_eq!(resp.headers.get("retry-after").map(String::as_str), Some("7"));
        assert!(String::from_utf8_lossy(&resp.body).contains("queue full"));
    }

    #[test]
    fn adversarial_spec_is_refused_with_413_before_expansion() {
        use std::time::Instant;

        // 10k × 10k × 1 × 1 would be 100M cells (at hundreds of bytes each,
        // a queue-time OOM). Admission must refuse it by arithmetic alone.
        let mut huge = spec();
        huge.functions = (0..10_000).map(|i| CampaignFunction::new(format!("f{i}"))).collect();
        huge.languages = vec![Language::Go; 10_000];
        let (router, sched) = router(16);
        let started = Instant::now();
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&huge));
        assert_eq!(resp.status, 413);
        assert!(String::from_utf8_lossy(&resp.body).contains("payload too large"));
        assert!(started.elapsed().as_secs() < 5, "rejection must not expand the matrix");

        // An oversized single axis is likewise a 413.
        let mut long_axis = spec();
        long_axis.languages = vec![Language::Go; confbench_types::MAX_AXIS_LEN + 1];
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&long_axis));
        assert_eq!(resp.status, 413);

        // Nothing was enqueued by either refusal.
        assert_eq!(sched.metrics().counter_value("sched_jobs_enqueued_total").unwrap_or(0), 0);
    }

    #[test]
    fn configured_max_cells_tightens_admission() {
        let clock = Arc::new(ManualClock::new());
        let config = SchedulerConfig { max_cells: 1, ..SchedulerConfig::default() };
        let sched = Scheduler::new(Arc::new(Echo), clock, config);
        let mut two_cells = spec();
        two_cells.languages = vec![Language::Go, Language::Lua];
        let err = sched.submit(two_cells).unwrap_err();
        assert_eq!(Error::from(err).rest_status(), 413);
        assert!(sched.submit(spec()).is_ok(), "within the tightened cap");
    }

    #[test]
    fn fuzz_sweep_campaign_spec_json() {
        let (router, _sched) = router(256);
        let corpus: Vec<Vec<u8>> = vec![
            serde_json::to_vec(&spec()).unwrap(),
            br#"{"functions":[{"name":"fib","args":["10"]}],"languages":["go"],
                 "platforms":["tdx"],"modes":["secure"],"trials":2,
                 "deadline_ms":50,"priority":"high","device":"gpu"}"#
                .to_vec(),
        ];
        let mut mutator = confbench_crypto::fuzz::Mutator::new(0xC0FF_BE7C_0003);
        let iters = confbench_crypto::fuzz::sweep_iters();
        for base in &corpus {
            for _ in 0..iters {
                let mut req = Request::new(Method::Post, "/v1/campaigns");
                req.body = mutator.mutate(base);
                // Property: admission never panics and always answers with a
                // status from the documented table — 202 accepted, 400/413
                // refused, 429 full. Anything else (500, an Err bubbling as
                // a panic) is a bug in spec decoding or validation.
                let resp = router.dispatch(&req);
                assert!(
                    matches!(resp.status, 202 | 400 | 413 | 429),
                    "unexpected status {} for mutant {:?}",
                    resp.status,
                    String::from_utf8_lossy(&req.body)
                );
            }
        }
    }

    #[test]
    fn cancel_over_rest() {
        let (router, sched) = router(16);
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/campaigns").json(&spec()));
        let receipt: CampaignReceipt = resp.body_json().unwrap();
        let resp = router
            .dispatch(&Request::new(Method::Delete, &format!("/v1/campaigns/{}", receipt.id)));
        assert_eq!(resp.status, 200);
        let status: CampaignStatus = resp.body_json().unwrap();
        assert_eq!(status.cancelled, 1);
        sched.drain();
        let status = sched.campaign_status(&receipt.id).unwrap();
        assert_eq!(status.completed, 0, "cancelled job never ran");
    }
}

//! The TEE fault taxonomy: which substrate mechanism failed, and whether
//! the failure is worth retrying.
//!
//! These types are the *vocabulary* of fault injection; the engine that
//! draws faults from a seeded plan lives in `confbench-vmm::fault`. They
//! sit here because [`Error`](crate::Error) carries them across the
//! gateway/host boundary and every layer (pool health, supervisor, REST
//! status mapping, metrics labels) must agree on the names.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::platform::TeePlatform;

/// A TEE-substrate interface at which a fault can be injected (and at which
/// real confidential-VM deployments actually fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum TeeMechanism {
    /// A TDX SEAMCALL/TDCALL returned an error status (TD-fatal machine
    /// checks surface here).
    Seamcall,
    /// TDX secure-EPT page-accept (`TDG.MEM.PAGE.ACCEPT`) failed.
    SeptAccept,
    /// SEV-SNP reverse-map-table validation (`PVALIDATE`/`RMPUPDATE`)
    /// failed.
    RmpValidate,
    /// An SEV-SNP GHCB exit returned an error to the guest.
    GhcbExit,
    /// The AMD secure processor rejected or dropped a mailbox request
    /// (busy/throttled responses are the classic transient case).
    AmdSpRequest,
    /// An ARM CCA RMI/RSI command to the RMM failed.
    RmmCommand,
    /// Bounce-buffer (swiotlb) slot allocation failed under pressure.
    SwiotlbAlloc,
    /// Reading attestation evidence from the guest device
    /// (configfs-tsm-style) failed.
    AttestRead,
    /// The TDISP `LOCK_INTERFACE_REQUEST` handshake with a TEE-IO device
    /// failed (device-security-manager rejected the lock, or the secure
    /// SPDM session dropped).
    TdispLock,
    /// Fetching or verifying a TEE-IO device measurement report over the
    /// SPDM session failed.
    DeviceAttest,
    /// A direct DMA transfer between private memory and an attested device
    /// faulted (IOMMU/TDX-Connect TLP rejection).
    DeviceDma,
    /// Exporting migration state from the source VM failed (dirty-page
    /// read-out, `TDH.EXPORT.*`-style calls, SNP `SEND_UPDATE` requests).
    MigrationExport,
    /// Importing migration state into the target VM failed
    /// (`TDH.IMPORT.*`-style calls, SNP `RECEIVE_UPDATE`, granule re-map).
    MigrationImport,
}

impl TeeMechanism {
    /// Every mechanism, for exhaustive sweeps.
    pub const ALL: [TeeMechanism; 13] = [
        TeeMechanism::Seamcall,
        TeeMechanism::SeptAccept,
        TeeMechanism::RmpValidate,
        TeeMechanism::GhcbExit,
        TeeMechanism::AmdSpRequest,
        TeeMechanism::RmmCommand,
        TeeMechanism::SwiotlbAlloc,
        TeeMechanism::AttestRead,
        TeeMechanism::TdispLock,
        TeeMechanism::DeviceAttest,
        TeeMechanism::DeviceDma,
        TeeMechanism::MigrationExport,
        TeeMechanism::MigrationImport,
    ];

    /// Stable label (kebab-case, matches the serde encoding) used in metric
    /// names and span attributes.
    pub fn as_str(self) -> &'static str {
        match self {
            TeeMechanism::Seamcall => "seamcall",
            TeeMechanism::SeptAccept => "sept-accept",
            TeeMechanism::RmpValidate => "rmp-validate",
            TeeMechanism::GhcbExit => "ghcb-exit",
            TeeMechanism::AmdSpRequest => "amd-sp-request",
            TeeMechanism::RmmCommand => "rmm-command",
            TeeMechanism::SwiotlbAlloc => "swiotlb-alloc",
            TeeMechanism::AttestRead => "attest-read",
            TeeMechanism::TdispLock => "tdisp-lock",
            TeeMechanism::DeviceAttest => "device-attest",
            TeeMechanism::DeviceDma => "device-dma",
            TeeMechanism::MigrationExport => "migration-export",
            TeeMechanism::MigrationImport => "migration-import",
        }
    }

    /// The world-switch mechanism of `platform` (what a generic "exit
    /// failed" fault is attributed to).
    pub fn exit_for(platform: TeePlatform) -> TeeMechanism {
        match platform {
            TeePlatform::Tdx => TeeMechanism::Seamcall,
            TeePlatform::SevSnp => TeeMechanism::GhcbExit,
            TeePlatform::Cca => TeeMechanism::RmmCommand,
        }
    }

    /// The fresh-page acceptance mechanism of `platform`.
    pub fn page_for(platform: TeePlatform) -> TeeMechanism {
        match platform {
            TeePlatform::Tdx => TeeMechanism::SeptAccept,
            TeePlatform::SevSnp => TeeMechanism::RmpValidate,
            TeePlatform::Cca => TeeMechanism::RmmCommand,
        }
    }

    /// The launch/boot mechanism of `platform` (measured page adds go
    /// through the module / secure processor / RMM).
    pub fn launch_for(platform: TeePlatform) -> TeeMechanism {
        match platform {
            TeePlatform::Tdx => TeeMechanism::Seamcall,
            TeePlatform::SevSnp => TeeMechanism::AmdSpRequest,
            TeePlatform::Cca => TeeMechanism::RmmCommand,
        }
    }
}

impl fmt::Display for TeeMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a TEE fault is worth retrying on the same VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum FaultClass {
    /// The operation may succeed if simply retried (SP busy, transient
    /// validation race). The supervisor retries in place.
    Transient,
    /// The VM's TEE context is wedged (TD-fatal, RMP corruption). The only
    /// recovery is tearing the VM down and launching a fresh one.
    Fatal,
}

impl FaultClass {
    /// Stable label for metric names and span attributes.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::Fatal => "fatal",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_kebab_case_and_match_serde() {
        for m in TeeMechanism::ALL {
            let json = serde_json::to_string(&m).unwrap();
            assert_eq!(json, format!("\"{}\"", m.as_str()));
            let back: TeeMechanism = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
        assert_eq!(serde_json::to_string(&FaultClass::Fatal).unwrap(), "\"fatal\"");
    }

    #[test]
    fn per_platform_mechanism_attribution() {
        assert_eq!(TeeMechanism::exit_for(TeePlatform::Tdx), TeeMechanism::Seamcall);
        assert_eq!(TeeMechanism::page_for(TeePlatform::SevSnp), TeeMechanism::RmpValidate);
        assert_eq!(TeeMechanism::launch_for(TeePlatform::SevSnp), TeeMechanism::AmdSpRequest);
        assert_eq!(TeeMechanism::launch_for(TeePlatform::Cca), TeeMechanism::RmmCommand);
    }
}

//! Abstract operation traces.
//!
//! Workloads in ConfBench-RS do real computation *and* record what they did
//! as a stream of coarse, batched [`Op`]s. A simulated VM (crate
//! `confbench-vmm`) replays the trace against a platform cost model to charge
//! virtual cycles; a language runtime (crate `confbench-faasrt`) transforms
//! the trace according to its runtime profile before execution.

use serde::{Deserialize, Serialize};

/// The class of a simulated system call.
///
/// Syscall classes matter because different TEEs charge very different exit
/// costs: on TDX each syscall that reaches the host costs a TDCALL/SEAMCALL
/// round-trip; on SEV-SNP a GHCB exit; inside a CCA realm an RSI call plus the
/// RMM interposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SyscallKind {
    /// File open/close/stat — metadata only.
    FileMeta,
    /// Read from a file descriptor (payload accounted via `IoRead`).
    FileRead,
    /// Write to a file descriptor (payload accounted via `IoWrite`).
    FileWrite,
    /// Create/remove a directory entry.
    DirOp,
    /// Pipe read/write used by context-switch benchmarks.
    Pipe,
    /// Spawn a process (fork+exec).
    Spawn,
    /// Clock/gettime and other vDSO-ish calls.
    Time,
    /// Anything else.
    Other,
}

impl SyscallKind {
    /// Every syscall class.
    pub const ALL: [SyscallKind; 8] = [
        SyscallKind::FileMeta,
        SyscallKind::FileRead,
        SyscallKind::FileWrite,
        SyscallKind::DirOp,
        SyscallKind::Pipe,
        SyscallKind::Spawn,
        SyscallKind::Time,
        SyscallKind::Other,
    ];

    /// Whether the call must exit to the untrusted host (true for anything
    /// touching host-emulated devices), as opposed to being serviced inside
    /// the guest kernel.
    pub fn exits_to_host(self) -> bool {
        !matches!(self, SyscallKind::Time)
    }
}

/// One batched abstract operation recorded by a workload.
///
/// Counts are aggregated (e.g. `Cpu(1_000_000)` is one trace entry, not a
/// million), keeping traces small while preserving the information cost
/// models need. Memory operations carry a base address so the VM's cache
/// simulator can derive a deterministic access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Op {
    /// `n` integer ALU operations.
    Cpu(u64),
    /// `n` floating-point operations.
    Float(u64),
    /// Sequential read of `bytes` starting at virtual address `addr`.
    MemRead {
        /// Base virtual address of the access run.
        addr: u64,
        /// Number of bytes read.
        bytes: u64,
    },
    /// Sequential write of `bytes` starting at virtual address `addr`.
    MemWrite {
        /// Base virtual address of the access run.
        addr: u64,
        /// Number of bytes written.
        bytes: u64,
    },
    /// Heap allocation of `bytes` (TEE models charge page acceptance /
    /// integrity-metadata costs proportional to fresh pages touched).
    Alloc(u64),
    /// Heap release of `bytes`.
    Free(u64),
    /// `count` system calls of the given class.
    Syscall {
        /// The syscall class.
        kind: SyscallKind,
        /// How many calls.
        count: u64,
    },
    /// Device/file input of `bytes` (DMA path; TDX bounce-buffers this).
    IoRead(u64),
    /// Device/file output of `bytes` (DMA path; TDX bounce-buffers this).
    IoWrite(u64),
    /// A voluntary context switch (sleep/wake, pipe ping-pong).
    CtxSwitch(u64),
    /// Release `bytes` of pages to the host and fault them back in
    /// (balloon/`MADV_DONTNEED` churn — GC heap trimming). In a TEE each
    /// refaulted page must be re-accepted/re-validated.
    PageCycle(u64),
    /// Block for `ns` nanoseconds of host-side device latency (fsync,
    /// storage flush). Charged in *host* time: the FVP simulation
    /// multiplier does not apply, which is why device-bound workloads
    /// change character inside the simulator.
    DeviceWait(u64),
    /// `bytes` of log output written to the console device.
    Log(u64),
    /// DMA of `bytes` from guest memory *to* an attached accelerator
    /// (weights/activations upload). On a VM with an attested TDISP device
    /// this lands directly in device-private memory; otherwise it takes the
    /// swiotlb bounce path like ordinary device I/O.
    DevDmaIn(u64),
    /// DMA of `bytes` from an attached accelerator back to guest memory
    /// (results download). Path selection mirrors [`Op::DevDmaIn`].
    DevDmaOut(u64),
    /// `ns` nanoseconds of accelerator kernel execution (conv/dense/...).
    /// Charged in host time like [`Op::DeviceWait`] — the device runs at
    /// wall speed regardless of any CPU simulation multiplier.
    DevKernel(u64),
}

/// An append-only sequence of [`Op`]s with convenience recorders.
///
/// # Example
///
/// ```
/// use confbench_types::{OpTrace, SyscallKind};
///
/// let mut t = OpTrace::new();
/// t.cpu(500);
/// t.io_write(1 << 20);
/// t.syscall(SyscallKind::FileWrite, 4);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.total_io_bytes(), 1 << 20);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpTrace {
    ops: Vec<Op>,
    next_addr: u64,
}

impl OpTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        OpTrace { ops: Vec::new(), next_addr: 0x1000_0000 }
    }

    /// Appends a raw operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Records `n` integer operations.
    pub fn cpu(&mut self, n: u64) {
        self.ops.push(Op::Cpu(n));
    }

    /// Records `n` floating-point operations.
    pub fn float(&mut self, n: u64) {
        self.ops.push(Op::Float(n));
    }

    /// Records a sequential read of `bytes` at an automatically assigned
    /// address, returning the address so related accesses can reuse it.
    pub fn mem_read(&mut self, bytes: u64) -> u64 {
        let addr = self.bump_addr(bytes);
        self.ops.push(Op::MemRead { addr, bytes });
        addr
    }

    /// Records a sequential write of `bytes` at an automatically assigned
    /// address, returning the address.
    pub fn mem_write(&mut self, bytes: u64) -> u64 {
        let addr = self.bump_addr(bytes);
        self.ops.push(Op::MemWrite { addr, bytes });
        addr
    }

    /// Records a read at an explicit address (for re-touching a prior
    /// allocation so the cache model sees reuse).
    pub fn mem_read_at(&mut self, addr: u64, bytes: u64) {
        self.ops.push(Op::MemRead { addr, bytes });
    }

    /// Records a write at an explicit address.
    pub fn mem_write_at(&mut self, addr: u64, bytes: u64) {
        self.ops.push(Op::MemWrite { addr, bytes });
    }

    /// Records a heap allocation.
    pub fn alloc(&mut self, bytes: u64) {
        self.ops.push(Op::Alloc(bytes));
    }

    /// Records a heap release.
    pub fn free(&mut self, bytes: u64) {
        self.ops.push(Op::Free(bytes));
    }

    /// Records `count` syscalls of class `kind`.
    pub fn syscall(&mut self, kind: SyscallKind, count: u64) {
        self.ops.push(Op::Syscall { kind, count });
    }

    /// Records device input of `bytes`.
    pub fn io_read(&mut self, bytes: u64) {
        self.ops.push(Op::IoRead(bytes));
    }

    /// Records device output of `bytes`.
    pub fn io_write(&mut self, bytes: u64) {
        self.ops.push(Op::IoWrite(bytes));
    }

    /// Records `n` voluntary context switches.
    pub fn ctx_switch(&mut self, n: u64) {
        self.ops.push(Op::CtxSwitch(n));
    }

    /// Records a release-and-refault cycle of `bytes` of pages.
    pub fn page_cycle(&mut self, bytes: u64) {
        self.ops.push(Op::PageCycle(bytes));
    }

    /// Records `ns` nanoseconds of host-side device wait.
    pub fn device_wait(&mut self, ns: u64) {
        self.ops.push(Op::DeviceWait(ns));
    }

    /// Records `bytes` of console logging.
    pub fn log(&mut self, bytes: u64) {
        self.ops.push(Op::Log(bytes));
    }

    /// Records a DMA upload of `bytes` to an attached accelerator.
    pub fn dev_dma_in(&mut self, bytes: u64) {
        self.ops.push(Op::DevDmaIn(bytes));
    }

    /// Records a DMA download of `bytes` from an attached accelerator.
    pub fn dev_dma_out(&mut self, bytes: u64) {
        self.ops.push(Op::DevDmaOut(bytes));
    }

    /// Records `ns` nanoseconds of accelerator kernel execution.
    pub fn dev_kernel(&mut self, ns: u64) {
        self.ops.push(Op::DevKernel(ns));
    }

    /// Number of trace entries (batched, not expanded).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the recorded operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Total integer operations recorded.
    pub fn total_cpu_ops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Cpu(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total floating-point operations recorded.
    pub fn total_float_ops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Float(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes moved through the device/DMA path (reads + writes).
    pub fn total_io_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::IoRead(n) | Op::IoWrite(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes moved over the accelerator DMA path (uploads +
    /// downloads).
    pub fn total_dev_dma_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::DevDmaIn(n) | Op::DevDmaOut(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes allocated.
    pub fn total_alloc_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Alloc(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total syscall count across all classes.
    pub fn total_syscalls(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Syscall { count, .. } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Merges another trace onto the end of this one.
    pub fn extend_from(&mut self, other: &OpTrace) {
        self.ops.extend_from_slice(&other.ops);
    }

    fn bump_addr(&mut self, bytes: u64) -> u64 {
        let addr = self.next_addr;
        // Keep distinct logical buffers on distinct 4 KiB pages so the cache
        // model does not alias unrelated data.
        self.next_addr = (self.next_addr + bytes + 0xfff) & !0xfff;
        addr
    }
}

impl<'a> IntoIterator for &'a OpTrace {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl Extend<Op> for OpTrace {
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<Op> for OpTrace {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        let mut t = OpTrace::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorders_accumulate_totals() {
        let mut t = OpTrace::new();
        t.cpu(100);
        t.cpu(50);
        t.float(7);
        t.io_read(10);
        t.io_write(20);
        t.alloc(4096);
        t.syscall(SyscallKind::Pipe, 3);
        t.syscall(SyscallKind::Spawn, 2);
        assert_eq!(t.total_cpu_ops(), 150);
        assert_eq!(t.total_float_ops(), 7);
        assert_eq!(t.total_io_bytes(), 30);
        assert_eq!(t.total_alloc_bytes(), 4096);
        assert_eq!(t.total_syscalls(), 5);
    }

    #[test]
    fn addresses_do_not_alias_pages() {
        let mut t = OpTrace::new();
        let a = t.mem_write(100);
        let b = t.mem_read(100);
        assert_ne!(a & !0xfff, b & !0xfff, "buffers must land on distinct pages");
    }

    #[test]
    fn explicit_address_reuse() {
        let mut t = OpTrace::new();
        let a = t.mem_write(64);
        t.mem_read_at(a, 64);
        let ops: Vec<_> = t.iter().collect();
        match (ops[0], ops[1]) {
            (Op::MemWrite { addr: w, .. }, Op::MemRead { addr: r, .. }) => assert_eq!(w, r),
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn extend_and_collect() {
        let mut a = OpTrace::new();
        a.cpu(1);
        let b: OpTrace = a.iter().copied().collect();
        assert_eq!(b.total_cpu_ops(), 1);
        let mut c = OpTrace::new();
        c.extend_from(&a);
        c.extend_from(&b);
        assert_eq!(c.total_cpu_ops(), 2);
    }

    #[test]
    fn time_syscall_stays_in_guest() {
        assert!(!SyscallKind::Time.exits_to_host());
        assert!(SyscallKind::FileWrite.exits_to_host());
    }
}

//! Deterministic virtual time, plus the injectable wall-clock abstraction.
//!
//! Every simulated execution in ConfBench-RS is charged in [`Cycles`] against
//! a [`SimClock`], never in wall-clock time, so all figures regenerate
//! bit-identically from a seed.
//!
//! Infrastructure components (circuit breakers, trace spans) that need a
//! *wall* clock take it through the [`Clock`] trait instead of calling
//! [`std::time::SystemTime`] directly, so tests drive time with
//! [`ManualClock`] and stay deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// A count of virtual CPU cycles.
///
/// `Cycles` is an additive quantity: it supports `+`, `-`, scaling by an
/// integer factor, and summation. Conversion to time requires the host
/// frequency (see [`Cycles::as_nanos`]).
///
/// # Example
///
/// ```
/// use confbench_types::Cycles;
///
/// let c = Cycles::new(3_200) * 2;
/// assert_eq!(c.get(), 6_400);
/// // At 3.2 GHz, 3 200 cycles is one microsecond.
/// assert_eq!(Cycles::new(3_200).as_nanos(3.2), 1_000.0);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to nanoseconds at `freq_ghz` gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` is not strictly positive.
    pub fn as_nanos(self, freq_ghz: f64) -> f64 {
        assert!(freq_ghz > 0.0, "frequency must be positive, got {freq_ghz}");
        self.0 as f64 / freq_ghz
    }

    /// Converts to milliseconds at `freq_ghz` gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` is not strictly positive.
    pub fn as_millis(self, freq_ghz: f64) -> f64 {
        self.as_nanos(freq_ghz) / 1e6
    }

    /// Saturating addition — virtual clocks never wrap.
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Scales the cycle count by a floating-point factor, rounding to the
    /// nearest cycle. Used by platform cost models (e.g. the FVP simulation
    /// multiplier).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Cycles {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale factor {factor}");
        Cycles((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a.saturating_add(b))
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

/// A monotonically advancing virtual clock.
///
/// A `SimClock` belongs to one simulated vCPU/VM; components advance it as
/// they charge costs, and measurements are deltas between [`SimClock::now`]
/// readings.
///
/// # Example
///
/// ```
/// use confbench_types::{Cycles, SimClock};
///
/// let mut clock = SimClock::new();
/// let t0 = clock.now();
/// clock.advance(Cycles::new(500));
/// assert_eq!((clock.now() - t0).get(), 500);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Cycles,
}

impl SimClock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current virtual timestamp.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `delta`, saturating at `u64::MAX`.
    pub fn advance(&mut self, delta: Cycles) {
        self.now = self.now.saturating_add(delta);
    }
}

/// Monotonic-enough millisecond time source for infrastructure timing
/// (circuit cooldowns, trace-span timestamps).
///
/// Injected wherever wall time is read so tests drive it with
/// [`ManualClock`] instead of sleeping. Only differences between readings
/// are meaningful.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;
}

/// Wall-clock [`Clock`] (the production default).
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
    }
}

/// Hand-driven [`Clock`] for deterministic tests.
///
/// # Example
///
/// ```
/// use confbench_types::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// clock.advance(250);
/// assert_eq!(clock.now_ms(), 250);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// Starts at time zero.
    pub fn new() -> Self {
        ManualClock { ms: AtomicU64::new(0) }
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = Cycles::new(10);
        let b = Cycles::new(32);
        assert_eq!((a + b).get(), 42);
        assert_eq!((b - a).get(), 22);
        assert_eq!((a * 4).get(), 40);
        let total: Cycles = [a, b, a].into_iter().sum();
        assert_eq!(total.get(), 52);
    }

    #[test]
    fn nanos_conversion() {
        // 3.0 GHz: 3 cycles per ns.
        assert_eq!(Cycles::new(3_000_000_000).as_nanos(3.0), 1e9);
        assert!((Cycles::new(3_000_000_000).as_millis(3.0) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = Cycles::new(1).as_nanos(0.0);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Cycles::new(10).scale(1.26).get(), 13);
        assert_eq!(Cycles::new(10).scale(0.0).get(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn negative_scale_panics() {
        let _ = Cycles::new(1).scale(-1.0);
    }

    #[test]
    fn clock_is_monotone_and_saturates() {
        let mut c = SimClock::new();
        c.advance(Cycles::new(u64::MAX));
        c.advance(Cycles::new(100));
        assert_eq!(c.now().get(), u64::MAX);
    }

    #[test]
    fn manual_clock_advances_deterministically() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(10);
        clock.advance(32);
        assert_eq!(clock.now_ms(), 42);
    }

    #[test]
    fn system_clock_is_sane() {
        // Two readings a moment apart must not go backwards.
        let clock = SystemClock;
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}

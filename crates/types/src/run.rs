//! Wire types for submitting workloads and returning results.

use serde::{Deserialize, Serialize};

use crate::{Cycles, Language, VmTarget};

/// The broad class of a workload (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WorkloadKind {
    /// A FaaS function executed through a language runtime.
    Faas,
    /// A classic workload: ML inference, DBMS stress, OS microbenchmarks.
    Classic,
}

/// A function registered with the ConfBench gateway.
///
/// In the real tool users upload function source files per language; here the
/// spec names a workload from the built-in suite plus its arguments. The
/// gateway keeps a database of these (paper §III-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Unique function name, e.g. `"cpustress"`.
    pub name: String,
    /// Language the function is implemented in.
    pub language: Language,
    /// Positional string arguments passed to the function.
    #[serde(default)]
    pub args: Vec<String>,
}

impl FunctionSpec {
    /// Creates a spec with no arguments.
    pub fn new(name: impl Into<String>, language: Language) -> Self {
        FunctionSpec { name: name.into(), language, args: Vec::new() }
    }

    /// Adds an argument, builder-style.
    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }
}

/// A request to execute a function on a given VM target.
///
/// This is the JSON body a user POSTs to the gateway's `/run` endpoint
/// (paper Fig. 2, step 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRequest {
    /// What to run.
    pub function: FunctionSpec,
    /// Where to run it (platform + secure/normal).
    pub target: VmTarget,
    /// How many independent trials to execute (the paper uses 10).
    #[serde(default = "default_trials")]
    pub trials: u32,
    /// Deterministic seed for the simulated execution.
    #[serde(default)]
    pub seed: u64,
    /// Optional end-to-end budget in milliseconds. The gateway stops
    /// retrying and bounds remote transport timeouts so the caller gets an
    /// answer (or a 504) within this window. `None` means the gateway's
    /// defaults apply.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

fn default_trials() -> u32 {
    1
}

impl RunRequest {
    /// Creates a single-trial request with seed 0 and no deadline.
    pub fn new(function: FunctionSpec, target: VmTarget) -> Self {
        RunRequest { function, target, trials: 1, seed: 0, deadline_ms: None }
    }

    /// Sets the trial count, builder-style.
    pub fn trials(mut self, n: u32) -> Self {
        self.trials = n;
        self
    }

    /// Sets the seed, builder-style.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the end-to-end deadline in milliseconds, builder-style.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }
}

/// Performance counters piggybacked with a run's output (paper §III-B:
/// ConfBench invokes `perf stat` on dispatch and returns the metrics with the
/// result).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Retired instructions (abstract ops in the simulation).
    pub instructions: u64,
    /// Elapsed virtual cycles.
    pub cycles: u64,
    /// Cache references observed by the cache model.
    pub cache_references: u64,
    /// Cache misses observed by the cache model.
    pub cache_misses: u64,
    /// VM exits (TDCALLs / GHCB exits / RSI calls depending on platform).
    pub vm_exits: u64,
    /// Guest page faults taken (stage-2 / nested faults included).
    pub page_faults: u64,
    /// Whether the numbers came from the perf-counter path (`true`) or the
    /// custom-script fallback used where counters are unavailable, e.g. CCA
    /// realms (`false`).
    pub from_hw_counters: bool,
}

impl PerfReport {
    /// Cache miss ratio in `[0, 1]`, or 0 when no references were recorded.
    pub fn miss_ratio(&self) -> f64 {
        if self.cache_references == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_references as f64
        }
    }
}

/// Summary statistics over a run's trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Mean wall-clock milliseconds across trials.
    pub mean_ms: f64,
    /// Minimum trial time in milliseconds.
    pub min_ms: f64,
    /// Maximum trial time in milliseconds.
    pub max_ms: f64,
    /// Sample standard deviation in milliseconds (0 for a single trial).
    pub stddev_ms: f64,
}

/// The result of executing a [`RunRequest`], returned to the user by the
/// gateway (paper Fig. 2, step 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Echo of the executed function name.
    pub function: String,
    /// Echo of the language.
    pub language: Language,
    /// Echo of the target.
    pub target: VmTarget,
    /// Per-trial wall-clock times in milliseconds (virtual time).
    pub trial_ms: Vec<f64>,
    /// Per-trial elapsed cycles.
    pub trial_cycles: Vec<Cycles>,
    /// Aggregate statistics over `trial_ms`.
    pub stats: TrialStats,
    /// Perf counters from the *last* trial (matching `perf stat` semantics of
    /// one report per invocation).
    pub perf: PerfReport,
    /// Function output (workload-specific, used to validate correctness).
    pub output: String,
}

impl RunResult {
    /// Computes [`TrialStats`] from the recorded trial times.
    ///
    /// # Panics
    ///
    /// Panics if `trial_ms` is empty.
    pub fn compute_stats(trial_ms: &[f64]) -> TrialStats {
        assert!(!trial_ms.is_empty(), "at least one trial is required");
        let n = trial_ms.len() as f64;
        let mean = trial_ms.iter().sum::<f64>() / n;
        let min = trial_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let max = trial_ms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = if trial_ms.len() > 1 {
            trial_ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        TrialStats { mean_ms: mean, min_ms: min, max_ms: max, stddev_ms: var.sqrt() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TeePlatform;

    #[test]
    fn builder_chains() {
        let spec = FunctionSpec::new("factors", Language::Go).arg("1234567");
        let req = RunRequest::new(spec, VmTarget::secure(TeePlatform::Tdx)).trials(10).seed(42);
        assert_eq!(req.trials, 10);
        assert_eq!(req.seed, 42);
        assert_eq!(req.function.args, vec!["1234567"]);
    }

    #[test]
    fn request_json_roundtrip() {
        let req = RunRequest::new(
            FunctionSpec::new("fib", Language::Wasm),
            VmTarget::normal(TeePlatform::Cca),
        );
        let json = serde_json::to_string(&req).unwrap();
        let back: RunRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn trials_default_when_absent() {
        let json = r#"{"function":{"name":"fib","language":"go"},
                       "target":{"platform":"tdx","kind":"secure"}}"#;
        let req: RunRequest = serde_json::from_str(json).unwrap();
        assert_eq!(req.trials, 1);
        assert_eq!(req.seed, 0);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn deadline_roundtrips_and_defaults() {
        let req = RunRequest::new(
            FunctionSpec::new("fib", Language::Wasm),
            VmTarget::secure(TeePlatform::Tdx),
        )
        .deadline_ms(250);
        assert_eq!(req.deadline_ms, Some(250));
        let json = serde_json::to_string(&req).unwrap();
        let back: RunRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.deadline_ms, Some(250));
    }

    #[test]
    fn stats_single_trial_has_zero_stddev() {
        let s = RunResult::compute_stats(&[5.0]);
        assert_eq!(s.mean_ms, 5.0);
        assert_eq!(s.stddev_ms, 0.0);
        assert_eq!(s.min_ms, 5.0);
        assert_eq!(s.max_ms, 5.0);
    }

    #[test]
    fn stats_known_values() {
        let s = RunResult::compute_stats(&[2.0, 4.0, 6.0]);
        assert!((s.mean_ms - 4.0).abs() < 1e-12);
        assert!((s.stddev_ms - 2.0).abs() < 1e-12);
        assert_eq!(s.min_ms, 2.0);
        assert_eq!(s.max_ms, 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn stats_empty_panics() {
        let _ = RunResult::compute_stats(&[]);
    }

    #[test]
    fn miss_ratio_handles_zero_refs() {
        let p = PerfReport::default();
        assert_eq!(p.miss_ratio(), 0.0);
        let p = PerfReport { cache_references: 10, cache_misses: 5, ..Default::default() };
        assert_eq!(p.miss_ratio(), 0.5);
    }
}

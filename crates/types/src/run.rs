//! Wire types for submitting workloads and returning results.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Cycles, DeviceKind, Language, TraceSpan, VmTarget};

/// The broad class of a workload (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WorkloadKind {
    /// A FaaS function executed through a language runtime.
    Faas,
    /// A classic workload: ML inference, DBMS stress, OS microbenchmarks.
    Classic,
}

/// A function registered with the ConfBench gateway.
///
/// In the real tool users upload function source files per language; here the
/// spec names a workload from the built-in suite plus its arguments. The
/// gateway keeps a database of these (paper §III-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Unique function name, e.g. `"cpustress"`.
    pub name: String,
    /// Language the function is implemented in.
    pub language: Language,
    /// Positional string arguments passed to the function.
    #[serde(default)]
    pub args: Vec<String>,
}

impl FunctionSpec {
    /// Creates a spec with no arguments.
    pub fn new(name: impl Into<String>, language: Language) -> Self {
        FunctionSpec { name: name.into(), language, args: Vec::new() }
    }

    /// Adds an argument, builder-style.
    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }
}

/// A request to execute a function on a given VM target.
///
/// This is the JSON body a user POSTs to the gateway's `/run` endpoint
/// (paper Fig. 2, step 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRequest {
    /// What to run.
    pub function: FunctionSpec,
    /// Where to run it (platform + secure/normal).
    pub target: VmTarget,
    /// How many independent trials to execute (the paper uses 10).
    #[serde(default = "default_trials")]
    pub trials: u32,
    /// Deterministic seed for the simulated execution.
    #[serde(default)]
    pub seed: u64,
    /// Optional end-to-end budget in milliseconds. The gateway stops
    /// retrying and bounds remote transport timeouts so the caller gets an
    /// answer (or a 504) within this window. `None` means the gateway's
    /// defaults apply.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Optional attestation-session token (from `POST /v1/attest/sessions`).
    /// When the named session is live the gateway skips hot-path
    /// verification of the target platform; when it has expired or been
    /// invalidated the gateway re-verifies through its session cache before
    /// dispatching. Unknown ids are rejected as invalid requests.
    #[serde(default)]
    pub attest_session: Option<String>,
    /// Optional confidential passthrough device to attach to the VM. The
    /// host locks the device interface (TDISP), attests it through the
    /// gateway's verification cache, and only then enables direct DMA to
    /// private memory; absent means no device (and any device-offload ops
    /// in the workload fall back to the bounce path).
    #[serde(default)]
    pub device: Option<DeviceKind>,
}

fn default_trials() -> u32 {
    1
}

/// Typed rejection from [`RunRequestBuilder::build`] (and from the
/// gateway's entry validation of raw JSON requests).
///
/// Both conditions used to be accepted silently and fail — or spin — deep in
/// the dispatch path; now they are rejected at the API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidRunRequest {
    /// `trials == 0`: there is nothing to measure.
    ZeroTrials,
    /// `deadline_ms == Some(0)`: the budget is already exhausted.
    ZeroDeadline,
}

impl fmt::Display for InvalidRunRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidRunRequest::ZeroTrials => {
                write!(f, "trials must be at least 1 (got 0)")
            }
            InvalidRunRequest::ZeroDeadline => {
                write!(f, "deadline_ms must be positive when set (got 0)")
            }
        }
    }
}

impl std::error::Error for InvalidRunRequest {}

impl From<InvalidRunRequest> for crate::Error {
    fn from(e: InvalidRunRequest) -> Self {
        crate::Error::InvalidRequest(e.to_string())
    }
}

/// Validating builder for [`RunRequest`] (see [`RunRequest::builder`]).
#[derive(Debug, Clone)]
pub struct RunRequestBuilder {
    request: RunRequest,
}

impl RunRequestBuilder {
    /// Sets the trial count (validated at [`build`](Self::build) time).
    pub fn trials(mut self, n: u32) -> Self {
        self.request.trials = n;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.request.seed = seed;
        self
    }

    /// Sets the end-to-end deadline in milliseconds (validated at
    /// [`build`](Self::build) time).
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.request.deadline_ms = Some(ms);
        self
    }

    /// Attaches an attestation-session token.
    pub fn attest_session(mut self, id: impl Into<String>) -> Self {
        self.request.attest_session = Some(id.into());
        self
    }

    /// Requests a confidential passthrough device.
    pub fn device(mut self, kind: DeviceKind) -> Self {
        self.request.device = Some(kind);
        self
    }

    /// Validates and returns the request.
    ///
    /// # Errors
    ///
    /// [`InvalidRunRequest::ZeroTrials`] when `trials == 0`;
    /// [`InvalidRunRequest::ZeroDeadline`] when a zero deadline was set.
    pub fn build(self) -> Result<RunRequest, InvalidRunRequest> {
        self.request.validate()?;
        Ok(self.request)
    }
}

impl RunRequest {
    /// Creates a single-trial request with seed 0 and no deadline.
    pub fn new(function: FunctionSpec, target: VmTarget) -> Self {
        RunRequest {
            function,
            target,
            trials: 1,
            seed: 0,
            deadline_ms: None,
            attest_session: None,
            device: None,
        }
    }

    /// Starts a validating builder (rejects `trials == 0` and a zero
    /// deadline at build time instead of deep in the gateway).
    ///
    /// # Example
    ///
    /// ```
    /// use confbench_types::{FunctionSpec, InvalidRunRequest, Language, RunRequest, TeePlatform,
    ///                       VmTarget};
    ///
    /// let spec = FunctionSpec::new("fib", Language::Go);
    /// let target = VmTarget::secure(TeePlatform::Tdx);
    /// let req = RunRequest::builder(spec.clone(), target).trials(10).build().unwrap();
    /// assert_eq!(req.trials, 10);
    /// let err = RunRequest::builder(spec, target).trials(0).build().unwrap_err();
    /// assert_eq!(err, InvalidRunRequest::ZeroTrials);
    /// ```
    pub fn builder(function: FunctionSpec, target: VmTarget) -> RunRequestBuilder {
        RunRequestBuilder { request: RunRequest::new(function, target) }
    }

    /// Checks the invariants the builder enforces — used by the gateway on
    /// requests that arrived as raw JSON and therefore bypassed the builder.
    ///
    /// # Errors
    ///
    /// As [`RunRequestBuilder::build`].
    pub fn validate(&self) -> Result<(), InvalidRunRequest> {
        if self.trials == 0 {
            return Err(InvalidRunRequest::ZeroTrials);
        }
        if self.deadline_ms == Some(0) {
            return Err(InvalidRunRequest::ZeroDeadline);
        }
        Ok(())
    }

    /// Sets the trial count, builder-style.
    pub fn trials(mut self, n: u32) -> Self {
        self.trials = n;
        self
    }

    /// Sets the seed, builder-style.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the end-to-end deadline in milliseconds, builder-style.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Attaches an attestation-session token, builder-style.
    pub fn attest_session(mut self, id: impl Into<String>) -> Self {
        self.attest_session = Some(id.into());
        self
    }

    /// Requests a confidential passthrough device, builder-style.
    pub fn device(mut self, kind: DeviceKind) -> Self {
        self.device = Some(kind);
        self
    }
}

/// Performance counters piggybacked with a run's output (paper §III-B:
/// ConfBench invokes `perf stat` on dispatch and returns the metrics with the
/// result).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Retired instructions (abstract ops in the simulation).
    pub instructions: u64,
    /// Elapsed virtual cycles.
    pub cycles: u64,
    /// Cache references observed by the cache model.
    pub cache_references: u64,
    /// Cache misses observed by the cache model.
    pub cache_misses: u64,
    /// VM exits (TDCALLs / GHCB exits / RSI calls depending on platform).
    pub vm_exits: u64,
    /// Guest page faults taken (stage-2 / nested faults included).
    pub page_faults: u64,
    /// Bytes staged through the confidential-I/O bounce pool (0 in normal
    /// VMs and with direct DMA). Surfaced so I/O cost attribution does not
    /// require parsing the span tree.
    #[serde(default)]
    pub bounce_bytes: u64,
    /// Whether the numbers came from the perf-counter path (`true`) or the
    /// custom-script fallback used where counters are unavailable, e.g. CCA
    /// realms (`false`).
    pub from_hw_counters: bool,
}

impl PerfReport {
    /// Cache miss ratio in `[0, 1]`, or 0 when no references were recorded.
    pub fn miss_ratio(&self) -> f64 {
        if self.cache_references == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_references as f64
        }
    }
}

/// Summary statistics over a run's trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Mean wall-clock milliseconds across trials.
    pub mean_ms: f64,
    /// Minimum trial time in milliseconds.
    pub min_ms: f64,
    /// Maximum trial time in milliseconds.
    pub max_ms: f64,
    /// Sample standard deviation in milliseconds (0 for a single trial).
    pub stddev_ms: f64,
}

/// The result of executing a [`RunRequest`], returned to the user by the
/// gateway (paper Fig. 2, step 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Echo of the executed function name.
    pub function: String,
    /// Echo of the language.
    pub language: Language,
    /// Echo of the target.
    pub target: VmTarget,
    /// Per-trial wall-clock times in milliseconds (virtual time).
    pub trial_ms: Vec<f64>,
    /// Per-trial elapsed cycles.
    pub trial_cycles: Vec<Cycles>,
    /// Aggregate statistics over `trial_ms`.
    pub stats: TrialStats,
    /// Perf counters from the *last* trial (matching `perf stat` semantics of
    /// one report per invocation).
    pub perf: PerfReport,
    /// Function output (workload-specific, used to validate correctness).
    pub output: String,
    /// Trace-span tree for the measured trial, when tracing was enabled:
    /// the gateway's root span with host/VM cost-class children nested
    /// underneath. Round-trips remote dispatch; absent from old peers.
    #[serde(default)]
    pub trace: Option<TraceSpan>,
}

impl RunResult {
    /// Computes [`TrialStats`] from the recorded trial times.
    ///
    /// # Panics
    ///
    /// Panics if `trial_ms` is empty.
    pub fn compute_stats(trial_ms: &[f64]) -> TrialStats {
        assert!(!trial_ms.is_empty(), "at least one trial is required");
        let n = trial_ms.len() as f64;
        let mean = trial_ms.iter().sum::<f64>() / n;
        let min = trial_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let max = trial_ms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = if trial_ms.len() > 1 {
            trial_ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        TrialStats { mean_ms: mean, min_ms: min, max_ms: max, stddev_ms: var.sqrt() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TeePlatform;

    #[test]
    fn builder_chains() {
        let spec = FunctionSpec::new("factors", Language::Go).arg("1234567");
        let req = RunRequest::new(spec, VmTarget::secure(TeePlatform::Tdx)).trials(10).seed(42);
        assert_eq!(req.trials, 10);
        assert_eq!(req.seed, 42);
        assert_eq!(req.function.args, vec!["1234567"]);
    }

    #[test]
    fn request_json_roundtrip() {
        let req = RunRequest::new(
            FunctionSpec::new("fib", Language::Wasm),
            VmTarget::normal(TeePlatform::Cca),
        );
        let json = serde_json::to_string(&req).unwrap();
        let back: RunRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn trials_default_when_absent() {
        let json = r#"{"function":{"name":"fib","language":"go"},
                       "target":{"platform":"tdx","kind":"secure"}}"#;
        let req: RunRequest = serde_json::from_str(json).unwrap();
        assert_eq!(req.trials, 1);
        assert_eq!(req.seed, 0);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.device, None);
    }

    #[test]
    fn device_roundtrips_and_defaults_to_none() {
        let req = RunRequest::new(
            FunctionSpec::new("gpu-inference", Language::Go),
            VmTarget::secure(TeePlatform::Tdx),
        )
        .device(DeviceKind::Gpu);
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"device\":\"gpu\""));
        let back: RunRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.device, Some(DeviceKind::Gpu));
    }

    #[test]
    fn deadline_roundtrips_and_defaults() {
        let req = RunRequest::new(
            FunctionSpec::new("fib", Language::Wasm),
            VmTarget::secure(TeePlatform::Tdx),
        )
        .deadline_ms(250);
        assert_eq!(req.deadline_ms, Some(250));
        let json = serde_json::to_string(&req).unwrap();
        let back: RunRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.deadline_ms, Some(250));
    }

    #[test]
    fn stats_single_trial_has_zero_stddev() {
        let s = RunResult::compute_stats(&[5.0]);
        assert_eq!(s.mean_ms, 5.0);
        assert_eq!(s.stddev_ms, 0.0);
        assert_eq!(s.min_ms, 5.0);
        assert_eq!(s.max_ms, 5.0);
    }

    #[test]
    fn stats_known_values() {
        let s = RunResult::compute_stats(&[2.0, 4.0, 6.0]);
        assert!((s.mean_ms - 4.0).abs() < 1e-12);
        assert!((s.stddev_ms - 2.0).abs() < 1e-12);
        assert_eq!(s.min_ms, 2.0);
        assert_eq!(s.max_ms, 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn stats_empty_panics() {
        let _ = RunResult::compute_stats(&[]);
    }

    #[test]
    fn builder_rejects_zero_trials_and_zero_deadline() {
        let spec = FunctionSpec::new("fib", Language::Go);
        let target = VmTarget::secure(TeePlatform::Tdx);
        let err = RunRequest::builder(spec.clone(), target).trials(0).build().unwrap_err();
        assert_eq!(err, InvalidRunRequest::ZeroTrials);
        let err = RunRequest::builder(spec.clone(), target).deadline_ms(0).build().unwrap_err();
        assert_eq!(err, InvalidRunRequest::ZeroDeadline);
        let ok = RunRequest::builder(spec, target).trials(10).deadline_ms(500).build().unwrap();
        assert_eq!(ok.trials, 10);
        assert_eq!(ok.deadline_ms, Some(500));
        ok.validate().unwrap();
    }

    #[test]
    fn invalid_request_converts_to_workspace_error() {
        let e: crate::Error = InvalidRunRequest::ZeroTrials.into();
        assert!(matches!(e, crate::Error::InvalidRequest(_)));
        assert_eq!(e.rest_status(), 400);
    }

    #[test]
    fn result_trace_defaults_to_none_on_old_wire_data() {
        // A result serialized by a pre-observability peer has no trace key.
        let json = r#"{"function":"fib","language":"go",
                       "target":{"platform":"tdx","kind":"secure"},
                       "trial_ms":[1.0],"trial_cycles":[100],
                       "stats":{"mean_ms":1.0,"min_ms":1.0,"max_ms":1.0,"stddev_ms":0.0},
                       "perf":{"instructions":1,"cycles":100,"cache_references":0,
                               "cache_misses":0,"vm_exits":0,"page_faults":0,
                               "from_hw_counters":true},
                       "output":"1"}"#;
        let r: RunResult = serde_json::from_str(json).unwrap();
        assert!(r.trace.is_none());
        assert_eq!(r.perf.bounce_bytes, 0);
    }

    #[test]
    fn result_trace_roundtrips() {
        let mut span = TraceSpan::new("gateway.run", 3);
        span.end_ms = 9;
        span.set_attr("vm_exits", 12);
        let r = RunResult {
            function: "fib".into(),
            language: Language::Go,
            target: VmTarget::secure(TeePlatform::Tdx),
            trial_ms: vec![1.0],
            trial_cycles: vec![Cycles::new(100)],
            stats: RunResult::compute_stats(&[1.0]),
            perf: PerfReport::default(),
            output: "1".into(),
            trace: Some(span),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.trace.unwrap().attr("vm_exits"), Some(12));
    }

    #[test]
    fn miss_ratio_handles_zero_refs() {
        let p = PerfReport::default();
        assert_eq!(p.miss_ratio(), 0.0);
        let p = PerfReport { cache_references: 10, cache_misses: 5, ..Default::default() };
        assert_eq!(p.miss_ratio(), 0.5);
    }
}

//! Confidential-device vocabulary shared across the stack.
//!
//! A [`DeviceKind`] names a class of TEE-IO-capable passthrough device a
//! request or campaign cell can ask for. The modeled devices themselves
//! (TDISP lifecycle, measurement reports, cost models) live in
//! `confbench-devio`; this type sits here because the gateway, scheduler
//! and REST wire formats must agree on the names without depending on the
//! device implementation.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A class of confidential passthrough device a VM can be built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DeviceKind {
    /// The modeled TEE-IO GPU accelerator (TDISP interface, SPDM
    /// measurement reports, direct-to-private DMA once attested).
    Gpu,
}

impl DeviceKind {
    /// Every device kind, for exhaustive sweeps.
    pub const ALL: [DeviceKind; 1] = [DeviceKind::Gpu];

    /// Stable label (matches the serde encoding) used in metric names,
    /// CLI flags and campaign cell identities.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceKind::Gpu => "gpu",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`DeviceKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeviceKindError(String);

impl fmt::Display for ParseDeviceKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown device kind {:?} (expected one of: gpu)", self.0)
    }
}

impl std::error::Error for ParseDeviceKindError {}

impl FromStr for DeviceKind {
    type Err = ParseDeviceKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gpu" => Ok(DeviceKind::Gpu),
            other => Err(ParseDeviceKindError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_serde_and_parse_back() {
        for kind in DeviceKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{}\"", kind.as_str()));
            let parsed: DeviceKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let err = "tpu".parse::<DeviceKind>().unwrap_err();
        assert!(err.to_string().contains("tpu"));
    }
}

//! Structured trace spans piggybacked on run results.
//!
//! ConfBench's value proposition is that measurement data rides along with
//! every dispatched run (paper §III-B). A [`TraceSpan`] tree makes the
//! pipeline's cost structure visible: the gateway opens a root span per
//! request, the host and VM layers nest children under it (one per cost
//! event class — SEAMCALL transitions, RMP validation, RMM commands,
//! bounce-buffer copies), and the finished tree returns to the caller inside
//! [`RunResult::trace`](crate::RunResult).
//!
//! Spans are a *wire* type: they serialize to JSON and round-trip through
//! remote dispatch unchanged. The recording machinery that builds them lives
//! in the `confbench-obs` crate.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// One node of a trace-span tree.
///
/// Timestamps come from the injectable [`Clock`](crate::Clock) (milliseconds;
/// only differences are meaningful), attributes are named integer totals
/// (`vm_exits`, `bounce_bytes`, `retry_attempt`, cycle counts, …), and
/// children nest arbitrarily deep.
///
/// # Example
///
/// ```
/// use confbench_types::TraceSpan;
///
/// let mut root = TraceSpan::new("gateway.run", 100);
/// root.end_ms = 130;
/// let mut child = TraceSpan::new("swiotlb.copy", 105);
/// child.end_ms = 120;
/// child.set_attr("bytes", 4096);
/// root.children.push(child);
/// assert_eq!(root.find("swiotlb.copy").unwrap().attr("bytes"), Some(4096));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Span name, dot-namespaced by layer and event class
    /// (`"gateway.run"`, `"host.execute"`, `"tdx.seamcall"`).
    pub name: String,
    /// Start timestamp in clock milliseconds.
    pub start_ms: u64,
    /// End timestamp in clock milliseconds (`>= start_ms` once finished).
    pub end_ms: u64,
    /// Named integer attributes (counts, bytes, cycles).
    #[serde(default)]
    pub attrs: BTreeMap<String, u64>,
    /// Child spans, in recording order.
    #[serde(default)]
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// Creates an open span (`end_ms == start_ms`) with no attributes.
    pub fn new(name: impl Into<String>, start_ms: u64) -> Self {
        TraceSpan {
            name: name.into(),
            start_ms,
            end_ms: start_ms,
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Sets (overwriting) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: u64) {
        self.attrs.insert(key.into(), value);
    }

    /// Adds to an attribute, creating it at zero first.
    pub fn add_attr(&mut self, key: impl Into<String>, delta: u64) {
        *self.attrs.entry(key.into()).or_insert(0) += delta;
    }

    /// Reads an attribute.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.get(key).copied()
    }

    /// Span duration in clock milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }

    /// Depth-first search (self included) for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All descendant spans (self included) whose name matches `name`.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a TraceSpan>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.find_all(name, out);
        }
    }

    /// Total number of spans in this tree (self included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(TraceSpan::span_count).sum::<usize>()
    }

    /// Renders the tree as an indented outline, one span per line — the
    /// human-readable form used by the CLI and EXPERIMENTS walkthroughs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push_str(&format!(" [{}ms]", self.duration_ms()));
        for (k, v) in &self.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

impl fmt::Display for TraceSpan {
    /// Renders the indented outline (see [`TraceSpan::render`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> TraceSpan {
        let mut root = TraceSpan::new("gateway.run", 10);
        root.end_ms = 50;
        root.set_attr("retry_attempt", 0);
        let mut host = TraceSpan::new("host.execute", 12);
        host.end_ms = 48;
        let mut exit = TraceSpan::new("tdx.seamcall", 14);
        exit.end_ms = 40;
        exit.set_attr("count", 7);
        host.children.push(exit);
        root.children.push(host);
        root
    }

    #[test]
    fn find_descends_depth_first() {
        let t = tree();
        assert_eq!(t.find("tdx.seamcall").unwrap().attr("count"), Some(7));
        assert!(t.find("missing").is_none());
        assert_eq!(t.find("gateway.run").unwrap().name, "gateway.run");
    }

    #[test]
    fn attrs_accumulate() {
        let mut s = TraceSpan::new("x", 0);
        s.add_attr("bytes", 10);
        s.add_attr("bytes", 32);
        assert_eq!(s.attr("bytes"), Some(42));
        s.set_attr("bytes", 1);
        assert_eq!(s.attr("bytes"), Some(1));
    }

    #[test]
    fn counts_and_duration() {
        let t = tree();
        assert_eq!(t.span_count(), 3);
        assert_eq!(t.duration_ms(), 40);
        // An unfinished span has zero duration, never underflow.
        let s = TraceSpan::new("open", 5);
        assert_eq!(s.duration_ms(), 0);
    }

    #[test]
    fn json_roundtrip_preserves_nesting() {
        let t = tree();
        let json = serde_json::to_string(&t).unwrap();
        let back: TraceSpan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn render_is_indented_outline() {
        let r = tree().render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("gateway.run [40ms]"));
        assert!(lines[1].starts_with("  host.execute"));
        assert!(lines[2].starts_with("    tdx.seamcall"));
        assert!(lines[2].contains("count=7"));
    }

    #[test]
    fn defaults_tolerate_sparse_json() {
        // Old peers may omit attrs/children entirely.
        let json = r#"{"name":"x","start_ms":1,"end_ms":2}"#;
        let s: TraceSpan = serde_json::from_str(json).unwrap();
        assert!(s.attrs.is_empty());
        assert!(s.children.is_empty());
    }
}

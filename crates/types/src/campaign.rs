//! Wire types for campaigns: batched evaluation matrices submitted to the
//! scheduler (`confbench-sched`).
//!
//! A *campaign* is the unit behind every large result in the paper — e.g.
//! the Fig. 6 heatmap is 25 functions × 7 languages × 2 VM kinds × 2 TEEs.
//! One [`CampaignSpec`] describes the whole matrix; the scheduler expands it
//! into one job per cell, executes the jobs through the gateway, and
//! aggregates a [`CellSummary`] per cell.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DeviceKind, Language, TeePlatform, TraceSpan, VmKind};

/// Scheduling priority of a campaign's jobs. Higher priorities drain first;
/// within a priority the queue is FIFO.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "kebab-case")]
pub enum Priority {
    /// Background work: drained only when nothing else is queued.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work: jumps the queue.
    High,
}

impl Priority {
    /// All priorities, highest first (drain order).
    pub const DESCENDING: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// Lifecycle state of one scheduled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// Checked out by a worker; executing (or consulting the result cache).
    Running,
    /// Finished successfully; a [`CellSummary`] is available.
    Completed,
    /// Execution returned an error (recorded on the job).
    Failed,
    /// Cancelled while queued; never reached a VM.
    Cancelled,
    /// Its queue deadline elapsed before a worker picked it up.
    Expired,
}

impl JobState {
    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Expired => "expired",
        })
    }
}

/// Aggregate state of a campaign, derived from its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum CampaignState {
    /// At least one job is still queued or running.
    Active,
    /// Every job reached a terminal state and none was cancelled.
    Completed,
    /// The campaign was cancelled (queued jobs never ran).
    Cancelled,
}

impl fmt::Display for CampaignState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CampaignState::Active => "active",
            CampaignState::Completed => "completed",
            CampaignState::Cancelled => "cancelled",
        })
    }
}

/// One function entry in a campaign matrix: a registered function name plus
/// the arguments every cell invokes it with.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CampaignFunction {
    /// Registered function name.
    pub name: String,
    /// Positional arguments.
    #[serde(default)]
    pub args: Vec<String>,
}

impl CampaignFunction {
    /// Creates an entry with no arguments.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignFunction { name: name.into(), args: Vec::new() }
    }

    /// Adds an argument, builder-style.
    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }
}

/// A campaign: the JSON body of `POST /v1/campaigns`.
///
/// The scheduler expands the full cross product
/// `functions × languages × platforms × modes` into jobs. Per-cell seeds are
/// derived deterministically from `seed` and the cell identity, so an
/// identical spec always produces identical cells (and therefore identical
/// result-cache keys).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Functions to evaluate (with their arguments).
    pub functions: Vec<CampaignFunction>,
    /// Language runtimes to sweep.
    pub languages: Vec<Language>,
    /// TEE platforms to sweep.
    pub platforms: Vec<TeePlatform>,
    /// VM kinds to sweep (default: secure and normal, the paper's pairing).
    #[serde(default = "default_modes")]
    pub modes: Vec<VmKind>,
    /// Trials per cell (the paper uses 10).
    #[serde(default = "default_trials")]
    pub trials: u32,
    /// Campaign-level seed; per-cell seeds derive from it.
    #[serde(default)]
    pub seed: u64,
    /// Queue priority.
    #[serde(default)]
    pub priority: Priority,
    /// Optional queue deadline per job in milliseconds: jobs still queued
    /// this long after submission expire instead of running.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Optional confidential passthrough device every cell's VM is built
    /// with (e.g. `gpu` for the TEE-IO accelerator). Absent means plain
    /// VMs, and pre-device campaign specs deserialize unchanged.
    #[serde(default)]
    pub device: Option<DeviceKind>,
}

fn default_modes() -> Vec<VmKind> {
    vec![VmKind::Secure, VmKind::Normal]
}

fn default_trials() -> u32 {
    10
}

/// Upper bound on cells per campaign (guards the expander against
/// accidentally astronomical cross products). Deployments can admit less
/// via [`CampaignSpec::validate_with_limit`], never more.
pub const MAX_CAMPAIGN_CELLS: usize = 100_000;

/// Upper bound on the length of any single campaign axis. Axis entries are
/// materialized verbatim into every expanded cell, so an attacker-sized axis
/// is memory amplification even when the *cross product* stays under the
/// cell cap (e.g. 100 000 functions × 1 × 1 × 1).
pub const MAX_AXIS_LEN: usize = 10_000;

/// Typed rejection of an invalid [`CampaignSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidCampaign {
    /// One of the matrix axes is empty: nothing to expand.
    EmptyAxis(&'static str),
    /// One of the matrix axes exceeds [`MAX_AXIS_LEN`] entries.
    AxisTooLong {
        /// Which axis.
        axis: &'static str,
        /// Entries submitted.
        len: usize,
    },
    /// `trials == 0`.
    ZeroTrials,
    /// The cross product exceeds the admission limit in force.
    TooManyCells(usize),
    /// `deadline_ms == Some(0)`.
    ZeroDeadline,
}

impl fmt::Display for InvalidCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidCampaign::EmptyAxis(axis) => {
                write!(f, "campaign axis {axis:?} is empty: nothing to expand")
            }
            InvalidCampaign::AxisTooLong { axis, len } => {
                write!(f, "campaign axis {axis:?} has {len} entries (limit {MAX_AXIS_LEN})")
            }
            InvalidCampaign::ZeroTrials => write!(f, "trials must be at least 1 (got 0)"),
            InvalidCampaign::TooManyCells(n) => {
                write!(f, "campaign expands to {n} cells (limit {MAX_CAMPAIGN_CELLS})")
            }
            InvalidCampaign::ZeroDeadline => {
                write!(f, "deadline_ms must be positive when set (got 0)")
            }
        }
    }
}

impl std::error::Error for InvalidCampaign {}

impl From<InvalidCampaign> for crate::Error {
    fn from(e: InvalidCampaign) -> Self {
        match e {
            // Size rejections are 413: the spec is well-formed, just bigger
            // than the service admits — the client should shrink it.
            InvalidCampaign::TooManyCells(_) | InvalidCampaign::AxisTooLong { .. } => {
                crate::Error::PayloadTooLarge(e.to_string())
            }
            _ => crate::Error::InvalidRequest(e.to_string()),
        }
    }
}

impl CampaignSpec {
    /// Number of cells the spec expands to (may overflow-saturate).
    pub fn cell_count(&self) -> usize {
        self.functions
            .len()
            .saturating_mul(self.languages.len())
            .saturating_mul(self.platforms.len())
            .saturating_mul(self.modes.len())
    }

    /// Checks the invariants the scheduler requires, with the default
    /// [`MAX_CAMPAIGN_CELLS`] admission limit.
    ///
    /// # Errors
    ///
    /// As [`CampaignSpec::validate_with_limit`].
    pub fn validate(&self) -> Result<(), InvalidCampaign> {
        self.validate_with_limit(MAX_CAMPAIGN_CELLS)
    }

    /// Checks the invariants the scheduler requires, admitting at most
    /// `max_cells` expanded cells (clamped to [`MAX_CAMPAIGN_CELLS`]).
    ///
    /// All bounds are enforced *here*, at admission, before any expansion
    /// allocates — an adversarial spec costs the service one arithmetic
    /// pass, not a queue-time OOM.
    ///
    /// # Errors
    ///
    /// [`InvalidCampaign`] when an axis is empty or longer than
    /// [`MAX_AXIS_LEN`], `trials` is zero, a zero deadline was set, or the
    /// cross product exceeds the limit in force.
    pub fn validate_with_limit(&self, max_cells: usize) -> Result<(), InvalidCampaign> {
        let axes: [(&'static str, usize); 4] = [
            ("functions", self.functions.len()),
            ("languages", self.languages.len()),
            ("platforms", self.platforms.len()),
            ("modes", self.modes.len()),
        ];
        for (axis, len) in axes {
            if len == 0 {
                return Err(InvalidCampaign::EmptyAxis(axis));
            }
            if len > MAX_AXIS_LEN {
                return Err(InvalidCampaign::AxisTooLong { axis, len });
            }
        }
        if self.trials == 0 {
            return Err(InvalidCampaign::ZeroTrials);
        }
        if self.deadline_ms == Some(0) {
            return Err(InvalidCampaign::ZeroDeadline);
        }
        let cells = self.cell_count();
        if cells > max_cells.min(MAX_CAMPAIGN_CELLS) {
            return Err(InvalidCampaign::TooManyCells(cells));
        }
        Ok(())
    }
}

/// One expanded cell of a campaign matrix: exactly what one job executes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Function and arguments.
    pub function: CampaignFunction,
    /// Language runtime.
    pub language: Language,
    /// TEE platform.
    pub platform: TeePlatform,
    /// Secure or normal VM.
    pub kind: VmKind,
    /// Trials to execute.
    pub trials: u32,
    /// Derived per-cell seed.
    pub seed: u64,
    /// Confidential passthrough device the cell's VM is built with, when
    /// the campaign requested one.
    #[serde(default)]
    pub device: Option<DeviceKind>,
}

/// Identifier of a submitted campaign (e.g. `"c3"`). Unique per submission;
/// two submissions of the same spec get distinct ids (the *results* dedupe
/// through the content-addressed cache, not the campaigns).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CampaignId(pub String);

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifier of one job (e.g. `"c3-j17"`). Contains no `/` so it is safe
/// as a single REST path segment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct JobId(pub String);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Aggregated outcome of one completed cell, built from the run result via
/// `confbench-stats`. Deterministic by construction: replaying the same
/// spec yields byte-identical summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// The job that produced (or cache-served) this summary.
    pub job: JobId,
    /// The cell executed.
    pub cell: CampaignCell,
    /// Mean trial time in milliseconds.
    pub mean_ms: f64,
    /// Median (p50) trial time in milliseconds.
    pub median_ms: f64,
    /// Minimum trial time in milliseconds.
    pub min_ms: f64,
    /// Maximum trial time in milliseconds.
    pub max_ms: f64,
    /// Sample standard deviation in milliseconds.
    pub stddev_ms: f64,
    /// Function output (for correctness validation across cells).
    pub output: String,
    /// Whether the cell was served from the content-addressed result cache
    /// instead of executing.
    pub from_cache: bool,
    /// Content-address of the cell's result (lowercase hex SHA-256).
    pub cache_key: String,
}

/// Receipt returned by `POST /v1/campaigns` (status 202).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignReceipt {
    /// Assigned campaign id.
    pub id: CampaignId,
    /// Number of jobs enqueued (= cells in the matrix).
    pub jobs: usize,
}

/// Point-in-time view of one campaign: the body of
/// `GET /v1/campaigns/{id}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Campaign id.
    pub id: CampaignId,
    /// Derived aggregate state.
    pub state: CampaignState,
    /// Total jobs in the campaign.
    pub total_jobs: usize,
    /// Jobs still waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs finished successfully.
    pub completed: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled before running.
    pub cancelled: usize,
    /// Jobs whose queue deadline expired.
    pub expired: usize,
    /// How many completed cells were served from the result cache.
    pub cache_hits: usize,
    /// Summaries of completed cells, in cell-expansion order (partial while
    /// the campaign is active — this is the polling surface).
    pub cells: Vec<CellSummary>,
}

impl CampaignStatus {
    /// Jobs in a terminal state.
    pub fn terminal_jobs(&self) -> usize {
        self.completed + self.failed + self.cancelled + self.expired
    }

    /// Whether every job reached a terminal state.
    pub fn is_done(&self) -> bool {
        self.terminal_jobs() == self.total_jobs
    }
}

/// Point-in-time view of one job: the body of `GET /v1/jobs/{id}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// Owning campaign.
    pub campaign: CampaignId,
    /// Current state.
    pub state: JobState,
    /// The cell this job executes.
    pub cell: CampaignCell,
    /// Summary, when completed.
    pub summary: Option<CellSummary>,
    /// Error message, when failed.
    pub error: Option<String>,
    /// The job's `sched.execute` span tree (gateway subtree adopted),
    /// when it executed rather than hitting the cache.
    #[serde(default)]
    pub trace: Option<TraceSpan>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            functions: vec![CampaignFunction::new("factors").arg("360360")],
            languages: vec![Language::Go, Language::Lua],
            platforms: vec![TeePlatform::Tdx],
            modes: vec![VmKind::Secure, VmKind::Normal],
            trials: 3,
            seed: 7,
            priority: Priority::Normal,
            deadline_ms: None,
            device: None,
        }
    }

    #[test]
    fn cell_count_is_the_cross_product() {
        assert_eq!(spec().cell_count(), 4);
    }

    #[test]
    fn validate_rejects_empty_axes_and_zero_trials() {
        let mut s = spec();
        s.functions.clear();
        assert_eq!(s.validate(), Err(InvalidCampaign::EmptyAxis("functions")));
        let mut s = spec();
        s.languages.clear();
        assert_eq!(s.validate(), Err(InvalidCampaign::EmptyAxis("languages")));
        let mut s = spec();
        s.platforms.clear();
        assert_eq!(s.validate(), Err(InvalidCampaign::EmptyAxis("platforms")));
        let mut s = spec();
        s.modes.clear();
        assert_eq!(s.validate(), Err(InvalidCampaign::EmptyAxis("modes")));
        let mut s = spec();
        s.trials = 0;
        assert_eq!(s.validate(), Err(InvalidCampaign::ZeroTrials));
        let mut s = spec();
        s.deadline_ms = Some(0);
        assert_eq!(s.validate(), Err(InvalidCampaign::ZeroDeadline));
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn validate_caps_the_cross_product() {
        let mut s = spec();
        // Every axis is within its own cap, but the product overflows the
        // cell cap: 10k functions × 11 languages × 1 platform × 2 modes.
        s.functions = (0..MAX_AXIS_LEN).map(|i| CampaignFunction::new(format!("f{i}"))).collect();
        s.languages = vec![Language::Go; 11];
        s.platforms = vec![TeePlatform::Tdx];
        assert!(matches!(s.validate(), Err(InvalidCampaign::TooManyCells(_))));
    }

    #[test]
    fn validate_caps_each_axis_before_the_product() {
        // A single oversized axis is refused even though the cross product
        // (100 001 × 1 × 1 × 1) is only just over the cell cap — the axis
        // bytes themselves are the amplification vector.
        let mut s = spec();
        s.functions = (0..=MAX_AXIS_LEN).map(|i| CampaignFunction::new(format!("f{i}"))).collect();
        s.languages = vec![Language::Go];
        s.platforms = vec![TeePlatform::Tdx];
        s.modes = vec![VmKind::Secure];
        assert_eq!(
            s.validate(),
            Err(InvalidCampaign::AxisTooLong { axis: "functions", len: MAX_AXIS_LEN + 1 })
        );
    }

    #[test]
    fn validate_with_limit_tightens_but_never_loosens_the_cap() {
        let s = spec(); // 4 cells
        assert!(s.validate_with_limit(4).is_ok());
        assert_eq!(s.validate_with_limit(3), Err(InvalidCampaign::TooManyCells(4)));
        // A huge configured limit still clamps to MAX_CAMPAIGN_CELLS.
        let mut big = spec();
        big.functions = (0..MAX_AXIS_LEN).map(|i| CampaignFunction::new(format!("f{i}"))).collect();
        big.languages = vec![Language::Go; 11];
        big.platforms = vec![TeePlatform::Tdx];
        assert!(matches!(
            big.validate_with_limit(usize::MAX),
            Err(InvalidCampaign::TooManyCells(_))
        ));
    }

    #[test]
    fn spec_json_defaults() {
        let json = r#"{"functions":[{"name":"fib"}],
                       "languages":["go"],"platforms":["tdx"]}"#;
        let s: CampaignSpec = serde_json::from_str(json).unwrap();
        assert_eq!(s.modes, vec![VmKind::Secure, VmKind::Normal]);
        assert_eq!(s.trials, 10);
        assert_eq!(s.seed, 0);
        assert_eq!(s.priority, Priority::Normal);
        assert_eq!(s.deadline_ms, None);
        assert_eq!(s.device, None);
        assert!(s.functions[0].args.is_empty());
    }

    #[test]
    fn spec_device_roundtrips() {
        let mut s = spec();
        s.device = Some(DeviceKind::Gpu);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"device\":\"gpu\""));
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.device, Some(DeviceKind::Gpu));
    }

    #[test]
    fn spec_roundtrips() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn priorities_order_and_drain_descending() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::DESCENDING[0], Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn job_states_classify_terminal() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [JobState::Completed, JobState::Failed, JobState::Cancelled, JobState::Expired] {
            assert!(s.is_terminal(), "{s}");
        }
    }

    #[test]
    fn invalid_campaign_maps_to_400() {
        let e: crate::Error = InvalidCampaign::ZeroTrials.into();
        assert_eq!(e.rest_status(), 400);
    }

    #[test]
    fn oversized_campaign_maps_to_413() {
        let e: crate::Error = InvalidCampaign::TooManyCells(1_000_000).into();
        assert_eq!(e.rest_status(), 413);
        let e: crate::Error = InvalidCampaign::AxisTooLong { axis: "functions", len: 99 }.into();
        assert_eq!(e.rest_status(), 413);
    }

    #[test]
    fn status_progress_helpers() {
        let status = CampaignStatus {
            id: CampaignId("c1".into()),
            state: CampaignState::Active,
            total_jobs: 4,
            queued: 1,
            running: 1,
            completed: 2,
            failed: 0,
            cancelled: 0,
            expired: 0,
            cache_hits: 1,
            cells: Vec::new(),
        };
        assert_eq!(status.terminal_jobs(), 2);
        assert!(!status.is_done());
    }
}

//! FaaS implementation languages and runtimes.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A FaaS function implementation language/runtime supported by ConfBench.
///
/// Matches the seven runtimes the paper evaluates (§IV-B): Python, Node.js,
/// Ruby, Lua, LuaJIT, Go and WebAssembly (Wasmi). The selection deliberately
/// spans heavyweight managed runtimes (Python, Node, Ruby), lightweight
/// interpreters (Lua), trace-JITs (LuaJIT), compiled natives (Go), and a
/// portable bytecode VM (Wasm), because the paper's FaaS finding is that
/// runtime complexity correlates with TEE overhead.
///
/// # Example
///
/// ```
/// use confbench_types::Language;
///
/// assert_eq!("node".parse::<Language>()?, Language::Node);
/// assert!(Language::Python.is_managed());
/// assert!(!Language::Go.is_managed());
/// # Ok::<(), confbench_types::ParseLanguageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Language {
    /// CPython (3.10–3.12 in the paper's testbed).
    Python,
    /// Node.js / V8 (20–22 in the paper's testbed).
    Node,
    /// CRuby / MRI (3.0–3.3 in the paper's testbed).
    Ruby,
    /// PUC-Lua 5.4 interpreter.
    Lua,
    /// LuaJIT 2.1 trace-compiling runtime.
    #[serde(rename = "luajit")]
    LuaJit,
    /// Go 1.20, ahead-of-time compiled.
    Go,
    /// WebAssembly executed by the Wasmi interpreter v0.32.
    Wasm,
}

impl Language {
    /// All supported languages, in the paper's heatmap row order.
    pub const ALL: [Language; 7] = [
        Language::Python,
        Language::Node,
        Language::Ruby,
        Language::Lua,
        Language::LuaJit,
        Language::Go,
        Language::Wasm,
    ];

    /// Whether the runtime is a "complex managed runtime" in the paper's
    /// terminology — a large interpreter/VM with garbage collection and a
    /// sizeable resident footprint (Python, Node, Ruby). These are the
    /// runtimes the paper observes imposing the heaviest burden on TEE
    /// operation.
    pub fn is_managed(self) -> bool {
        matches!(self, Language::Python | Language::Node | Language::Ruby)
    }

    /// Whether functions in this language are executed by a real in-tree
    /// execution engine (the CBScript interpreter for Lua/LuaJIT, the stack
    /// bytecode VM for Wasm, native Rust closures for Go) rather than by a
    /// profile-transformed emulation (Python, Node, Ruby).
    pub fn has_native_engine(self) -> bool {
        matches!(self, Language::Lua | Language::LuaJit | Language::Go | Language::Wasm)
    }

    /// Runtime version string matching the paper's TDX testbed where
    /// applicable (§IV-B), used in reports.
    pub fn version(self) -> &'static str {
        match self {
            Language::Python => "3.12.3",
            Language::Node => "22.2.0",
            Language::Ruby => "3.2",
            Language::Lua => "5.4.6",
            Language::LuaJit => "2.1",
            Language::Go => "1.20.3",
            Language::Wasm => "wasmi-0.32",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Language::Python => "python",
            Language::Node => "node",
            Language::Ruby => "ruby",
            Language::Lua => "lua",
            Language::LuaJit => "luajit",
            Language::Go => "go",
            Language::Wasm => "wasm",
        })
    }
}

/// Error returned when parsing a [`Language`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLanguageError {
    input: String,
}

impl ParseLanguageError {
    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseLanguageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown language: {:?}", self.input)
    }
}

impl std::error::Error for ParseLanguageError {}

impl FromStr for Language {
    type Err = ParseLanguageError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "python" | "py" => Ok(Language::Python),
            "node" | "nodejs" | "js" | "javascript" => Ok(Language::Node),
            "ruby" | "rb" => Ok(Language::Ruby),
            "lua" => Ok(Language::Lua),
            "luajit" => Ok(Language::LuaJit),
            "go" | "golang" => Ok(Language::Go),
            "wasm" | "webassembly" | "wasmi" => Ok(Language::Wasm),
            _ => Err(ParseLanguageError { input: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_fromstr_roundtrip() {
        for l in Language::ALL {
            assert_eq!(l.to_string().parse::<Language>().unwrap(), l);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("js".parse::<Language>().unwrap(), Language::Node);
        assert_eq!("golang".parse::<Language>().unwrap(), Language::Go);
        assert_eq!("wasmi".parse::<Language>().unwrap(), Language::Wasm);
    }

    #[test]
    fn unknown_language_is_error() {
        let err = "cobol".parse::<Language>().unwrap_err();
        assert_eq!(err.input(), "cobol");
    }

    #[test]
    fn managed_partition() {
        let managed: Vec<_> = Language::ALL.iter().filter(|l| l.is_managed()).collect();
        assert_eq!(managed.len(), 3);
        assert!(Language::ALL.iter().all(|l| l.is_managed() != l.has_native_engine()));
    }

    #[test]
    fn serde_names_match_display() {
        for l in Language::ALL {
            let json = serde_json::to_string(&l).unwrap();
            assert_eq!(json, format!("\"{l}\""));
        }
    }
}

//! Workspace-level error type.

use std::fmt;

use crate::fault::{FaultClass, TeeMechanism};
use crate::platform::TeePlatform;

/// Convenience alias for `Result<T, confbench_types::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// Top-level error for ConfBench operations.
///
/// Lower layers (memory model, interpreter, database, …) define their own
/// precise error types; this enum is the boundary type the tool's public API
/// (gateway, dispatch, launchers) returns.
#[derive(Debug)]
pub enum Error {
    /// The requested function is not registered with the gateway.
    UnknownFunction(String),
    /// The requested language is not registered on the target VM.
    UnsupportedLanguage(String),
    /// No VM of the requested target is available in any pool.
    NoVmAvailable(String),
    /// The workload itself failed during execution.
    Workload(String),
    /// Attestation failed (generation or verification).
    Attestation(String),
    /// A transport/protocol problem between gateway and host.
    Transport(String),
    /// The request's deadline elapsed before a result was produced.
    DeadlineExceeded(String),
    /// Malformed user input (bad request body, bad arguments).
    InvalidRequest(String),
    /// The scheduler's bounded job queue is at capacity; retry later
    /// (maps to HTTP 429 with a `Retry-After` header).
    QueueFull(String),
    /// The request is well-formed but bigger than the service will take
    /// (oversized campaign axes, cell counts past the admission cap). Maps
    /// to HTTP 413 — distinct from [`Error::InvalidRequest`] so clients can
    /// tell "shrink it" from "fix it".
    PayloadTooLarge(String),
    /// A TEE-substrate mechanism failed (injected by a fault plan, or — on
    /// real hardware — an actual SEAMCALL/RMP/RMM error). The class decides
    /// recovery: transient faults are retried in place, fatal faults force
    /// a VM teardown + rebuild.
    TeeFault {
        /// The platform whose substrate faulted.
        platform: TeePlatform,
        /// The mechanism that failed.
        mechanism: TeeMechanism,
        /// Retryable in place, or VM-fatal.
        class: FaultClass,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl Error {
    /// Maps this error onto the REST status code the ConfBench API answers
    /// with. One shared table — used by the gateway, by remote host agents,
    /// and by clients translating statuses back — so local and remote
    /// execution are indistinguishable over the wire.
    ///
    /// | status | errors |
    /// |--------|--------|
    /// | 404    | [`Error::UnknownFunction`] |
    /// | 400    | [`Error::InvalidRequest`], [`Error::UnsupportedLanguage`] |
    /// | 413    | [`Error::PayloadTooLarge`] |
    /// | 429    | [`Error::QueueFull`] |
    /// | 503    | [`Error::NoVmAvailable`], [`Error::TeeFault`] |
    /// | 504    | [`Error::DeadlineExceeded`] |
    /// | 500    | everything else |
    ///
    /// A `TeeFault` is 503 regardless of class: from the client's side the
    /// service is temporarily unable to produce a result on a healthy VM,
    /// and retrying later (after supervision rebuilds or the pool fails
    /// over) is the right move.
    pub fn rest_status(&self) -> u16 {
        match self {
            Error::UnknownFunction(_) => 404,
            Error::InvalidRequest(_) | Error::UnsupportedLanguage(_) => 400,
            Error::PayloadTooLarge(_) => 413,
            Error::QueueFull(_) => 429,
            Error::NoVmAvailable(_) | Error::TeeFault { .. } => 503,
            Error::DeadlineExceeded(_) => 504,
            _ => 500,
        }
    }

    /// Whether retrying the *same operation* may succeed without tearing
    /// anything down: transport-layer blips, raw I/O errors, and TEE faults
    /// classified [`FaultClass::Transient`]. This is the single shared
    /// definition the gateway's retry loop and the VM supervisor both use,
    /// so the two layers never disagree about what is worth retrying.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Transport(_) | Error::Io(_) => true,
            Error::TeeFault { class, .. } => *class == FaultClass::Transient,
            _ => false,
        }
    }

    /// Whether this failure indicts the *pool member* that produced it (as
    /// opposed to the request being at fault). Indicting errors count
    /// toward the member's circuit breaker and make the gateway fail over
    /// to a different member: transport/I/O problems, and **any** TEE
    /// fault — a fatal fault means the member's VM is wedged or
    /// quarantined, and even transient faults that escaped the supervisor's
    /// in-place retries signal an unhealthy substrate.
    pub fn indicts_member(&self) -> bool {
        matches!(self, Error::Transport(_) | Error::Io(_) | Error::TeeFault { .. })
    }

    /// Inverse of [`Error::rest_status`]: reconstructs the matching error
    /// variant from a remote peer's status code and message body, so remote
    /// dispatch surfaces the same typed errors a local call would. Unmapped
    /// statuses return `None` (the caller decides how to classify them —
    /// typically as a transport error).
    pub fn from_rest_status(status: u16, body: impl Into<String>) -> Option<Error> {
        let body = body.into();
        match status {
            404 => Some(Error::UnknownFunction(body)),
            400 => Some(Error::InvalidRequest(body)),
            413 => Some(Error::PayloadTooLarge(body)),
            429 => Some(Error::QueueFull(body)),
            503 => Some(Error::NoVmAvailable(body)),
            504 => Some(Error::DeadlineExceeded(body)),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            Error::UnsupportedLanguage(lang) => write!(f, "unsupported language: {lang}"),
            Error::NoVmAvailable(target) => write!(f, "no VM available for target {target}"),
            Error::Workload(msg) => write!(f, "workload failed: {msg}"),
            Error::Attestation(msg) => write!(f, "attestation failed: {msg}"),
            Error::Transport(msg) => write!(f, "transport error: {msg}"),
            Error::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Error::QueueFull(msg) => write!(f, "queue full: {msg}"),
            Error::PayloadTooLarge(msg) => write!(f, "payload too large: {msg}"),
            Error::TeeFault { platform, mechanism, class } => {
                write!(f, "tee fault: {class} {mechanism} failure on {platform}")
            }
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownFunction("fib".into());
        assert_eq!(e.to_string(), "unknown function: fib");
    }

    #[test]
    fn io_source_is_chained() {
        let inner = std::io::Error::other("boom");
        let e = Error::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn deadline_exceeded_displays_context() {
        let e = Error::DeadlineExceeded("run budget 50ms elapsed".into());
        assert_eq!(e.to_string(), "deadline exceeded: run budget 50ms elapsed");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn rest_status_table_is_stable() {
        assert_eq!(Error::UnknownFunction("f".into()).rest_status(), 404);
        assert_eq!(Error::InvalidRequest("x".into()).rest_status(), 400);
        assert_eq!(Error::UnsupportedLanguage("cobol".into()).rest_status(), 400);
        assert_eq!(Error::PayloadTooLarge("too many cells".into()).rest_status(), 413);
        assert_eq!(Error::QueueFull("128 queued".into()).rest_status(), 429);
        assert_eq!(Error::NoVmAvailable("tdx".into()).rest_status(), 503);
        assert_eq!(Error::DeadlineExceeded("50ms".into()).rest_status(), 504);
        assert_eq!(Error::Workload("boom".into()).rest_status(), 500);
        assert_eq!(Error::Transport("refused".into()).rest_status(), 500);
    }

    #[test]
    fn tee_faults_map_to_503_and_classify_by_class() {
        let transient = Error::TeeFault {
            platform: TeePlatform::SevSnp,
            mechanism: TeeMechanism::AmdSpRequest,
            class: FaultClass::Transient,
        };
        let fatal = Error::TeeFault {
            platform: TeePlatform::Tdx,
            mechanism: TeeMechanism::Seamcall,
            class: FaultClass::Fatal,
        };
        assert_eq!(transient.rest_status(), 503);
        assert_eq!(fatal.rest_status(), 503);
        assert!(transient.is_transient());
        assert!(!fatal.is_transient());
        assert!(transient.indicts_member() && fatal.indicts_member());
        assert_eq!(fatal.to_string(), "tee fault: fatal seamcall failure on tdx");
    }

    #[test]
    fn transient_classification_covers_transport_and_io_only() {
        assert!(Error::Transport("refused".into()).is_transient());
        assert!(Error::Io(std::io::Error::other("eof")).is_transient());
        for e in [
            Error::UnknownFunction("f".into()),
            Error::InvalidRequest("x".into()),
            Error::PayloadTooLarge("big".into()),
            Error::QueueFull("full".into()),
            Error::NoVmAvailable("tdx".into()),
            Error::DeadlineExceeded("50ms".into()),
            Error::Workload("boom".into()),
            Error::Attestation("stale".into()),
        ] {
            assert!(!e.is_transient(), "{e} must not be transient");
            assert!(!e.indicts_member(), "{e} must not indict the member");
        }
    }

    #[test]
    fn from_rest_status_inverts_the_mapped_codes() {
        for e in [
            Error::UnknownFunction("f".into()),
            Error::InvalidRequest("x".into()),
            Error::PayloadTooLarge("big".into()),
            Error::QueueFull("128 queued".into()),
            Error::NoVmAvailable("tdx".into()),
            Error::DeadlineExceeded("50ms".into()),
        ] {
            let back = Error::from_rest_status(e.rest_status(), "msg").unwrap();
            assert_eq!(back.rest_status(), e.rest_status());
        }
        assert!(Error::from_rest_status(500, "boom").is_none());
        assert!(Error::from_rest_status(200, "ok").is_none());
    }
}

//! Workspace-level error type.

use std::fmt;

/// Convenience alias for `Result<T, confbench_types::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// Top-level error for ConfBench operations.
///
/// Lower layers (memory model, interpreter, database, …) define their own
/// precise error types; this enum is the boundary type the tool's public API
/// (gateway, dispatch, launchers) returns.
#[derive(Debug)]
pub enum Error {
    /// The requested function is not registered with the gateway.
    UnknownFunction(String),
    /// The requested language is not registered on the target VM.
    UnsupportedLanguage(String),
    /// No VM of the requested target is available in any pool.
    NoVmAvailable(String),
    /// The workload itself failed during execution.
    Workload(String),
    /// Attestation failed (generation or verification).
    Attestation(String),
    /// A transport/protocol problem between gateway and host.
    Transport(String),
    /// The request's deadline elapsed before a result was produced.
    DeadlineExceeded(String),
    /// Malformed user input (bad request body, bad arguments).
    InvalidRequest(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            Error::UnsupportedLanguage(lang) => write!(f, "unsupported language: {lang}"),
            Error::NoVmAvailable(target) => write!(f, "no VM available for target {target}"),
            Error::Workload(msg) => write!(f, "workload failed: {msg}"),
            Error::Attestation(msg) => write!(f, "attestation failed: {msg}"),
            Error::Transport(msg) => write!(f, "transport error: {msg}"),
            Error::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownFunction("fib".into());
        assert_eq!(e.to_string(), "unknown function: fib");
    }

    #[test]
    fn io_source_is_chained() {
        let inner = std::io::Error::other("boom");
        let e = Error::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn deadline_exceeded_displays_context() {
        let e = Error::DeadlineExceeded("run budget 50ms elapsed".into());
        assert_eq!(e.to_string(), "deadline exceeded: run budget 50ms elapsed");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}

//! Workspace-level error type.

use std::fmt;

/// Convenience alias for `Result<T, confbench_types::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// Top-level error for ConfBench operations.
///
/// Lower layers (memory model, interpreter, database, …) define their own
/// precise error types; this enum is the boundary type the tool's public API
/// (gateway, dispatch, launchers) returns.
#[derive(Debug)]
pub enum Error {
    /// The requested function is not registered with the gateway.
    UnknownFunction(String),
    /// The requested language is not registered on the target VM.
    UnsupportedLanguage(String),
    /// No VM of the requested target is available in any pool.
    NoVmAvailable(String),
    /// The workload itself failed during execution.
    Workload(String),
    /// Attestation failed (generation or verification).
    Attestation(String),
    /// A transport/protocol problem between gateway and host.
    Transport(String),
    /// The request's deadline elapsed before a result was produced.
    DeadlineExceeded(String),
    /// Malformed user input (bad request body, bad arguments).
    InvalidRequest(String),
    /// The scheduler's bounded job queue is at capacity; retry later
    /// (maps to HTTP 429 with a `Retry-After` header).
    QueueFull(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl Error {
    /// Maps this error onto the REST status code the ConfBench API answers
    /// with. One shared table — used by the gateway, by remote host agents,
    /// and by clients translating statuses back — so local and remote
    /// execution are indistinguishable over the wire.
    ///
    /// | status | errors |
    /// |--------|--------|
    /// | 404    | [`Error::UnknownFunction`] |
    /// | 400    | [`Error::InvalidRequest`], [`Error::UnsupportedLanguage`] |
    /// | 429    | [`Error::QueueFull`] |
    /// | 503    | [`Error::NoVmAvailable`] |
    /// | 504    | [`Error::DeadlineExceeded`] |
    /// | 500    | everything else |
    pub fn rest_status(&self) -> u16 {
        match self {
            Error::UnknownFunction(_) => 404,
            Error::InvalidRequest(_) | Error::UnsupportedLanguage(_) => 400,
            Error::QueueFull(_) => 429,
            Error::NoVmAvailable(_) => 503,
            Error::DeadlineExceeded(_) => 504,
            _ => 500,
        }
    }

    /// Inverse of [`Error::rest_status`]: reconstructs the matching error
    /// variant from a remote peer's status code and message body, so remote
    /// dispatch surfaces the same typed errors a local call would. Unmapped
    /// statuses return `None` (the caller decides how to classify them —
    /// typically as a transport error).
    pub fn from_rest_status(status: u16, body: impl Into<String>) -> Option<Error> {
        let body = body.into();
        match status {
            404 => Some(Error::UnknownFunction(body)),
            400 => Some(Error::InvalidRequest(body)),
            429 => Some(Error::QueueFull(body)),
            503 => Some(Error::NoVmAvailable(body)),
            504 => Some(Error::DeadlineExceeded(body)),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            Error::UnsupportedLanguage(lang) => write!(f, "unsupported language: {lang}"),
            Error::NoVmAvailable(target) => write!(f, "no VM available for target {target}"),
            Error::Workload(msg) => write!(f, "workload failed: {msg}"),
            Error::Attestation(msg) => write!(f, "attestation failed: {msg}"),
            Error::Transport(msg) => write!(f, "transport error: {msg}"),
            Error::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Error::QueueFull(msg) => write!(f, "queue full: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownFunction("fib".into());
        assert_eq!(e.to_string(), "unknown function: fib");
    }

    #[test]
    fn io_source_is_chained() {
        let inner = std::io::Error::other("boom");
        let e = Error::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn deadline_exceeded_displays_context() {
        let e = Error::DeadlineExceeded("run budget 50ms elapsed".into());
        assert_eq!(e.to_string(), "deadline exceeded: run budget 50ms elapsed");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn rest_status_table_is_stable() {
        assert_eq!(Error::UnknownFunction("f".into()).rest_status(), 404);
        assert_eq!(Error::InvalidRequest("x".into()).rest_status(), 400);
        assert_eq!(Error::UnsupportedLanguage("cobol".into()).rest_status(), 400);
        assert_eq!(Error::QueueFull("128 queued".into()).rest_status(), 429);
        assert_eq!(Error::NoVmAvailable("tdx".into()).rest_status(), 503);
        assert_eq!(Error::DeadlineExceeded("50ms".into()).rest_status(), 504);
        assert_eq!(Error::Workload("boom".into()).rest_status(), 500);
        assert_eq!(Error::Transport("refused".into()).rest_status(), 500);
    }

    #[test]
    fn from_rest_status_inverts_the_mapped_codes() {
        for e in [
            Error::UnknownFunction("f".into()),
            Error::InvalidRequest("x".into()),
            Error::QueueFull("128 queued".into()),
            Error::NoVmAvailable("tdx".into()),
            Error::DeadlineExceeded("50ms".into()),
        ] {
            let back = Error::from_rest_status(e.rest_status(), "msg").unwrap();
            assert_eq!(back.rest_status(), e.rest_status());
        }
        assert!(Error::from_rest_status(500, "boom").is_none());
        assert!(Error::from_rest_status(200, "ok").is_none());
    }
}

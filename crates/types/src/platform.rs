//! TEE platform and VM-kind identifiers.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A trusted-execution-environment platform that ConfBench can target.
///
/// Mirrors the three VM-based TEEs evaluated in the paper (§II): Intel TDX,
/// AMD SEV-SNP, and ARM CCA (available only behind ARM's FVP simulator at the
/// time of the paper, and modelled as such here).
///
/// # Example
///
/// ```
/// use confbench_types::TeePlatform;
///
/// assert!(TeePlatform::Tdx.is_hardware());
/// assert!(!TeePlatform::Cca.is_hardware());
/// assert_eq!("sev-snp".parse::<TeePlatform>()?, TeePlatform::SevSnp);
/// # Ok::<(), confbench_types::ParsePlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum TeePlatform {
    /// Intel Trust Domain Extensions.
    Tdx,
    /// AMD Secure Encrypted Virtualization with Secure Nested Paging.
    SevSnp,
    /// ARM Confidential Compute Architecture (simulated via FVP).
    Cca,
}

impl TeePlatform {
    /// All supported platforms, in the order the paper presents them.
    pub const ALL: [TeePlatform; 3] = [TeePlatform::Tdx, TeePlatform::SevSnp, TeePlatform::Cca];

    /// Returns `true` for platforms backed by real silicon in the paper's
    /// testbed (TDX, SEV-SNP); `false` for the FVP-simulated CCA.
    pub fn is_hardware(self) -> bool {
        !matches!(self, TeePlatform::Cca)
    }

    /// Whether the platform exposes hardware performance counters inside the
    /// confidential VM. CCA realms under FVP do not (paper §III-B), so
    /// ConfBench falls back to a custom monitoring script there.
    pub fn has_perf_counters(self) -> bool {
        self.is_hardware()
    }

    /// Whether the platform supports remote attestation in our testbed.
    /// The FVP simulator lacks the required hardware support (paper §IV-B).
    pub fn supports_attestation(self) -> bool {
        self.is_hardware()
    }

    /// Nominal host CPU frequency in GHz, matching the paper's testbed
    /// (Xeon Gold 5515+ at 3.2 GHz, EPYC 9124 at 3.0 GHz; FVP hosts vary —
    /// we pin 2.0 GHz for the simulated ARM platform).
    pub fn host_freq_ghz(self) -> f64 {
        match self {
            TeePlatform::Tdx => 3.2,
            TeePlatform::SevSnp => 3.0,
            TeePlatform::Cca => 2.0,
        }
    }
}

impl fmt::Display for TeePlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TeePlatform::Tdx => "tdx",
            TeePlatform::SevSnp => "sev-snp",
            TeePlatform::Cca => "cca",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`TeePlatform`] or [`VmKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlatformError {
    input: String,
}

impl ParsePlatformError {
    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParsePlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown TEE platform or VM kind: {:?}", self.input)
    }
}

impl std::error::Error for ParsePlatformError {}

impl FromStr for TeePlatform {
    type Err = ParsePlatformError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tdx" => Ok(TeePlatform::Tdx),
            "sev-snp" | "sev_snp" | "snp" | "sev" => Ok(TeePlatform::SevSnp),
            "cca" => Ok(TeePlatform::Cca),
            _ => Err(ParsePlatformError { input: s.to_owned() }),
        }
    }
}

/// Whether a VM is a confidential (TEE-backed) VM or a plain one.
///
/// The paper runs every workload twice — once in each kind — and reports the
/// secure/normal execution-time ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum VmKind {
    /// A confidential VM protected by the host's TEE.
    Secure,
    /// A conventional VM with no TEE protections (the baseline).
    Normal,
}

impl VmKind {
    /// Both kinds, secure first (the paper's plotting order).
    pub const ALL: [VmKind; 2] = [VmKind::Secure, VmKind::Normal];
}

impl fmt::Display for VmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VmKind::Secure => "secure",
            VmKind::Normal => "normal",
        })
    }
}

impl FromStr for VmKind {
    type Err = ParsePlatformError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "secure" | "confidential" => Ok(VmKind::Secure),
            "normal" | "plain" => Ok(VmKind::Normal),
            _ => Err(ParsePlatformError { input: s.to_owned() }),
        }
    }
}

/// A fully-specified execution target: a platform plus a VM kind.
///
/// A `VmTarget` is what a [`crate::RunRequest`] carries and what a gateway
/// pool balances over.
///
/// # Example
///
/// ```
/// use confbench_types::{TeePlatform, VmKind, VmTarget};
///
/// let t = VmTarget::secure(TeePlatform::SevSnp);
/// assert_eq!(t.kind, VmKind::Secure);
/// assert_eq!(t.to_string(), "sev-snp/secure");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmTarget {
    /// The host platform the VM runs on.
    pub platform: TeePlatform,
    /// Whether the VM is confidential or the plain baseline.
    pub kind: VmKind,
}

impl VmTarget {
    /// Creates a target for a confidential VM on `platform`.
    pub fn secure(platform: TeePlatform) -> Self {
        VmTarget { platform, kind: VmKind::Secure }
    }

    /// Creates a target for a normal (baseline) VM on `platform`'s host.
    pub fn normal(platform: TeePlatform) -> Self {
        VmTarget { platform, kind: VmKind::Normal }
    }

    /// The secure/normal pair for `platform`, secure first.
    pub fn pair(platform: TeePlatform) -> [VmTarget; 2] {
        [VmTarget::secure(platform), VmTarget::normal(platform)]
    }
}

impl fmt::Display for VmTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.platform, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_roundtrips_display_fromstr() {
        for p in TeePlatform::ALL {
            assert_eq!(p.to_string().parse::<TeePlatform>().unwrap(), p);
        }
    }

    #[test]
    fn platform_parse_aliases() {
        assert_eq!("SNP".parse::<TeePlatform>().unwrap(), TeePlatform::SevSnp);
        assert_eq!("sev_snp".parse::<TeePlatform>().unwrap(), TeePlatform::SevSnp);
        assert_eq!("TDX".parse::<TeePlatform>().unwrap(), TeePlatform::Tdx);
    }

    #[test]
    fn platform_parse_rejects_garbage() {
        let err = "sgx2".parse::<TeePlatform>().unwrap_err();
        assert_eq!(err.input(), "sgx2");
        assert!(err.to_string().contains("sgx2"));
    }

    #[test]
    fn cca_is_simulated_without_counters_or_attestation() {
        assert!(!TeePlatform::Cca.is_hardware());
        assert!(!TeePlatform::Cca.has_perf_counters());
        assert!(!TeePlatform::Cca.supports_attestation());
        assert!(TeePlatform::SevSnp.supports_attestation());
    }

    #[test]
    fn vmkind_parses() {
        assert_eq!("confidential".parse::<VmKind>().unwrap(), VmKind::Secure);
        assert_eq!("normal".parse::<VmKind>().unwrap(), VmKind::Normal);
        assert!("bogus".parse::<VmKind>().is_err());
    }

    #[test]
    fn target_pair_orders_secure_first() {
        let [a, b] = VmTarget::pair(TeePlatform::Tdx);
        assert_eq!(a.kind, VmKind::Secure);
        assert_eq!(b.kind, VmKind::Normal);
        assert_eq!(a.platform, b.platform);
    }

    #[test]
    fn serde_kebab_case() {
        let json = serde_json::to_string(&TeePlatform::SevSnp).unwrap();
        assert_eq!(json, "\"sev-snp\"");
        let back: TeePlatform = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TeePlatform::SevSnp);
    }

    #[test]
    fn host_frequencies_match_testbed() {
        assert_eq!(TeePlatform::Tdx.host_freq_ghz(), 3.2);
        assert_eq!(TeePlatform::SevSnp.host_freq_ghz(), 3.0);
    }
}

//! Shared vocabulary types for the ConfBench-RS workspace.
//!
//! This crate defines the data model that every other crate speaks:
//!
//! * [`TeePlatform`] / [`VmKind`] — which trusted execution environment a
//!   workload targets, and whether the VM is confidential or "normal";
//! * [`Language`] — the FaaS language runtimes the paper evaluates;
//! * [`Cycles`] / [`SimClock`] — the deterministic virtual-time model all
//!   simulated execution is charged in;
//! * [`Op`] / [`OpTrace`] — the abstract operation stream a workload emits and
//!   a simulated VM executes;
//! * [`RunRequest`] / [`RunResult`] — the wire types exchanged between the
//!   ConfBench gateway, hosts, and users.
//!
//! # Example
//!
//! ```
//! use confbench_types::{Language, OpTrace, TeePlatform};
//!
//! let mut trace = OpTrace::new();
//! trace.cpu(1_000);
//! trace.alloc(4096);
//! assert_eq!(trace.total_cpu_ops(), 1_000);
//! assert!(TeePlatform::Tdx.is_hardware());
//! assert_eq!(Language::LuaJit.to_string(), "luajit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod clock;
mod device;
mod error;
mod fault;
mod language;
mod ops;
mod platform;
mod run;
mod trace;

pub use campaign::{
    CampaignCell, CampaignFunction, CampaignId, CampaignReceipt, CampaignSpec, CampaignState,
    CampaignStatus, CellSummary, InvalidCampaign, JobId, JobState, JobStatus, Priority,
    MAX_AXIS_LEN, MAX_CAMPAIGN_CELLS,
};
pub use clock::{Clock, Cycles, ManualClock, SimClock, SystemClock};
pub use device::{DeviceKind, ParseDeviceKindError};
pub use error::{Error, Result};
pub use fault::{FaultClass, TeeMechanism};
pub use language::{Language, ParseLanguageError};
pub use ops::{Op, OpTrace, SyscallKind};
pub use platform::{ParsePlatformError, TeePlatform, VmKind, VmTarget};
pub use run::{
    FunctionSpec, InvalidRunRequest, PerfReport, RunRequest, RunRequestBuilder, RunResult,
    TrialStats, WorkloadKind,
};
pub use trace::TraceSpan;

//! A small two-level set-associative cache simulator.
//!
//! The paper observes (§IV-D) that a few workloads run *faster* inside the
//! confidential VM and traces this to differing cache-hit behaviour (cf. the
//! TDXdown caching studies it cites). We reproduce the causal channel: a
//! confidential guest's pages land in differently-colored host frames, so
//! the same guest access stream maps to different cache sets. The VM model
//! feeds every memory op through this simulator with a per-target page salt.

use confbench_types::Op;

const LINE: u64 = 64;

/// Aggregate cache statistics for one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line-granularity accesses.
    pub references: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// Misses in both levels (DRAM fills).
    pub misses: u64,
}

impl CacheStats {
    /// L1 hits (references minus everything that left L1).
    pub fn l1_hits(&self) -> u64 {
        self.references - self.l2_hits - self.misses
    }
}

#[derive(Debug, Clone)]
struct Level {
    sets: Vec<Vec<u64>>, // per-set LRU stack of tags, most recent last
    ways: usize,
    set_mask: u64,
}

impl Level {
    fn new(size_bytes: u64, ways: usize) -> Self {
        let lines = size_bytes / LINE;
        let sets = (lines as usize / ways).max(1);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Level { sets: vec![Vec::with_capacity(ways); sets], ways, set_mask: sets as u64 - 1 }
    }

    /// Accesses a *line number*; returns `true` on hit, inserting on miss.
    fn access(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let tag = line; // the full line number doubles as the tag
        let stack = &mut self.sets[set];
        if let Some(pos) = stack.iter().position(|&t| t == tag) {
            let t = stack.remove(pos);
            stack.push(t);
            true
        } else {
            if stack.len() == self.ways {
                stack.remove(0);
            }
            stack.push(tag);
            false
        }
    }
}

/// A two-level (L1D + L2) cache with LRU replacement.
///
/// # Example
///
/// ```
/// use confbench_vmm::CacheSim;
///
/// let mut cache = CacheSim::new(0);
/// cache.touch(0x1000, 64, true);
/// let stats = cache.stats();
/// assert_eq!(stats.references, 1);
/// assert_eq!(stats.misses, 1); // cold miss
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    salt: u64,
    stats: CacheStats,
}

/// Cap on simulated line touches per memory op; larger runs are sampled with
/// a stride and the counts scaled, keeping simulation time bounded while
/// preserving hit-rate structure.
const MAX_LINES_PER_OP: u64 = 4096;

impl CacheSim {
    /// Creates a 32-KiB/8-way L1D over a 1-MiB/16-way L2, with the given
    /// page-color `salt` (0 = identity frame mapping).
    pub fn new(salt: u64) -> Self {
        CacheSim {
            l1: Level::new(32 << 10, 8),
            l2: Level::new(1 << 20, 16),
            salt,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Feeds one sequential access run of `bytes` at `addr`. `_write` is
    /// kept for future dirty-line modelling; reads and writes currently cost
    /// the same. Returns (refs, l2_hits, misses) deltas for cost charging.
    pub fn touch(&mut self, addr: u64, bytes: u64, _write: bool) -> CacheStats {
        if bytes == 0 {
            return CacheStats::default();
        }
        let first = addr / LINE;
        let last = (addr + bytes - 1) / LINE;
        let total_lines = last - first + 1;
        let (stride, scale) = if total_lines > MAX_LINES_PER_OP {
            let stride = total_lines.div_ceil(MAX_LINES_PER_OP);
            (stride, stride)
        } else {
            (1, 1)
        };
        let mut delta = CacheStats::default();
        let mut line = first;
        while line <= last {
            let colored = self.color(line * LINE) / LINE;
            delta.references += scale;
            if !self.l1.access(colored) {
                if self.l2.access(colored) {
                    delta.l2_hits += scale;
                } else {
                    delta.misses += scale;
                }
            }
            line += stride;
        }
        self.stats.references += delta.references;
        self.stats.l2_hits += delta.l2_hits;
        self.stats.misses += delta.misses;
        delta
    }

    /// Replays an [`Op`]'s memory behaviour, ignoring non-memory ops.
    pub fn touch_op(&mut self, op: &Op) -> CacheStats {
        match op {
            Op::MemRead { addr, bytes } => self.touch(*addr, *bytes, false),
            Op::MemWrite { addr, bytes } => self.touch(*addr, *bytes, true),
            _ => CacheStats::default(),
        }
    }

    /// Page-coloring transform: XOR a salt-derived color into the page
    /// number (the physical frame assignment differs in a confidential VM).
    fn color(&self, addr: u64) -> u64 {
        if self.salt == 0 {
            return addr;
        }
        let page = addr >> 12;
        // Mix the salt into low page bits, which select L2 sets.
        let color = (page.wrapping_mul(self.salt | 1) >> 7) & 0x1f;
        ((page ^ color) << 12) | (addr & 0xfff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_touches_hit_l1() {
        let mut c = CacheSim::new(0);
        c.touch(0, 64, false);
        let d = c.touch(0, 64, false);
        assert_eq!(d.misses, 0);
        assert_eq!(c.stats().references, 2);
        assert_eq!(c.stats().l1_hits(), 1);
    }

    #[test]
    fn sequential_run_counts_lines() {
        let mut c = CacheSim::new(0);
        let d = c.touch(0, 640, false);
        assert_eq!(d.references, 10);
        assert_eq!(d.misses, 10);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = CacheSim::new(0);
        // Fill well beyond L1 (32 KiB) but within L2 (1 MiB).
        c.touch(0, 128 << 10, false);
        let before = c.stats();
        // Second pass: L1 can't hold it, L2 can.
        let d = c.touch(0, 128 << 10, false);
        assert!(d.l2_hits > d.misses, "second pass should mostly hit L2: {d:?}");
        assert!(before.misses > 0);
    }

    #[test]
    fn dram_misses_beyond_l2() {
        let mut c = CacheSim::new(0);
        c.touch(0, 8 << 20, false);
        let d = c.touch(0, 8 << 20, false);
        // 8 MiB cannot fit in 1 MiB L2: mostly DRAM again.
        assert!(d.misses > d.l2_hits);
    }

    #[test]
    fn sampling_preserves_reference_scale() {
        let mut c = CacheSim::new(0);
        let d = c.touch(0, 64 << 20, false); // 1M lines, sampled
        let lines = (64u64 << 20) / 64;
        // Scaled count within 1% of the true line count.
        assert!((d.references as f64 - lines as f64).abs() / (lines as f64) < 0.01);
    }

    #[test]
    fn salt_changes_set_mapping_not_volume() {
        let mut plain = CacheSim::new(0);
        let mut salted = CacheSim::new(0x5a5a_0001);
        // A strided pattern prone to set conflicts: 160 lines hammering few
        // L2 sets. Identity mapping thrashes; coloring spreads the sets.
        for _ in 0..2 {
            for i in 0..160u64 {
                plain.touch(i * 8192, 64, false);
                salted.touch(i * 8192, 64, false);
            }
        }
        let (p, s) = (plain.stats(), salted.stats());
        assert_eq!(p.references, s.references);
        // Coloring must change the miss pattern for this conflict-heavy
        // stream (direction depends on the pattern; inequality is the point).
        assert_ne!(p.misses, s.misses);
    }

    #[test]
    fn zero_byte_touch_is_noop() {
        let mut c = CacheSim::new(0);
        assert_eq!(c.touch(100, 0, true), CacheStats::default());
        assert_eq!(c.stats().references, 0);
    }

    #[test]
    fn touch_op_ignores_non_memory() {
        let mut c = CacheSim::new(0);
        assert_eq!(c.touch_op(&Op::Cpu(5)), CacheStats::default());
        let d = c.touch_op(&Op::MemRead { addr: 0, bytes: 64 });
        assert_eq!(d.references, 1);
    }
}

//! ARM CCA Realm Management Monitor model, plus the FVP simulation layer.
//!
//! Realms live in the realm world together with the RMM (paper §II, Fig.
//! 1c). The host drives realm lifecycle through the Realm Management
//! Interface (RMI); realms request services through the Realm Services
//! Interface (RSI). Because no CCA silicon existed at the time of the paper,
//! everything runs inside ARM's Fixed Virtual Platform simulator — modelled
//! here as [`Fvp`], a uniform slowdown plus timing jitter that the paper
//! identifies as the dominant factor in its CCA numbers.

use std::collections::HashMap;
use std::fmt;

use confbench_crypto::{Digest, Sha256};
use confbench_memsim::{GranuleError, GranuleTable, PageNum, StageTwoTable};

/// Realm descriptor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RealmId(pub u32);

/// Lifecycle state of a realm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealmPhase {
    /// Created; data granules may be added and measured.
    New,
    /// Activated; runnable, measurement sealed.
    Active,
}

/// Errors from RMI/RSI calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcaError {
    /// Unknown realm.
    NoSuchRealm(RealmId),
    /// Operation invalid in the realm's phase.
    WrongPhase(RealmId),
    /// Granule-table failure.
    Granule(GranuleError),
    /// Attestation is not available on the FVP testbed (paper §IV-B leaves
    /// CCA out of the attestation experiments for this reason).
    AttestationUnsupported,
}

impl fmt::Display for CcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcaError::NoSuchRealm(r) => write!(f, "cca: no such realm {r:?}"),
            CcaError::WrongPhase(r) => write!(f, "cca: realm {r:?} in wrong phase"),
            CcaError::Granule(e) => write!(f, "cca: {e}"),
            CcaError::AttestationUnsupported => {
                f.write_str("cca: attestation unsupported on the FVP simulator")
            }
        }
    }
}

impl std::error::Error for CcaError {}

impl From<GranuleError> for CcaError {
    fn from(e: GranuleError) -> Self {
        CcaError::Granule(e)
    }
}

#[derive(Debug)]
struct Realm {
    phase: RealmPhase,
    rim_state: Sha256, // realm initial measurement
    rim: Option<Digest>,
    stage2: StageTwoTable,
}

/// The Realm Management Monitor of one (simulated) CCA host.
///
/// # Example
///
/// ```
/// use confbench_vmm::{RealmId, Rmm};
/// use confbench_memsim::PageNum;
///
/// let mut rmm = Rmm::new(256);
/// let realm = RealmId(1);
/// rmm.rmi_realm_create(realm).unwrap();
/// rmm.rmi_data_create(realm, PageNum(0x10), PageNum(3)).unwrap();
/// let rim = rmm.rmi_realm_activate(realm).unwrap();
/// assert_eq!(rmm.rim(realm).unwrap(), rim);
/// ```
#[derive(Debug)]
pub struct Rmm {
    gpt: GranuleTable,
    realms: HashMap<RealmId, Realm>,
    rmi_calls: u64,
    rsi_calls: u64,
}

impl Rmm {
    /// Creates an RMM over a GPT of `granules` granules.
    pub fn new(granules: u64) -> Self {
        Rmm { gpt: GranuleTable::new(granules), realms: HashMap::new(), rmi_calls: 0, rsi_calls: 0 }
    }

    /// RMI calls serviced.
    pub fn rmi_calls(&self) -> u64 {
        self.rmi_calls
    }

    /// RSI calls serviced.
    pub fn rsi_calls(&self) -> u64 {
        self.rsi_calls
    }

    /// Access to the granule protection table.
    pub fn gpt_mut(&mut self) -> &mut GranuleTable {
        &mut self.gpt
    }

    /// `RMI_REALM_CREATE`.
    ///
    /// # Errors
    ///
    /// [`CcaError::WrongPhase`] if the id exists.
    pub fn rmi_realm_create(&mut self, rd: RealmId) -> Result<(), CcaError> {
        self.rmi_calls += 1;
        if self.realms.contains_key(&rd) {
            return Err(CcaError::WrongPhase(rd));
        }
        let mut rim_state = Sha256::new();
        rim_state.update(b"confbench-cca-rim-v1");
        self.realms.insert(
            rd,
            Realm { phase: RealmPhase::New, rim_state, rim: None, stage2: StageTwoTable::new() },
        );
        Ok(())
    }

    /// `RMI_DATA_CREATE` — delegate granule `g`, assign it to the realm, map
    /// it at `ipa`, and extend the realm initial measurement.
    ///
    /// # Errors
    ///
    /// Phase and granule errors.
    pub fn rmi_data_create(
        &mut self,
        rd: RealmId,
        ipa: PageNum,
        g: PageNum,
    ) -> Result<(), CcaError> {
        self.rmi_calls += 1;
        let realm = self.realms.get_mut(&rd).ok_or(CcaError::NoSuchRealm(rd))?;
        if realm.phase != RealmPhase::New {
            return Err(CcaError::WrongPhase(rd));
        }
        self.gpt.delegate(g)?;
        self.gpt.assign_to_realm(g, rd.0)?;
        realm.stage2.map(ipa, g);
        realm.rim_state.update(b"DATA.CREATE");
        realm.rim_state.update(&ipa.0.to_be_bytes());
        Ok(())
    }

    /// `RMI_REALM_ACTIVATE` — seal the measurement; realm becomes runnable.
    ///
    /// # Errors
    ///
    /// Phase errors.
    pub fn rmi_realm_activate(&mut self, rd: RealmId) -> Result<Digest, CcaError> {
        self.rmi_calls += 1;
        let realm = self.realms.get_mut(&rd).ok_or(CcaError::NoSuchRealm(rd))?;
        if realm.phase != RealmPhase::New {
            return Err(CcaError::WrongPhase(rd));
        }
        let digest = realm.rim_state.clone().finalize();
        realm.rim = Some(digest);
        realm.phase = RealmPhase::Active;
        Ok(digest)
    }

    /// Runtime mapping of an additional data granule into an active realm
    /// (`RMI_GRANULE_DELEGATE` + `RMI_RTT_MAP`; unmeasured).
    ///
    /// # Errors
    ///
    /// Phase and granule errors.
    pub fn map_runtime_granule(
        &mut self,
        rd: RealmId,
        ipa: PageNum,
        g: PageNum,
    ) -> Result<(), CcaError> {
        self.rmi_calls += 1;
        let realm = self.realms.get_mut(&rd).ok_or(CcaError::NoSuchRealm(rd))?;
        if realm.phase != RealmPhase::Active {
            return Err(CcaError::WrongPhase(rd));
        }
        self.gpt.delegate(g)?;
        self.gpt.assign_to_realm(g, rd.0)?;
        realm.stage2.map(ipa, g);
        Ok(())
    }

    /// Records an RSI service call from a realm (exit accounting).
    pub fn record_rsi_call(&mut self) {
        self.rsi_calls += 1;
    }

    /// `RSI_ATTESTATION_TOKEN_INIT` — unavailable on the FVP testbed.
    ///
    /// # Errors
    ///
    /// Always [`CcaError::AttestationUnsupported`], matching the paper's
    /// setup.
    pub fn rsi_attestation_token(&mut self, _rd: RealmId) -> Result<Vec<u8>, CcaError> {
        self.rsi_calls += 1;
        Err(CcaError::AttestationUnsupported)
    }

    /// The sealed realm initial measurement, if activated.
    ///
    /// # Errors
    ///
    /// [`CcaError::NoSuchRealm`] / [`CcaError::WrongPhase`].
    pub fn rim(&self, rd: RealmId) -> Result<Digest, CcaError> {
        let realm = self.realms.get(&rd).ok_or(CcaError::NoSuchRealm(rd))?;
        realm.rim.ok_or(CcaError::WrongPhase(rd))
    }

    /// Stage-2 table of a realm, for fault accounting.
    ///
    /// # Errors
    ///
    /// [`CcaError::NoSuchRealm`].
    pub fn stage2_mut(&mut self, rd: RealmId) -> Result<&mut StageTwoTable, CcaError> {
        Ok(&mut self.realms.get_mut(&rd).ok_or(CcaError::NoSuchRealm(rd))?.stage2)
    }
}

/// The ARM Fixed Virtual Platform simulation layer.
///
/// ARM claims FVP runs "at speeds comparable to the real hardware", but the
/// paper finds the simulated environment dominates CCA's measured overheads
/// and treats only intra-CCA comparisons as sound. The model makes the layer
/// explicit so the `bench` crate can sweep `slowdown` and separate the
/// simulator tax from the realm tax (the paper's open question).
#[derive(Debug, Clone, PartialEq)]
pub struct Fvp {
    /// Uniform multiplier applied to all virtual cycles.
    pub slowdown: f64,
    /// Relative jitter the simulator's timing introduces.
    pub jitter_rel_std: f64,
}

impl Fvp {
    /// The default configuration used by the figures (matching
    /// `CostModel::cca_*`).
    pub fn reference() -> Self {
        Fvp { slowdown: 9.0, jitter_rel_std: 0.06 }
    }
}

impl Default for Fvp {
    fn default() -> Self {
        Fvp::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_realm(rmm: &mut Rmm, rd: RealmId, pages: u64) -> Digest {
        rmm.rmi_realm_create(rd).unwrap();
        for i in 0..pages {
            rmm.rmi_data_create(rd, PageNum(0x100 + i), PageNum(rd.0 as u64 * 32 + i)).unwrap();
        }
        rmm.rmi_realm_activate(rd).unwrap()
    }

    #[test]
    fn identical_realms_measure_equal() {
        let mut rmm = Rmm::new(256);
        let a = active_realm(&mut rmm, RealmId(1), 3);
        let b = active_realm(&mut rmm, RealmId(2), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn data_create_only_before_activation() {
        let mut rmm = Rmm::new(256);
        active_realm(&mut rmm, RealmId(1), 1);
        assert_eq!(
            rmm.rmi_data_create(RealmId(1), PageNum(0x200), PageNum(10)),
            Err(CcaError::WrongPhase(RealmId(1)))
        );
        // But runtime mapping works after activation.
        rmm.map_runtime_granule(RealmId(1), PageNum(0x200), PageNum(10)).unwrap();
    }

    #[test]
    fn runtime_mapping_requires_active_realm() {
        let mut rmm = Rmm::new(256);
        rmm.rmi_realm_create(RealmId(1)).unwrap();
        assert_eq!(
            rmm.map_runtime_granule(RealmId(1), PageNum(0x200), PageNum(10)),
            Err(CcaError::WrongPhase(RealmId(1)))
        );
    }

    #[test]
    fn granules_tracked_in_gpt() {
        let mut rmm = Rmm::new(256);
        active_realm(&mut rmm, RealmId(1), 4);
        assert_eq!(rmm.gpt_mut().granules_of_realm(1), 4);
    }

    #[test]
    fn attestation_unsupported_on_fvp() {
        let mut rmm = Rmm::new(64);
        active_realm(&mut rmm, RealmId(1), 1);
        assert_eq!(rmm.rsi_attestation_token(RealmId(1)), Err(CcaError::AttestationUnsupported));
    }

    #[test]
    fn rim_unavailable_before_activation() {
        let mut rmm = Rmm::new(16);
        rmm.rmi_realm_create(RealmId(1)).unwrap();
        assert_eq!(rmm.rim(RealmId(1)), Err(CcaError::WrongPhase(RealmId(1))));
    }

    #[test]
    fn call_counters() {
        let mut rmm = Rmm::new(64);
        active_realm(&mut rmm, RealmId(1), 2); // 1 create + 2 data + 1 activate
        assert_eq!(rmm.rmi_calls(), 4);
        rmm.record_rsi_call();
        let _ = rmm.rsi_attestation_token(RealmId(1));
        assert_eq!(rmm.rsi_calls(), 2);
    }

    #[test]
    fn granule_double_delegate_surfaces() {
        let mut rmm = Rmm::new(64);
        rmm.rmi_realm_create(RealmId(1)).unwrap();
        rmm.rmi_realm_create(RealmId(2)).unwrap();
        rmm.rmi_data_create(RealmId(1), PageNum(0), PageNum(5)).unwrap();
        assert!(matches!(
            rmm.rmi_data_create(RealmId(2), PageNum(0), PageNum(5)),
            Err(CcaError::Granule(_))
        ));
    }

    #[test]
    fn fvp_reference_parameters() {
        let fvp = Fvp::reference();
        assert!(fvp.slowdown > 1.0);
        assert!(fvp.jitter_rel_std > 0.0);
        assert_eq!(Fvp::default(), fvp);
    }
}

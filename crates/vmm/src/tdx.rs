//! Intel TDX module model.
//!
//! The TDX module runs in SEAM root mode and is the only software allowed to
//! manage trust-domain state (paper §II, Fig. 1a). The VMM talks to it with
//! `SEAMCALL`s; the guest TD with `TDCALL`s. This model implements the small
//! slice of the interface ConfBench exercises: TD lifecycle with measured
//! page adds, runtime page acceptance, and `TDG.MR.REPORT` for attestation.

use std::collections::HashMap;
use std::fmt;

use confbench_crypto::{Digest, Sha256};
use confbench_memsim::{PageNum, SecureEpt, SeptError};

/// Identifier of a trust domain on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TdId(pub u32);

/// Lifecycle phase of a TD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdPhase {
    /// Created, build in progress (pages may be ADDed and measured).
    Building,
    /// Measurement finalized; TD is runnable.
    Runnable,
}

/// A TDREPORT structure (the local-evidence input to quote generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdReport {
    /// Build-time measurement of the initial TD image.
    pub mrtd: Digest,
    /// Runtime-extendable measurement registers.
    pub rtmr: [Digest; 4],
    /// 64 bytes of caller-chosen report data (nonce binding).
    pub report_data: [u8; 64],
    /// TCB version string of the module that produced the report.
    pub tcb_version: String,
}

/// Errors returned by module calls, mirroring TDX status codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdxError {
    /// Unknown TD id.
    NoSuchTd(TdId),
    /// Operation invalid in the TD's current phase.
    WrongPhase(TdId),
    /// Secure-EPT failure.
    Sept(SeptError),
    /// RTMR index out of range.
    BadRtmrIndex(usize),
}

impl fmt::Display for TdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdxError::NoSuchTd(id) => write!(f, "tdx: no such td {id:?}"),
            TdxError::WrongPhase(id) => write!(f, "tdx: td {id:?} in wrong phase"),
            TdxError::Sept(e) => write!(f, "tdx: sept: {e}"),
            TdxError::BadRtmrIndex(i) => write!(f, "tdx: bad rtmr index {i}"),
        }
    }
}

impl std::error::Error for TdxError {}

impl From<SeptError> for TdxError {
    fn from(e: SeptError) -> Self {
        TdxError::Sept(e)
    }
}

#[derive(Debug)]
struct Td {
    phase: TdPhase,
    sept: SecureEpt,
    mrtd_state: Sha256,
    mrtd: Option<Digest>,
    rtmr: [Digest; 4],
}

/// The TDX module of one host.
///
/// # Example
///
/// ```
/// use confbench_vmm::{TdId, TdxModule};
/// use confbench_memsim::PageNum;
///
/// let mut module = TdxModule::new("TDX_1.5.05.46.698");
/// let td = TdId(1);
/// module.tdh_mng_create(td).unwrap();
/// module.tdh_mem_page_add(td, PageNum(0x10), PageNum(0x90)).unwrap();
/// module.tdh_mr_finalize(td).unwrap();
/// let report = module.tdg_mr_report(td, [0u8; 64]).unwrap();
/// assert_eq!(report.tcb_version, "TDX_1.5.05.46.698");
/// ```
#[derive(Debug)]
pub struct TdxModule {
    tds: HashMap<TdId, Td>,
    tcb_version: String,
    seamcalls: u64,
    tdcalls: u64,
}

impl TdxModule {
    /// Loads a module with the given TCB version string. The paper's testbed
    /// runs `TDX_1.5.05.46.698` — the firmware that fixed the unexplained
    /// 10× slowdowns they initially hit (§III-B).
    pub fn new(tcb_version: impl Into<String>) -> Self {
        TdxModule { tds: HashMap::new(), tcb_version: tcb_version.into(), seamcalls: 0, tdcalls: 0 }
    }

    /// TCB version string.
    pub fn tcb_version(&self) -> &str {
        &self.tcb_version
    }

    /// SEAMCALLs serviced so far.
    pub fn seamcalls(&self) -> u64 {
        self.seamcalls
    }

    /// TDCALLs serviced so far.
    pub fn tdcalls(&self) -> u64 {
        self.tdcalls
    }

    /// `TDH.MNG.CREATE` — create a TD in the building phase.
    ///
    /// # Errors
    ///
    /// [`TdxError::WrongPhase`] if the id already exists.
    pub fn tdh_mng_create(&mut self, id: TdId) -> Result<(), TdxError> {
        self.seamcalls += 1;
        if self.tds.contains_key(&id) {
            return Err(TdxError::WrongPhase(id));
        }
        self.tds.insert(
            id,
            Td {
                phase: TdPhase::Building,
                sept: SecureEpt::new(),
                mrtd_state: mrtd_seed(),
                mrtd: None,
                rtmr: [Digest([0; 32]); 4],
            },
        );
        Ok(())
    }

    /// `TDH.MEM.PAGE.ADD` — map an initial-image page and extend MRTD.
    ///
    /// # Errors
    ///
    /// [`TdxError::WrongPhase`] after finalization; SEPT errors otherwise.
    pub fn tdh_mem_page_add(
        &mut self,
        id: TdId,
        gpa: PageNum,
        hpa: PageNum,
    ) -> Result<(), TdxError> {
        self.seamcalls += 1;
        let td = self.td_mut(id)?;
        if td.phase != TdPhase::Building {
            return Err(TdxError::WrongPhase(id));
        }
        td.sept.add(gpa, hpa)?;
        td.mrtd_state.update(b"PAGE.ADD");
        td.mrtd_state.update(&gpa.0.to_be_bytes());
        Ok(())
    }

    /// `TDH.MR.FINALIZE` — seal MRTD and make the TD runnable.
    ///
    /// # Errors
    ///
    /// [`TdxError::WrongPhase`] if already finalized.
    pub fn tdh_mr_finalize(&mut self, id: TdId) -> Result<Digest, TdxError> {
        self.seamcalls += 1;
        let td = self.td_mut(id)?;
        if td.phase != TdPhase::Building {
            return Err(TdxError::WrongPhase(id));
        }
        let digest = td.mrtd_state.clone().finalize();
        td.mrtd = Some(digest);
        td.phase = TdPhase::Runnable;
        Ok(digest)
    }

    /// `TDH.MEM.PAGE.AUG` — map a runtime page, pending guest acceptance.
    ///
    /// # Errors
    ///
    /// [`TdxError::WrongPhase`] before finalization; SEPT errors otherwise.
    pub fn tdh_mem_page_aug(
        &mut self,
        id: TdId,
        gpa: PageNum,
        hpa: PageNum,
    ) -> Result<(), TdxError> {
        self.seamcalls += 1;
        let td = self.td_mut(id)?;
        if td.phase != TdPhase::Runnable {
            return Err(TdxError::WrongPhase(id));
        }
        td.sept.aug(gpa, hpa)?;
        Ok(())
    }

    /// Guest `TDG.MEM.PAGE.ACCEPT`.
    ///
    /// # Errors
    ///
    /// SEPT errors (not mapped / not pending).
    pub fn tdg_mem_page_accept(&mut self, id: TdId, gpa: PageNum) -> Result<(), TdxError> {
        self.tdcalls += 1;
        let td = self.td_mut(id)?;
        td.sept.accept(gpa)?;
        Ok(())
    }

    /// Guest `TDG.MR.RTMR.EXTEND` — extend a runtime measurement register.
    ///
    /// # Errors
    ///
    /// [`TdxError::BadRtmrIndex`] for indexes ≥ 4.
    pub fn tdg_mr_rtmr_extend(
        &mut self,
        id: TdId,
        index: usize,
        data: &[u8],
    ) -> Result<(), TdxError> {
        self.tdcalls += 1;
        if index >= 4 {
            return Err(TdxError::BadRtmrIndex(index));
        }
        let td = self.td_mut(id)?;
        let old = td.rtmr[index];
        td.rtmr[index] = Sha256::digest_parts(&[old.as_bytes(), data]);
        Ok(())
    }

    /// Guest `TDG.MR.REPORT` — produce a TDREPORT bound to `report_data`.
    ///
    /// # Errors
    ///
    /// [`TdxError::WrongPhase`] if the TD is not runnable.
    pub fn tdg_mr_report(&mut self, id: TdId, report_data: [u8; 64]) -> Result<TdReport, TdxError> {
        self.tdcalls += 1;
        let tcb = self.tcb_version.clone();
        let td = self.td_mut(id)?;
        let mrtd = td.mrtd.ok_or(TdxError::WrongPhase(id))?;
        Ok(TdReport { mrtd, rtmr: td.rtmr, report_data, tcb_version: tcb })
    }

    /// Access to a TD's secure EPT (for the VM model's page machinery).
    ///
    /// # Errors
    ///
    /// [`TdxError::NoSuchTd`] if absent.
    pub fn sept_mut(&mut self, id: TdId) -> Result<&mut SecureEpt, TdxError> {
        Ok(&mut self.td_mut(id)?.sept)
    }

    fn td_mut(&mut self, id: TdId) -> Result<&mut Td, TdxError> {
        self.tds.get_mut(&id).ok_or(TdxError::NoSuchTd(id))
    }
}

fn mrtd_seed() -> Sha256 {
    let mut h = Sha256::new();
    h.update(b"confbench-mrtd-v1");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built_td(module: &mut TdxModule, id: TdId, pages: u64) -> Digest {
        module.tdh_mng_create(id).unwrap();
        for i in 0..pages {
            module.tdh_mem_page_add(id, PageNum(i), PageNum(0x1000 + i)).unwrap();
        }
        module.tdh_mr_finalize(id).unwrap()
    }

    #[test]
    fn identical_images_produce_identical_mrtd() {
        let mut m = TdxModule::new("v1");
        let a = built_td(&mut m, TdId(1), 4);
        let b = built_td(&mut m, TdId(2), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_images_produce_different_mrtd() {
        let mut m = TdxModule::new("v1");
        let a = built_td(&mut m, TdId(1), 4);
        let b = built_td(&mut m, TdId(2), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn no_page_add_after_finalize() {
        let mut m = TdxModule::new("v1");
        built_td(&mut m, TdId(1), 1);
        assert_eq!(
            m.tdh_mem_page_add(TdId(1), PageNum(9), PageNum(99)),
            Err(TdxError::WrongPhase(TdId(1)))
        );
    }

    #[test]
    fn aug_requires_runnable_and_accept() {
        let mut m = TdxModule::new("v1");
        m.tdh_mng_create(TdId(1)).unwrap();
        assert_eq!(
            m.tdh_mem_page_aug(TdId(1), PageNum(5), PageNum(50)),
            Err(TdxError::WrongPhase(TdId(1)))
        );
        m.tdh_mr_finalize(TdId(1)).unwrap();
        m.tdh_mem_page_aug(TdId(1), PageNum(5), PageNum(50)).unwrap();
        m.tdg_mem_page_accept(TdId(1), PageNum(5)).unwrap();
        assert!(m.tdg_mem_page_accept(TdId(1), PageNum(5)).is_err());
    }

    #[test]
    fn report_reflects_rtmr_extensions() {
        let mut m = TdxModule::new("v1");
        built_td(&mut m, TdId(1), 2);
        let r0 = m.tdg_mr_report(TdId(1), [7; 64]).unwrap();
        m.tdg_mr_rtmr_extend(TdId(1), 2, b"event").unwrap();
        let r1 = m.tdg_mr_report(TdId(1), [7; 64]).unwrap();
        assert_eq!(r0.mrtd, r1.mrtd);
        assert_ne!(r0.rtmr[2], r1.rtmr[2]);
        assert_eq!(r0.rtmr[0], r1.rtmr[0]);
        assert_eq!(r1.report_data, [7; 64]);
    }

    #[test]
    fn rtmr_index_validated() {
        let mut m = TdxModule::new("v1");
        built_td(&mut m, TdId(1), 1);
        assert_eq!(m.tdg_mr_rtmr_extend(TdId(1), 4, b"x"), Err(TdxError::BadRtmrIndex(4)));
    }

    #[test]
    fn report_requires_finalized_td() {
        let mut m = TdxModule::new("v1");
        m.tdh_mng_create(TdId(1)).unwrap();
        assert_eq!(m.tdg_mr_report(TdId(1), [0; 64]), Err(TdxError::WrongPhase(TdId(1))));
    }

    #[test]
    fn call_counters_track_interface_crossings() {
        let mut m = TdxModule::new("v1");
        built_td(&mut m, TdId(1), 3); // 1 create + 3 add + 1 finalize seamcalls
        assert_eq!(m.seamcalls(), 5);
        m.tdg_mr_report(TdId(1), [0; 64]).unwrap();
        assert_eq!(m.tdcalls(), 1);
    }

    #[test]
    fn unknown_td_rejected() {
        let mut m = TdxModule::new("v1");
        assert_eq!(m.tdg_mr_report(TdId(9), [0; 64]), Err(TdxError::NoSuchTd(TdId(9))));
    }
}

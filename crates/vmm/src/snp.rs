//! AMD SEV-SNP firmware / secure-processor model.
//!
//! SNP guests are launched by the hypervisor through the AMD Secure
//! Processor (AMD-SP), a dedicated coprocessor that measures the initial
//! image and later signs attestation reports with the chip-unique VCEK
//! (paper §II). Unlike TDX, report generation is a *local* firmware call —
//! no network is involved until the relying party checks certificates, and
//! even those come from the host — which is why the paper finds SNP
//! attestation much faster than TDX's (Fig. 5).

use std::collections::HashMap;
use std::fmt;

use confbench_crypto::{Digest, Sha256, Signature, SigningKey, VerifyingKey};
use confbench_memsim::{PageNum, Rmp, RmpError};

/// Lifecycle phase of an SNP guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnpPhase {
    /// `SNP_LAUNCH_START`ed; pages may be added and measured.
    Launching,
    /// `SNP_LAUNCH_FINISH`ed; guest is running.
    Running,
}

/// An SNP attestation report, signed by the AMD-SP with the VCEK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpReport {
    /// Launch measurement of the guest image.
    pub measurement: Digest,
    /// 64 bytes of guest-chosen report data.
    pub report_data: [u8; 64],
    /// Chip identifier (selects the VCEK).
    pub chip_id: u64,
    /// Reported TCB version.
    pub tcb_version: u64,
    /// VCEK signature over the serialized report body.
    pub signature: Signature,
}

impl SnpReport {
    /// The byte string the VCEK signature covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(32 + 64 + 16);
        v.extend_from_slice(self.measurement.as_bytes());
        v.extend_from_slice(&self.report_data);
        v.extend_from_slice(&self.chip_id.to_be_bytes());
        v.extend_from_slice(&self.tcb_version.to_be_bytes());
        v
    }
}

/// Errors returned by the firmware model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnpError {
    /// Unknown guest ASID.
    NoSuchGuest(u32),
    /// Operation invalid in the guest's phase.
    WrongPhase(u32),
    /// RMP violation during launch.
    Rmp(RmpError),
}

impl fmt::Display for SnpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnpError::NoSuchGuest(a) => write!(f, "snp: no such guest asid {a}"),
            SnpError::WrongPhase(a) => write!(f, "snp: guest {a} in wrong phase"),
            SnpError::Rmp(e) => write!(f, "snp: {e}"),
        }
    }
}

impl std::error::Error for SnpError {}

impl From<RmpError> for SnpError {
    fn from(e: RmpError) -> Self {
        SnpError::Rmp(e)
    }
}

#[derive(Debug)]
struct SnpGuest {
    phase: SnpPhase,
    measurement_state: Sha256,
    measurement: Option<Digest>,
}

/// The AMD Secure Processor plus SNP firmware state for one host.
///
/// # Example
///
/// ```
/// use confbench_vmm::AmdSp;
/// use confbench_memsim::PageNum;
///
/// let mut sp = AmdSp::new(0xc0ffee, 7);
/// sp.launch_start(1).unwrap();
/// sp.launch_update(1, PageNum(0)).unwrap();
/// sp.launch_finish(1).unwrap();
/// let report = sp.request_report(1, [0u8; 64]).unwrap();
/// sp.vcek_public().verify(&report.signed_bytes(), &report.signature).unwrap();
/// ```
#[derive(Debug)]
pub struct AmdSp {
    chip_id: u64,
    tcb_version: u64,
    vcek: SigningKey,
    rmp: Rmp,
    guests: HashMap<u32, SnpGuest>,
    ghcb_exits: u64,
    reports_issued: u64,
}

/// Physical pages covered by the host RMP in the model (enough for the
/// mechanism-exercise slice of allocations; analytic costs cover the rest).
const RMP_PAGES: u64 = 1 << 16;

impl AmdSp {
    /// Creates a secure processor with a chip-unique VCEK derived from
    /// `chip_id`, reporting `tcb_version`.
    pub fn new(chip_id: u64, tcb_version: u64) -> Self {
        AmdSp {
            chip_id,
            tcb_version,
            vcek: SigningKey::from_seed(chip_id ^ 0x56_43_45_4b /* "VCEK" */),
            rmp: Rmp::new(RMP_PAGES),
            guests: HashMap::new(),
            ghcb_exits: 0,
            reports_issued: 0,
        }
    }

    /// The chip identifier.
    pub fn chip_id(&self) -> u64 {
        self.chip_id
    }

    /// The VCEK public key (distributed via the AMD KDS cert chain; in the
    /// model the host hands it out directly, as `snpguest` fetches it from
    /// the hardware).
    pub fn vcek_public(&self) -> VerifyingKey {
        self.vcek.verifying_key()
    }

    /// Reports issued so far.
    pub fn reports_issued(&self) -> u64 {
        self.reports_issued
    }

    /// GHCB guest exits recorded so far.
    pub fn ghcb_exits(&self) -> u64 {
        self.ghcb_exits
    }

    /// Access to the host RMP.
    pub fn rmp_mut(&mut self) -> &mut Rmp {
        &mut self.rmp
    }

    /// `SNP_LAUNCH_START`.
    ///
    /// # Errors
    ///
    /// [`SnpError::WrongPhase`] if the ASID is in use.
    pub fn launch_start(&mut self, asid: u32) -> Result<(), SnpError> {
        if self.guests.contains_key(&asid) {
            return Err(SnpError::WrongPhase(asid));
        }
        let mut state = Sha256::new();
        state.update(b"confbench-snp-launch-v1");
        self.guests.insert(
            asid,
            SnpGuest { phase: SnpPhase::Launching, measurement_state: state, measurement: None },
        );
        Ok(())
    }

    /// `SNP_LAUNCH_UPDATE` — assign a page to the guest in the RMP and fold
    /// it into the launch measurement.
    ///
    /// # Errors
    ///
    /// Phase and RMP errors.
    pub fn launch_update(&mut self, asid: u32, page: PageNum) -> Result<(), SnpError> {
        let guest = self.guests.get_mut(&asid).ok_or(SnpError::NoSuchGuest(asid))?;
        if guest.phase != SnpPhase::Launching {
            return Err(SnpError::WrongPhase(asid));
        }
        self.rmp.assign(page, asid)?;
        guest.measurement_state.update(b"LAUNCH.UPDATE");
        guest.measurement_state.update(&page.0.to_be_bytes());
        Ok(())
    }

    /// `SNP_LAUNCH_FINISH` — seal the measurement; the guest becomes
    /// runnable.
    ///
    /// # Errors
    ///
    /// Phase errors.
    pub fn launch_finish(&mut self, asid: u32) -> Result<Digest, SnpError> {
        let guest = self.guests.get_mut(&asid).ok_or(SnpError::NoSuchGuest(asid))?;
        if guest.phase != SnpPhase::Launching {
            return Err(SnpError::WrongPhase(asid));
        }
        let digest = guest.measurement_state.clone().finalize();
        guest.measurement = Some(digest);
        guest.phase = SnpPhase::Running;
        Ok(digest)
    }

    /// Records a GHCB-mediated guest exit (the SNP world-switch path).
    pub fn record_ghcb_exit(&mut self) {
        self.ghcb_exits += 1;
    }

    /// Guest request `MSG_REPORT_REQ`: produce a VCEK-signed attestation
    /// report bound to `report_data`.
    ///
    /// # Errors
    ///
    /// [`SnpError::WrongPhase`] unless the guest is running.
    pub fn request_report(
        &mut self,
        asid: u32,
        report_data: [u8; 64],
    ) -> Result<SnpReport, SnpError> {
        let guest = self.guests.get(&asid).ok_or(SnpError::NoSuchGuest(asid))?;
        let measurement = guest.measurement.ok_or(SnpError::WrongPhase(asid))?;
        let mut report = SnpReport {
            measurement,
            report_data,
            chip_id: self.chip_id,
            tcb_version: self.tcb_version,
            signature: Signature { e: 0, s: 0 },
        };
        report.signature = self.vcek.sign(&report.signed_bytes());
        self.reports_issued += 1;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launched(sp: &mut AmdSp, asid: u32, pages: u64) -> Digest {
        sp.launch_start(asid).unwrap();
        for i in 0..pages {
            sp.launch_update(asid, PageNum(asid as u64 * 100 + i)).unwrap();
        }
        sp.launch_finish(asid).unwrap()
    }

    #[test]
    fn identical_launch_sequences_measure_equal() {
        let mut a = AmdSp::new(1, 1);
        let mut b = AmdSp::new(2, 1);
        // Same page numbers on both chips.
        let da = launched(&mut a, 1, 3);
        let db = launched(&mut b, 1, 3);
        assert_eq!(da, db);
    }

    #[test]
    fn report_verifies_and_tamper_fails() {
        let mut sp = AmdSp::new(0xabc, 3);
        launched(&mut sp, 1, 2);
        let report = sp.request_report(1, [9; 64]).unwrap();
        sp.vcek_public().verify(&report.signed_bytes(), &report.signature).unwrap();
        let mut forged = report.clone();
        forged.report_data[0] ^= 1;
        assert!(sp.vcek_public().verify(&forged.signed_bytes(), &forged.signature).is_err());
    }

    #[test]
    fn different_chips_have_different_vceks() {
        let a = AmdSp::new(1, 1);
        let b = AmdSp::new(2, 1);
        assert_ne!(a.vcek_public(), b.vcek_public());
    }

    #[test]
    fn no_report_before_finish() {
        let mut sp = AmdSp::new(1, 1);
        sp.launch_start(1).unwrap();
        assert_eq!(sp.request_report(1, [0; 64]), Err(SnpError::WrongPhase(1)));
    }

    #[test]
    fn no_update_after_finish() {
        let mut sp = AmdSp::new(1, 1);
        launched(&mut sp, 1, 1);
        assert_eq!(sp.launch_update(1, PageNum(50)), Err(SnpError::WrongPhase(1)));
    }

    #[test]
    fn launch_pages_are_rmp_assigned() {
        let mut sp = AmdSp::new(1, 1);
        launched(&mut sp, 3, 4);
        assert_eq!(sp.rmp_mut().pages_owned_by(3), 4);
    }

    #[test]
    fn page_cannot_be_shared_between_launching_guests() {
        let mut sp = AmdSp::new(1, 1);
        sp.launch_start(1).unwrap();
        sp.launch_start(2).unwrap();
        sp.launch_update(1, PageNum(7)).unwrap();
        assert!(matches!(sp.launch_update(2, PageNum(7)), Err(SnpError::Rmp(_))));
    }

    #[test]
    fn counters_track_activity() {
        let mut sp = AmdSp::new(1, 1);
        launched(&mut sp, 1, 1);
        sp.record_ghcb_exit();
        sp.record_ghcb_exit();
        sp.request_report(1, [0; 64]).unwrap();
        assert_eq!(sp.ghcb_exits(), 2);
        assert_eq!(sp.reports_issued(), 1);
    }
}

//! Simulated confidential and conventional virtual machines.
//!
//! This crate is the execution substrate the ConfBench tool dispatches
//! workloads to. A [`Vm`] is built for a [`confbench_types::VmTarget`]
//! (platform × secure/normal) and replays abstract operation traces,
//! charging deterministic virtual cycles according to a per-platform
//! [`CostModel`] while driving the real TEE state machines from
//! `confbench-memsim`:
//!
//! * [`TdxModule`] — TD lifecycle, measured page adds, runtime page
//!   acceptance, `TDG.MR.REPORT`;
//! * [`AmdSp`] — SNP launch measurement, RMP assignment/validation,
//!   VCEK-signed attestation reports;
//! * [`Rmm`] + [`Fvp`] — realm lifecycle over the granule protection table,
//!   and the FVP simulation layer that dominates the paper's CCA numbers;
//! * [`CacheSim`] — a two-level cache model whose page-coloring term
//!   reproduces the paper's counter-intuitive sub-1.0 ratios.
//!
//! # Example
//!
//! ```
//! use confbench_types::{OpTrace, TeePlatform, VmTarget};
//! use confbench_vmm::TeeVmBuilder;
//!
//! let mut trace = OpTrace::new();
//! trace.cpu(1_000_000);
//!
//! let mut secure = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
//! let mut normal = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
//! let rs = secure.execute(&trace);
//! let rn = normal.execute(&trace);
//! let ratio = rs.cycles.get() as f64 / rn.cycles.get() as f64;
//! assert!(ratio < 1.1, "CPU-bound work is near-native in TDX: {ratio}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cca;
mod cost;
mod evtpm;
mod fault;
mod host;
mod snp;
mod tdx;
mod vm;

pub use cache::{CacheSim, CacheStats};
pub use cca::{CcaError, Fvp, RealmId, RealmPhase, Rmm};
pub use cost::CostModel;
pub use evtpm::{EvTpm, EvTpmError, EVTPM_PCRS};
pub use fault::{TeeFault, TeeFaultPlan};
pub use host::{ContentionModel, SharedHost};
pub use snp::{AmdSp, SnpError, SnpPhase, SnpReport};
pub use tdx::{TdId, TdPhase, TdReport, TdxError, TdxModule};
pub use vm::{CostEvents, ExecutionReport, TeeVmBuilder, Vm, VmRuntimeState};

// Device types that appear in the `Vm` device API, re-exported for
// convenience; the full subsystem lives in `confbench-devio`.
pub use confbench_devio::{GpuDevice, MeasurementReport, TdispState};

//! Per-platform cycle-cost tables.
//!
//! These tables are the calibrated heart of the simulation: each abstract
//! operation class is charged a cycle cost that depends on the platform and
//! on whether the VM is confidential. The *relative* structure (which
//! platform pays more for what) encodes the mechanisms the paper identifies:
//!
//! * TDX: near-native CPU/memory and syscalls, lean SEAM transitions (per
//!   the paper's [44], TDX world switches undercut SNP's), page-acceptance
//!   cost on *fresh* memory only, and bounce-buffer I/O (copy per byte +
//!   per-slot overhead) — the staging, not the exits, is why TDX loses on
//!   I/O;
//! * SEV-SNP: slightly higher memory-fill cost (RMP walks), pricier GHCB
//!   exits (VMSA save/restore), but lighter I/O staging — hence the paper's
//!   "SNP wins I/O" finding;
//! * CCA: RMM interposition on exits and page operations, a realm-world
//!   kernel-entry path that the FVP's RME model executes slowly (the
//!   mechanism we attribute the paper's large, otherwise-unexplained DBMS
//!   overheads to), and — for both VM kinds — the FVP simulation layer,
//!   modelled as a uniform slowdown plus timing jitter.
//!
//! Absolute values are in virtual cycles and are order-of-magnitude
//! plausible, not microarchitecturally exact; the paper's figures are ratios.
//!
//! A key modelling decision: TEE page costs (`alloc_fresh_extra`) apply only
//! to pages above the VM's high-water mark. Heap reuse is native-speed in
//! every TEE — acceptance/validation happens once per physical page — which
//! is why steady-state workloads (DBMS, ML) run near 1.0× while
//! allocation-growth workloads (memstress) pay more.

use confbench_types::{TeePlatform, VmKind, VmTarget};

/// Cycle costs for one VM target.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One integer ALU op.
    pub cpu_op: f64,
    /// One floating-point op.
    pub float_op: f64,
    /// Cost per cache-line touch (hit case).
    pub line_touch: f64,
    /// Extra cost per L1 miss that hits L2.
    pub l2_hit_penalty: f64,
    /// Extra cost per last-level-cache miss (DRAM access).
    pub dram_penalty: f64,
    /// Extra per-miss integrity/decryption cost in a confidential VM
    /// (MAC check on TDX, RMP-walk on SNP, GPT check on CCA).
    pub secure_miss_extra: f64,
    /// Cost of faulting in one fresh page in a *normal* VM (fault + clear).
    pub alloc_page: f64,
    /// Extra per-fresh-page TEE cost (ACCEPT / PVALIDATE / delegate+RTT map).
    /// Charged only above the high-water mark.
    pub alloc_fresh_extra: f64,
    /// Cost of a heap allocation that reuses already-mapped pages.
    pub alloc_reuse_page: f64,
    /// Cost of releasing one page.
    pub free_page: f64,
    /// In-guest cost of a syscall (kernel entry/exit + work). Native for
    /// x86 TEEs; slow in a realm under FVP (RME checks on every exception).
    pub syscall_guest: f64,
    /// Cost of a world switch to the host and back (VMEXIT/VMENTER,
    /// TDCALL+SEAMCALL round trip, GHCB exit, or RSI+RMM hop).
    pub exit_cost: f64,
    /// Per-byte cost of device I/O (DMA + device emulation).
    pub io_byte: f64,
    /// Per-byte cost of attested direct-to-private DMA (TDISP `Run`). The
    /// device writes guest memory without emulation or staging, so this is
    /// the same whether the VM is confidential or not — which is exactly
    /// the TEE-IO pitch.
    pub dma_byte: f64,
    /// Per-byte cost of staging I/O through the bounce pool (0 when DMA is
    /// direct).
    pub bounce_copy_byte: f64,
    /// Fixed overhead per bounce-pool slot submission.
    pub bounce_slot: f64,
    /// Number of I/O slots submitted per host doorbell exit (batching).
    pub io_slots_per_exit: u64,
    /// Cost of a voluntary context switch (scheduler + HLT wake path),
    /// excluding the exit cost which is charged separately.
    pub ctx_switch: f64,
    /// Per-byte cost of console logging.
    pub log_byte: f64,
    /// Bytes of console output per flush (each flush exits to the host).
    pub log_flush_bytes: u64,
    /// Uniform multiplier applied to *all* charged cycles (the FVP
    /// simulation layer; 1.0 on hardware platforms).
    pub sim_multiplier: f64,
    /// Relative standard deviation of per-trial multiplicative jitter.
    pub jitter_rel_std: f64,
    /// Page-color salt for the cache model: secure VMs map guest pages to
    /// differently-colored host frames, perturbing set-index distribution.
    pub cache_salt: u64,
}

impl CostModel {
    /// The cost model for a target, with bounce buffers enabled (the
    /// production configuration).
    pub fn for_target(target: VmTarget) -> Self {
        Self::for_target_with(target, true)
    }

    /// The cost model for a target, optionally disabling the confidential
    /// I/O bounce path (the TDX-Connect-style ablation in `bench`).
    pub fn for_target_with(target: VmTarget, bounce_buffers: bool) -> Self {
        let mut m = match (target.platform, target.kind) {
            (TeePlatform::Tdx, VmKind::Normal) => Self::normal_x86(),
            (TeePlatform::Tdx, VmKind::Secure) => Self::tdx_secure(),
            (TeePlatform::SevSnp, VmKind::Normal) => Self::normal_x86(),
            (TeePlatform::SevSnp, VmKind::Secure) => Self::snp_secure(),
            (TeePlatform::Cca, VmKind::Normal) => Self::cca_normal(),
            (TeePlatform::Cca, VmKind::Secure) => Self::cca_secure(),
        };
        if !bounce_buffers {
            m.bounce_copy_byte = 0.0;
            m.bounce_slot = 0.0;
            m.io_slots_per_exit = 64;
        }
        m
    }

    /// Baseline: a conventional VM on a modern x86 host.
    fn normal_x86() -> Self {
        CostModel {
            cpu_op: 1.0,
            float_op: 2.0,
            line_touch: 1.0,
            l2_hit_penalty: 10.0,
            dram_penalty: 60.0,
            secure_miss_extra: 0.0,
            alloc_page: 600.0,
            alloc_fresh_extra: 0.0,
            alloc_reuse_page: 120.0,
            free_page: 100.0,
            syscall_guest: 300.0,
            exit_cost: 1_500.0,
            io_byte: 1.0,
            dma_byte: 0.08,
            bounce_copy_byte: 0.0,
            bounce_slot: 0.0,
            io_slots_per_exit: 64,
            ctx_switch: 2_000.0,
            log_byte: 2.0,
            log_flush_bytes: 4096,
            sim_multiplier: 1.0,
            jitter_rel_std: 0.012,
            cache_salt: 0,
        }
    }

    /// Intel TDX trust domain.
    fn tdx_secure() -> Self {
        CostModel {
            secure_miss_extra: 3.0,   // MKTME-i MAC check on fill
            alloc_fresh_extra: 700.0, // TDG.MEM.PAGE.ACCEPT (clear + PAMT)
            syscall_guest: 305.0,     // native syscalls
            exit_cost: 3_300.0,       // TDCALL->SEAMCALL round trip (lean SEAM path)
            bounce_copy_byte: 0.8,    // private->shared copy through swiotlb
            bounce_slot: 140.0,       // slot bookkeeping
            io_slots_per_exit: 24,    // virtio kicks traverse the module
            ctx_switch: 2_300.0,      // extra HLT/TDVMCALL path work
            jitter_rel_std: 0.016,
            cache_salt: 0x5a5a_0001,
            ..Self::normal_x86()
        }
    }

    /// AMD SEV-SNP guest.
    fn snp_secure() -> Self {
        CostModel {
            line_touch: 1.03,           // RMP participates in walks
            secure_miss_extra: 5.0,     // RMP check + C-bit decrypt on fill
            alloc_fresh_extra: 1_000.0, // RMPUPDATE + PVALIDATE + RMPADJUST
            syscall_guest: 310.0,
            exit_cost: 4_300.0,     // GHCB protocol: VMSA save/restore is pricier
            bounce_copy_byte: 0.42, // staging exists but is cheaper,
            bounce_slot: 90.0,      //   with better batching
            io_slots_per_exit: 64,
            ctx_switch: 2_700.0, // VMSA swap on the wake path
            jitter_rel_std: 0.016,
            cache_salt: 0xa5a5_0002,
            ..Self::normal_x86()
        }
    }

    /// A normal VM running *inside the FVP simulator* (CCA baseline).
    fn cca_normal() -> Self {
        CostModel {
            float_op: 2.5, // modelled A-profile core
            exit_cost: 2_200.0,
            io_byte: 1.4,          // emulated devices in the simulator
            dma_byte: 0.12,        // modeled SMMU path is slightly pricier
            sim_multiplier: 9.0,   // the FVP tax, paid by BOTH VM kinds
            jitter_rel_std: 0.055, // simulator timing noise
            ..Self::normal_x86()
        }
    }

    /// A CCA realm inside the FVP simulator.
    fn cca_secure() -> Self {
        CostModel {
            cpu_op: 1.12, // realm-world execution under FVP RME
            float_op: 2.9,
            line_touch: 1.25,           // GPT check modelled on the walk path
            secure_miss_extra: 22.0,    // GPT + RTT walks on fills
            alloc_fresh_extra: 8_500.0, // delegate + assign + RTT map via RMM
            alloc_reuse_page: 160.0,
            free_page: 450.0,
            // The channel behind the paper's large CCA overheads on
            // syscall-storm workloads (DBMS, iostress, filesystem): every
            // realm kernel entry runs through the FVP's RME exception
            // checks, interpreted far more slowly than normal-world entries.
            syscall_guest: 2_600.0,
            exit_cost: 15_000.0, // RSI -> RMM -> SMC to host and back
            io_byte: 3.1,        // realm device path: shared-buffer + RMM
            dma_byte: 0.12,      // attested DMA bypasses the RMM: normal-world rate
            bounce_copy_byte: 1.2,
            bounce_slot: 380.0,
            io_slots_per_exit: 16,
            ctx_switch: 5_400.0,
            log_byte: 3.0,
            log_flush_bytes: 2048,
            sim_multiplier: 9.0,
            jitter_rel_std: 0.15, // the paper's "longer whiskers"
            cache_salt: 0x3c3c_0003,
            ..Self::normal_x86()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{TeePlatform, VmTarget};

    fn model(p: TeePlatform, secure: bool) -> CostModel {
        let t = if secure { VmTarget::secure(p) } else { VmTarget::normal(p) };
        CostModel::for_target(t)
    }

    #[test]
    fn snp_exits_cost_more_than_tdx() {
        // Misono et al. (the paper's [44]) measure SNP's GHCB world switch
        // as pricier than TDX's SEAM transitions — which is why Fig. 4
        // shows TDX with the least UnixBench overhead.
        assert!(
            model(TeePlatform::SevSnp, true).exit_cost > model(TeePlatform::Tdx, true).exit_cost
        );
    }

    #[test]
    fn tdx_io_staging_costs_more_than_snp() {
        let tdx = model(TeePlatform::Tdx, true);
        let snp = model(TeePlatform::SevSnp, true);
        // Per-MiB staging cost, including batched doorbells.
        let per_mib = |m: &CostModel| {
            let slots = (1u64 << 20).div_ceil(2048);
            (1u64 << 20) as f64 * m.bounce_copy_byte
                + slots as f64 * m.bounce_slot
                + (slots.div_ceil(m.io_slots_per_exit)) as f64 * m.exit_cost
        };
        assert!(per_mib(&tdx) > 1.5 * per_mib(&snp));
    }

    #[test]
    fn syscalls_native_on_x86_tees_slow_in_realms() {
        let base = model(TeePlatform::Tdx, false).syscall_guest;
        assert!(model(TeePlatform::Tdx, true).syscall_guest < base * 1.1);
        assert!(model(TeePlatform::SevSnp, true).syscall_guest < base * 1.1);
        assert!(model(TeePlatform::Cca, true).syscall_guest > base * 5.0);
    }

    #[test]
    fn fresh_page_surcharge_only_in_tees() {
        for p in TeePlatform::ALL {
            assert_eq!(model(p, false).alloc_fresh_extra, 0.0);
            assert!(model(p, true).alloc_fresh_extra > 0.0);
        }
        // Realm page donation is by far the most expensive.
        assert!(
            model(TeePlatform::Cca, true).alloc_fresh_extra
                > 4.0 * model(TeePlatform::Tdx, true).alloc_fresh_extra
        );
    }

    #[test]
    fn normal_vms_have_no_secure_surcharges() {
        for p in TeePlatform::ALL {
            let m = model(p, false);
            assert_eq!(m.secure_miss_extra, 0.0);
            assert_eq!(m.bounce_copy_byte, 0.0);
        }
    }

    #[test]
    fn cca_pays_fvp_tax_on_both_kinds() {
        assert_eq!(model(TeePlatform::Cca, true).sim_multiplier, 9.0);
        assert_eq!(model(TeePlatform::Cca, false).sim_multiplier, 9.0);
        assert_eq!(model(TeePlatform::Tdx, true).sim_multiplier, 1.0);
    }

    #[test]
    fn cca_realm_is_jitteriest() {
        let cca = model(TeePlatform::Cca, true);
        for p in [TeePlatform::Tdx, TeePlatform::SevSnp] {
            assert!(cca.jitter_rel_std > model(p, true).jitter_rel_std);
        }
        assert!(cca.jitter_rel_std > model(TeePlatform::Cca, false).jitter_rel_std);
    }

    #[test]
    fn bounce_ablation_zeroes_staging() {
        let m = CostModel::for_target_with(VmTarget::secure(TeePlatform::Tdx), false);
        assert_eq!(m.bounce_copy_byte, 0.0);
        assert_eq!(m.bounce_slot, 0.0);
        // Other costs untouched.
        assert!(m.exit_cost > 1_500.0);
    }

    #[test]
    fn attested_dma_rate_is_kind_independent() {
        // The whole point of TEE-IO: once the device is attested, direct
        // DMA costs what it costs a normal VM — and far less than the
        // emulated I/O path.
        for p in TeePlatform::ALL {
            assert_eq!(model(p, true).dma_byte, model(p, false).dma_byte);
            assert!(model(p, true).dma_byte < model(p, true).io_byte);
        }
    }

    #[test]
    fn secure_kinds_have_distinct_cache_salts() {
        let salts: Vec<u64> = TeePlatform::ALL.iter().map(|&p| model(p, true).cache_salt).collect();
        assert!(salts.iter().all(|&s| s != 0));
        let mut dedup = salts.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), salts.len());
    }
}

//! Multi-tenant host model: several TEE VMs co-located on one machine
//! (the paper's first future-work item, §VI: "study the overheads of
//! co-locating and executing several TEE-aware VMs inside the same host, as
//! it happens in a typical cloud-based multi-tenant scenario").
//!
//! Co-residents interfere through the shared memory system and I/O path:
//!
//! * the last-level cache is shared — each tenant's effective capacity
//!   shrinks, raising miss rates (modelled by partitioning the LLC among
//!   active tenants);
//! * memory bandwidth saturates — DRAM fills get slower as more tenants
//!   actively miss (a linear bandwidth-contention factor);
//! * exits serialize on the host: world switches contend on the
//!   hypervisor/TDX-module/RMM path (a smaller per-exit factor).

use confbench_types::{OpTrace, VmTarget};

use crate::vm::{ExecutionReport, TeeVmBuilder, Vm};

/// Contention parameters for one shared host.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionModel {
    /// Extra DRAM latency per additional active tenant (fraction, e.g. 0.18
    /// = +18% fill latency per co-resident).
    pub dram_per_tenant: f64,
    /// Extra exit latency per additional active tenant (hypervisor-path
    /// serialization).
    pub exit_per_tenant: f64,
    /// Extra device-I/O latency per additional active tenant.
    pub io_per_tenant: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        // Calibrated to typical cloud consolidation studies: memory
        // bandwidth is the dominant interference channel.
        ContentionModel { dram_per_tenant: 0.18, exit_per_tenant: 0.07, io_per_tenant: 0.12 }
    }
}

impl ContentionModel {
    /// The cost multiplier applied to a contended channel with `tenants`
    /// active VMs (1 tenant = no contention).
    fn factor(per_tenant: f64, tenants: usize) -> f64 {
        1.0 + per_tenant * tenants.saturating_sub(1) as f64
    }
}

/// A host running several co-located VMs of the same platform.
///
/// # Example
///
/// ```
/// use confbench_types::{OpTrace, TeePlatform, VmTarget};
/// use confbench_vmm::SharedHost;
///
/// let mut host = SharedHost::new(VmTarget::secure(TeePlatform::Tdx), 4, 7);
/// let mut trace = OpTrace::new();
/// trace.cpu(100_000);
/// trace.mem_write(1 << 20);
///
/// let slowdown = host.colocation_slowdown(&trace, 3);
/// assert!(slowdown >= 1.0, "co-residents only add cost: {slowdown}");
/// ```
#[derive(Debug)]
pub struct SharedHost {
    vms: Vec<Vm>,
    contention: ContentionModel,
}

impl SharedHost {
    /// Boots `tenants` identical VMs for `target` with derived seeds.
    ///
    /// # Panics
    ///
    /// Panics if `tenants == 0`.
    pub fn new(target: VmTarget, tenants: usize, seed: u64) -> Self {
        Self::with_contention(target, tenants, seed, ContentionModel::default())
    }

    /// As [`SharedHost::new`] with an explicit contention model.
    ///
    /// # Panics
    ///
    /// Panics if `tenants == 0`.
    pub fn with_contention(
        target: VmTarget,
        tenants: usize,
        seed: u64,
        contention: ContentionModel,
    ) -> Self {
        assert!(tenants > 0, "a host needs at least one tenant");
        let vms = (0..tenants)
            .map(|i| TeeVmBuilder::new(target).seed(seed.wrapping_add(i as u64 * 0x9e37)).build())
            .collect();
        SharedHost { vms, contention }
    }

    /// Number of co-located VMs.
    pub fn tenants(&self) -> usize {
        self.vms.len()
    }

    /// Runs `trace` on the first VM with the others idle (no contention).
    pub fn run_solo(&mut self, trace: &OpTrace) -> ExecutionReport {
        self.vms[0].execute(trace)
    }

    /// Runs `trace` on every VM concurrently: each tenant's report is
    /// scaled by the contention factors for the number of *other* active
    /// tenants, with the contended share of cycles estimated from its perf
    /// counters (miss-heavy runs suffer more, pure-CPU runs barely notice).
    pub fn run_all(&mut self, trace: &OpTrace) -> Vec<ExecutionReport> {
        let tenants = self.vms.len();
        let c = self.contention.clone();
        self.vms
            .iter_mut()
            .map(|vm| {
                let dram_cost = vm.cost_model().dram_penalty + vm.cost_model().secure_miss_extra;
                let exit_cost = vm.cost_model().exit_cost;
                let base = vm.execute(trace);
                scale_report(base, &c, tenants, dram_cost, exit_cost)
            })
            .collect()
    }

    /// Mean slowdown from co-location over `trials` trials: for every
    /// execution, the ratio of its contended cost (all tenants active) to
    /// its uncontended cost. Comparing the same executions keeps trial
    /// jitter out of the metric.
    pub fn colocation_slowdown(&mut self, trace: &OpTrace, trials: u32) -> f64 {
        let tenants = self.vms.len();
        let c = self.contention.clone();
        let mut sum = 0.0;
        let mut n = 0u32;
        for _ in 0..trials.max(1) {
            for vm in &mut self.vms {
                let dram_cost = vm.cost_model().dram_penalty + vm.cost_model().secure_miss_extra;
                let exit_cost = vm.cost_model().exit_cost;
                let base = vm.execute(trace);
                let scaled = scale_report(base, &c, tenants, dram_cost, exit_cost);
                sum += scaled.cycles.get() as f64 / base.cycles.get().max(1) as f64;
                n += 1;
            }
        }
        sum / f64::from(n)
    }
}

fn scale_report(
    base: ExecutionReport,
    c: &ContentionModel,
    tenants: usize,
    dram_cost: f64,
    exit_cost: f64,
) -> ExecutionReport {
    // Estimate the contended share of this run from its counters: DRAM
    // fills, exits, and I/O are the channels neighbours squeeze. Shares use
    // the VM's own cost model so secure VMs' pricier exits count fully.
    let perf = base.perf;
    let total = base.cycles.get() as f64;
    if total == 0.0 {
        return base;
    }
    let dram_share = (perf.cache_misses as f64 * dram_cost / total).min(0.9);
    let exit_share = (perf.vm_exits as f64 * exit_cost / total).min(0.9);
    let mult = 1.0
        + dram_share * (ContentionModel::factor(c.dram_per_tenant, tenants) - 1.0)
        + exit_share * (ContentionModel::factor(c.exit_per_tenant, tenants) - 1.0)
        + 0.05 * (ContentionModel::factor(c.io_per_tenant, tenants) - 1.0);
    let cycles = confbench_types::Cycles::new((total * mult).round() as u64);
    ExecutionReport {
        cycles,
        wall_ms: cycles.as_millis(base.target.platform.host_freq_ghz()),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::TeePlatform;

    fn memory_heavy() -> OpTrace {
        let mut t = OpTrace::new();
        for _ in 0..8 {
            t.mem_write(4 << 20);
        }
        t.cpu(100_000);
        t
    }

    fn cpu_only() -> OpTrace {
        let mut t = OpTrace::new();
        t.cpu(5_000_000);
        t
    }

    #[test]
    fn contention_slows_memory_heavy_tenants() {
        let mut host = SharedHost::new(VmTarget::secure(TeePlatform::Tdx), 4, 3);
        let slowdown = host.colocation_slowdown(&memory_heavy(), 3);
        assert!(slowdown > 1.1, "4 tenants should contend on DRAM: {slowdown}");
        assert!(slowdown < 2.0, "but not absurdly: {slowdown}");
    }

    #[test]
    fn cpu_bound_tenants_barely_notice() {
        let mut host = SharedHost::new(VmTarget::secure(TeePlatform::Tdx), 4, 3);
        let slowdown = host.colocation_slowdown(&cpu_only(), 3);
        assert!(slowdown < 1.08, "pure CPU does not contend: {slowdown}");
    }

    #[test]
    fn more_tenants_more_contention() {
        let trace = memory_heavy();
        let s2 = SharedHost::new(VmTarget::secure(TeePlatform::SevSnp), 2, 3)
            .colocation_slowdown(&trace, 3);
        let s8 = SharedHost::new(VmTarget::secure(TeePlatform::SevSnp), 8, 3)
            .colocation_slowdown(&trace, 3);
        assert!(s8 > s2, "8 tenants ({s8}) must beat 2 ({s2})");
    }

    #[test]
    fn single_tenant_is_contention_free() {
        let mut host = SharedHost::new(VmTarget::normal(TeePlatform::Tdx), 1, 3);
        let slowdown = host.colocation_slowdown(&memory_heavy(), 4);
        assert!((0.9..1.1).contains(&slowdown), "solo == contended for 1 tenant: {slowdown}");
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        SharedHost::new(VmTarget::secure(TeePlatform::Tdx), 0, 1);
    }

    #[test]
    fn secure_vms_suffer_more_from_exit_contention() {
        // Exit-heavy workload: secure VMs take more exits, so co-location
        // hurts them more — the interaction the paper wants to study.
        let mut t = OpTrace::new();
        t.ctx_switch(3_000);
        t.cpu(500_000);
        let secure =
            SharedHost::new(VmTarget::secure(TeePlatform::Tdx), 6, 3).colocation_slowdown(&t, 3);
        let normal =
            SharedHost::new(VmTarget::normal(TeePlatform::Tdx), 6, 3).colocation_slowdown(&t, 3);
        assert!(
            secure >= normal - 0.02,
            "secure ({secure}) should not contend less than normal ({normal})"
        );
    }
}

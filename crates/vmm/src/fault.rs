//! Deterministic, seeded TEE fault injection.
//!
//! A [`TeeFaultPlan`] is a chaos schedule for the simulated TEE substrate:
//! every time a VM (or the supervisor above it) crosses one of the
//! mechanism boundaries in [`TeeMechanism`] it *rolls* against the plan,
//! and the plan — driven by its own SplitMix64 stream, separate from the
//! VM's jitter stream — decides whether that crossing fails and how badly
//! ([`FaultClass::Transient`] vs [`FaultClass::Fatal`]).
//!
//! Keeping the fault stream separate from the timing streams is what makes
//! chaos campaigns reproducible *and* comparable: a run that survives its
//! faults (after retries and rebuilds) produces bit-identical measurements
//! to a fault-free run, because successful executions never consume plan
//! entropy for timing.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use confbench_crypto::SplitMix64;
use confbench_types::{Error, FaultClass, TeeMechanism, TeePlatform};
use parking_lot::Mutex;

/// One injected (or observed) TEE-substrate fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeeFault {
    /// Platform whose substrate faulted.
    pub platform: TeePlatform,
    /// The mechanism that failed.
    pub mechanism: TeeMechanism,
    /// Retryable in place, or VM-fatal.
    pub class: FaultClass,
}

impl TeeFault {
    /// A fatal fault (used when a real mechanism state machine errors,
    /// which in this model means the TEE context is wedged).
    pub fn fatal(platform: TeePlatform, mechanism: TeeMechanism) -> Self {
        TeeFault { platform, mechanism, class: FaultClass::Fatal }
    }

    /// Whether retrying the same operation may succeed.
    pub fn is_transient(&self) -> bool {
        self.class == FaultClass::Transient
    }
}

impl fmt::Display for TeeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} failure on {}", self.class, self.mechanism, self.platform)
    }
}

impl From<TeeFault> for Error {
    fn from(fault: TeeFault) -> Error {
        Error::TeeFault { platform: fault.platform, mechanism: fault.mechanism, class: fault.class }
    }
}

/// A seeded, per-mechanism fault schedule shared by every VM under one
/// chaos campaign.
///
/// The plan is `Send + Sync` (the draw stream sits behind a mutex) so one
/// `Arc<TeeFaultPlan>` can feed all of a gateway's hosts; fault draws are
/// then globally ordered by the lock, and a campaign replayed with the same
/// seed, rate, and request schedule injects the same faults.
///
/// # Example
///
/// ```
/// use confbench_types::{TeeMechanism, TeePlatform};
/// use confbench_vmm::TeeFaultPlan;
///
/// let plan = TeeFaultPlan::new(7, 1.0); // every roll faults
/// let fault = plan.roll(TeePlatform::Tdx, TeeMechanism::Seamcall).unwrap();
/// assert_eq!(fault.mechanism, TeeMechanism::Seamcall);
/// assert_eq!(TeeFaultPlan::new(7, 0.0).injected(), 0);
/// ```
#[derive(Debug)]
pub struct TeeFaultPlan {
    seed: u64,
    /// Per-mechanism fault probability, indexed like [`TeeMechanism::ALL`].
    rates: [f64; TeeMechanism::ALL.len()],
    /// Probability that an injected fault is fatal (vs transient).
    fatal_ratio: f64,
    rng: Mutex<SplitMix64>,
    injected: AtomicU64,
    fatal_injected: AtomicU64,
}

/// Default share of injected faults classified fatal. Transient faults
/// should dominate (SP-busy style) so retry paths get most of the traffic,
/// with enough fatals to exercise rebuild + quarantine.
const DEFAULT_FATAL_RATIO: f64 = 0.2;

impl TeeFaultPlan {
    /// A plan injecting faults at `rate` (probability per mechanism
    /// crossing, clamped to `[0, 1]`) on every mechanism, with the default
    /// 20% of faults classified fatal.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        TeeFaultPlan {
            seed,
            rates: [rate; TeeMechanism::ALL.len()],
            fatal_ratio: DEFAULT_FATAL_RATIO,
            rng: Mutex::new(SplitMix64::new(seed ^ 0x63_6861_6f73)), // "chaos"
            injected: AtomicU64::new(0),
            fatal_injected: AtomicU64::new(0),
        }
    }

    /// Overrides the fault probability of one mechanism (a per-mechanism
    /// fault point: e.g. only AMD-SP requests fail, everything else clean).
    pub fn with_rate(mut self, mechanism: TeeMechanism, rate: f64) -> Self {
        self.rates[Self::index(mechanism)] = rate.clamp(0.0, 1.0);
        self
    }

    /// Overrides the fatal share of injected faults (`0.0` = all transient,
    /// `1.0` = all fatal).
    pub fn with_fatal_ratio(mut self, ratio: f64) -> Self {
        self.fatal_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds a plan from the `CONFBENCH_CHAOS_SEED` / `CONFBENCH_CHAOS_RATE`
    /// environment (used by CI to run unit-test suites under background
    /// chaos). Returns `None` when the seed is unset or zero; the rate
    /// defaults to `0.1` when unset or unparsable.
    pub fn from_env() -> Option<Arc<TeeFaultPlan>> {
        let seed: u64 = std::env::var("CONFBENCH_CHAOS_SEED").ok()?.trim().parse().ok()?;
        if seed == 0 {
            return None;
        }
        let rate = std::env::var("CONFBENCH_CHAOS_RATE")
            .ok()
            .and_then(|r| r.trim().parse().ok())
            .unwrap_or(0.1);
        Some(Arc::new(TeeFaultPlan::new(seed, rate)))
    }

    /// Rolls one fault point: `None` means the crossing succeeds. The draw
    /// advances the plan's (not the VM's) random stream; a mechanism with
    /// rate `0` never draws, so disarmed mechanisms do not perturb the
    /// schedule of armed ones.
    pub fn roll(&self, platform: TeePlatform, mechanism: TeeMechanism) -> Option<TeeFault> {
        let rate = self.rates[Self::index(mechanism)];
        if rate <= 0.0 {
            return None;
        }
        let mut rng = self.rng.lock();
        if rng.next_f64() >= rate {
            return None;
        }
        let class = if rng.next_f64() < self.fatal_ratio {
            FaultClass::Fatal
        } else {
            FaultClass::Transient
        };
        drop(rng);
        self.injected.fetch_add(1, Ordering::Relaxed);
        if class == FaultClass::Fatal {
            self.fatal_injected.fetch_add(1, Ordering::Relaxed);
        }
        Some(TeeFault { platform, mechanism, class })
    }

    /// Total faults injected so far (all classes).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Fatal faults injected so far.
    pub fn fatal_injected(&self) -> u64 {
        self.fatal_injected.load(Ordering::Relaxed)
    }

    fn index(mechanism: TeeMechanism) -> usize {
        TeeMechanism::ALL
            .iter()
            .position(|m| *m == mechanism)
            .expect("TeeMechanism::ALL is exhaustive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults_and_never_draws() {
        let plan = TeeFaultPlan::new(1, 0.0);
        for m in TeeMechanism::ALL {
            assert!(plan.roll(TeePlatform::Tdx, m).is_none());
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn full_rate_always_faults() {
        let plan = TeeFaultPlan::new(1, 1.0);
        for _ in 0..32 {
            assert!(plan.roll(TeePlatform::Cca, TeeMechanism::RmmCommand).is_some());
        }
        assert_eq!(plan.injected(), 32);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let draws = |seed| {
            let plan = TeeFaultPlan::new(seed, 0.3);
            (0..200)
                .map(|_| plan.roll(TeePlatform::SevSnp, TeeMechanism::GhcbExit))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn per_mechanism_rate_overrides_apply() {
        let plan = TeeFaultPlan::new(3, 1.0).with_rate(TeeMechanism::Seamcall, 0.0);
        assert!(plan.roll(TeePlatform::Tdx, TeeMechanism::Seamcall).is_none());
        assert!(plan.roll(TeePlatform::Tdx, TeeMechanism::SeptAccept).is_some());
    }

    #[test]
    fn fatal_ratio_bounds_classification() {
        let all_fatal = TeeFaultPlan::new(5, 1.0).with_fatal_ratio(1.0);
        let all_transient = TeeFaultPlan::new(5, 1.0).with_fatal_ratio(0.0);
        for _ in 0..16 {
            let f = all_fatal.roll(TeePlatform::Tdx, TeeMechanism::SeptAccept).unwrap();
            assert_eq!(f.class, FaultClass::Fatal);
            let t = all_transient.roll(TeePlatform::Tdx, TeeMechanism::SeptAccept).unwrap();
            assert_eq!(t.class, FaultClass::Transient);
            assert!(t.is_transient());
        }
        assert_eq!(all_fatal.fatal_injected(), 16);
        assert_eq!(all_transient.fatal_injected(), 0);
    }

    #[test]
    fn faults_convert_to_workspace_errors() {
        let fault = TeeFault::fatal(TeePlatform::Tdx, TeeMechanism::Seamcall);
        let err: Error = fault.into();
        assert_eq!(err.rest_status(), 503);
        assert!(!err.is_transient());
        assert!(err.indicts_member());
    }
}

//! The simulated virtual machine: replays [`OpTrace`]s against a platform
//! cost model, driving the real TEE machinery (SEPT / RMP / GPT) along the
//! way and producing deterministic cycle counts and perf counters.

use std::collections::BTreeSet;
use std::sync::Arc;

use confbench_crypto::SplitMix64;
use confbench_devio::{GpuDevice, MeasurementReport, TdispState};
use confbench_memsim::{pages_for, PageNum, Swiotlb};
use confbench_obs::ActiveSpan;
use confbench_types::{
    Cycles, DeviceKind, Op, OpTrace, PerfReport, SimClock, SyscallKind, TeeMechanism, TeePlatform,
    VmKind, VmTarget,
};

use crate::cache::CacheSim;
use crate::cca::{Fvp, RealmId, Rmm};
use crate::cost::CostModel;
use crate::evtpm::EvTpm;
use crate::fault::{TeeFault, TeeFaultPlan};
use crate::snp::AmdSp;
use crate::tdx::{TdId, TdxModule};

/// Pages installed (and measured) during the simulated boot of a VM image.
pub(crate) const BOOT_IMAGE_PAGES: u64 = 64;

/// Per-allocation cap on how many pages are driven through the *mechanism*
/// (SEPT/RMP/GPT); costs are always charged analytically for the full count.
/// Keeps giant allocations cheap to simulate while still exercising the
/// real state machines.
const MECHANISM_PAGES_PER_ALLOC: u64 = 32;

/// First guest-physical page number handed to the heap page machinery
/// (boot-image pages occupy `0..BOOT_IMAGE_PAGES`).
const HEAP_GPA_BASE: u64 = 0x100;

/// The result of executing one trace on a [`Vm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionReport {
    /// Where the trace ran.
    pub target: VmTarget,
    /// Virtual cycles consumed (jitter and simulation multiplier applied).
    pub cycles: Cycles,
    /// Wall-clock milliseconds at the host frequency.
    pub wall_ms: f64,
    /// Perf counters for the run.
    pub perf: PerfReport,
    /// Per-class cost-event breakdown (what [`Vm::execute_spanned`] turns
    /// into child trace spans).
    pub events: CostEvents,
}

/// Per-class breakdown of the TEE cost events charged during one execution.
///
/// Counts are exact; the `*_cycles` figures are the raw charges from the
/// cost tables — *before* the per-trial jitter and FVP simulation
/// multiplier — so they decompose the mechanism, not the jittered total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostEvents {
    /// World switches to the host (SEAMCALL / GHCB exit / RMM hop / VMEXIT).
    pub exits: u64,
    /// Cycles charged at `exit_cost` for those switches.
    pub exit_cycles: u64,
    /// Fresh pages faulted in (accept / validate / delegate candidates).
    pub fresh_pages: u64,
    /// Cycles charged for fresh-page fault + TEE acceptance work.
    pub page_cycles: u64,
    /// Bytes staged through the swiotlb bounce pool.
    pub bounce_bytes: u64,
    /// Bounce-pool slots consumed.
    pub bounce_slots: u64,
    /// Cycles charged for bounce copies and slot bookkeeping.
    pub bounce_cycles: u64,
    /// Guest syscalls executed.
    pub syscalls: u64,
    /// Cycles charged for in-guest syscall work.
    pub syscall_cycles: u64,
    /// Device DMA bytes that landed directly in guest memory (TDISP `Run`,
    /// or any attached device in a normal VM).
    pub dma_direct_bytes: u64,
    /// Cycles charged for direct device DMA.
    pub dma_direct_cycles: u64,
    /// Device DMA bytes that fell back to the swiotlb bounce path (device
    /// not attested, so its DMA may only target shared memory).
    pub dma_bounce_bytes: u64,
    /// Device kernels launched.
    pub dev_kernels: u64,
    /// Host nanoseconds spent inside device kernels.
    pub dev_kernel_ns: u64,
}

/// Builder for a [`Vm`].
///
/// # Example
///
/// ```
/// use confbench_types::{TeePlatform, VmTarget};
/// use confbench_vmm::TeeVmBuilder;
///
/// let vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx))
///     .seed(42)
///     .cache_model(true)
///     .build();
/// assert_eq!(vm.target(), VmTarget::secure(TeePlatform::Tdx));
/// ```
#[derive(Debug, Clone)]
pub struct TeeVmBuilder {
    target: VmTarget,
    seed: u64,
    cache_model: bool,
    bounce_buffers: bool,
    fvp: Option<Fvp>,
    faults: Option<Arc<TeeFaultPlan>>,
    device: Option<DeviceKind>,
}

impl TeeVmBuilder {
    /// Starts building a VM for `target`.
    pub fn new(target: VmTarget) -> Self {
        TeeVmBuilder {
            target,
            seed: 0,
            cache_model: true,
            bounce_buffers: true,
            fvp: None,
            faults: None,
            device: None,
        }
    }

    /// Sets the deterministic seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the cache simulator (default on). With it off,
    /// memory ops are charged a flat per-line cost — the ablation that
    /// removes the paper's sub-1.0 ratio cells.
    pub fn cache_model(mut self, on: bool) -> Self {
        self.cache_model = on;
        self
    }

    /// Enables or disables confidential-I/O bounce buffering (default on).
    /// Off approximates the TDX-Connect direct-I/O future the paper
    /// anticipates.
    pub fn bounce_buffers(mut self, on: bool) -> Self {
        self.bounce_buffers = on;
        self
    }

    /// Overrides the FVP simulation layer for CCA targets (ignored for
    /// hardware platforms).
    pub fn fvp(mut self, fvp: Fvp) -> Self {
        self.fvp = Some(fvp);
        self
    }

    /// Installs a shared chaos schedule. Boot and every execution of the
    /// built VM roll against the plan at each TEE mechanism crossing; use
    /// [`TeeVmBuilder::try_build`] and [`Vm::try_execute`] to observe the
    /// injected faults. Normal (non-confidential) VMs ignore the plan —
    /// they have no TEE substrate to fault.
    pub fn fault_plan(mut self, plan: Arc<TeeFaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Plugs a confidential accelerator into the VM. On a secure target
    /// the device's TDISP interface is locked during boot (rolling the
    /// `tdisp-lock` fault point); the host must then attest it via
    /// [`Vm::device_report`] and [`Vm::enable_device`] before its DMA can
    /// target private memory — until then `DevDma*` ops are staged through
    /// the swiotlb bounce path. Normal VMs DMA directly right away.
    pub fn device(mut self, kind: DeviceKind) -> Self {
        self.device = Some(kind);
        self
    }

    /// Boots the VM: builds the cost model, launches the TEE context
    /// (measured 64-page boot image), and returns a
    /// ready-to-run [`Vm`].
    ///
    /// # Panics
    ///
    /// Panics if an installed [fault plan](TeeVmBuilder::fault_plan) injects
    /// a boot fault (use [`TeeVmBuilder::try_build`] under chaos). Without
    /// a plan, boot cannot fail and this never panics.
    pub fn build(self) -> Vm {
        self.try_build().unwrap_or_else(|f| panic!("unsupervised TEE boot fault: {f}"))
    }

    /// Fallible boot: like [`TeeVmBuilder::build`], but boot-time TEE
    /// faults — injected by the plan, or a mechanism state machine
    /// refusing a launch step — surface as `Err` instead of panicking.
    ///
    /// # Errors
    ///
    /// The injected or observed [`TeeFault`]; transient faults may succeed
    /// on a fresh `try_build` of the same builder.
    pub fn try_build(self) -> Result<Vm, TeeFault> {
        let mut cost = CostModel::for_target_with(self.target, self.bounce_buffers);
        if let Some(fvp) = &self.fvp {
            if self.target.platform == TeePlatform::Cca {
                cost.sim_multiplier = fvp.slowdown;
                if self.target.kind == VmKind::Normal {
                    cost.jitter_rel_std = fvp.jitter_rel_std;
                } else {
                    // Realm keeps its extra jitter on top of the simulator's.
                    cost.jitter_rel_std = cost.jitter_rel_std.max(fvp.jitter_rel_std);
                }
            }
        }
        let cache = self.cache_model.then(|| CacheSim::new(cost.cache_salt));
        let platform = Platform::launch(self.target, self.faults.as_deref())?;
        let device = match self.device {
            // One modeled device today; `DeviceKind` keeps the plug point open.
            Some(DeviceKind::Gpu) => {
                let mut gpu = GpuDevice::new();
                if self.target.kind == VmKind::Secure {
                    // LOCK_INTERFACE_REQUEST is a TEE mechanism crossing.
                    if let Some(fault) = self
                        .faults
                        .as_deref()
                        .and_then(|p| p.roll(self.target.platform, TeeMechanism::TdispLock))
                    {
                        return Err(fault);
                    }
                    gpu.lock().map_err(|_| {
                        TeeFault::fatal(self.target.platform, TeeMechanism::TdispLock)
                    })?;
                }
                Some(gpu)
            }
            None => None,
        };
        // Secure VMs boot with an e-vTPM whose launch-stage measurements
        // are part of the measured image (normal VMs have no trust
        // boundary to anchor one).
        let evtpm = (self.target.kind == VmKind::Secure).then(|| EvTpm::measured_boot(self.target));
        Ok(Vm {
            target: self.target,
            cost,
            cache,
            platform,
            evtpm,
            device,
            swiotlb: Swiotlb::linux_default(),
            clock: SimClock::new(),
            rng: SplitMix64::new(jitter_stream_seed(self.seed, self.target)),
            faults: self.faults,
            heap_pages: 0,
            high_water_pages: BOOT_IMAGE_PAGES,
            next_gpa: HEAP_GPA_BASE,
            total_exits: 0,
            total_faults: 0,
            dirty: BTreeSet::new(),
        })
    }
}

/// Derives a jitter-stream seed that differs per target, so the secure and
/// normal VM of one experiment do not draw correlated noise.
fn jitter_stream_seed(seed: u64, target: VmTarget) -> u64 {
    let platform_tag = match target.platform {
        TeePlatform::Tdx => 1u64,
        TeePlatform::SevSnp => 2,
        TeePlatform::Cca => 3,
    };
    let kind_tag = match target.kind {
        VmKind::Secure => 0x10u64,
        VmKind::Normal => 0x20,
    };
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (platform_tag << 8) ^ kind_tag
}

/// Platform-specific machinery owned by a VM.
#[derive(Debug)]
enum Platform {
    /// A plain VM: no TEE state.
    Normal,
    /// A TDX trust domain.
    Tdx { module: TdxModule, td: TdId },
    /// An SEV-SNP guest.
    Snp { sp: AmdSp, asid: u32, next_page: u64 },
    /// A CCA realm.
    Cca { rmm: Rmm, rd: RealmId, next_granule: u64 },
}

impl Platform {
    /// Launches the TEE context for `target`, rolling `faults` at each
    /// launch stage. Mechanism errors — which a fresh launch sequence only
    /// produces when the substrate is genuinely wedged — propagate as fatal
    /// faults instead of the panics this path used to hide behind
    /// `.expect()`.
    fn launch(target: VmTarget, faults: Option<&TeeFaultPlan>) -> Result<Platform, TeeFault> {
        if target.kind == VmKind::Normal {
            return Ok(Platform::Normal);
        }
        let platform = target.platform;
        let roll = |mechanism: TeeMechanism| -> Result<(), TeeFault> {
            match faults.and_then(|p| p.roll(platform, mechanism)) {
                Some(fault) => Err(fault),
                None => Ok(()),
            }
        };
        match platform {
            TeePlatform::Tdx => {
                let mut module = TdxModule::new("TDX_1.5.05.46.698");
                let td = TdId(1);
                roll(TeeMechanism::Seamcall)?;
                module
                    .tdh_mng_create(td)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::Seamcall))?;
                roll(TeeMechanism::SeptAccept)?;
                for i in 0..BOOT_IMAGE_PAGES {
                    module
                        .tdh_mem_page_add(td, PageNum(i), PageNum(0x1_0000 + i))
                        .map_err(|_| TeeFault::fatal(platform, TeeMechanism::SeptAccept))?;
                }
                roll(TeeMechanism::Seamcall)?;
                module
                    .tdh_mr_finalize(td)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::Seamcall))?;
                Ok(Platform::Tdx { module, td })
            }
            TeePlatform::SevSnp => {
                let mut sp = AmdSp::new(0x00d1_5ea5_e000_0001, 7);
                let asid = 1;
                roll(TeeMechanism::AmdSpRequest)?;
                sp.launch_start(asid)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::AmdSpRequest))?;
                roll(TeeMechanism::RmpValidate)?;
                for i in 0..BOOT_IMAGE_PAGES {
                    sp.launch_update(asid, PageNum(i))
                        .map_err(|_| TeeFault::fatal(platform, TeeMechanism::RmpValidate))?;
                }
                roll(TeeMechanism::AmdSpRequest)?;
                sp.launch_finish(asid)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::AmdSpRequest))?;
                Ok(Platform::Snp { sp, asid, next_page: BOOT_IMAGE_PAGES })
            }
            TeePlatform::Cca => {
                let mut rmm = Rmm::new(1 << 16);
                let rd = RealmId(1);
                roll(TeeMechanism::RmmCommand)?;
                rmm.rmi_realm_create(rd)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::RmmCommand))?;
                roll(TeeMechanism::RmmCommand)?;
                for i in 0..BOOT_IMAGE_PAGES {
                    rmm.rmi_data_create(rd, PageNum(0x100 + i), PageNum(i))
                        .map_err(|_| TeeFault::fatal(platform, TeeMechanism::RmmCommand))?;
                }
                roll(TeeMechanism::RmmCommand)?;
                rmm.rmi_realm_activate(rd)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::RmmCommand))?;
                Ok(Platform::Cca { rmm, rd, next_granule: BOOT_IMAGE_PAGES })
            }
        }
    }
}

/// A simulated virtual machine bound to one [`VmTarget`].
///
/// Create with [`TeeVmBuilder`]; run traces with [`Vm::execute`].
#[derive(Debug)]
pub struct Vm {
    target: VmTarget,
    cost: CostModel,
    cache: Option<CacheSim>,
    platform: Platform,
    /// Runtime-measurement device, present in secure VMs only.
    evtpm: Option<EvTpm>,
    /// Plugged confidential accelerator, when the builder attached one.
    device: Option<GpuDevice>,
    swiotlb: Swiotlb,
    clock: SimClock,
    rng: SplitMix64,
    /// Chaos schedule rolled at each TEE mechanism crossing (if any).
    faults: Option<Arc<TeeFaultPlan>>,
    /// Currently allocated heap pages.
    heap_pages: u64,
    /// High-water mark: pages that have ever been touched (accepted /
    /// validated / delegated). Fresh-page TEE costs apply above this only.
    high_water_pages: u64,
    next_gpa: u64,
    total_exits: u64,
    total_faults: u64,
    /// Guest pages written since tracking was last reset — the working set
    /// a live migration's pre-copy rounds must re-send.
    dirty: BTreeSet<u64>,
}

/// Architectural runtime state captured at a migration's stop-and-copy
/// point: everything beyond memory contents the target VM needs to continue
/// the guest's deterministic execution mid-sequence. Microarchitectural
/// state (cache-simulator warmth, swiotlb slot history) is deliberately
/// *not* part of it — a migrated machine resumes with cold caches, exactly
/// as on real hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmRuntimeState {
    /// Virtual clock reading at the pause point.
    pub cycles: u64,
    /// Internal state of the per-trial jitter stream.
    pub rng_state: u64,
    /// Currently allocated heap pages.
    pub heap_pages: u64,
    /// High-water mark of pages ever touched.
    pub high_water_pages: u64,
    /// Next guest-physical page the heap machinery would hand out.
    pub next_gpa: u64,
    /// Cumulative VM exits since boot.
    pub total_exits: u64,
    /// Cumulative guest page faults since boot.
    pub total_faults: u64,
}

impl Vm {
    /// The VM's target.
    pub fn target(&self) -> VmTarget {
        self.target
    }

    /// The active cost model (for inspection in benches/tests).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Virtual clock reading.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Cumulative VM exits since boot.
    pub fn total_exits(&self) -> u64 {
        self.total_exits
    }

    /// The TDX module, when this VM is a trust domain (used by attestation).
    pub fn tdx_module_mut(&mut self) -> Option<(&mut TdxModule, TdId)> {
        match &mut self.platform {
            Platform::Tdx { module, td } => Some((module, *td)),
            _ => None,
        }
    }

    /// The AMD-SP, when this VM is an SNP guest (used by attestation).
    pub fn amd_sp_mut(&mut self) -> Option<(&mut AmdSp, u32)> {
        match &mut self.platform {
            Platform::Snp { sp, asid, .. } => Some((sp, *asid)),
            _ => None,
        }
    }

    /// The RMM, when this VM is a realm.
    pub fn rmm_mut(&mut self) -> Option<(&mut Rmm, RealmId)> {
        match &mut self.platform {
            Platform::Cca { rmm, rd, .. } => Some((rmm, *rd)),
            _ => None,
        }
    }

    /// The e-vTPM runtime-measurement device (secure VMs only).
    pub fn evtpm(&self) -> Option<&EvTpm> {
        self.evtpm.as_ref()
    }

    /// Mutable e-vTPM access, for workload-driven runtime extends.
    pub fn evtpm_mut(&mut self) -> Option<&mut EvTpm> {
        self.evtpm.as_mut()
    }

    /// The plugged accelerator, when the builder attached one.
    pub fn device(&self) -> Option<&GpuDevice> {
        self.device.as_ref()
    }

    /// TDISP state of the plugged accelerator.
    pub fn device_state(&self) -> Option<TdispState> {
        self.device.as_ref().map(|d| d.state())
    }

    /// Asks the plugged device for its signed SPDM measurement report,
    /// echoing `nonce`. This is a TEE mechanism crossing: the fault plan's
    /// `device-attest` point is rolled first (secure VMs only).
    ///
    /// # Errors
    ///
    /// An injected [`TeeFault`], or a fatal `device-attest` fault when no
    /// device is plugged / its interface is not locked yet.
    pub fn device_report(&mut self, nonce: [u8; 32]) -> Result<MeasurementReport, TeeFault> {
        self.roll(TeeMechanism::DeviceAttest)?;
        let fatal = || TeeFault::fatal(self.target.platform, TeeMechanism::DeviceAttest);
        self.device.as_ref().ok_or_else(fatal)?.measurement_report(nonce).map_err(|_| fatal())
    }

    /// Marks the device's measurement report verified and starts the
    /// interface: `Locked → Attested → Run`. Call after host-side policy
    /// (in `confbench-attest`) accepted the [`Vm::device_report`] evidence;
    /// from here DMA lands directly in private memory. In a normal VM this
    /// is a no-op — there is no TDISP flow to drive, and direct DMA is
    /// already permitted.
    ///
    /// # Errors
    ///
    /// An injected [`TeeFault`], or a fatal `device-attest` fault when no
    /// device is plugged or the interface is not in `Locked`.
    pub fn enable_device(&mut self) -> Result<(), TeeFault> {
        if self.target.kind != VmKind::Secure {
            return match &self.device {
                Some(_) => Ok(()),
                None => Err(TeeFault::fatal(self.target.platform, TeeMechanism::DeviceAttest)),
            };
        }
        self.roll(TeeMechanism::DeviceAttest)?;
        let platform = self.target.platform;
        let fatal = || TeeFault::fatal(platform, TeeMechanism::DeviceAttest);
        let device = self.device.as_mut().ok_or_else(fatal)?;
        device.accept_attestation().map_err(|_| fatal())?;
        device.start().map_err(|_| fatal())
    }

    /// Executes a trace, advancing the virtual clock, and returns the
    /// report. Consecutive calls model independent trials: per-trial jitter
    /// is drawn from the VM's seeded PRNG.
    ///
    /// # Panics
    ///
    /// Panics if an installed fault plan injects a fault mid-execution (use
    /// [`Vm::try_execute`] under chaos). Without a plan this never panics.
    pub fn execute(&mut self, trace: &OpTrace) -> ExecutionReport {
        self.try_execute(trace).unwrap_or_else(|f| panic!("unsupervised TEE fault: {f}"))
    }

    /// Rolls the VM's fault plan at one mechanism crossing. Normal VMs have
    /// no TEE substrate, so only secure VMs ever fault.
    fn roll(&self, mechanism: TeeMechanism) -> Result<(), TeeFault> {
        if self.target.kind != VmKind::Secure {
            return Ok(());
        }
        match self.faults.as_deref().and_then(|p| p.roll(self.target.platform, mechanism)) {
            Some(fault) => Err(fault),
            None => Ok(()),
        }
    }

    /// Fallible execution: like [`Vm::execute`], but TEE faults injected by
    /// the plan surface as `Err`. A faulted execution charges nothing — the
    /// virtual clock, exit totals, and jitter stream are only advanced on
    /// success — but the TEE page/bounce state machines may have moved, so
    /// supervisors treat a faulted VM as dirty and rebuild rather than
    /// trusting in-place state (transient faults are retried by re-running
    /// the whole attempt on a fresh VM).
    ///
    /// # Errors
    ///
    /// The injected [`TeeFault`]. One fault point is rolled per mechanism-
    /// crossing *operation* (allocation batch, I/O request, context-switch
    /// group…), not per individual exit, so the draw count is bounded by
    /// the trace length.
    pub fn try_execute(&mut self, trace: &OpTrace) -> Result<ExecutionReport, TeeFault> {
        let exit_mech = TeeMechanism::exit_for(self.target.platform);
        let page_mech = TeeMechanism::page_for(self.target.platform);
        let mut cycles = 0.0f64;
        let mut instructions = 0u64;
        let mut exits = 0u64;
        let mut faults = 0u64;
        let mut cache_refs = 0u64;
        let mut cache_misses = 0u64;
        let mut device_ns = 0u64;
        // Per-class cost-event tallies (pre-jitter, pre-multiplier).
        let mut exit_cycles = 0.0f64;
        let mut fresh_pages = 0u64;
        let mut page_cycles = 0.0f64;
        let mut bounce_bytes = 0u64;
        let mut bounce_slots = 0u64;
        let mut bounce_cycles = 0.0f64;
        let mut syscalls = 0u64;
        let mut syscall_cycles = 0.0f64;
        let mut dma_direct_bytes = 0u64;
        let mut dma_direct_cycles = 0.0f64;
        let mut dma_bounce_bytes = 0u64;
        let mut dev_kernels = 0u64;
        let mut dev_kernel_ns = 0u64;

        for op in trace {
            match *op {
                Op::Cpu(n) => {
                    instructions += n;
                    cycles += n as f64 * self.cost.cpu_op;
                }
                Op::Float(n) => {
                    instructions += n;
                    cycles += n as f64 * self.cost.float_op;
                }
                Op::MemRead { addr, bytes } | Op::MemWrite { addr, bytes } => {
                    let write = matches!(op, Op::MemWrite { .. });
                    if write {
                        self.mark_write_dirty(addr, bytes);
                    }
                    let (refs, l2_hits, misses) = match &mut self.cache {
                        Some(cache) => {
                            let d = cache.touch(addr, bytes, write);
                            (d.references, d.l2_hits, d.misses)
                        }
                        None => {
                            // Flat model: every line costs an average blend.
                            let lines = bytes.div_ceil(64).max(1);
                            (lines, 0, lines / 8)
                        }
                    };
                    instructions += refs;
                    cache_refs += refs;
                    cache_misses += misses;
                    cycles += refs as f64 * self.cost.line_touch
                        + l2_hits as f64 * self.cost.l2_hit_penalty
                        + misses as f64 * (self.cost.dram_penalty + self.cost.secure_miss_extra);
                }
                Op::Alloc(bytes) => {
                    let pages = pages_for(bytes);
                    self.heap_pages += pages;
                    let total = BOOT_IMAGE_PAGES + self.heap_pages;
                    let fresh = total.saturating_sub(self.high_water_pages);
                    let fresh = fresh.min(pages);
                    let reused = pages - fresh;
                    self.high_water_pages = self.high_water_pages.max(total);
                    let fresh_cost =
                        fresh as f64 * (self.cost.alloc_page + self.cost.alloc_fresh_extra);
                    cycles += fresh_cost + reused as f64 * self.cost.alloc_reuse_page;
                    fresh_pages += fresh;
                    page_cycles += fresh_cost;
                    faults += fresh;
                    if self.target.kind == VmKind::Secure && fresh > 0 {
                        // Fresh secure pages exit to the host for mapping.
                        exits += fresh;
                        self.roll(page_mech)?;
                        self.drive_page_mechanism(fresh.min(MECHANISM_PAGES_PER_ALLOC));
                    }
                }
                Op::Free(bytes) => {
                    let pages = pages_for(bytes).min(self.heap_pages);
                    self.heap_pages -= pages;
                    // Sub-page frees still do allocator bookkeeping.
                    cycles += (pages as f64).max(1.0) * self.cost.free_page;
                }
                Op::Syscall { kind, count } => {
                    instructions += count * 40;
                    let mult = match kind {
                        SyscallKind::Spawn => 30.0, // fork+exec kernel work
                        SyscallKind::DirOp | SyscallKind::FileMeta => 2.0,
                        _ => 1.0,
                    };
                    let sys_cost = count as f64 * self.cost.syscall_guest * mult;
                    cycles += sys_cost;
                    syscalls += count;
                    syscall_cycles += sys_cost;
                    if kind == SyscallKind::Spawn {
                        // Process creation touches fresh address-space pages.
                        let pages = 48 * count;
                        let page_cost = pages as f64
                            * (self.cost.alloc_page + self.cost.alloc_fresh_extra)
                            * 0.5; // half are COW-shared
                        cycles += page_cost;
                        fresh_pages += pages;
                        page_cycles += page_cost;
                        faults += pages;
                        if self.target.kind == VmKind::Secure {
                            exits += pages / 2;
                        }
                    }
                }
                Op::IoRead(bytes) | Op::IoWrite(bytes) => {
                    cycles += bytes as f64 * self.cost.io_byte;
                    if self.target.kind == VmKind::Secure && self.cost.bounce_copy_byte > 0.0 {
                        self.roll(TeeMechanism::SwiotlbAlloc)?;
                        let stats = self.swiotlb.transfer(bytes);
                        let stage_cost = stats.bytes_copied as f64 * self.cost.bounce_copy_byte
                            + stats.slots_used as f64 * self.cost.bounce_slot;
                        cycles += stage_cost;
                        bounce_bytes += stats.bytes_copied;
                        bounce_slots += stats.slots_used;
                        bounce_cycles += stage_cost;
                        let doorbells =
                            stats.slots_used.div_ceil(self.cost.io_slots_per_exit).max(1);
                        cycles += doorbells as f64 * self.cost.exit_cost;
                        exit_cycles += doorbells as f64 * self.cost.exit_cost;
                        exits += doorbells;
                    } else {
                        // One virtio kick per request.
                        self.roll(exit_mech)?;
                        cycles += self.cost.exit_cost;
                        exit_cycles += self.cost.exit_cost;
                        exits += 1;
                    }
                }
                Op::CtxSwitch(n) => {
                    self.roll(exit_mech)?;
                    cycles += n as f64 * (self.cost.ctx_switch + self.cost.exit_cost);
                    exit_cycles += n as f64 * self.cost.exit_cost;
                    exits += n;
                }
                Op::PageCycle(bytes) => {
                    // Pages handed back to the host lose their accepted/
                    // validated state; refaulting pays the full fresh-page
                    // price every time, TEE or not the clear, plus TEE
                    // acceptance and one exit per page in a secure VM.
                    let pages = pages_for(bytes);
                    let refault_cost = pages as f64
                        * (self.cost.free_page
                            + self.cost.alloc_page
                            + self.cost.alloc_fresh_extra);
                    cycles += refault_cost;
                    fresh_pages += pages;
                    page_cycles += refault_cost;
                    faults += pages;
                    if self.target.kind == VmKind::Secure {
                        exits += pages;
                        self.roll(page_mech)?;
                        self.drive_page_mechanism(pages.min(MECHANISM_PAGES_PER_ALLOC));
                    }
                }
                Op::DeviceWait(ns) => {
                    device_ns += ns;
                    // Completion interrupt wakes the guest: one exit round
                    // trip plus scheduler work, charged as compute.
                    self.roll(exit_mech)?;
                    cycles += self.cost.exit_cost + self.cost.ctx_switch;
                    exit_cycles += self.cost.exit_cost;
                    exits += 1;
                }
                Op::DevDmaIn(bytes) | Op::DevDmaOut(bytes) => {
                    // Path selection is the tentpole: an attached device
                    // whose TDISP interface reached `Run` (or any device in
                    // a normal VM) DMAs straight into guest memory; a
                    // locked-but-unattested device may only target shared
                    // memory, so its transfers ride the swiotlb bounce
                    // path like ordinary confidential I/O.
                    let direct = match &self.device {
                        Some(dev) => self.target.kind != VmKind::Secure || dev.direct_dma_enabled(),
                        // No device plugged: the trace still replays, as
                        // plain emulated I/O.
                        None => false,
                    };
                    if self.device.is_some() {
                        self.roll(TeeMechanism::DeviceDma)?;
                    }
                    if direct {
                        let dma_cost = bytes as f64 * self.cost.dma_byte + self.cost.exit_cost;
                        cycles += dma_cost;
                        dma_direct_bytes += bytes;
                        dma_direct_cycles += dma_cost;
                        // One doorbell exit per transfer.
                        exit_cycles += self.cost.exit_cost;
                        exits += 1;
                    } else {
                        if self.device.is_some() {
                            dma_bounce_bytes += bytes;
                        }
                        cycles += bytes as f64 * self.cost.io_byte;
                        if self.target.kind == VmKind::Secure && self.cost.bounce_copy_byte > 0.0 {
                            self.roll(TeeMechanism::SwiotlbAlloc)?;
                            let stats = self.swiotlb.transfer(bytes);
                            let stage_cost = stats.bytes_copied as f64 * self.cost.bounce_copy_byte
                                + stats.slots_used as f64 * self.cost.bounce_slot;
                            cycles += stage_cost;
                            bounce_bytes += stats.bytes_copied;
                            bounce_slots += stats.slots_used;
                            bounce_cycles += stage_cost;
                            let doorbells =
                                stats.slots_used.div_ceil(self.cost.io_slots_per_exit).max(1);
                            cycles += doorbells as f64 * self.cost.exit_cost;
                            exit_cycles += doorbells as f64 * self.cost.exit_cost;
                            exits += doorbells;
                        } else {
                            self.roll(exit_mech)?;
                            cycles += self.cost.exit_cost;
                            exit_cycles += self.cost.exit_cost;
                            exits += 1;
                        }
                    }
                }
                Op::DevKernel(ns) => {
                    // Like DeviceWait: the kernel runs in host wall time
                    // (no FVP multiplier) and its completion interrupt
                    // costs one exit round trip.
                    device_ns += ns;
                    dev_kernels += 1;
                    dev_kernel_ns += ns;
                    self.roll(exit_mech)?;
                    cycles += self.cost.exit_cost + self.cost.ctx_switch;
                    exit_cycles += self.cost.exit_cost;
                    exits += 1;
                }
                Op::Log(bytes) => {
                    self.roll(exit_mech)?;
                    cycles += bytes as f64 * self.cost.log_byte;
                    let flushes = bytes.div_ceil(self.cost.log_flush_bytes).max(1);
                    cycles += flushes as f64 * self.cost.exit_cost;
                    exit_cycles += flushes as f64 * self.cost.exit_cost;
                    exits += flushes;
                }
            }
        }

        // Per-trial multiplicative jitter, then the simulation layer.
        // Device waits are host-side wall time: jittered, but NOT subject
        // to the FVP simulation multiplier (the simulator's virtual device
        // completes in host time while simulated CPU work crawls).
        let jitter = (1.0 + self.rng.next_gaussian() * self.cost.jitter_rel_std).clamp(0.55, 1.8);
        let device_cycles = device_ns as f64 * self.target.platform.host_freq_ghz();
        let total = (cycles * self.cost.sim_multiplier + device_cycles) * jitter;
        let cycles = Cycles::new(total.round() as u64);

        self.clock.advance(cycles);
        self.total_exits += exits;
        self.total_faults += faults;

        let perf = PerfReport {
            instructions,
            cycles: cycles.get(),
            cache_references: cache_refs,
            cache_misses,
            vm_exits: exits,
            page_faults: faults,
            bounce_bytes,
            from_hw_counters: self.target.platform.has_perf_counters(),
        };
        let events = CostEvents {
            exits,
            exit_cycles: exit_cycles.round() as u64,
            fresh_pages,
            page_cycles: page_cycles.round() as u64,
            bounce_bytes,
            bounce_slots,
            bounce_cycles: bounce_cycles.round() as u64,
            syscalls,
            syscall_cycles: syscall_cycles.round() as u64,
            dma_direct_bytes,
            dma_direct_cycles: dma_direct_cycles.round() as u64,
            dma_bounce_bytes,
            dev_kernels,
            dev_kernel_ns,
        };
        Ok(ExecutionReport {
            target: self.target,
            cycles,
            wall_ms: cycles.as_millis(self.target.platform.host_freq_ghz()),
            perf,
            events,
        })
    }

    /// The platform-specific name for the world-switch cost class.
    fn exit_span_name(&self) -> &'static str {
        if self.target.kind == VmKind::Normal {
            return "vmexit";
        }
        match self.target.platform {
            TeePlatform::Tdx => "tdx.seamcall",
            TeePlatform::SevSnp => "snp.ghcb-exit",
            TeePlatform::Cca => "cca.rmm-exit",
        }
    }

    /// The platform-specific name for the fresh-page mechanism cost class.
    fn page_span_name(&self) -> &'static str {
        match self.target.platform {
            TeePlatform::Tdx => "tdx.page-accept",
            TeePlatform::SevSnp => "snp.rmp-validate",
            TeePlatform::Cca => "cca.rmm-delegate",
        }
    }

    /// Executes a trace like [`Vm::execute`], additionally attaching one
    /// child span per *nonzero* cost-event class under `parent`:
    ///
    /// * world switches — `tdx.seamcall` / `snp.ghcb-exit` / `cca.rmm-exit`
    ///   (or `vmexit` in a normal VM), attrs `count` (== `perf.vm_exits`)
    ///   and `cycles`;
    /// * fresh-page mechanism (secure VMs only) — `tdx.page-accept` /
    ///   `snp.rmp-validate` / `cca.rmm-delegate`, attrs `pages`, `cycles`;
    /// * bounce-buffer staging — `swiotlb.copy`, attrs `bytes`
    ///   (== `perf.bounce_bytes`), `slots`, `cycles`;
    /// * in-guest syscall work — `guest.syscall`, attrs `count`, `cycles`;
    /// * device DMA — `devio.dma-direct` (attrs `bytes`, `cycles`) or
    ///   `devio.dma-bounce` (attr `bytes`, with the staging itself under
    ///   `swiotlb.copy`);
    /// * device kernels — `devio.kernel`, attrs `count`, `ns`.
    pub fn execute_spanned(&mut self, trace: &OpTrace, parent: &mut ActiveSpan) -> ExecutionReport {
        self.try_execute_spanned(trace, parent)
            .unwrap_or_else(|f| panic!("unsupervised TEE fault: {f}"))
    }

    /// Fallible variant of [`Vm::execute_spanned`]: faults surface as
    /// `Err` and no child spans are attached for the aborted execution.
    ///
    /// # Errors
    ///
    /// As [`Vm::try_execute`].
    pub fn try_execute_spanned(
        &mut self,
        trace: &OpTrace,
        parent: &mut ActiveSpan,
    ) -> Result<ExecutionReport, TeeFault> {
        let report = self.try_execute(trace)?;
        let ev = report.events;
        if ev.exits > 0 {
            let mut s = parent.child(self.exit_span_name());
            s.set_attr("count", ev.exits);
            s.set_attr("cycles", ev.exit_cycles);
            parent.finish_child(s);
        }
        if self.target.kind == VmKind::Secure && ev.fresh_pages > 0 {
            let mut s = parent.child(self.page_span_name());
            s.set_attr("pages", ev.fresh_pages);
            s.set_attr("cycles", ev.page_cycles);
            parent.finish_child(s);
        }
        if ev.bounce_bytes > 0 {
            let mut s = parent.child("swiotlb.copy");
            s.set_attr("bytes", ev.bounce_bytes);
            s.set_attr("slots", ev.bounce_slots);
            s.set_attr("cycles", ev.bounce_cycles);
            parent.finish_child(s);
        }
        if ev.syscalls > 0 {
            let mut s = parent.child("guest.syscall");
            s.set_attr("count", ev.syscalls);
            s.set_attr("cycles", ev.syscall_cycles);
            parent.finish_child(s);
        }
        if ev.dma_direct_bytes > 0 {
            let mut s = parent.child("devio.dma-direct");
            s.set_attr("bytes", ev.dma_direct_bytes);
            s.set_attr("cycles", ev.dma_direct_cycles);
            parent.finish_child(s);
        }
        if ev.dma_bounce_bytes > 0 {
            let mut s = parent.child("devio.dma-bounce");
            s.set_attr("bytes", ev.dma_bounce_bytes);
            parent.finish_child(s);
        }
        if ev.dev_kernels > 0 {
            let mut s = parent.child("devio.kernel");
            s.set_attr("count", ev.dev_kernels);
            s.set_attr("ns", ev.dev_kernel_ns);
            parent.finish_child(s);
        }
        Ok(report)
    }

    /// Runs `trials` independent executions of the same trace.
    pub fn execute_trials(&mut self, trace: &OpTrace, trials: u32) -> Vec<ExecutionReport> {
        (0..trials.max(1)).map(|_| self.execute(trace)).collect()
    }

    /// Pages currently resident in the guest: the measured boot image plus
    /// every heap page the platform machinery has handed out.
    pub fn resident_page_count(&self) -> u64 {
        BOOT_IMAGE_PAGES + (self.next_gpa - HEAP_GPA_BASE)
    }

    /// Guest-physical ids of every resident page, in address order.
    pub fn resident_page_ids(&self) -> Vec<u64> {
        (0..BOOT_IMAGE_PAGES).chain(HEAP_GPA_BASE..self.next_gpa).collect()
    }

    /// Pages written since dirty tracking was last drained.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Marks every resident page dirty — the start of a migration, where
    /// the first pre-copy round must transfer the whole memory image.
    pub fn mark_all_dirty(&mut self) {
        self.dirty = self.resident_page_ids().into_iter().collect();
    }

    /// Drains the dirty set for one pre-copy round, returning the pages to
    /// transfer in address order. A TEE mechanism crossing: the fault
    /// plan's `migration-export` point is rolled first (secure VMs only),
    /// and on an injected fault the dirty set is left untouched so the
    /// round can be retried.
    ///
    /// # Errors
    ///
    /// The injected [`TeeFault`].
    pub fn export_dirty_pages(&mut self) -> Result<Vec<u64>, TeeFault> {
        self.roll(TeeMechanism::MigrationExport)?;
        Ok(std::mem::take(&mut self.dirty).into_iter().collect())
    }

    /// Captures the architectural runtime state at the stop-and-copy
    /// point. Rolls the `migration-export` fault point.
    ///
    /// # Errors
    ///
    /// The injected [`TeeFault`].
    pub fn export_runtime_state(&mut self) -> Result<VmRuntimeState, TeeFault> {
        self.roll(TeeMechanism::MigrationExport)?;
        Ok(VmRuntimeState {
            cycles: self.clock.now().get(),
            rng_state: self.rng.state(),
            heap_pages: self.heap_pages,
            high_water_pages: self.high_water_pages,
            next_gpa: self.next_gpa,
            total_exits: self.total_exits,
            total_faults: self.total_faults,
        })
    }

    /// Imports one migration round's pages on the *target* VM: heap pages
    /// the target has not materialized yet are pushed through the real
    /// platform page machinery (SEPT aug/accept, RMP assign/validate,
    /// granule map), re-sent pages are a plain content copy. Returns how
    /// many pages were freshly materialized. Rolls the `migration-import`
    /// fault point.
    ///
    /// # Errors
    ///
    /// The injected [`TeeFault`].
    pub fn import_pages(&mut self, gpas: &[u64]) -> Result<u64, TeeFault> {
        self.roll(TeeMechanism::MigrationImport)?;
        let mut fresh = 0u64;
        for &gpa in gpas {
            while gpa >= HEAP_GPA_BASE && self.next_gpa <= gpa {
                self.drive_page_mechanism(1);
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Installs the source's [`VmRuntimeState`] on the target VM — the final
    /// step before resume. Any heap pages the page stream did not cover are
    /// materialized, the virtual clock is advanced to the source's reading,
    /// and the jitter stream continues exactly where the source paused, so
    /// post-resume executions are byte-identical to a VM that never moved.
    /// Rolls the `migration-import` fault point.
    ///
    /// # Errors
    ///
    /// The injected [`TeeFault`].
    pub fn adopt_runtime_state(&mut self, state: &VmRuntimeState) -> Result<(), TeeFault> {
        self.roll(TeeMechanism::MigrationImport)?;
        while self.next_gpa < state.next_gpa {
            self.drive_page_mechanism(1);
        }
        let now = self.clock.now().get();
        if state.cycles > now {
            self.clock.advance(Cycles::new(state.cycles - now));
        }
        self.rng = SplitMix64::new(state.rng_state);
        self.heap_pages = state.heap_pages;
        self.high_water_pages = state.high_water_pages;
        self.total_exits = state.total_exits;
        self.total_faults = state.total_faults;
        self.dirty.clear();
        Ok(())
    }

    /// Maps a written virtual address run onto resident guest pages and
    /// marks them dirty. The mapping is deterministic (address-derived), so
    /// the dirty stream replays exactly under a fixed workload.
    fn mark_write_dirty(&mut self, addr: u64, bytes: u64) {
        let resident = self.resident_page_count();
        let pages = bytes.div_ceil(4096).clamp(1, 8);
        for i in 0..pages {
            let idx = (addr >> 12).wrapping_add(i) % resident;
            let id =
                if idx < BOOT_IMAGE_PAGES { idx } else { HEAP_GPA_BASE + (idx - BOOT_IMAGE_PAGES) };
            self.dirty.insert(id);
        }
    }

    /// Pushes a bounded number of fresh pages through the platform's real
    /// page machinery so the state machines are exercised, not just costed.
    fn drive_page_mechanism(&mut self, pages: u64) {
        for _ in 0..pages {
            let gpa = self.next_gpa;
            self.next_gpa += 1;
            self.dirty.insert(gpa);
            match &mut self.platform {
                Platform::Normal => {}
                Platform::Tdx { module, td } => {
                    let hpa = PageNum(0x4_0000 + gpa);
                    if module.tdh_mem_page_aug(*td, PageNum(gpa), hpa).is_ok() {
                        let _ = module.tdg_mem_page_accept(*td, PageNum(gpa));
                    }
                }
                Platform::Snp { sp, asid, next_page } => {
                    let page = PageNum(*next_page);
                    *next_page += 1;
                    let asid = *asid;
                    if sp.rmp_mut().assign(page, asid).is_ok() {
                        let _ = sp.rmp_mut().pvalidate(page, asid);
                    }
                    sp.record_ghcb_exit();
                }
                Platform::Cca { rmm, rd, next_granule } => {
                    let g = PageNum(*next_granule);
                    *next_granule += 1;
                    let _ = rmm.map_runtime_granule(*rd, PageNum(0x1000 + gpa), g);
                    rmm.record_rsi_call();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_obs::SpanRecorder;
    use confbench_types::ManualClock;
    use std::sync::Arc;

    fn io_heavy_trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.cpu(10_000);
        t.alloc(1 << 20);
        t.syscall(SyscallKind::FileRead, 32);
        t.io_write(256 * 1024);
        t
    }

    #[test]
    fn events_mirror_perf_counters() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        let r = vm.execute(&io_heavy_trace());
        assert_eq!(r.events.exits, r.perf.vm_exits);
        assert_eq!(r.events.bounce_bytes, r.perf.bounce_bytes);
        assert!(r.events.bounce_bytes >= 256 * 1024, "whole transfer staged");
        assert!(r.events.fresh_pages >= 256, "1 MiB alloc faults 256 fresh pages");
        assert_eq!(r.events.syscalls, 32);
        assert!(r.events.exit_cycles > 0 && r.events.page_cycles > 0);
    }

    #[test]
    fn normal_vm_has_no_bounce_events() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        let r = vm.execute(&io_heavy_trace());
        assert_eq!(r.events.bounce_bytes, 0);
        assert_eq!(r.perf.bounce_bytes, 0);
        assert!(r.events.exits > 0, "virtio kicks still exit");
    }

    #[test]
    fn spanned_execution_emits_platform_named_children() {
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(clock);
        for (platform, exit_name, page_name) in [
            (TeePlatform::Tdx, "tdx.seamcall", "tdx.page-accept"),
            (TeePlatform::SevSnp, "snp.ghcb-exit", "snp.rmp-validate"),
            (TeePlatform::Cca, "cca.rmm-exit", "cca.rmm-delegate"),
        ] {
            let mut vm = TeeVmBuilder::new(VmTarget::secure(platform)).build();
            let mut root = rec.root("vm.execute");
            let r = vm.execute_spanned(&io_heavy_trace(), &mut root);
            let tree = root.finish();
            let exit = tree.find(exit_name).unwrap_or_else(|| panic!("{exit_name} span"));
            assert_eq!(exit.attr("count"), Some(r.perf.vm_exits));
            let pages = tree.find(page_name).unwrap_or_else(|| panic!("{page_name} span"));
            assert_eq!(pages.attr("pages"), Some(r.events.fresh_pages));
            let swiotlb = tree.find("swiotlb.copy").expect("swiotlb span");
            assert_eq!(swiotlb.attr("bytes"), Some(r.perf.bounce_bytes));
            let sys = tree.find("guest.syscall").expect("syscall span");
            assert_eq!(sys.attr("count"), Some(32));
        }
    }

    #[test]
    fn spanned_execution_in_normal_vm_uses_generic_exit_name() {
        let rec = SpanRecorder::new(Arc::new(ManualClock::new()));
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::SevSnp)).build();
        let mut root = rec.root("vm.execute");
        vm.execute_spanned(&io_heavy_trace(), &mut root);
        let tree = root.finish();
        assert!(tree.find("vmexit").is_some());
        assert!(tree.find("snp.ghcb-exit").is_none());
        assert!(tree.find("snp.rmp-validate").is_none(), "no page mechanism in a normal VM");
        assert!(tree.find("swiotlb.copy").is_none(), "no staging in a normal VM");
    }

    /// Supervisor-style recovery: rebuild a fresh VM and retry the whole
    /// execution until one attempt crosses every fault point clean.
    fn run_until_clean(
        target: VmTarget,
        seed: u64,
        plan: &Arc<TeeFaultPlan>,
        trace: &OpTrace,
    ) -> ExecutionReport {
        for _ in 0..10_000 {
            let Ok(mut vm) =
                TeeVmBuilder::new(target).seed(seed).fault_plan(Arc::clone(plan)).try_build()
            else {
                continue;
            };
            if let Ok(report) = vm.try_execute(trace) {
                return report;
            }
        }
        panic!("no clean attempt in 10k tries (rate too high?)");
    }

    #[test]
    fn chaos_survivors_are_bit_identical_to_fault_free_runs() {
        // The core determinism property behind chaos campaigns: a run that
        // survives its injected faults (after rebuilds) reports exactly
        // what a fault-free run reports, because the fault stream is
        // separate from the timing streams.
        let trace = io_heavy_trace();
        for platform in TeePlatform::ALL {
            let target = VmTarget::secure(platform);
            let clean = TeeVmBuilder::new(target).seed(9).build().execute(&trace);
            let plan = Arc::new(TeeFaultPlan::new(41, 0.25));
            let survived = run_until_clean(target, 9, &plan, &trace);
            assert!(plan.injected() > 0, "{platform}: chaos plan never fired");
            assert_eq!(clean, survived, "{platform}: chaos must not perturb measurements");
        }
    }

    #[test]
    fn boot_faults_surface_from_try_build() {
        let plan = Arc::new(TeeFaultPlan::new(1, 1.0).with_fatal_ratio(1.0));
        for platform in TeePlatform::ALL {
            let fault = TeeVmBuilder::new(VmTarget::secure(platform))
                .fault_plan(Arc::clone(&plan))
                .try_build()
                .unwrap_err();
            assert_eq!(fault.platform, platform);
            assert!(!fault.is_transient());
        }
    }

    #[test]
    fn faulted_execution_charges_nothing() {
        let plan = Arc::new(TeeFaultPlan::new(2, 0.0).with_rate(TeeMechanism::SwiotlbAlloc, 1.0));
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx))
            .fault_plan(plan)
            .try_build()
            .unwrap();
        let before = vm.now();
        let mut t = OpTrace::new();
        t.io_write(64 * 1024);
        let fault = vm.try_execute(&t).unwrap_err();
        assert_eq!(fault.mechanism, TeeMechanism::SwiotlbAlloc);
        assert_eq!(vm.now(), before, "aborted run must not advance the clock");
        assert_eq!(vm.total_exits(), 0);
    }

    #[test]
    fn normal_vms_ignore_the_fault_plan() {
        let plan = Arc::new(TeeFaultPlan::new(3, 1.0));
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::SevSnp))
            .fault_plan(plan)
            .try_build()
            .expect("normal VMs have no TEE substrate to fault");
        assert!(vm.try_execute(&io_heavy_trace()).is_ok());
    }

    #[test]
    fn env_seeded_chaos_survives_on_every_platform() {
        // CI exports CONFBENCH_CHAOS_SEED (nonzero) so this sweep keeps the
        // fault paths exercised under a rotating schedule; without the env
        // var it still runs under a fixed default plan.
        let plan = TeeFaultPlan::from_env().unwrap_or_else(|| Arc::new(TeeFaultPlan::new(77, 0.1)));
        let trace = io_heavy_trace();
        for platform in TeePlatform::ALL {
            let survived = run_until_clean(VmTarget::secure(platform), 5, &plan, &trace);
            let clean = TeeVmBuilder::new(VmTarget::secure(platform)).seed(5).build();
            assert_eq!(survived, {
                let mut vm = clean;
                vm.execute(&trace)
            });
        }
    }

    fn dev_dma_trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.cpu(1_000);
        t.dev_dma_in(512 * 1024);
        t.dev_kernel(20_000);
        t.dev_dma_out(64 * 1024);
        t
    }

    /// Full TDISP bring-up: lock happened at build, then report → verify →
    /// accept → start.
    fn attest_device(vm: &mut Vm) {
        let report = vm.device_report([9; 32]).unwrap();
        report.verify(&confbench_devio::vendor_verifying_key()).unwrap();
        vm.enable_device().unwrap();
    }

    #[test]
    fn secure_device_boots_locked_and_runs_after_attestation() {
        let mut vm =
            TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).device(DeviceKind::Gpu).build();
        assert_eq!(vm.device_state(), Some(TdispState::Locked));
        attest_device(&mut vm);
        assert_eq!(vm.device_state(), Some(TdispState::Run));
        let r = vm.execute(&dev_dma_trace());
        assert_eq!(r.events.dma_direct_bytes, (512 + 64) * 1024);
        assert_eq!(r.events.dma_bounce_bytes, 0);
        assert_eq!(r.events.bounce_bytes, 0, "direct DMA never touches the bounce pool");
        assert_eq!(r.events.dev_kernels, 1);
        assert_eq!(r.events.dev_kernel_ns, 20_000);
    }

    #[test]
    fn unattested_device_dma_rides_the_bounce_path() {
        let mut vm =
            TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).device(DeviceKind::Gpu).build();
        let r = vm.execute(&dev_dma_trace());
        assert_eq!(r.events.dma_direct_bytes, 0);
        assert_eq!(r.events.dma_bounce_bytes, (512 + 64) * 1024);
        assert!(r.events.bounce_bytes >= (512 + 64) * 1024, "staged through swiotlb");
    }

    #[test]
    fn normal_vm_device_dma_is_direct_without_attestation() {
        let mut vm =
            TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).device(DeviceKind::Gpu).build();
        assert_eq!(vm.device_state(), Some(TdispState::Unlocked));
        let r = vm.execute(&dev_dma_trace());
        assert_eq!(r.events.dma_direct_bytes, (512 + 64) * 1024);
        assert_eq!(r.events.bounce_bytes, 0);
    }

    #[test]
    fn attested_dma_ratio_is_near_native_and_bounce_is_not() {
        for platform in TeePlatform::ALL {
            let mut trace = OpTrace::new();
            trace.cpu(5_000);
            trace.dev_dma_in(4 << 20);
            trace.dev_dma_out(1 << 20);
            let mean = |vm: &mut Vm| {
                let rs = vm.execute_trials(&trace, 5);
                rs.iter().map(|r| r.cycles.get() as f64).sum::<f64>() / rs.len() as f64
            };
            let mut normal = TeeVmBuilder::new(VmTarget::normal(platform))
                .seed(3)
                .device(DeviceKind::Gpu)
                .build();
            let mut attested = TeeVmBuilder::new(VmTarget::secure(platform))
                .seed(3)
                .device(DeviceKind::Gpu)
                .build();
            attest_device(&mut attested);
            let mut locked = TeeVmBuilder::new(VmTarget::secure(platform))
                .seed(3)
                .device(DeviceKind::Gpu)
                .build();
            let base = mean(&mut normal);
            let direct_ratio = mean(&mut attested) / base;
            let bounce_ratio = mean(&mut locked) / base;
            assert!(
                (0.8..1.25).contains(&direct_ratio),
                "{platform}: attested DMA should be near-native, got {direct_ratio:.2}"
            );
            assert!(
                bounce_ratio > direct_ratio * 1.5,
                "{platform}: unattested DMA must pay the staging tax \
                 ({bounce_ratio:.2} vs {direct_ratio:.2})"
            );
        }
    }

    #[test]
    fn device_traces_replay_without_a_device() {
        // A gpu-inference trace scheduled onto a device-less VM still runs:
        // DMA degrades to plain emulated I/O.
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).build();
        let r = vm.execute(&dev_dma_trace());
        assert_eq!(r.events.dma_direct_bytes, 0);
        assert_eq!(r.events.dma_bounce_bytes, 0, "no device: not accounted as device DMA");
        assert!(r.events.bounce_bytes > 0, "falls back to the confidential I/O path");
    }

    #[test]
    fn device_report_requires_a_plugged_device() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        let fault = vm.device_report([0; 32]).unwrap_err();
        assert_eq!(fault.mechanism, TeeMechanism::DeviceAttest);
        assert!(!fault.is_transient());
        assert!(vm.enable_device().is_err());
    }

    #[test]
    fn spanned_device_execution_emits_devio_children() {
        let rec = SpanRecorder::new(Arc::new(ManualClock::new()));
        let mut vm =
            TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).device(DeviceKind::Gpu).build();
        attest_device(&mut vm);
        let mut root = rec.root("vm.execute");
        let r = vm.execute_spanned(&dev_dma_trace(), &mut root);
        let tree = root.finish();
        let direct = tree.find("devio.dma-direct").expect("direct DMA span");
        assert_eq!(direct.attr("bytes"), Some(r.events.dma_direct_bytes));
        let kernel = tree.find("devio.kernel").expect("kernel span");
        assert_eq!(kernel.attr("count"), Some(1));
        assert!(tree.find("devio.dma-bounce").is_none());

        let mut locked =
            TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).device(DeviceKind::Gpu).build();
        let mut root = rec.root("vm.execute");
        let r = locked.execute_spanned(&dev_dma_trace(), &mut root);
        let tree = root.finish();
        let bounce = tree.find("devio.dma-bounce").expect("bounce DMA span");
        assert_eq!(bounce.attr("bytes"), Some(r.events.dma_bounce_bytes));
        assert!(tree.find("swiotlb.copy").is_some(), "staging itself is spanned");
        assert!(tree.find("devio.dma-direct").is_none());
    }

    #[test]
    fn device_chaos_survivors_match_fault_free_runs() {
        // PR 5's determinism property extended to devices: TDISP lock,
        // attestation and DMA fault points perturb nothing when survived.
        let trace = dev_dma_trace();
        for platform in TeePlatform::ALL {
            let target = VmTarget::secure(platform);
            let clean = {
                let mut vm = TeeVmBuilder::new(target).seed(13).device(DeviceKind::Gpu).build();
                attest_device(&mut vm);
                vm.execute(&trace)
            };
            let plan = Arc::new(
                TeeFaultPlan::new(23, 0.0)
                    .with_rate(TeeMechanism::TdispLock, 0.3)
                    .with_rate(TeeMechanism::DeviceAttest, 0.3)
                    .with_rate(TeeMechanism::DeviceDma, 0.3),
            );
            let survived = (0..10_000)
                .find_map(|_| {
                    let mut vm = TeeVmBuilder::new(target)
                        .seed(13)
                        .device(DeviceKind::Gpu)
                        .fault_plan(Arc::clone(&plan))
                        .try_build()
                        .ok()?;
                    vm.device_report([9; 32]).ok()?;
                    vm.enable_device().ok()?;
                    vm.try_execute(&trace).ok()
                })
                .expect("no clean attempt in 10k tries");
            assert!(plan.injected() > 0, "{platform}: device chaos never fired");
            assert_eq!(clean, survived, "{platform}: device chaos must not perturb results");
        }
    }

    #[test]
    fn spanned_and_plain_execution_charge_identically() {
        let rec = SpanRecorder::new(Arc::new(ManualClock::new()));
        let mut a = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(7).build();
        let mut b = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(7).build();
        let trace = io_heavy_trace();
        let ra = a.execute(&trace);
        let mut root = rec.root("vm.execute");
        let rb = b.execute_spanned(&trace, &mut root);
        assert_eq!(ra, rb, "instrumentation must not perturb the simulation");
    }
}

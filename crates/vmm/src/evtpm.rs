//! An ephemeral virtual TPM (e-vTPM) device for confidential VMs.
//!
//! Real CVM deployments (SVSM on SEV-SNP, the TD-partitioning vTPM on TDX)
//! place a small TPM inside the trust boundary so the *runtime* state of the
//! guest — kernel, initrd, application layers — can be measured after
//! launch, complementing the launch measurement the platform signs. This
//! model keeps the property that matters for attestation: an extend-only
//! register bank, seeded deterministically from the measured boot image, so
//! two VMs booted from the same image report identical runtime measurements
//! until their workloads diverge.
//!
//! The bank is *extend-only*: there is no reset short of rebuilding the VM,
//! mirroring hardware PCR semantics (`new = H(old || data)`).

use confbench_crypto::{Digest, Sha256};
use confbench_types::{TeePlatform, VmTarget};
use std::fmt;

use crate::vm::BOOT_IMAGE_PAGES;

/// Number of runtime measurement registers in the bank.
///
/// Eight is the TPM "static OS" PCR range (0–7); the model does not need
/// the full 24.
pub const EVTPM_PCRS: usize = 8;

/// e-vTPM operation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvTpmError {
    /// PCR index outside `0..EVTPM_PCRS`.
    BadIndex(usize),
}

impl fmt::Display for EvTpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvTpmError::BadIndex(i) => write!(f, "pcr index {i} out of range 0..{EVTPM_PCRS}"),
        }
    }
}

impl std::error::Error for EvTpmError {}

/// The e-vTPM device: an extend-only bank of [`EVTPM_PCRS`] measurement
/// registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvTpm {
    pcrs: [Digest; EVTPM_PCRS],
    extends: u64,
}

impl EvTpm {
    /// A zeroed bank (no boot measurements) — test hook; production VMs are
    /// built via [`EvTpm::measured_boot`].
    pub fn new() -> Self {
        EvTpm { pcrs: [Digest::from([0u8; 32]); EVTPM_PCRS], extends: 0 }
    }

    /// Boots the device with launch-stage measurements: PCR0 records the
    /// platform/firmware identity, PCR1 the boot image. Deterministic per
    /// target, so every member of a platform pool shares one runtime
    /// digest until a workload extends it.
    pub fn measured_boot(target: VmTarget) -> Self {
        let mut tpm = EvTpm::new();
        let platform_tag: &[u8] = match target.platform {
            TeePlatform::Tdx => b"evtpm-platform:tdx",
            TeePlatform::SevSnp => b"evtpm-platform:sev-snp",
            TeePlatform::Cca => b"evtpm-platform:cca",
        };
        // Boot-time extends cannot fail: indices are in range by
        // construction.
        let _ = tpm.extend(0, platform_tag);
        let _ = tpm.extend(1, b"evtpm-boot-image");
        let _ = tpm.extend(1, &BOOT_IMAGE_PAGES.to_be_bytes());
        tpm
    }

    /// Extends `pcrs[index]` with `data` (`new = H(old || data)`), returning
    /// the new register value.
    ///
    /// # Errors
    ///
    /// [`EvTpmError::BadIndex`] when `index >= EVTPM_PCRS`.
    pub fn extend(&mut self, index: usize, data: &[u8]) -> Result<Digest, EvTpmError> {
        let pcr = self.pcrs.get_mut(index).ok_or(EvTpmError::BadIndex(index))?;
        *pcr = Sha256::digest_parts(&[pcr.as_bytes(), data]);
        self.extends += 1;
        Ok(*pcr)
    }

    /// Reads one register.
    pub fn pcr(&self, index: usize) -> Option<Digest> {
        self.pcrs.get(index).copied()
    }

    /// The whole register bank.
    pub fn bank(&self) -> &[Digest; EVTPM_PCRS] {
        &self.pcrs
    }

    /// Folds the bank into one digest — the runtime-measurement identity
    /// attestation sessions key on.
    pub fn digest(&self) -> Digest {
        let parts: Vec<&[u8]> = self.pcrs.iter().map(|d| d.as_bytes() as &[u8]).collect();
        Sha256::digest_parts(&parts)
    }

    /// Total extends since boot (including the boot measurements).
    pub fn extends(&self) -> u64 {
        self.extends
    }
}

impl Default for EvTpm {
    fn default() -> Self {
        EvTpm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdx_target() -> VmTarget {
        VmTarget::secure(TeePlatform::Tdx)
    }

    #[test]
    fn measured_boot_is_deterministic_per_target() {
        let a = EvTpm::measured_boot(tdx_target());
        let b = EvTpm::measured_boot(tdx_target());
        assert_eq!(a.digest(), b.digest());
        let snp = EvTpm::measured_boot(VmTarget::secure(TeePlatform::SevSnp));
        assert_ne!(a.digest(), snp.digest(), "platform identity is measured");
    }

    #[test]
    fn extend_folds_and_changes_the_bank_digest() {
        let mut tpm = EvTpm::measured_boot(tdx_target());
        let before = tpm.digest();
        let old = tpm.pcr(4).unwrap();
        let new = tpm.extend(4, b"workload-layer").unwrap();
        assert_eq!(new, Sha256::digest_parts(&[old.as_bytes(), b"workload-layer"]));
        assert_ne!(tpm.digest(), before);
        assert_eq!(tpm.pcr(4), Some(new));
    }

    #[test]
    fn extend_order_matters() {
        let mut a = EvTpm::new();
        let mut b = EvTpm::new();
        a.extend(0, b"x").unwrap();
        a.extend(0, b"y").unwrap();
        b.extend(0, b"y").unwrap();
        b.extend(0, b"x").unwrap();
        assert_ne!(a.digest(), b.digest(), "PCR folding is order-sensitive");
    }

    #[test]
    fn bad_index_rejected() {
        let mut tpm = EvTpm::new();
        assert_eq!(tpm.extend(EVTPM_PCRS, b"z"), Err(EvTpmError::BadIndex(EVTPM_PCRS)));
    }

    #[test]
    fn extends_counter_tracks_boot_and_runtime() {
        let mut tpm = EvTpm::measured_boot(tdx_target());
        let boot = tpm.extends();
        assert!(boot >= 3, "boot measures platform + image");
        tpm.extend(2, b"app").unwrap();
        assert_eq!(tpm.extends(), boot + 1);
    }
}

//! Property tests for the VM executor.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use confbench_crypto::SplitMix64;
use confbench_types::{Op, OpTrace, SyscallKind, TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;

const CASES: u64 = 48;

fn arb_op(rng: &mut SplitMix64) -> Op {
    match rng.next_below(12) {
        0 => Op::Cpu(1 + rng.next_below(99_999)),
        1 => Op::Float(1 + rng.next_below(49_999)),
        2 => {
            Op::MemRead { addr: rng.next_below(1 << 22), bytes: 1 + rng.next_below((1 << 16) - 1) }
        }
        3 => {
            Op::MemWrite { addr: rng.next_below(1 << 22), bytes: 1 + rng.next_below((1 << 16) - 1) }
        }
        4 => Op::Alloc(1 + rng.next_below((1 << 20) - 1)),
        5 => Op::Free(1 + rng.next_below((1 << 20) - 1)),
        6 => Op::Syscall { kind: SyscallKind::FileMeta, count: 1 + rng.next_below(63) },
        7 => Op::IoWrite(1 + rng.next_below((1 << 18) - 1)),
        8 => Op::CtxSwitch(1 + rng.next_below(15)),
        9 => Op::PageCycle(1 + rng.next_below((1 << 18) - 1)),
        10 => Op::DeviceWait(1 + rng.next_below(49_999)),
        _ => Op::Log(1 + rng.next_below(4_095)),
    }
}

fn arb_trace(rng: &mut SplitMix64) -> OpTrace {
    (0..1 + rng.next_below(23)).map(|_| arb_op(rng)).collect()
}

fn arb_target(rng: &mut SplitMix64) -> VmTarget {
    let platform = TeePlatform::ALL[rng.next_below(TeePlatform::ALL.len() as u64) as usize];
    let kind = if rng.next_u64() & 1 == 0 { VmKind::Secure } else { VmKind::Normal };
    VmTarget { platform, kind }
}

/// Same seed, same trace: bit-identical execution.
#[test]
fn execution_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x73E_0001 ^ case);
        let trace = arb_trace(&mut rng);
        let target = arb_target(&mut rng);
        let seed = rng.next_u64();
        let run = || {
            let mut vm = TeeVmBuilder::new(target).seed(seed).build();
            let r = vm.execute(&trace);
            (r.cycles, r.perf)
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

/// Jitter-free counters are additive across trace concatenation.
#[test]
fn counters_are_additive() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x73E_0002 ^ case);
        let a = arb_trace(&mut rng);
        let b = arb_trace(&mut rng);
        let target = arb_target(&mut rng);
        let mut both = OpTrace::new();
        both.extend_from(&a);
        both.extend_from(&b);

        let mut vm1 = TeeVmBuilder::new(target).seed(1).build();
        let ra = vm1.execute(&a);
        let rb = vm1.execute(&b);
        let mut vm2 = TeeVmBuilder::new(target).seed(1).build();
        let rab = vm2.execute(&both);

        assert_eq!(
            rab.perf.instructions,
            ra.perf.instructions + rb.perf.instructions,
            "case {case}"
        );
        assert_eq!(rab.perf.vm_exits, ra.perf.vm_exits + rb.perf.vm_exits, "case {case}");
        assert_eq!(rab.perf.page_faults, ra.perf.page_faults + rb.perf.page_faults, "case {case}");
        assert_eq!(
            rab.perf.cache_references,
            ra.perf.cache_references + rb.perf.cache_references,
            "case {case}"
        );
    }
}

/// Every execution costs at least one cycle per recorded instruction
/// and never reports more cache misses than references.
#[test]
fn basic_sanity_bounds() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x73E_0003 ^ case);
        let trace = arb_trace(&mut rng);
        let target = arb_target(&mut rng);
        let mut vm = TeeVmBuilder::new(target).seed(3).build();
        let r = vm.execute(&trace);
        assert!(r.perf.cache_misses <= r.perf.cache_references, "case {case}");
        assert!(r.wall_ms >= 0.0, "case {case}");
        assert!(r.cycles.get() > 0, "case {case}");
        // The virtual clock advanced by exactly this execution.
        assert_eq!(vm.now().get(), r.cycles.get(), "case {case}");
    }
}

/// Secure VMs never take fewer exits than normal VMs on the same trace
/// (confidentiality only adds world switches).
#[test]
fn secure_exits_dominate() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x73E_0004 ^ case);
        let trace = arb_trace(&mut rng);
        let platform = TeePlatform::ALL[rng.next_below(TeePlatform::ALL.len() as u64) as usize];
        let mut secure = TeeVmBuilder::new(VmTarget::secure(platform)).seed(5).build();
        let mut normal = TeeVmBuilder::new(VmTarget::normal(platform)).seed(5).build();
        let rs = secure.execute(&trace);
        let rn = normal.execute(&trace);
        assert!(
            rs.perf.vm_exits >= rn.perf.vm_exits,
            "case {case}: secure {} < normal {}",
            rs.perf.vm_exits,
            rn.perf.vm_exits
        );
    }
}

/// The FVP multiplier never touches the secure/normal *ratio* of
/// compute-only traces beyond jitter.
#[test]
fn pure_cpu_ratio_is_cost_model_only() {
    for case in 0..12 {
        let mut rng = SplitMix64::new(0x73E_0005 ^ case);
        let n = 1_000_000 + rng.next_below(19_000_000);
        let mut t = OpTrace::new();
        t.cpu(n);
        let mean = |target: VmTarget| {
            let mut vm = TeeVmBuilder::new(target).seed(9).build();
            let xs: Vec<f64> =
                vm.execute_trials(&t, 6).iter().map(|r| r.cycles.get() as f64).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let ratio =
            mean(VmTarget::secure(TeePlatform::Cca)) / mean(VmTarget::normal(TeePlatform::Cca));
        assert!((0.95..1.35).contains(&ratio), "case {case}: cca cpu ratio {ratio}");
    }
}

//! Property tests for the VM executor.

use confbench_types::{Op, OpTrace, SyscallKind, TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeVmBuilder;
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100_000).prop_map(Op::Cpu),
        (1u64..50_000).prop_map(Op::Float),
        (0u64..1 << 22, 1u64..1 << 16)
            .prop_map(|(addr, bytes)| Op::MemRead { addr, bytes }),
        (0u64..1 << 22, 1u64..1 << 16)
            .prop_map(|(addr, bytes)| Op::MemWrite { addr, bytes }),
        (1u64..1 << 20).prop_map(Op::Alloc),
        (1u64..1 << 20).prop_map(Op::Free),
        (1u64..64).prop_map(|n| Op::Syscall { kind: SyscallKind::FileMeta, count: n }),
        (1u64..1 << 18).prop_map(Op::IoWrite),
        (1u64..16).prop_map(Op::CtxSwitch),
        (1u64..1 << 18).prop_map(Op::PageCycle),
        (1u64..50_000).prop_map(Op::DeviceWait),
        (1u64..4_096).prop_map(Op::Log),
    ]
}

fn arb_trace() -> impl Strategy<Value = OpTrace> {
    proptest::collection::vec(arb_op(), 1..24).prop_map(|ops| ops.into_iter().collect())
}

fn arb_target() -> impl Strategy<Value = VmTarget> {
    (prop::sample::select(TeePlatform::ALL.to_vec()), any::<bool>()).prop_map(|(p, secure)| {
        VmTarget { platform: p, kind: if secure { VmKind::Secure } else { VmKind::Normal } }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same trace: bit-identical execution.
    #[test]
    fn execution_is_deterministic(trace in arb_trace(), target in arb_target(), seed in any::<u64>()) {
        let run = || {
            let mut vm = TeeVmBuilder::new(target).seed(seed).build();
            let r = vm.execute(&trace);
            (r.cycles, r.perf)
        };
        prop_assert_eq!(run(), run());
    }

    /// Jitter-free counters are additive across trace concatenation.
    #[test]
    fn counters_are_additive(a in arb_trace(), b in arb_trace(), target in arb_target()) {
        let mut both = OpTrace::new();
        both.extend_from(&a);
        both.extend_from(&b);

        let mut vm1 = TeeVmBuilder::new(target).seed(1).build();
        let ra = vm1.execute(&a);
        let rb = vm1.execute(&b);
        let mut vm2 = TeeVmBuilder::new(target).seed(1).build();
        let rab = vm2.execute(&both);

        prop_assert_eq!(rab.perf.instructions, ra.perf.instructions + rb.perf.instructions);
        prop_assert_eq!(rab.perf.vm_exits, ra.perf.vm_exits + rb.perf.vm_exits);
        prop_assert_eq!(rab.perf.page_faults, ra.perf.page_faults + rb.perf.page_faults);
        prop_assert_eq!(rab.perf.cache_references, ra.perf.cache_references + rb.perf.cache_references);
    }

    /// Every execution costs at least one cycle per recorded instruction
    /// and never reports more cache misses than references.
    #[test]
    fn basic_sanity_bounds(trace in arb_trace(), target in arb_target()) {
        let mut vm = TeeVmBuilder::new(target).seed(3).build();
        let r = vm.execute(&trace);
        prop_assert!(r.perf.cache_misses <= r.perf.cache_references);
        prop_assert!(r.wall_ms >= 0.0);
        prop_assert!(r.cycles.get() > 0);
        // The virtual clock advanced by exactly this execution.
        prop_assert_eq!(vm.now().get(), r.cycles.get());
    }

    /// Secure VMs never take fewer exits than normal VMs on the same trace
    /// (confidentiality only adds world switches).
    #[test]
    fn secure_exits_dominate(trace in arb_trace(),
                             platform in prop::sample::select(TeePlatform::ALL.to_vec())) {
        let mut secure = TeeVmBuilder::new(VmTarget::secure(platform)).seed(5).build();
        let mut normal = TeeVmBuilder::new(VmTarget::normal(platform)).seed(5).build();
        let rs = secure.execute(&trace);
        let rn = normal.execute(&trace);
        prop_assert!(rs.perf.vm_exits >= rn.perf.vm_exits,
            "secure {} < normal {}", rs.perf.vm_exits, rn.perf.vm_exits);
    }

    /// The FVP multiplier never touches the secure/normal *ratio* of
    /// compute-only traces beyond jitter.
    #[test]
    fn pure_cpu_ratio_is_cost_model_only(n in 1_000_000u64..20_000_000) {
        let mut t = OpTrace::new();
        t.cpu(n);
        let mean = |target: VmTarget| {
            let mut vm = TeeVmBuilder::new(target).seed(9).build();
            let xs: Vec<f64> =
                vm.execute_trials(&t, 6).iter().map(|r| r.cycles.get() as f64).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let ratio = mean(VmTarget::secure(TeePlatform::Cca))
            / mean(VmTarget::normal(TeePlatform::Cca));
        prop_assert!((0.95..1.35).contains(&ratio), "cca cpu ratio {}", ratio);
    }
}

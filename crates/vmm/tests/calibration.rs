//! Calibration tests: the secure/normal ratio *shapes* the cost model must
//! produce to reproduce the paper's findings. These are the contract the
//! figure generators rely on.

use confbench_types::{OpTrace, SyscallKind, TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;

/// Mean secure/normal cycle ratio over `trials` trials of `trace`.
fn ratio(platform: TeePlatform, trace: &OpTrace, trials: u32) -> f64 {
    let mut secure = TeeVmBuilder::new(VmTarget::secure(platform)).seed(7).build();
    let mut normal = TeeVmBuilder::new(VmTarget::normal(platform)).seed(7).build();
    let s: f64 = secure.execute_trials(trace, trials).iter().map(|r| r.cycles.get() as f64).sum();
    let n: f64 = normal.execute_trials(trace, trials).iter().map(|r| r.cycles.get() as f64).sum();
    s / n
}

fn cpu_bound() -> OpTrace {
    let mut t = OpTrace::new();
    t.cpu(5_000_000);
    t.float(1_000_000);
    t
}

fn io_bound() -> OpTrace {
    let mut t = OpTrace::new();
    for _ in 0..8 {
        t.syscall(SyscallKind::FileWrite, 16);
        t.io_write(1 << 20);
    }
    t
}

fn alloc_growth() -> OpTrace {
    // memstress-style: keep allocating fresh 1-MiB buffers and touch them.
    let mut t = OpTrace::new();
    for _ in 0..64 {
        t.alloc(1 << 20);
        t.mem_write(1 << 20);
    }
    t
}

fn syscall_storm() -> OpTrace {
    // DBMS-ish: metadata syscalls + small I/O + reuse-heavy allocation.
    let mut t = OpTrace::new();
    for _ in 0..50 {
        t.syscall(SyscallKind::FileMeta, 200);
        t.syscall(SyscallKind::FileWrite, 100);
        t.io_write(64 << 10);
        t.alloc(256 << 10);
        t.cpu(400_000);
        t.free(256 << 10);
    }
    t
}

#[test]
fn tdx_cpu_bound_is_near_native() {
    let r = ratio(TeePlatform::Tdx, &cpu_bound(), 6);
    assert!((0.95..1.10).contains(&r), "TDX cpu ratio {r}");
}

#[test]
fn snp_cpu_bound_is_near_native_but_above_tdx() {
    let tdx = ratio(TeePlatform::Tdx, &cpu_bound(), 6);
    let snp = ratio(TeePlatform::SevSnp, &cpu_bound(), 6);
    assert!((0.95..1.15).contains(&snp), "SNP cpu ratio {snp}");
    assert!(snp >= tdx - 0.03, "TDX ({tdx}) should not lose to SNP ({snp}) on CPU");
}

#[test]
fn cca_cpu_bound_overhead_moderate() {
    // Paper Fig. 3: CCA up to ~1.33x on ML-style CPU work.
    let r = ratio(TeePlatform::Cca, &cpu_bound(), 6);
    assert!((1.05..1.45).contains(&r), "CCA cpu ratio {r}");
}

#[test]
fn tdx_pays_more_for_io_than_snp() {
    // Paper §IV-D: SEV-SNP is faster with I/O tasks; TDX's bounce buffers
    // hurt.
    let tdx = ratio(TeePlatform::Tdx, &io_bound(), 6);
    let snp = ratio(TeePlatform::SevSnp, &io_bound(), 6);
    assert!(tdx > 1.3, "TDX io ratio should be visibly above 1: {tdx}");
    assert!(tdx < 3.5, "TDX io ratio should stay tenable: {tdx}");
    assert!(snp > 1.05 && snp < tdx, "SNP io ratio {snp} must undercut TDX {tdx}");
}

#[test]
fn alloc_growth_costs_more_in_tees() {
    let tdx = ratio(TeePlatform::Tdx, &alloc_growth(), 6);
    let snp = ratio(TeePlatform::SevSnp, &alloc_growth(), 6);
    assert!((1.05..2.2).contains(&tdx), "TDX memstress ratio {tdx}");
    assert!((1.05..2.2).contains(&snp), "SNP memstress ratio {snp}");
}

#[test]
fn steady_state_allocation_is_amortized() {
    // Reuse-heavy allocation (alloc/free churn at fixed footprint) must be
    // near-native on x86 TEEs: acceptance is paid once.
    let mut t = OpTrace::new();
    t.alloc(4 << 20);
    t.free(4 << 20);
    for _ in 0..200 {
        t.alloc(4 << 20);
        t.cpu(200_000);
        t.free(4 << 20);
    }
    let r = ratio(TeePlatform::Tdx, &t, 6);
    assert!((0.9..1.15).contains(&r), "TDX steady-state alloc ratio {r}");
}

#[test]
fn cca_syscall_storm_is_much_slower() {
    // Paper §IV-C: CCA's DBMS overhead reaches ~10x; TDX/SNP stay ≈1.
    let cca = ratio(TeePlatform::Cca, &syscall_storm(), 6);
    let tdx = ratio(TeePlatform::Tdx, &syscall_storm(), 6);
    let snp = ratio(TeePlatform::SevSnp, &syscall_storm(), 6);
    assert!(cca > 3.0, "CCA dbms-ish ratio {cca}");
    assert!(cca < 12.0, "CCA dbms-ish ratio {cca}");
    assert!((0.9..1.5).contains(&tdx), "TDX dbms-ish ratio {tdx}");
    assert!((0.9..1.5).contains(&snp), "SNP dbms-ish ratio {snp}");
}

#[test]
fn cca_wall_times_dwarf_hardware_platforms() {
    // The FVP multiplier must show in absolute times (Fig. 8 is plotted in
    // absolute seconds for this reason) for both VM kinds.
    let trace = cpu_bound();
    let mut cca = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Cca)).build();
    let mut tdx = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
    let c = cca.execute(&trace).wall_ms;
    let t = tdx.execute(&trace).wall_ms;
    assert!(c > 5.0 * t, "FVP-hosted normal VM should be much slower: cca={c}ms tdx={t}ms");
}

#[test]
fn cca_trials_have_widest_spread() {
    let trace = cpu_bound();
    let spread = |p: TeePlatform| {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(p)).seed(3).build();
        let xs: Vec<f64> =
            vm.execute_trials(&trace, 12).iter().map(|r| r.cycles.get() as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        var.sqrt() / mean
    };
    let cca = spread(TeePlatform::Cca);
    assert!(cca > spread(TeePlatform::Tdx), "CCA spread {cca} must beat TDX");
    assert!(cca > spread(TeePlatform::SevSnp), "CCA spread {cca} must beat SNP");
}

#[test]
fn bounce_buffer_ablation_closes_the_io_gap() {
    let trace = io_bound();
    let mut on = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
    let mut off =
        TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).bounce_buffers(false).build();
    let c_on = on.execute(&trace).cycles.get() as f64;
    let c_off = off.execute(&trace).cycles.get() as f64;
    assert!(
        c_off < 0.8 * c_on,
        "disabling bounce buffers must cut TDX I/O cost: {c_off} vs {c_on}"
    );
}

#[test]
fn determinism_same_seed_same_cycles() {
    let trace = syscall_storm();
    let run = || {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(99).build();
        vm.execute_trials(&trace, 3).iter().map(|r| r.cycles.get()).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn perf_counters_populated() {
    let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
    let mut t = OpTrace::new();
    t.cpu(1000);
    t.mem_write(1 << 16);
    t.io_write(1 << 16);
    t.ctx_switch(4);
    let r = vm.execute(&t);
    assert!(r.perf.instructions > 1000);
    assert!(r.perf.cache_references > 0);
    assert!(r.perf.vm_exits > 4, "io doorbells + ctx switches: {}", r.perf.vm_exits);
    assert!(r.perf.from_hw_counters);
    let mut cca = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).build();
    assert!(!cca.execute(&t).perf.from_hw_counters);
}

#[test]
fn some_workload_runs_faster_in_secure_vm() {
    // The paper's counter-intuitive finding: a few ratios < 1.0, traced to
    // cache-hit differences. Find a conflict-prone access pattern where the
    // secure VM's page coloring wins, and verify the cache ablation removes
    // the effect.
    let mut found = None;
    for stride_log in 10..16u32 {
        let mut t = OpTrace::new();
        for pass in 0..4u64 {
            for i in 0..256u64 {
                let _ = pass;
                t.mem_read_at(0x4000_0000 + i * (1 << stride_log), 64);
            }
        }
        t.cpu(1_000);
        let r = ratio(TeePlatform::Tdx, &t, 10);
        if r < 0.995 {
            found = Some((stride_log, r));
            break;
        }
    }
    let (stride_log, r) = found.expect("some strided pattern should favor the colored mapping");
    // Ablation: with the cache model off, the advantage disappears.
    let mut t = OpTrace::new();
    for _ in 0..4u64 {
        for i in 0..256u64 {
            t.mem_read_at(0x4000_0000 + i * (1u64 << stride_log), 64);
        }
    }
    t.cpu(1_000);
    let mut secure =
        TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(7).cache_model(false).build();
    let mut normal =
        TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).seed(7).cache_model(false).build();
    let s: f64 = secure.execute_trials(&t, 10).iter().map(|x| x.cycles.get() as f64).sum();
    let n: f64 = normal.execute_trials(&t, 10).iter().map(|x| x.cycles.get() as f64).sum();
    assert!(s / n > 0.99, "without the cache model the sub-1.0 effect vanishes (r was {r})");
}

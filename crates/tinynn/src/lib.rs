//! A from-scratch neural-network inference engine for the confidential-ML
//! experiment (paper §IV-C, Fig. 3).
//!
//! The paper runs TensorFlow Lite with a MobileNet model over 40 one-MB
//! images inside secure and normal VMs. This crate supplies the equivalent
//! substrate: dense [`Tensor`]s, the MobileNet layer set (standard,
//! depthwise and pointwise convolutions, ReLU6, global average pooling,
//! dense, softmax), a [`mobilenet`] model builder with deterministic
//! weights, and a procedural [`dataset_image`] generator for the 40-image
//! dataset including the decode/resize preprocessing step.
//!
//! # Example
//!
//! ```
//! use confbench_tinynn::{dataset_image, mobilenet};
//!
//! let model = mobilenet(32, 4, 10, 7);
//! let image = dataset_image(0, 7);
//! let probs = model.forward(&image.to_input(32));
//! let class = probs.argmax();
//! assert!(class < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod layers;
mod model;
mod tensor;

pub use image::{dataset_image, RgbImage, DATASET_SIZE, IMAGE_DIM};
pub use layers::{Conv2d, Dense, DepthwiseConv2d, GlobalAvgPool, Layer, Relu6, Softmax};
pub use model::{mobilenet, ForwardCost, Sequential};
pub use tensor::Tensor;

//! Sequential models and the MobileNet-shaped classifier.

use crate::layers::{Conv2d, Dense, DepthwiseConv2d, GlobalAvgPool, Layer, Relu6, Softmax};
use crate::tensor::Tensor;

/// A sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Vec<usize>,
}

/// Cost summary of one forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardCost {
    /// Total multiply-accumulates.
    pub flops: u64,
    /// Bytes of activations written across all layers.
    pub activation_bytes: u64,
}

impl Sequential {
    /// Creates an empty model for a fixed input shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty.
    pub fn new(input_shape: &[usize]) -> Self {
        assert!(!input_shape.is_empty(), "input shape required");
        Sequential { layers: Vec::new(), input_shape: input_shape.to_vec() }
    }

    /// Appends a layer, checking shape compatibility lazily at forward time.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The declared input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Runs inference.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the declared input shape, or any
    /// layer's expectation.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape(), self.input_shape, "model input shape");
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Static cost of one forward pass.
    pub fn cost(&self) -> ForwardCost {
        let mut shape = self.input_shape.clone();
        let mut cost = ForwardCost::default();
        for layer in &self.layers {
            cost.flops += layer.flops(&shape);
            shape = layer.output_shape(&shape);
            cost.activation_bytes += 4 * shape.iter().product::<usize>() as u64;
        }
        cost
    }

    /// Layer names, in order (diagnostics).
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// The layers, in order (device offload walks them to emit one kernel
    /// per layer).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Total learned parameters across all layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

/// Builds the MobileNet-shaped classifier used by the confidential-ML
/// experiment: a stem convolution, `blocks` depthwise-separable blocks with
/// channel growth and periodic spatial downsampling, global average pooling
/// and a softmax classifier head.
///
/// The default experiment uses 32×32×3 inputs with 6 blocks and 10 classes —
/// far smaller than MobileNetV1 on ImageNet, but with the identical
/// depthwise-separable cost structure the experiment measures.
///
/// # Panics
///
/// Panics if `blocks == 0` or `classes == 0`.
///
/// # Example
///
/// ```
/// use confbench_tinynn::{mobilenet, Tensor};
///
/// let model = mobilenet(32, 4, 10, 7);
/// let image = Tensor::zeros(&[3, 32, 32]);
/// let probs = model.forward(&image);
/// assert_eq!(probs.shape(), &[10]);
/// let sum: f32 = probs.data().iter().sum();
/// assert!((sum - 1.0).abs() < 1e-5);
/// ```
pub fn mobilenet(input_hw: usize, blocks: usize, classes: usize, seed: u64) -> Sequential {
    assert!(blocks > 0 && classes > 0, "blocks and classes must be positive");
    let mut model = Sequential::new(&[3, input_hw, input_hw]);
    let mut channels = 8;
    model.push(Box::new(Conv2d::new(3, channels, 3, 2, 1, seed)));
    model.push(Box::new(Relu6));
    let mut hw = input_hw / 2;
    for b in 0..blocks {
        // Downsample every other block while we still have spatial extent.
        let stride = if b % 2 == 1 && hw > 4 { 2 } else { 1 };
        model.push(Box::new(DepthwiseConv2d::new(channels, 3, stride, 1, seed + 100 + b as u64)));
        model.push(Box::new(Relu6));
        let next = (channels * 2).min(128);
        model.push(Box::new(Conv2d::new(channels, next, 1, 1, 0, seed + 200 + b as u64)));
        model.push(Box::new(Relu6));
        channels = next;
        if stride == 2 {
            hw /= 2;
        }
    }
    model.push(Box::new(GlobalAvgPool));
    model.push(Box::new(Dense::new(channels, classes, seed + 999)));
    model.push(Box::new(Softmax));
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_output_is_distribution() {
        let model = mobilenet(32, 6, 10, 1);
        let input = Tensor::from_fn(&[3, 32, 32], |idx| ((idx[1] + idx[2]) % 7) as f32 / 7.0);
        let out = model.forward(&input);
        assert_eq!(out.shape(), &[10]);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn inference_is_deterministic() {
        let model = mobilenet(32, 4, 10, 5);
        let input = Tensor::from_fn(&[3, 32, 32], |idx| (idx[2] as f32).sin());
        assert_eq!(model.forward(&input), model.forward(&input));
    }

    #[test]
    fn different_seeds_different_predictions() {
        let input = Tensor::from_fn(&[3, 32, 32], |idx| ((idx[0] + idx[1] * idx[2]) % 11) as f32);
        let a = mobilenet(32, 4, 10, 1).forward(&input);
        let b = mobilenet(32, 4, 10, 2).forward(&input);
        assert_ne!(a, b);
    }

    #[test]
    fn cost_grows_with_depth() {
        let small = mobilenet(32, 2, 10, 1).cost();
        let big = mobilenet(32, 6, 10, 1).cost();
        assert!(big.flops > small.flops);
        assert!(big.activation_bytes > small.activation_bytes);
        assert!(small.flops > 100_000, "non-trivial compute: {}", small.flops);
    }

    #[test]
    fn layer_names_describe_structure() {
        let model = mobilenet(32, 2, 10, 1);
        let names = model.layer_names();
        assert!(names[0].starts_with("conv3x3s2"));
        assert!(names.iter().any(|n| n.starts_with("dw3x3")));
        assert_eq!(names.last().unwrap(), "softmax");
    }

    #[test]
    #[should_panic(expected = "model input shape")]
    fn wrong_input_shape_panics() {
        mobilenet(32, 2, 10, 1).forward(&Tensor::zeros(&[3, 16, 16]));
    }
}

//! Inference layers: the building blocks of MobileNet-class networks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// A network layer: forward inference over CHW activations, plus cost
/// accounting so adapters can convert a forward pass into an operation
/// trace.
pub trait Layer {
    /// Runs the layer.
    ///
    /// # Panics
    ///
    /// Panics when the input shape does not match the layer's expectation.
    fn forward(&self, input: &Tensor) -> Tensor;

    /// Multiply-accumulates one forward pass performs for `input_shape`.
    fn flops(&self, input_shape: &[usize]) -> u64;

    /// The output shape for a given input shape.
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Human-readable layer name.
    fn name(&self) -> String;

    /// Learned parameters (weights + biases) the layer carries; 0 for
    /// parameter-free layers. Device offload uses this to size weight DMA.
    fn param_count(&self) -> usize {
        0
    }
}

fn kaiming_weights(rng: &mut StdRng, count: usize, fan_in: usize) -> Vec<f32> {
    let scale = (2.0 / fan_in as f64).sqrt() as f32;
    (0..count).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale).collect()
}

/// Standard 2-D convolution over CHW input.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[out, in, k, k]`
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with deterministic Kaiming-style weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension parameter is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weights: kaiming_weights(&mut rng, out_channels * fan_in, fan_in),
            bias: (0..out_channels).map(|_| rng.gen::<f32>() * 0.02).collect(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.padding - self.kernel) / self.stride + 1,
            (w + 2 * self.padding - self.kernel) / self.stride + 1,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&self, input: &Tensor) -> Tensor {
        let [c, h, w]: [usize; 3] = input.shape().try_into().expect("CHW input");
        assert_eq!(c, self.in_channels, "channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        let k = self.kernel;
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let wgt =
                                    self.weights[((oc * self.in_channels + ic) * k + ky) * k + kx];
                                acc += wgt * input.get(&[ic, iy as usize, ix as usize]);
                            }
                        }
                    }
                    out.set(&[oc, oy, ox], acc);
                }
            }
        }
        out
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        (self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        vec![self.out_channels, oh, ow]
    }

    fn name(&self) -> String {
        format!(
            "conv{}x{}s{}({}→{})",
            self.kernel, self.kernel, self.stride, self.in_channels, self.out_channels
        )
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Depthwise 3×3 convolution (one filter per channel), the workhorse of
/// MobileNet.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[c, k, k]`
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with deterministic weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension parameter is zero.
    pub fn new(channels: usize, kernel: usize, stride: usize, padding: usize, seed: u64) -> Self {
        assert!(channels > 0 && kernel > 0 && stride > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = kernel * kernel;
        DepthwiseConv2d {
            channels,
            kernel,
            stride,
            padding,
            weights: kaiming_weights(&mut rng, channels * fan_in, fan_in),
            bias: (0..channels).map(|_| rng.gen::<f32>() * 0.02).collect(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.padding - self.kernel) / self.stride + 1,
            (w + 2 * self.padding - self.kernel) / self.stride + 1,
        )
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&self, input: &Tensor) -> Tensor {
        let [c, h, w]: [usize; 3] = input.shape().try_into().expect("CHW input");
        assert_eq!(c, self.channels, "channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let k = self.kernel;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[ch];
                    for ky in 0..k {
                        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            acc += self.weights[(ch * k + ky) * k + kx]
                                * input.get(&[ch, iy as usize, ix as usize]);
                        }
                    }
                    out.set(&[ch, oy, ox], acc);
                }
            }
        }
        out
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        (self.channels * oh * ow * self.kernel * self.kernel) as u64
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        vec![self.channels, oh, ow]
    }

    fn name(&self) -> String {
        format!("dw{}x{}s{}(c{})", self.kernel, self.kernel, self.stride, self.channels)
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// ReLU6 activation (`min(max(x, 0), 6)`), MobileNet's nonlinearity.
#[derive(Debug, Clone, Default)]
pub struct Relu6;

impl Layer for Relu6 {
    fn forward(&self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = v.clamp(0.0, 6.0);
        }
        out
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn name(&self) -> String {
        "relu6".into()
    }
}

/// Global average pooling: CHW → C.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn forward(&self, input: &Tensor) -> Tensor {
        let [c, h, w]: [usize; 3] = input.shape().try_into().expect("CHW input");
        let mut out = Tensor::zeros(&[c]);
        let denom = (h * w) as f32;
        for ch in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += input.get(&[ch, y, x]);
                }
            }
            out.set(&[ch], acc / denom);
        }
        out
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0]]
    }

    fn name(&self) -> String {
        "gap".into()
    }
}

/// Fully connected layer over a rank-1 input.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// `[out, in]`
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with deterministic weights.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        Dense {
            in_features,
            out_features,
            weights: kaiming_weights(&mut rng, in_features * out_features, in_features),
            bias: (0..out_features).map(|_| rng.gen::<f32>() * 0.02).collect(),
        }
    }
}

impl Layer for Dense {
    fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape(), [self.in_features], "dense input shape");
        let mut out = Tensor::zeros(&[self.out_features]);
        for o in 0..self.out_features {
            let mut acc = self.bias[o];
            for i in 0..self.in_features {
                acc += self.weights[o * self.in_features + i] * input.data()[i];
            }
            out.set(&[o], acc);
        }
        out
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_features]
    }

    fn name(&self) -> String {
        format!("dense({}→{})", self.in_features, self.out_features)
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Numerically-stable softmax over a rank-1 input.
#[derive(Debug, Clone, Default)]
pub struct Softmax;

impl Layer for Softmax {
    fn forward(&self, input: &Tensor) -> Tensor {
        let max = input.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = input.data().iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        Tensor::from_vec(input.shape(), exps.into_iter().map(|e| e / sum).collect())
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        4 * input_shape.iter().product::<usize>() as u64
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn name(&self) -> String {
        "softmax".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1×1 conv with identity weight must reproduce its input.
    #[test]
    fn conv_identity() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        conv.weights = vec![1.0];
        conv.bias = vec![0.0];
        let input = Tensor::from_fn(&[1, 3, 3], |idx| (idx[1] * 3 + idx[2]) as f32);
        assert_eq!(conv.forward(&input), input);
    }

    /// Hand-computed 3×3 box filter over a known image.
    #[test]
    fn conv_box_filter_known_values() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, 0);
        conv.weights = vec![1.0; 9];
        conv.bias = vec![0.0];
        let input = Tensor::from_fn(&[1, 3, 3], |idx| (idx[1] * 3 + idx[2] + 1) as f32);
        let out = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.get(&[0, 0, 0]), 45.0); // 1+2+...+9
    }

    #[test]
    fn conv_stride_and_padding_shapes() {
        let conv = Conv2d::new(3, 8, 3, 2, 1, 1);
        assert_eq!(conv.output_shape(&[3, 32, 32]), vec![8, 16, 16]);
        let out = conv.forward(&Tensor::zeros(&[3, 32, 32]));
        assert_eq!(out.shape(), &[8, 16, 16]);
    }

    #[test]
    fn depthwise_equals_grouped_conv_manually() {
        // Depthwise with all-ones kernels sums each channel's 3×3 patch.
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 0, 0);
        dw.weights = vec![1.0; 18];
        dw.bias = vec![0.0, 0.0];
        let input = Tensor::from_fn(&[2, 3, 3], |idx| if idx[0] == 0 { 1.0 } else { 2.0 });
        let out = dw.forward(&input);
        assert_eq!(out.get(&[0, 0, 0]), 9.0);
        assert_eq!(out.get(&[1, 0, 0]), 18.0);
    }

    #[test]
    fn relu6_clamps() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 0.5, 6.0, 9.0]);
        assert_eq!(Relu6.forward(&t).data(), &[0.0, 0.5, 6.0, 6.0]);
    }

    #[test]
    fn gap_averages() {
        let t = Tensor::from_fn(&[2, 2, 2], |idx| if idx[0] == 0 { 4.0 } else { 8.0 });
        let out = GlobalAvgPool.forward(&t);
        assert_eq!(out.data(), &[4.0, 8.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let t = Tensor::from_vec(&[3], vec![1000.0, 1001.0, 1002.0]);
        let out = Softmax.forward(&t);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out.data().iter().all(|v| v.is_finite()));
        assert_eq!(out.argmax(), 2);
    }

    #[test]
    fn dense_known_values() {
        let mut d = Dense::new(2, 1, 0);
        d.weights = vec![2.0, 3.0];
        d.bias = vec![1.0];
        let out = d.forward(&Tensor::from_vec(&[2], vec![10.0, 100.0]));
        assert_eq!(out.data(), &[321.0]);
    }

    #[test]
    fn flops_counts_are_consistent() {
        let conv = Conv2d::new(3, 16, 3, 1, 1, 0);
        // 16 * 32*32 * 3 * 9
        assert_eq!(conv.flops(&[3, 32, 32]), 16 * 1024 * 27);
        let dw = DepthwiseConv2d::new(16, 3, 1, 1, 0);
        assert_eq!(dw.flops(&[16, 32, 32]), 16 * 1024 * 9);
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let a = Conv2d::new(3, 4, 3, 1, 1, 42);
        let b = Conv2d::new(3, 4, 3, 1, 1, 42);
        let c = Conv2d::new(3, 4, 3, 1, 1, 43);
        assert_eq!(a.weights, b.weights);
        assert_ne!(a.weights, c.weights);
    }
}

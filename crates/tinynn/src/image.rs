//! The synthetic image dataset for the confidential-ML experiment.
//!
//! The paper classifies 40 diversified 1-MB images (dataset from the
//! GuaranTEE work). We generate 40 deterministic 512×512 RGB images
//! (≈ 786 KiB of raw pixels each, 1 MiB on disk with headers/padding, which
//! is what the experiment's I/O path sees) from distinct procedural
//! families, then preprocess them to the model's input resolution by
//! average-pooling patches — a real decode-and-resize step with real cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// Source resolution of dataset images (512×512 RGB ≈ 1 MB class).
pub const IMAGE_DIM: usize = 512;

/// Number of images in the dataset, matching the paper.
pub const DATASET_SIZE: usize = 40;

/// A raw RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    /// Width and height (square).
    pub dim: usize,
    /// Interleaved RGB bytes, `3 * dim * dim` of them.
    pub pixels: Vec<u8>,
}

impl RgbImage {
    /// Size of the raw pixel payload in bytes.
    pub fn byte_len(&self) -> usize {
        self.pixels.len()
    }

    /// Downscales to `target` × `target` CHW float input by average-pooling
    /// square patches and normalizing to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `target` evenly divides the image dimension.
    pub fn to_input(&self, target: usize) -> Tensor {
        assert!(self.dim.is_multiple_of(target), "{target} must divide {}", self.dim);
        let patch = self.dim / target;
        let denom = (patch * patch) as f32 * 255.0;
        Tensor::from_fn(&[3, target, target], |idx| {
            let (c, ty, tx) = (idx[0], idx[1], idx[2]);
            let mut acc = 0u32;
            for py in 0..patch {
                for px in 0..patch {
                    let y = ty * patch + py;
                    let x = tx * patch + px;
                    acc += self.pixels[(y * self.dim + x) * 3 + c] as u32;
                }
            }
            acc as f32 / denom
        })
    }
}

/// Generates image `index` of the dataset (deterministic in `index` and
/// `seed`). Images rotate through four procedural families — gradients,
/// checkerboards, noise fields, and radial blobs — so the set is
/// "diversified" like the paper's.
///
/// # Panics
///
/// Panics if `index >= DATASET_SIZE`.
pub fn dataset_image(index: usize, seed: u64) -> RgbImage {
    assert!(index < DATASET_SIZE, "index {index} out of range");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1_000_003).wrapping_add(index as u64));
    let dim = IMAGE_DIM;
    let mut pixels = vec![0u8; 3 * dim * dim];
    let family = index % 4;
    let (p1, p2) = (rng.gen_range(3u32..23), rng.gen_range(2u32..9));
    for y in 0..dim {
        for x in 0..dim {
            let base = (y * dim + x) * 3;
            let (r, g, b) = match family {
                0 => {
                    // Diagonal gradient.
                    let v = ((x + y) * 255 / (2 * dim - 2)) as u8;
                    (v, v.wrapping_add(p1 as u8), v.wrapping_mul(p2 as u8))
                }
                1 => {
                    // Checkerboard with random cell size.
                    let cell = 8 + (p1 as usize % 32);
                    let on = (x / cell + y / cell).is_multiple_of(2);
                    if on {
                        (230, 20 + p2 as u8, 40)
                    } else {
                        (25, 200, 180u8.wrapping_sub(p1 as u8))
                    }
                }
                2 => {
                    // Noise field.
                    (rng.gen(), rng.gen(), rng.gen())
                }
                _ => {
                    // Radial blob.
                    let dx = x as f64 - dim as f64 / 2.0;
                    let dy = y as f64 - dim as f64 / 2.0;
                    let d = (dx * dx + dy * dy).sqrt() / (dim as f64 / 2.0);
                    let v = ((1.0 - d.min(1.0)) * 255.0) as u8;
                    (v, v / (p2 as u8 + 1), 255 - v)
                }
            };
            pixels[base] = r;
            pixels[base + 1] = g;
            pixels[base + 2] = b;
        }
    }
    RgbImage { dim, pixels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_about_a_megabyte() {
        let img = dataset_image(0, 1);
        assert_eq!(img.byte_len(), 3 * 512 * 512);
        assert!(img.byte_len() > 700_000);
    }

    #[test]
    fn dataset_is_deterministic() {
        assert_eq!(dataset_image(7, 42), dataset_image(7, 42));
        assert_ne!(dataset_image(7, 42), dataset_image(8, 42));
        assert_ne!(dataset_image(7, 42), dataset_image(7, 43));
    }

    #[test]
    fn families_rotate() {
        // Neighbouring indices come from different families and must differ.
        let a = dataset_image(0, 1);
        let b = dataset_image(1, 1);
        let c = dataset_image(2, 1);
        assert_ne!(a.pixels, b.pixels);
        assert_ne!(b.pixels, c.pixels);
    }

    #[test]
    fn to_input_normalizes() {
        let img = dataset_image(3, 1);
        let input = img.to_input(32);
        assert_eq!(input.shape(), &[3, 32, 32]);
        assert!(input.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // A non-trivial image has non-constant input.
        let first = input.data()[0];
        assert!(input.data().iter().any(|&v| (v - first).abs() > 1e-3));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_target_panics() {
        dataset_image(0, 1).to_input(33);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bound_checked() {
        dataset_image(DATASET_SIZE, 1);
    }
}

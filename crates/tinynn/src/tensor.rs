//! A minimal dense tensor.

use std::fmt;

/// A row-major `f32` tensor with runtime shape.
///
/// Layout convention for activations is `[channels, height, width]` (CHW).
///
/// # Example
///
/// ```
/// use confbench_tinynn::Tensor;
///
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty() && shape.iter().all(|&d| d > 0), "invalid shape {shape:?}");
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Builds a tensor by evaluating `f` at every index.
    ///
    /// # Panics
    ///
    /// Panics on invalid shapes (see [`Tensor::zeros`]).
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for i in 0..t.data.len() {
            t.data[i] = f(&idx);
            // Increment the multi-index, last dimension fastest.
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        t
    }

    /// Wraps raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let volume: usize = shape.iter().product();
        assert_eq!(data.len(), volume, "data length {} != shape volume {volume}", data.len());
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-range indices.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-range indices.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Index of the maximum element (ties resolve to the first).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold(
                (0, f32::NEG_INFINITY),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            )
            .0
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "rank mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of range for dim {d} (size {s})");
            off = off * s + i;
        }
        off
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_orders_row_major() {
        let t = Tensor::from_fn(&[2, 2, 2], |idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 3], 7.5);
        assert_eq!(t.get(&[2, 3]), 7.5);
        assert_eq!(t.get(&[0, 0]), 0.0);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::from_vec(&[4], vec![1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Tensor::zeros(&[2, 2]).get(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "invalid shape")]
    fn zero_dim_rejected() {
        Tensor::zeros(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        Tensor::zeros(&[2, 2]).get(&[1]);
    }
}

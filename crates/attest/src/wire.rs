//! Binary wire codec for attestation evidence.
//!
//! Quotes and reports cross trust boundaries: the gateway receives them from
//! untrusted guests over the REST surface, so the decoder is written to the
//! same standard as the HTTP parser — every malformed input must produce a
//! typed [`WireError`], never a panic and never a silently-corrected value.
//! The encoding is *canonical*: for every byte string, either decoding fails
//! or re-encoding the decoded value reproduces the input exactly. The fuzz
//! sweep in this module's tests enforces both properties.
//!
//! # Format
//!
//! ```text
//! magic   4 bytes  "CBAT"
//! version 1 byte   currently 1
//! kind    1 byte   1 = TD quote, 2 = SNP report
//! body    kind-specific, fixed layout, big-endian integers
//! ```
//!
//! A TD-quote body is `mrtd (32) ‖ rtmr[0..4] (4×32) ‖ report_data (64) ‖
//! tcb_version (u16 length + UTF-8, ≤ 256) ‖ tcb_level (u64) ‖
//! qe_signature (16)`. An SNP-report body is `measurement (32) ‖
//! report_data (64) ‖ chip_id (u64) ‖ tcb_version (u64) ‖ signature (16)`.
//! Trailing bytes after the body are rejected.

use std::fmt;

use confbench_crypto::{Digest, Signature};
use confbench_vmm::TdReport;

use crate::tdx_flow::TdQuote;
use confbench_vmm::SnpReport;

/// Magic prefix of every serialized attestation message.
pub const WIRE_MAGIC: [u8; 4] = *b"CBAT";
/// Wire format version this module reads and writes.
pub const WIRE_VERSION: u8 = 1;
/// Longest accepted `tcb_version` string in a TD quote.
pub const MAX_TCB_VERSION_LEN: usize = 256;

const KIND_TD_QUOTE: u8 = 1;
const KIND_SNP_REPORT: u8 = 2;

/// Errors from decoding an attestation wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The message does not start with [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known message type.
    UnknownKind(u8),
    /// The message ended before a field was complete.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Bytes remain after the complete body (non-canonical framing).
    TrailingBytes(usize),
    /// A length-prefixed field exceeds its cap.
    FieldTooLong {
        /// Which field.
        field: &'static str,
        /// Declared length.
        len: usize,
        /// Maximum accepted length.
        max: usize,
    },
    /// A string field holds invalid UTF-8.
    BadUtf8(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "wire: bad magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "wire: unsupported version {v}"),
            WireError::UnknownKind(k) => write!(f, "wire: unknown message kind {k}"),
            WireError::Truncated { needed, have } => {
                write!(f, "wire: truncated message (need {needed} bytes, have {have})")
            }
            WireError::TrailingBytes(n) => write!(f, "wire: {n} trailing bytes after body"),
            WireError::FieldTooLong { field, len, max } => {
                write!(f, "wire: field {field} of {len} bytes exceeds {max}")
            }
            WireError::BadUtf8(field) => write!(f, "wire: field {field} is not valid utf-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Either decodable attestation message, as returned by [`decode`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// A TDX quote.
    TdQuote(TdQuote),
    /// An SEV-SNP report.
    SnpReport(SnpReport),
}

/// A bounds-checked big-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

fn header(kind: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + 256);
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    out
}

fn read_header(r: &mut Reader<'_>) -> Result<u8, WireError> {
    let magic: [u8; 4] = r.array()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    r.u8()
}

/// Serializes a TD quote.
pub fn encode_td_quote(quote: &TdQuote) -> Vec<u8> {
    let mut out = header(KIND_TD_QUOTE);
    out.extend_from_slice(quote.report.mrtd.as_bytes());
    for r in &quote.report.rtmr {
        out.extend_from_slice(r.as_bytes());
    }
    out.extend_from_slice(&quote.report.report_data);
    let tcb = quote.report.tcb_version.as_bytes();
    debug_assert!(tcb.len() <= MAX_TCB_VERSION_LEN, "oversized tcb_version escaped validation");
    out.extend_from_slice(&(tcb.len() as u16).to_be_bytes());
    out.extend_from_slice(tcb);
    out.extend_from_slice(&quote.tcb_level.to_be_bytes());
    out.extend_from_slice(&quote.qe_signature.to_bytes());
    out
}

/// Serializes an SNP report.
pub fn encode_snp_report(report: &SnpReport) -> Vec<u8> {
    let mut out = header(KIND_SNP_REPORT);
    out.extend_from_slice(report.measurement.as_bytes());
    out.extend_from_slice(&report.report_data);
    out.extend_from_slice(&report.chip_id.to_be_bytes());
    out.extend_from_slice(&report.tcb_version.to_be_bytes());
    out.extend_from_slice(&report.signature.to_bytes());
    out
}

fn decode_td_quote_body(r: &mut Reader<'_>) -> Result<TdQuote, WireError> {
    let mrtd = Digest(r.array()?);
    let mut rtmr = [Digest([0u8; 32]); 4];
    for slot in &mut rtmr {
        *slot = Digest(r.array()?);
    }
    let report_data: [u8; 64] = r.array()?;
    let tcb_len = r.u16()? as usize;
    if tcb_len > MAX_TCB_VERSION_LEN {
        return Err(WireError::FieldTooLong {
            field: "tcb_version",
            len: tcb_len,
            max: MAX_TCB_VERSION_LEN,
        });
    }
    let tcb_version = std::str::from_utf8(r.take(tcb_len)?)
        .map_err(|_| WireError::BadUtf8("tcb_version"))?
        .to_owned();
    let tcb_level = r.u64()?;
    let qe_signature = Signature::from_bytes(r.array()?);
    Ok(TdQuote {
        report: TdReport { mrtd, rtmr, report_data, tcb_version },
        tcb_level,
        qe_signature,
    })
}

fn decode_snp_report_body(r: &mut Reader<'_>) -> Result<SnpReport, WireError> {
    let measurement = Digest(r.array()?);
    let report_data: [u8; 64] = r.array()?;
    let chip_id = r.u64()?;
    let tcb_version = r.u64()?;
    let signature = Signature::from_bytes(r.array()?);
    Ok(SnpReport { measurement, report_data, chip_id, tcb_version, signature })
}

/// Deserializes a TD quote; rejects any other kind.
///
/// # Errors
///
/// [`WireError`] on any framing, bound, or encoding violation.
pub fn decode_td_quote(bytes: &[u8]) -> Result<TdQuote, WireError> {
    let mut r = Reader::new(bytes);
    match read_header(&mut r)? {
        KIND_TD_QUOTE => {}
        other => return Err(WireError::UnknownKind(other)),
    }
    let quote = decode_td_quote_body(&mut r)?;
    r.finish()?;
    Ok(quote)
}

/// Deserializes an SNP report; rejects any other kind.
///
/// # Errors
///
/// [`WireError`] on any framing, bound, or encoding violation.
pub fn decode_snp_report(bytes: &[u8]) -> Result<SnpReport, WireError> {
    let mut r = Reader::new(bytes);
    match read_header(&mut r)? {
        KIND_SNP_REPORT => {}
        other => return Err(WireError::UnknownKind(other)),
    }
    let report = decode_snp_report_body(&mut r)?;
    r.finish()?;
    Ok(report)
}

/// Deserializes either attestation message by its kind byte.
///
/// # Errors
///
/// [`WireError`] on any framing, bound, or encoding violation.
pub fn decode(bytes: &[u8]) -> Result<WireMessage, WireError> {
    let mut r = Reader::new(bytes);
    let message = match read_header(&mut r)? {
        KIND_TD_QUOTE => WireMessage::TdQuote(decode_td_quote_body(&mut r)?),
        KIND_SNP_REPORT => WireMessage::SnpReport(decode_snp_report_body(&mut r)?),
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(message)
}

/// Serializes either attestation message.
pub fn encode(message: &WireMessage) -> Vec<u8> {
    match message {
        WireMessage::TdQuote(q) => encode_td_quote(q),
        WireMessage::SnpReport(r) => encode_snp_report(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_crypto::{Sha256, SigningKey};

    fn sample_quote() -> TdQuote {
        let report = TdReport {
            mrtd: Sha256::digest(b"mrtd"),
            rtmr: [
                Sha256::digest(b"r0"),
                Sha256::digest(b"r1"),
                Sha256::digest(b"r2"),
                Sha256::digest(b"r3"),
            ],
            report_data: [0xAB; 64],
            tcb_version: "1.5.06.00".to_owned(),
        };
        let mut quote =
            TdQuote { report, tcb_level: 7, qe_signature: Signature::from_bytes([0; 16]) };
        quote.qe_signature = SigningKey::from_seed(11).sign(&quote.signed_bytes());
        quote
    }

    fn sample_report() -> SnpReport {
        let mut report = SnpReport {
            measurement: Sha256::digest(b"image"),
            report_data: [0xCD; 64],
            chip_id: 0x1337,
            tcb_version: 12,
            signature: Signature::from_bytes([0; 16]),
        };
        report.signature = SigningKey::from_seed(13).sign(&report.signed_bytes());
        report
    }

    #[test]
    fn quote_roundtrips() {
        let quote = sample_quote();
        let bytes = encode_td_quote(&quote);
        assert_eq!(decode_td_quote(&bytes).unwrap(), quote);
        assert_eq!(decode(&bytes).unwrap(), WireMessage::TdQuote(quote));
    }

    #[test]
    fn report_roundtrips() {
        let report = sample_report();
        let bytes = encode_snp_report(&report);
        assert_eq!(decode_snp_report(&bytes).unwrap(), report);
        assert_eq!(decode(&bytes).unwrap(), WireMessage::SnpReport(report));
    }

    #[test]
    fn framing_violations_yield_typed_errors() {
        let bytes = encode_td_quote(&sample_quote());

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(decode(&bad_magic), Err(WireError::BadMagic(_))));

        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(matches!(decode(&bad_version), Err(WireError::UnsupportedVersion(9))));

        let mut bad_kind = bytes.clone();
        bad_kind[5] = 200;
        assert!(matches!(decode(&bad_kind), Err(WireError::UnknownKind(200))));

        assert!(matches!(decode(&bytes[..bytes.len() - 1]), Err(WireError::Truncated { .. })));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(decode(&trailing), Err(WireError::TrailingBytes(1))));

        // A kind-mismatched decode is rejected, not coerced.
        assert!(matches!(decode_snp_report(&bytes), Err(WireError::UnknownKind(KIND_TD_QUOTE))));
    }

    #[test]
    fn oversized_tcb_version_is_rejected_before_allocation() {
        let bytes = encode_td_quote(&sample_quote());
        let mut oversized = bytes.clone();
        // The length prefix sits after magic(4) + version(1) + kind(1) +
        // mrtd(32) + rtmr(128) + report_data(64).
        let len_at = 6 + 32 + 128 + 64;
        oversized[len_at..len_at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(
            decode(&oversized),
            Err(WireError::FieldTooLong { field: "tcb_version", .. })
        ));
    }

    #[test]
    fn non_utf8_tcb_version_is_rejected() {
        let bytes = encode_td_quote(&sample_quote());
        let mut bad = bytes.clone();
        let tcb_at = 6 + 32 + 128 + 64 + 2;
        bad[tcb_at] = 0xFF;
        assert!(matches!(decode(&bad), Err(WireError::BadUtf8("tcb_version"))));
    }

    #[test]
    fn tampered_signed_fields_fail_verification_after_roundtrip() {
        // The codec is not the integrity boundary — the signature is. Flip
        // each signature-covered field on the wire and check the decoded
        // value no longer verifies.
        let quote = sample_quote();
        let key = SigningKey::from_seed(11);
        let bytes = encode_td_quote(&quote);
        // mrtd, each rtmr, report_data, tcb_level, signature itself.
        for offset in
            [6, 6 + 32, 6 + 64, 6 + 96, 6 + 128, 6 + 160, bytes.len() - 24, bytes.len() - 8]
        {
            let mut tampered = bytes.clone();
            tampered[offset] ^= 1;
            let decoded = decode_td_quote(&tampered).expect("framing is intact");
            assert_ne!(decoded, quote);
            assert!(
                key.verifying_key().verify(&decoded.signed_bytes(), &decoded.qe_signature).is_err(),
                "tamper at {offset} passed verification"
            );
        }
    }

    #[test]
    fn fuzz_sweep_wire_decoder() {
        let corpus = [encode_td_quote(&sample_quote()), encode_snp_report(&sample_report())];
        let mut mutator = confbench_crypto::fuzz::Mutator::new(0xC0FF_BE7C_0002);
        let iters = confbench_crypto::fuzz::sweep_iters();
        for base in &corpus {
            for _ in 0..iters {
                let mutant = mutator.mutate(base);
                // Property: decode never panics, and whatever it accepts is
                // canonical — re-encoding reproduces the mutant exactly, so
                // no corrupted framing is ever silently "repaired".
                if let Ok(message) = decode(&mutant) {
                    assert_eq!(encode(&message), mutant, "non-canonical accept");
                }
            }
        }
    }
}

//! Remote-attestation flows for TDX and SEV-SNP (paper §IV-C, Fig. 5).
//!
//! The paper measures the *user-perceived wall-clock latency* of two phases:
//!
//! * **attest** — producing the evidence inside the confidential VM (a TD
//!   quote via DCAP on TDX; an AMD-SP report via `snpguest` on SNP);
//! * **check** — verifying the evidence at the relying party.
//!
//! The two technologies differ structurally, and that structure is the whole
//! result: TDX verification (as implemented by `go-tdx-guest`) fetches TCB
//! info and certificate revocation lists from the **Intel PCS over the
//! network**, while SNP verification uses the VCEK certificate chain already
//! available **from the local hardware/host** — so SNP is faster in both
//! phases. This crate reproduces both pipelines over the simulated machinery
//! in `confbench-vmm`, with an explicit [`NetworkModel`] for the PCS round
//! trips.
//!
//! # Example
//!
//! ```
//! use confbench_attest::{SnpEcosystem, TdxEcosystem};
//! use confbench_types::{TeePlatform, VmTarget};
//! use confbench_vmm::TeeVmBuilder;
//!
//! let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
//! let eco = TdxEcosystem::new(1);
//! let (quote, attest) = eco.generate_quote(&mut td, [1u8; 64]).unwrap();
//! let check = eco.verify_quote(&quote, [1u8; 64]).unwrap();
//! assert!(check.latency_ms > attest.latency_ms, "PCS round trips dominate");
//!
//! let mut snp = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).build();
//! let eco = SnpEcosystem::new(2);
//! let (report, attest) = eco.request_report(&mut snp, [1u8; 64]).unwrap();
//! let check = eco.verify_report(&report, [1u8; 64]).unwrap();
//! assert!(attest.latency_ms < 50.0 && check.latency_ms < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod evtpm;
mod network;
mod session;
mod snp_flow;
mod tdx_flow;
mod verifier;
pub mod wire;

pub use device::{DeviceEvidence, DevicePolicy, DeviceVerifier};
pub use error::AttestError;
pub use evtpm::{extend_runtime, quote_runtime, RuntimeMeasurements};
pub use network::NetworkModel;
pub use session::{
    AttestSession, CollateralRefresher, SessionCache, SessionCacheStats, SessionConfig,
    SessionOutcome, SessionSource, SessionState,
};
pub use snp_flow::{SnpEcosystem, VcekChain};
pub use tdx_flow::{PcsService, TdQuote, TdxEcosystem};
pub use verifier::{Evidence, EvidenceBody, TcbIdentity, Verifier};

/// Timing of one attestation phase, in milliseconds of user-perceived
/// latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// Total wall-clock latency of the phase.
    pub latency_ms: f64,
    /// Portion spent in network round trips (0 for local flows).
    pub network_ms: f64,
    /// Portion spent in cryptographic work and firmware calls.
    pub compute_ms: f64,
}

impl PhaseTiming {
    pub(crate) fn local(compute_ms: f64) -> Self {
        PhaseTiming { latency_ms: compute_ms, network_ms: 0.0, compute_ms }
    }

    pub(crate) fn with_network(compute_ms: f64, network_ms: f64) -> Self {
        PhaseTiming { latency_ms: compute_ms + network_ms, network_ms, compute_ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{TeePlatform, VmTarget};
    use confbench_vmm::TeeVmBuilder;

    #[test]
    fn fig5_shape_snp_faster_in_both_phases() {
        let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(5).build();
        let tdx = TdxEcosystem::new(5);
        let (quote, tdx_attest) = tdx.generate_quote(&mut td, [9; 64]).unwrap();
        let tdx_check = tdx.verify_quote(&quote, [9; 64]).unwrap();

        let mut guest = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(5).build();
        let snp = SnpEcosystem::new(5);
        let (report, snp_attest) = snp.request_report(&mut guest, [9; 64]).unwrap();
        let snp_check = snp.verify_report(&report, [9; 64]).unwrap();

        assert!(
            snp_attest.latency_ms < tdx_attest.latency_ms,
            "snp attest {} vs tdx {}",
            snp_attest.latency_ms,
            tdx_attest.latency_ms
        );
        assert!(
            snp_check.latency_ms < tdx_check.latency_ms / 5.0,
            "snp check {} vs tdx {}",
            snp_check.latency_ms,
            tdx_check.latency_ms
        );
        // TDX verification is network-dominated.
        assert!(tdx_check.network_ms > tdx_check.compute_ms);
        assert_eq!(snp_check.network_ms, 0.0);
    }

    #[test]
    fn attestation_unavailable_on_normal_vms() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        assert!(TdxEcosystem::new(1).generate_quote(&mut vm, [0; 64]).is_err());
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::SevSnp)).build();
        assert!(SnpEcosystem::new(1).request_report(&mut vm, [0; 64]).is_err());
    }
}

//! SEV-SNP report generation and verification (the `snpguest` flow).
//!
//! The guest requests a report from the AMD-SP over the GHCB; the VCEK
//! certificate chain (ARK → ASK → VCEK) is fetched **from the local
//! host/hardware**, so the three-step verification (chain → signature →
//! claims) involves no network at all — the structural reason SNP wins both
//! phases of Fig. 5.

use std::sync::atomic::{AtomicU64, Ordering};

use confbench_crypto::{Signature, SigningKey, VerifyingKey};
use confbench_vmm::{SnpReport, Vm};

use crate::error::AttestError;
use crate::PhaseTiming;

/// The VCEK certificate chain: AMD Root Key signs the AMD SEV Key, which
/// signs the chip-unique VCEK.
#[derive(Debug, Clone, PartialEq)]
pub struct VcekChain {
    /// ARK public key (the pinned trust anchor).
    pub ark: VerifyingKey,
    /// ASK public key and the ARK's signature over it.
    pub ask: (VerifyingKey, Signature),
    /// VCEK public key and the ASK's signature over it.
    pub vcek: (VerifyingKey, Signature),
}

impl VcekChain {
    /// Step 1 of `snpguest verify`: walk the chain.
    ///
    /// # Errors
    ///
    /// [`AttestError::BadSignature`] naming the broken link.
    pub fn verify(&self) -> Result<(), AttestError> {
        self.ark
            .verify(&key_message("ask", self.ask.0), &self.ask.1)
            .map_err(|_| AttestError::BadSignature("ask cert"))?;
        self.ask
            .0
            .verify(&key_message("vcek", self.vcek.0), &self.vcek.1)
            .map_err(|_| AttestError::BadSignature("vcek cert"))?;
        Ok(())
    }
}

fn key_message(label: &str, key: VerifyingKey) -> Vec<u8> {
    let mut v = label.as_bytes().to_vec();
    v.extend_from_slice(&key.element().to_be_bytes());
    v
}

/// The SNP attestation ecosystem: AMD key hierarchy for one product line.
#[derive(Debug)]
pub struct SnpEcosystem {
    ark: SigningKey,
    ask: SigningKey,
    /// Atomic so policy can be raised on an ecosystem already shared
    /// across verifier threads.
    min_tcb: AtomicU64,
}

/// Firmware round trip for `MSG_REPORT_REQ` (guest → AMD-SP → guest), ms.
const REPORT_REQ_MS: f64 = 9.0;
/// `snpguest`-side marshalling per request, ms.
const TOOLING_MS: f64 = 3.5;
/// Local certificate fetch from the host (hypervisor-cached), ms.
const CERT_FETCH_MS: f64 = 6.0;
/// Local crypto for the three-step verification, ms.
const VERIFY_CRYPTO_MS: f64 = 7.0;

impl SnpEcosystem {
    /// Builds an ecosystem seeded for determinism, requiring TCB ≥ 7
    /// (matching the modelled platform's reported TCB).
    pub fn new(seed: u64) -> Self {
        SnpEcosystem {
            ark: SigningKey::from_seed(seed ^ 0x61_726b /* "ark" */),
            ask: SigningKey::from_seed(seed ^ 0x61_736b /* "ask" */),
            min_tcb: AtomicU64::new(7),
        }
    }

    /// Raises the verifier's minimum TCB policy.
    pub fn set_min_tcb(&self, tcb: u64) {
        self.min_tcb.store(tcb, Ordering::Relaxed);
    }

    /// The minimum TCB the verifier currently requires.
    pub fn min_tcb(&self) -> u64 {
        self.min_tcb.load(Ordering::Relaxed)
    }

    /// **Attest phase**: request a report from the AMD-SP of `vm`'s host.
    ///
    /// # Errors
    ///
    /// [`AttestError::WrongVmKind`] unless `vm` is an SNP guest.
    pub fn request_report(
        &self,
        vm: &mut Vm,
        report_data: [u8; 64],
    ) -> Result<(SnpReport, PhaseTiming), AttestError> {
        let freq = vm.target().platform.host_freq_ghz();
        let exit_ms = vm.cost_model().exit_cost / (freq * 1e6);
        let (sp, asid) = vm.amd_sp_mut().ok_or(AttestError::WrongVmKind)?;
        sp.record_ghcb_exit();
        let report = sp
            .request_report(asid, report_data)
            .map_err(|e| AttestError::Firmware(e.to_string()))?;
        Ok((report, PhaseTiming::local(TOOLING_MS + REPORT_REQ_MS + exit_ms)))
    }

    /// Builds the VCEK chain for the AMD-SP in `vm`'s host, as fetched from
    /// the hardware by `snpguest` (no network).
    ///
    /// # Errors
    ///
    /// [`AttestError::WrongVmKind`] unless `vm` is an SNP guest.
    pub fn fetch_chain(&self, vm: &mut Vm) -> Result<(VcekChain, f64), AttestError> {
        let (sp, _) = vm.amd_sp_mut().ok_or(AttestError::WrongVmKind)?;
        let vcek_pub = sp.vcek_public();
        let ask_pub = self.ask.verifying_key();
        let chain = VcekChain {
            ark: self.ark.verifying_key(),
            ask: (ask_pub, self.ark.sign(&key_message("ask", ask_pub))),
            vcek: (vcek_pub, self.ask.sign(&key_message("vcek", vcek_pub))),
        };
        Ok((chain, CERT_FETCH_MS))
    }

    /// **Check phase** against a caller-supplied chain: the full three-step
    /// `snpguest verify` (chain, signature, claims).
    ///
    /// # Errors
    ///
    /// Chain, signature, TCB, and nonce failures.
    pub fn verify_report_with_chain(
        &self,
        report: &SnpReport,
        chain: &VcekChain,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        // Step 1: certificate chain.
        chain.verify()?;
        // Step 2: report signature under the chained VCEK.
        chain
            .vcek
            .0
            .verify(&report.signed_bytes(), &report.signature)
            .map_err(|_| AttestError::BadSignature("report"))?;
        // Step 3: claims.
        let min_tcb = self.min_tcb();
        if report.tcb_version < min_tcb {
            return Err(AttestError::TcbOutOfDate {
                reported: report.tcb_version,
                required: min_tcb,
            });
        }
        if report.report_data != expected_report_data {
            return Err(AttestError::NonceMismatch);
        }
        Ok(PhaseTiming::local(VERIFY_CRYPTO_MS))
    }

    /// Convenience check phase that self-builds the expected chain from the
    /// ecosystem keys and a fresh chip key equal to the report's — used when
    /// the verifier trusts the host-provided chain, as in the paper's setup.
    ///
    /// # Errors
    ///
    /// As [`SnpEcosystem::verify_report_with_chain`], with the chain assumed
    /// pre-fetched (its latency is charged here).
    pub fn verify_report(
        &self,
        report: &SnpReport,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        // Reconstruct the chain head from ecosystem keys; the VCEK public
        // key rides with the report in the host-provided cert blob.
        let vcek_pub = VerifyingKey::from_element(self.vcek_element_for(report))
            .map_err(|_| AttestError::BadSignature("vcek key"))?;
        let ask_pub = self.ask.verifying_key();
        let chain = VcekChain {
            ark: self.ark.verifying_key(),
            ask: (ask_pub, self.ark.sign(&key_message("ask", ask_pub))),
            vcek: (vcek_pub, self.ask.sign(&key_message("vcek", vcek_pub))),
        };
        let timing = self.verify_report_with_chain(report, &chain, expected_report_data)?;
        Ok(PhaseTiming::local(timing.compute_ms + CERT_FETCH_MS))
    }

    fn vcek_element_for(&self, report: &SnpReport) -> u64 {
        // The VCEK is chip-unique and derivable from the chip id; mirror
        // AmdSp::new's derivation.
        SigningKey::from_seed(report.chip_id ^ 0x56_43_45_4b).verifying_key().element()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{TeePlatform, VmTarget};
    use confbench_vmm::TeeVmBuilder;

    fn guest() -> Vm {
        TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(1).build()
    }

    #[test]
    fn report_roundtrip_verifies_locally() {
        let mut vm = guest();
        let eco = SnpEcosystem::new(1);
        let (report, attest) = eco.request_report(&mut vm, [5; 64]).unwrap();
        let check = eco.verify_report(&report, [5; 64]).unwrap();
        assert!(attest.latency_ms < 30.0, "local firmware call: {}", attest.latency_ms);
        assert!(check.latency_ms < 30.0, "local verification: {}", check.latency_ms);
        assert_eq!(check.network_ms, 0.0);
    }

    #[test]
    fn explicit_chain_flow() {
        let mut vm = guest();
        let eco = SnpEcosystem::new(1);
        let (report, _) = eco.request_report(&mut vm, [5; 64]).unwrap();
        let (chain, _) = eco.fetch_chain(&mut vm).unwrap();
        chain.verify().unwrap();
        eco.verify_report_with_chain(&report, &chain, [5; 64]).unwrap();
    }

    #[test]
    fn broken_chain_link_detected() {
        let mut vm = guest();
        let eco = SnpEcosystem::new(1);
        let other = SnpEcosystem::new(2);
        let (mut chain, _) = eco.fetch_chain(&mut vm).unwrap();
        // Replace the ASK cert with one from a different root.
        let (other_chain, _) = other.fetch_chain(&mut vm).unwrap();
        chain.ask = other_chain.ask;
        assert_eq!(chain.verify(), Err(AttestError::BadSignature("ask cert")));
    }

    #[test]
    fn tampered_report_rejected() {
        let mut vm = guest();
        let eco = SnpEcosystem::new(1);
        let (mut report, _) = eco.request_report(&mut vm, [5; 64]).unwrap();
        report.tcb_version = 99;
        assert_eq!(eco.verify_report(&report, [5; 64]), Err(AttestError::BadSignature("report")));
    }

    #[test]
    fn nonce_mismatch_rejected() {
        let mut vm = guest();
        let eco = SnpEcosystem::new(1);
        let (report, _) = eco.request_report(&mut vm, [5; 64]).unwrap();
        assert_eq!(eco.verify_report(&report, [6; 64]), Err(AttestError::NonceMismatch));
    }

    #[test]
    fn tcb_policy_enforced() {
        let mut vm = guest();
        let eco = SnpEcosystem::new(1);
        let (report, _) = eco.request_report(&mut vm, [5; 64]).unwrap();
        eco.set_min_tcb(50);
        assert_eq!(
            eco.verify_report(&report, [5; 64]),
            Err(AttestError::TcbOutOfDate { reported: 7, required: 50 })
        );
    }

    #[test]
    fn wrong_vm_kind_rejected() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        assert_eq!(
            SnpEcosystem::new(1).request_report(&mut vm, [0; 64]).unwrap_err(),
            AttestError::WrongVmKind
        );
    }
}

//! Deterministic WAN latency model for attestation services.

use confbench_crypto::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Latency model for requests to a remote service (the Intel PCS).
///
/// Each request costs one round trip plus transfer time, with deterministic
/// seeded jitter. The model is intentionally simple: the paper's Fig. 5
/// asymmetry only requires that network requests cost orders of magnitude
/// more than local firmware calls.
///
/// The jitter stream lives behind a `Mutex` (not a `RefCell`) so one model
/// — and hence one verifier ecosystem — can be shared across gateway worker
/// threads; concurrent callers interleave draws from a single deterministic
/// stream.
#[derive(Debug)]
pub struct NetworkModel {
    rtt_ms: f64,
    mbits_per_s: f64,
    jitter_rel_std: f64,
    /// Probability that one request fails outright (timeout/reset), stored
    /// as `f64` bits so flakiness can be re-armed through a shared
    /// reference. Drawn from the same seeded stream, so outages are
    /// reproducible.
    fail_rate_bits: AtomicU64,
    rng: Mutex<SplitMix64>,
}

impl NetworkModel {
    /// A WAN path to a public service: 38 ms RTT, 200 Mbit/s, 15% jitter.
    pub fn wan(seed: u64) -> Self {
        NetworkModel {
            rtt_ms: 38.0,
            mbits_per_s: 200.0,
            jitter_rel_std: 0.15,
            fail_rate_bits: AtomicU64::new(0.0f64.to_bits()),
            rng: Mutex::new(SplitMix64::new(seed ^ 0x6e_6574_776f_726b)),
        }
    }

    /// A custom model.
    ///
    /// # Panics
    ///
    /// Panics unless `rtt_ms >= 0`, `mbits_per_s > 0`.
    pub fn new(rtt_ms: f64, mbits_per_s: f64, jitter_rel_std: f64, seed: u64) -> Self {
        assert!(rtt_ms >= 0.0 && mbits_per_s > 0.0, "invalid network parameters");
        NetworkModel {
            rtt_ms,
            mbits_per_s,
            jitter_rel_std,
            fail_rate_bits: AtomicU64::new(0.0f64.to_bits()),
            rng: Mutex::new(SplitMix64::new(seed)),
        }
    }

    /// Makes a fraction of requests fail (a flaky verification service;
    /// `1.0` models a full outage). Failure draws come after the latency
    /// draw, so a model with `fail_rate == 0` produces exactly the latency
    /// sequence it did before this knob existed.
    pub fn with_fail_rate(self, rate: f64) -> Self {
        self.set_fail_rate(rate);
        self
    }

    /// In-place variant of [`NetworkModel::with_fail_rate`]; takes `&self`
    /// so outages can be staged on a model already shared across threads.
    pub fn set_fail_rate(&self, rate: f64) {
        self.fail_rate_bits.store(rate.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    fn fail_rate(&self) -> f64 {
        f64::from_bits(self.fail_rate_bits.load(Ordering::Relaxed))
    }

    fn lock_rng(&self) -> std::sync::MutexGuard<'_, SplitMix64> {
        self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Latency in ms of one HTTPS request returning `response_bytes`
    /// (handshake amortized: 1.5 RTTs per request).
    pub fn request_ms(&self, response_bytes: u64) -> f64 {
        let transfer = response_bytes as f64 * 8.0 / (self.mbits_per_s * 1e3);
        let base = self.rtt_ms * 1.5 + transfer;
        let jitter = 1.0 + self.lock_rng().next_gaussian() * self.jitter_rel_std;
        base * jitter.clamp(0.6, 2.0)
    }

    /// Fallible request: `Ok(latency_ms)` on success, `Err(latency_ms)` on
    /// a transient failure — a failed request still burns its round trip
    /// (the client waited for the timeout/reset), so callers charge the
    /// returned latency either way. Never fails at `fail_rate == 0`.
    pub fn try_request_ms(&self, response_bytes: u64) -> Result<f64, f64> {
        let ms = self.request_ms(response_bytes);
        let rate = self.fail_rate();
        if rate > 0.0 && self.lock_rng().next_f64() < rate {
            return Err(ms);
        }
        Ok(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_cost_scales_with_size() {
        let net = NetworkModel::new(40.0, 100.0, 0.0, 1);
        let small = net.request_ms(1_000);
        let big = net.request_ms(10_000_000);
        assert!(big > small + 100.0, "10 MB at 100 Mbit/s adds ~800 ms: {small} vs {big}");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let net = NetworkModel::new(40.0, 100.0, 0.0, 1);
        // 1.5 RTT = 60 ms, plus 0.08 ms transfer for 1 KB.
        let ms = net.request_ms(1_000);
        assert!((ms - 60.08).abs() < 1e-9, "{ms}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = NetworkModel::wan(7);
        let b = NetworkModel::wan(7);
        assert_eq!(a.request_ms(500), b.request_ms(500));
        let c = NetworkModel::wan(8);
        assert_ne!(a.request_ms(500), c.request_ms(500));
    }

    #[test]
    #[should_panic(expected = "invalid network parameters")]
    fn zero_bandwidth_panics() {
        NetworkModel::new(10.0, 0.0, 0.0, 1);
    }

    #[test]
    fn zero_fail_rate_never_fails_and_keeps_the_latency_sequence() {
        let plain = NetworkModel::wan(9);
        let fallible = NetworkModel::wan(9).with_fail_rate(0.0);
        for _ in 0..16 {
            let expected = plain.request_ms(2_000);
            assert_eq!(fallible.try_request_ms(2_000), Ok(expected));
        }
    }

    #[test]
    fn failures_are_deterministic_and_charge_latency() {
        let outcomes = |seed| {
            let net = NetworkModel::wan(seed).with_fail_rate(0.5);
            (0..64).map(|_| net.try_request_ms(1_000)).collect::<Vec<_>>()
        };
        let a = outcomes(3);
        assert_eq!(a, outcomes(3));
        assert!(a.iter().any(Result::is_err), "half the requests should fail");
        assert!(a.iter().any(Result::is_ok));
        for r in a {
            let ms = match r {
                Ok(ms) | Err(ms) => ms,
            };
            assert!(ms > 0.0, "even failed requests burn wall time");
        }
    }

    #[test]
    fn full_outage_fails_every_request() {
        let net = NetworkModel::wan(1).with_fail_rate(1.0);
        for _ in 0..8 {
            assert!(net.try_request_ms(100).is_err());
        }
    }
}

//! Deterministic WAN latency model for attestation services.

use confbench_crypto::SplitMix64;
use std::cell::RefCell;

/// Latency model for requests to a remote service (the Intel PCS).
///
/// Each request costs one round trip plus transfer time, with deterministic
/// seeded jitter. The model is intentionally simple: the paper's Fig. 5
/// asymmetry only requires that network requests cost orders of magnitude
/// more than local firmware calls.
#[derive(Debug)]
pub struct NetworkModel {
    rtt_ms: f64,
    mbits_per_s: f64,
    jitter_rel_std: f64,
    rng: RefCell<SplitMix64>,
}

impl NetworkModel {
    /// A WAN path to a public service: 38 ms RTT, 200 Mbit/s, 15% jitter.
    pub fn wan(seed: u64) -> Self {
        NetworkModel {
            rtt_ms: 38.0,
            mbits_per_s: 200.0,
            jitter_rel_std: 0.15,
            rng: RefCell::new(SplitMix64::new(seed ^ 0x6e_6574_776f_726b)),
        }
    }

    /// A custom model.
    ///
    /// # Panics
    ///
    /// Panics unless `rtt_ms >= 0`, `mbits_per_s > 0`.
    pub fn new(rtt_ms: f64, mbits_per_s: f64, jitter_rel_std: f64, seed: u64) -> Self {
        assert!(rtt_ms >= 0.0 && mbits_per_s > 0.0, "invalid network parameters");
        NetworkModel {
            rtt_ms,
            mbits_per_s,
            jitter_rel_std,
            rng: RefCell::new(SplitMix64::new(seed)),
        }
    }

    /// Latency in ms of one HTTPS request returning `response_bytes`
    /// (handshake amortized: 1.5 RTTs per request).
    pub fn request_ms(&self, response_bytes: u64) -> f64 {
        let transfer = response_bytes as f64 * 8.0 / (self.mbits_per_s * 1e3);
        let base = self.rtt_ms * 1.5 + transfer;
        let jitter = 1.0 + self.rng.borrow_mut().next_gaussian() * self.jitter_rel_std;
        base * jitter.clamp(0.6, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_cost_scales_with_size() {
        let net = NetworkModel::new(40.0, 100.0, 0.0, 1);
        let small = net.request_ms(1_000);
        let big = net.request_ms(10_000_000);
        assert!(big > small + 100.0, "10 MB at 100 Mbit/s adds ~800 ms: {small} vs {big}");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let net = NetworkModel::new(40.0, 100.0, 0.0, 1);
        // 1.5 RTT = 60 ms, plus 0.08 ms transfer for 1 KB.
        let ms = net.request_ms(1_000);
        assert!((ms - 60.08).abs() < 1e-9, "{ms}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = NetworkModel::wan(7);
        let b = NetworkModel::wan(7);
        assert_eq!(a.request_ms(500), b.request_ms(500));
        let c = NetworkModel::wan(8);
        assert_ne!(a.request_ms(500), c.request_ms(500));
    }

    #[test]
    #[should_panic(expected = "invalid network parameters")]
    fn zero_bandwidth_panics() {
        NetworkModel::new(10.0, 0.0, 0.0, 1);
    }
}

//! TDX quote generation and DCAP-style verification.
//!
//! Generation (paper: SGX DCAP libraries + `go-tdx-guest`):
//! 1. the TD asks the module for a TDREPORT (`TDG.MR.REPORT`, a TDCALL);
//! 2. the host-side Quoting Enclave validates the report and signs it with
//!    its attestation key, producing the *quote*.
//!
//! Verification (the expensive part, per Fig. 5):
//! 1. fetch TCB info for the platform from the Intel PCS (network);
//! 2. fetch the PCK CRL and the root CA CRL (two more network requests);
//! 3. check the certificate chain against the CRLs, the QE signature, the
//!    TCB level, and the report data binding.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use confbench_crypto::{Sha256, Signature, SigningKey, VerifyingKey};
use confbench_types::Cycles;
use confbench_vmm::{TdReport, Vm};

use crate::error::AttestError;
use crate::network::NetworkModel;
use crate::PhaseTiming;

/// A TD quote: a TDREPORT countersigned by the Quoting Enclave.
#[derive(Debug, Clone, PartialEq)]
pub struct TdQuote {
    /// The embedded report.
    pub report: TdReport,
    /// Numeric TCB level encoded in the quote (derived from the module
    /// version in this model).
    pub tcb_level: u64,
    /// QE signature over the serialized report.
    pub qe_signature: Signature,
}

impl TdQuote {
    /// The byte string the QE signature covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(self.report.mrtd.as_bytes());
        for r in &self.report.rtmr {
            v.extend_from_slice(r.as_bytes());
        }
        v.extend_from_slice(&self.report.report_data);
        v.extend_from_slice(&self.tcb_level.to_be_bytes());
        v
    }
}

/// The simulated Intel Provisioning Certification Service.
///
/// Owns the platform root of trust, serves signed TCB info and CRLs, and
/// charges network latency per request through a [`NetworkModel`].
#[derive(Debug)]
pub struct PcsService {
    root_key: SigningKey,
    current_tcb: AtomicU64,
    revoked_pck: AtomicBool,
    /// Individual HTTP requests served (each fetch_* call is one), for
    /// asserting how often verifiers really hit the wire.
    requests: AtomicU64,
    network: NetworkModel,
}

/// Serialized size of the TCB info response (bytes), for transfer costing.
const TCB_INFO_BYTES: u64 = 8_192;
/// Serialized size of each CRL response.
const CRL_BYTES: u64 = 24_576;

impl PcsService {
    fn new(seed: u64, current_tcb: u64) -> Self {
        PcsService {
            root_key: SigningKey::from_seed(seed ^ 0x7063_7321 /* "pcs!" */),
            current_tcb: AtomicU64::new(current_tcb),
            revoked_pck: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            network: NetworkModel::wan(seed),
        }
    }

    /// Marks the platform's PCK certificate revoked (test/ablation hook).
    pub fn revoke_pck(&self) {
        self.revoked_pck.store(true, Ordering::Relaxed);
    }

    /// Raises the minimum TCB the service advertises (models a TCB recovery
    /// event that obsoletes older firmware).
    pub fn set_current_tcb(&self, tcb: u64) {
        self.current_tcb.store(tcb, Ordering::Relaxed);
    }

    /// Makes a fraction of this service's responses fail (flaky-verifier
    /// scenarios; `1.0` is a full outage). See
    /// [`NetworkModel::with_fail_rate`].
    pub fn set_fail_rate(&self, rate: f64) {
        self.network.set_fail_rate(rate);
    }

    /// Total HTTP requests this service has answered (successful or
    /// failed). Fetch counters are how the single-flight tests prove that
    /// N concurrent verifications shared one collateral round trip.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    fn current(&self) -> u64 {
        self.current_tcb.load(Ordering::Relaxed)
    }

    /// `GET /tcb`: returns (minimum acceptable TCB, signature, latency ms).
    pub fn fetch_tcb_info(&self) -> (u64, Signature, f64) {
        self.requests.fetch_add(1, Ordering::SeqCst);
        let tcb = self.current();
        let sig = self.root_key.sign(&tcb_message(tcb));
        (tcb, sig, self.network.request_ms(TCB_INFO_BYTES))
    }

    /// Fallible [`PcsService::fetch_tcb_info`]: `Err` carries the latency
    /// the failed request burned.
    pub fn try_fetch_tcb_info(&self) -> Result<((u64, Signature), f64), f64> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        let ms = self.network.try_request_ms(TCB_INFO_BYTES)?;
        let tcb = self.current();
        let sig = self.root_key.sign(&tcb_message(tcb));
        Ok(((tcb, sig), ms))
    }

    /// `GET /pckcrl`: returns (is-pck-revoked, latency ms).
    pub fn fetch_pck_crl(&self) -> (bool, f64) {
        self.requests.fetch_add(1, Ordering::SeqCst);
        (self.revoked_pck.load(Ordering::Relaxed), self.network.request_ms(CRL_BYTES))
    }

    /// Fallible [`PcsService::fetch_pck_crl`].
    pub fn try_fetch_pck_crl(&self) -> Result<(bool, f64), f64> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        self.network
            .try_request_ms(CRL_BYTES)
            .map(|ms| (self.revoked_pck.load(Ordering::Relaxed), ms))
    }

    /// `GET /rootcacrl`: returns latency ms (the root is never revoked in
    /// the model).
    pub fn fetch_root_crl(&self) -> f64 {
        self.requests.fetch_add(1, Ordering::SeqCst);
        self.network.request_ms(CRL_BYTES)
    }

    /// Fallible [`PcsService::fetch_root_crl`].
    pub fn try_fetch_root_crl(&self) -> Result<f64, f64> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        self.network.try_request_ms(CRL_BYTES)
    }

    /// The root verification key (pinned by verifiers).
    pub fn root_public(&self) -> VerifyingKey {
        self.root_key.verifying_key()
    }
}

fn tcb_message(tcb: u64) -> Vec<u8> {
    let mut v = b"pcs-tcb-info:".to_vec();
    v.extend_from_slice(&tcb.to_be_bytes());
    v
}

/// Verified collateral from a past successful PCS round trip, kept as the
/// fallback for outages (DCAP deployments cache TCB info and CRLs on disk
/// for exactly this reason).
#[derive(Debug, Clone, Copy)]
struct CachedCollateral {
    required_tcb: u64,
    pck_revoked: bool,
}

/// The full TDX attestation ecosystem for one platform: Quoting Enclave key
/// material plus the PCS it chains to.
///
/// The ecosystem is `Sync`: the collateral cache sits behind a `Mutex` and
/// the PCS knobs are atomics, so one `Arc<TdxEcosystem>` can serve every
/// gateway worker thread (the production sharing the old `RefCell` cache
/// made impossible).
#[derive(Debug)]
pub struct TdxEcosystem {
    qe_key: SigningKey,
    pcs: PcsService,
    platform_tcb: AtomicU64,
    /// Last successfully fetched + signature-verified collateral.
    collateral_cache: Mutex<Option<CachedCollateral>>,
    /// Completed live collateral round trips (one per full TCB+CRL cycle).
    collateral_fetches: AtomicU64,
}

/// Milliseconds charged for the QE's local work (report validation +
/// signing), before adding TDCALL cycle costs.
const QE_SIGN_MS: f64 = 12.0;
/// Milliseconds for DCAP library setup per quote.
const DCAP_SETUP_MS: f64 = 5.0;
/// Milliseconds of local crypto during verification.
const VERIFY_CRYPTO_MS: f64 = 9.0;
/// Attempts per PCS fetch before giving up on the live service.
const FETCH_ATTEMPTS: u32 = 3;
/// Backoff before the second fetch attempt (doubles per retry); charged as
/// network wait time, not compute.
const FETCH_BACKOFF_MS: f64 = 25.0;

impl TdxEcosystem {
    /// Builds an ecosystem seeded for determinism, with the platform at TCB
    /// level 46 (matching the `TDX_1.5.05.46.698` module) and the PCS
    /// requiring that same level.
    pub fn new(seed: u64) -> Self {
        TdxEcosystem {
            qe_key: SigningKey::from_seed(seed ^ 0x71_656b_6579 /* "qekey" */),
            pcs: PcsService::new(seed, 46),
            platform_tcb: AtomicU64::new(46),
            collateral_cache: Mutex::new(None),
            collateral_fetches: AtomicU64::new(0),
        }
    }

    /// Shared access to the PCS (counters, revocation/TCB-recovery knobs —
    /// all take `&self` so a verifier shared across threads stays
    /// steerable).
    pub fn pcs(&self) -> &PcsService {
        &self.pcs
    }

    /// Mutable access to the PCS (kept for callers that own the ecosystem).
    pub fn pcs_mut(&mut self) -> &mut PcsService {
        &mut self.pcs
    }

    /// Models a platform firmware update: quotes generated from now on
    /// report `tcb` (a TCB recovery is survived by patching, then
    /// re-attesting).
    pub fn patch_platform_tcb(&self, tcb: u64) {
        self.platform_tcb.store(tcb, Ordering::Relaxed);
    }

    /// Completed live collateral cycles (TCB info + both CRLs fetched and
    /// verified). Stays flat while verifications are served from cached
    /// collateral or the session cache.
    pub fn collateral_fetches(&self) -> u64 {
        self.collateral_fetches.load(Ordering::SeqCst)
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, Option<CachedCollateral>> {
        self.collateral_cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether a past verification has populated the collateral cache.
    pub fn has_cached_collateral(&self) -> bool {
        self.lock_cache().is_some()
    }

    /// The minimum TCB the cached collateral requires, if any is cached.
    pub fn cached_required_tcb(&self) -> Option<u64> {
        self.lock_cache().map(|c| c.required_tcb)
    }

    /// Runs one PCS fetch with bounded retry + exponential backoff,
    /// accumulating every millisecond spent — successful latency, failed
    /// round trips, and backoff waits — into `net_ms`. `Err` means the
    /// retry budget is exhausted.
    fn fetch_with_retry<T>(
        net_ms: &mut f64,
        mut fetch: impl FnMut() -> Result<(T, f64), f64>,
    ) -> Result<T, ()> {
        let mut backoff = FETCH_BACKOFF_MS;
        for attempt in 0..FETCH_ATTEMPTS {
            match fetch() {
                Ok((value, ms)) => {
                    *net_ms += ms;
                    return Ok(value);
                }
                Err(ms) => {
                    *net_ms += ms;
                    if attempt + 1 < FETCH_ATTEMPTS {
                        *net_ms += backoff;
                        backoff *= 2.0;
                    }
                }
            }
        }
        Err(())
    }

    /// **Attest phase**: produce a quote for the TD running in `vm`, bound
    /// to `report_data`.
    ///
    /// # Errors
    ///
    /// [`AttestError::WrongVmKind`] unless `vm` is a TDX trust domain.
    pub fn generate_quote(
        &self,
        vm: &mut Vm,
        report_data: [u8; 64],
    ) -> Result<(TdQuote, PhaseTiming), AttestError> {
        let freq = vm.target().platform.host_freq_ghz();
        let before = vm.now();
        let (module, td) = vm.tdx_module_mut().ok_or(AttestError::WrongVmKind)?;
        let report = module
            .tdg_mr_report(td, report_data)
            .map_err(|e| AttestError::Firmware(e.to_string()))?;
        // The TDCALL round trip is charged in VM cycles.
        let tdcall_ms = tdcall_cost(vm, before, freq);
        let quote = TdQuote {
            tcb_level: self.platform_tcb.load(Ordering::Relaxed),
            qe_signature: Signature { e: 0, s: 0 },
            report,
        };
        let mut quote = quote;
        quote.qe_signature = self.qe_key.sign(&quote.signed_bytes());
        Ok((quote, PhaseTiming::local(DCAP_SETUP_MS + QE_SIGN_MS + tdcall_ms)))
    }

    /// One live collateral cycle: TCB info (signature-checked), then both
    /// CRLs, each with bounded retry. `Ok(Some)` caches and returns fresh
    /// collateral; `Ok(None)` is an outage past the retry budget (callers
    /// may fall back to the cache); `Err` is an integrity failure that must
    /// never be absorbed.
    fn fetch_collateral_live(
        &self,
        net_ms: &mut f64,
    ) -> Result<Option<CachedCollateral>, AttestError> {
        let tcb = Self::fetch_with_retry(net_ms, || self.pcs.try_fetch_tcb_info());
        match tcb {
            Ok((required_tcb, tcb_sig)) => {
                // A bad signature is an integrity failure, not an outage:
                // never fall back past it.
                self.pcs
                    .root_public()
                    .verify(&tcb_message(required_tcb), &tcb_sig)
                    .map_err(|_| AttestError::BadSignature("tcb info"))?;
                let pck = Self::fetch_with_retry(net_ms, || self.pcs.try_fetch_pck_crl());
                let root = Self::fetch_with_retry(net_ms, || {
                    self.pcs.try_fetch_root_crl().map(|ms| ((), ms))
                });
                match (pck, root) {
                    (Ok(pck_revoked), Ok(())) => {
                        let fresh = CachedCollateral { required_tcb, pck_revoked };
                        *self.lock_cache() = Some(fresh);
                        self.collateral_fetches.fetch_add(1, Ordering::SeqCst);
                        Ok(Some(fresh))
                    }
                    _ => Ok(None),
                }
            }
            Err(()) => Ok(None),
        }
    }

    /// **Check phase**: DCAP-style verification with live PCS lookups.
    ///
    /// Each PCS fetch is retried up to `FETCH_ATTEMPTS` (3) times with
    /// exponential backoff; if the service stays down past the budget,
    /// verification falls back to the last successfully verified collateral.
    ///
    /// # Errors
    ///
    /// Signature, revocation, TCB, and nonce failures, plus
    /// [`AttestError::CollateralUnavailable`] when the PCS is unreachable
    /// and nothing is cached.
    pub fn verify_quote(
        &self,
        quote: &TdQuote,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        let mut net_ms = 0.0;
        // 1-2. Collateral: TCB info, then both CRLs.
        let collateral = match self.fetch_collateral_live(&mut net_ms)? {
            Some(fresh) => fresh,
            None => self.cached_collateral()?,
        };
        // 3. Local checks.
        self.check_quote_against(quote, collateral, expected_report_data)?;
        Ok(PhaseTiming::with_network(VERIFY_CRYPTO_MS, net_ms))
    }

    /// **Check phase**, steady-state: verify against the cached collateral
    /// without touching the PCS at all — the path the background refresher
    /// keeps hot, so verification costs only local crypto. Falls back to a
    /// full [`TdxEcosystem::verify_quote`] when the cache is cold.
    ///
    /// # Errors
    ///
    /// As [`TdxEcosystem::verify_quote`]; the policy enforced is whatever
    /// the cached collateral carries, which is why the refresher updates it
    /// ahead of expiry.
    pub fn verify_quote_offline(
        &self,
        quote: &TdQuote,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        let cached = *self.lock_cache();
        match cached {
            Some(collateral) => {
                self.check_quote_against(quote, collateral, expected_report_data)?;
                Ok(PhaseTiming::local(VERIFY_CRYPTO_MS))
            }
            None => self.verify_quote(quote, expected_report_data),
        }
    }

    /// Re-fetches TCB info and CRLs from the live PCS and replaces the
    /// cached collateral — the background-refresh entry point. Returns the
    /// required TCB now in force and the network milliseconds spent.
    ///
    /// # Errors
    ///
    /// [`AttestError::CollateralUnavailable`] when the PCS stays down past
    /// the retry budget (the previous cache entry is kept), or
    /// [`AttestError::BadSignature`] on tampered TCB info.
    pub fn refresh_collateral(&self) -> Result<(u64, f64), AttestError> {
        let mut net_ms = 0.0;
        match self.fetch_collateral_live(&mut net_ms)? {
            Some(fresh) => Ok((fresh.required_tcb, net_ms)),
            None => Err(AttestError::CollateralUnavailable),
        }
    }

    fn check_quote_against(
        &self,
        quote: &TdQuote,
        collateral: CachedCollateral,
        expected_report_data: [u8; 64],
    ) -> Result<(), AttestError> {
        if collateral.pck_revoked {
            return Err(AttestError::Revoked("pck"));
        }
        self.qe_key
            .verifying_key()
            .verify(&quote.signed_bytes(), &quote.qe_signature)
            .map_err(|_| AttestError::BadSignature("qe quote"))?;
        if quote.tcb_level < collateral.required_tcb {
            return Err(AttestError::TcbOutOfDate {
                reported: quote.tcb_level,
                required: collateral.required_tcb,
            });
        }
        if quote.report.report_data != expected_report_data {
            return Err(AttestError::NonceMismatch);
        }
        Ok(())
    }

    fn cached_collateral(&self) -> Result<CachedCollateral, AttestError> {
        (*self.lock_cache()).ok_or(AttestError::CollateralUnavailable)
    }

    /// Verifier-side freshness helper: derives 64 bytes of report data from
    /// a nonce, as `go-tdx-guest` clients do.
    pub fn report_data_for_nonce(nonce: u64) -> [u8; 64] {
        let d1 = Sha256::digest_parts(&[b"nonce", &nonce.to_be_bytes()]);
        let d2 = Sha256::digest_parts(&[b"nonce2", &nonce.to_be_bytes()]);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(d1.as_bytes());
        out[32..].copy_from_slice(d2.as_bytes());
        out
    }
}

fn tdcall_cost(vm: &Vm, before: Cycles, freq: f64) -> f64 {
    // TDG.MR.REPORT itself does not advance the workload clock in this
    // model, so charge one exit round trip explicitly.
    let delta = (vm.now() - before).as_nanos(freq) / 1e6;
    delta + vm.cost_model().exit_cost / (freq * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{TeePlatform, VmTarget};
    use confbench_vmm::TeeVmBuilder;

    fn td() -> Vm {
        TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build()
    }

    #[test]
    fn quote_roundtrip_verifies() {
        let mut vm = td();
        let eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(77);
        let (quote, attest) = eco.generate_quote(&mut vm, nonce).unwrap();
        let check = eco.verify_quote(&quote, nonce).unwrap();
        assert!(attest.latency_ms > 0.0);
        assert!(check.latency_ms > 100.0, "3 PCS requests at WAN latency: {}", check.latency_ms);
    }

    #[test]
    fn tampered_quote_rejected() {
        let mut vm = td();
        let eco = TdxEcosystem::new(1);
        let nonce = [3u8; 64];
        let (mut quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        quote.tcb_level += 1; // inflate TCB claim
        assert_eq!(eco.verify_quote(&quote, nonce), Err(AttestError::BadSignature("qe quote")));
    }

    #[test]
    fn nonce_mismatch_rejected() {
        let mut vm = td();
        let eco = TdxEcosystem::new(1);
        let (quote, _) = eco.generate_quote(&mut vm, [1; 64]).unwrap();
        assert_eq!(eco.verify_quote(&quote, [2; 64]), Err(AttestError::NonceMismatch));
    }

    #[test]
    fn tcb_recovery_obsoletes_old_quotes() {
        let mut vm = td();
        let mut eco = TdxEcosystem::new(1);
        let (quote, _) = eco.generate_quote(&mut vm, [1; 64]).unwrap();
        eco.pcs_mut().set_current_tcb(99);
        assert_eq!(
            eco.verify_quote(&quote, [1; 64]),
            Err(AttestError::TcbOutOfDate { reported: 46, required: 99 })
        );
    }

    #[test]
    fn revoked_pck_rejected() {
        let mut vm = td();
        let mut eco = TdxEcosystem::new(1);
        let (quote, _) = eco.generate_quote(&mut vm, [1; 64]).unwrap();
        eco.pcs_mut().revoke_pck();
        assert_eq!(eco.verify_quote(&quote, [1; 64]), Err(AttestError::Revoked("pck")));
    }

    #[test]
    fn quotes_from_wrong_ecosystem_fail() {
        let mut vm = td();
        let eco1 = TdxEcosystem::new(1);
        let eco2 = TdxEcosystem::new(2);
        let (quote, _) = eco1.generate_quote(&mut vm, [1; 64]).unwrap();
        assert!(eco2.verify_quote(&quote, [1; 64]).is_err());
    }

    #[test]
    fn normal_vm_cannot_quote() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        assert_eq!(
            TdxEcosystem::new(1).generate_quote(&mut vm, [0; 64]).unwrap_err(),
            AttestError::WrongVmKind
        );
    }

    #[test]
    fn flaky_pcs_is_absorbed_by_retry() {
        let mut vm = td();
        let mut eco = TdxEcosystem::new(1);
        let steady = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(5);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        let baseline = steady.verify_quote(&quote, nonce).unwrap();

        eco.pcs_mut().set_fail_rate(0.4);
        let mut retried = 0;
        for _ in 0..8 {
            let timing = eco.verify_quote(&quote, nonce).unwrap_or_else(|e| {
                panic!("retry + cached fallback should absorb a 40% flaky PCS: {e}")
            });
            if timing.network_ms > baseline.network_ms * 1.5 {
                retried += 1;
            }
        }
        assert!(retried > 0, "a 40% fail rate over 24 fetches must trigger some retries");
    }

    #[test]
    fn full_outage_falls_back_to_cached_collateral() {
        let mut vm = td();
        let mut eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(6);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        assert!(!eco.has_cached_collateral());
        eco.verify_quote(&quote, nonce).unwrap();
        assert!(eco.has_cached_collateral());

        eco.pcs_mut().set_fail_rate(1.0);
        let timing = eco.verify_quote(&quote, nonce).unwrap();
        // Three attempts at the TCB fetch (with 25+50 ms backoff) before
        // giving up on the live service; the wasted time is still charged.
        assert!(timing.network_ms > 75.0, "failed attempts burn wall time: {}", timing.network_ms);
    }

    #[test]
    fn full_outage_with_cold_cache_is_unavailable() {
        let mut vm = td();
        let mut eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(7);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        eco.pcs_mut().set_fail_rate(1.0);
        assert_eq!(eco.verify_quote(&quote, nonce), Err(AttestError::CollateralUnavailable));
    }

    #[test]
    fn cached_collateral_still_enforces_policy() {
        let mut vm = td();
        let mut eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(8);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        // Warm the cache *after* a TCB recovery, then take the PCS down:
        // the cached requirement keeps rejecting the stale quote.
        eco.pcs_mut().set_current_tcb(99);
        assert_eq!(
            eco.verify_quote(&quote, nonce),
            Err(AttestError::TcbOutOfDate { reported: 46, required: 99 })
        );
        eco.pcs_mut().set_fail_rate(1.0);
        assert_eq!(
            eco.verify_quote(&quote, nonce),
            Err(AttestError::TcbOutOfDate { reported: 46, required: 99 })
        );
    }

    #[test]
    fn report_data_for_nonce_is_deterministic_and_injective_ish() {
        assert_eq!(TdxEcosystem::report_data_for_nonce(1), TdxEcosystem::report_data_for_nonce(1));
        assert_ne!(TdxEcosystem::report_data_for_nonce(1), TdxEcosystem::report_data_for_nonce(2));
    }

    #[test]
    fn ecosystem_is_shareable_across_threads() {
        // The regression this PR fixes: with the RefCell collateral cache
        // the ecosystem was !Sync and this block did not compile, so one
        // verifier could never serve multiple gateway workers.
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<TdxEcosystem>();

        let mut vm = td();
        let eco = std::sync::Arc::new(TdxEcosystem::new(1));
        let nonce = TdxEcosystem::report_data_for_nonce(9);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let eco = std::sync::Arc::clone(&eco);
                let quote = quote.clone();
                std::thread::spawn(move || eco.verify_quote(&quote, nonce).map(|t| t.latency_ms))
            })
            .collect();
        for h in handles {
            let latency = h.join().unwrap().expect("concurrent verification succeeds");
            assert!(latency > 0.0);
        }
        assert!(eco.has_cached_collateral());
    }

    #[test]
    fn offline_verification_skips_pcs_once_collateral_is_cached() {
        let mut vm = td();
        let eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(11);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();

        // Cold cache: offline falls back to the live path.
        let cold = eco.verify_quote_offline(&quote, nonce).unwrap();
        assert!(cold.network_ms > 0.0, "cold offline verify hits the PCS");
        let requests_after_cold = eco.pcs().requests();
        assert_eq!(requests_after_cold, 3, "tcb info + 2 CRLs");

        // Warm cache: pure local crypto, zero network, zero PCS requests.
        let warm = eco.verify_quote_offline(&quote, nonce).unwrap();
        assert_eq!(warm.network_ms, 0.0);
        assert_eq!(eco.pcs().requests(), requests_after_cold);
        assert!(warm.latency_ms < cold.latency_ms / 5.0);
    }

    #[test]
    fn refresh_updates_cached_policy_for_offline_verifiers() {
        let mut vm = td();
        let eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(12);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        let (required, net_ms) = eco.refresh_collateral().unwrap();
        assert_eq!(required, 46);
        assert!(net_ms > 0.0);
        assert_eq!(eco.collateral_fetches(), 1);
        eco.verify_quote_offline(&quote, nonce).unwrap();

        // A TCB recovery lands at the PCS; the next refresh propagates it
        // and offline verification starts rejecting the stale quote.
        eco.pcs().set_current_tcb(99);
        let (required, _) = eco.refresh_collateral().unwrap();
        assert_eq!(required, 99);
        assert_eq!(
            eco.verify_quote_offline(&quote, nonce),
            Err(AttestError::TcbOutOfDate { reported: 46, required: 99 })
        );

        // Patching the platform (firmware update) recovers: fresh quotes
        // report the new TCB and verify offline again.
        eco.patch_platform_tcb(99);
        let (patched, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        let timing = eco.verify_quote_offline(&patched, nonce).unwrap();
        assert_eq!(timing.network_ms, 0.0);
    }

    #[test]
    fn refresh_during_outage_keeps_previous_collateral() {
        let mut vm = td();
        let eco = TdxEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(13);
        let (quote, _) = eco.generate_quote(&mut vm, nonce).unwrap();
        eco.refresh_collateral().unwrap();
        eco.pcs().set_fail_rate(1.0);
        assert_eq!(eco.refresh_collateral(), Err(AttestError::CollateralUnavailable));
        // The stale-but-valid collateral still serves offline verification.
        assert_eq!(eco.verify_quote_offline(&quote, nonce).unwrap().network_ms, 0.0);
    }
}

//! The attestation session layer: verification caching, single-flight
//! collapse, and background collateral refresh.
//!
//! E4 measured the TDX check at ~184 ms median with ~95% of it in PCS round
//! trips. At fleet scale, verification must become a *session* primitive:
//! verify a TCB identity once, hand out a TTL'd token, and re-verify only
//! when something the token attests to actually changes. This module is
//! that layer:
//!
//! * [`SessionCache`] — verified-session tokens keyed on
//!   [`TcbIdentity`](crate::TcbIdentity) (platform, measurement, TCB level,
//!   e-vTPM runtime digest) plus the verification-policy fingerprint, TTL'd
//!   on an injectable [`Clock`]. Concurrent cold verifications of one
//!   identity are **single-flighted**: the first caller verifies (one PCS
//!   round trip), the rest park on a condvar and reuse the result.
//! * [`CollateralRefresher`] — re-fetches TCB info/CRLs ahead of expiry so
//!   steady-state verification runs entirely against cached collateral and
//!   the hot path never blocks on the PCS; a TCB recovery observed during
//!   refresh raises the cache's required-TCB watermark, invalidating every
//!   session below it.
//!
//! A session dies four ways: TTL expiry, explicit revocation, an e-vTPM
//! runtime-measurement extend, or the TCB watermark moving past it. All
//! four force the next dispatch through full re-verification.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use confbench_crypto::{Digest, Sha256};
use confbench_obs::{Counter, MetricsRegistry};
use confbench_types::{Clock, TeePlatform};

use crate::error::AttestError;
use crate::tdx_flow::TdxEcosystem;
use crate::verifier::{Evidence, TcbIdentity, Verifier};
use crate::PhaseTiming;

/// Milliseconds charged for a warm session-cache lookup (token validation,
/// a hash probe — no crypto, no network).
const SESSION_LOOKUP_MS: f64 = 0.05;

/// Session-cache configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Session lifetime in clock milliseconds (default 5 minutes).
    pub ttl_ms: u64,
    /// Maximum retained sessions; the oldest is evicted past this.
    pub capacity: usize,
    /// Fingerprint of the verification policy in force. Folded into every
    /// session key so a policy change can never resurrect sessions
    /// verified under the old policy.
    pub policy: Digest,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            ttl_ms: 300_000,
            capacity: 1024,
            policy: Sha256::digest(b"confbench-attest-policy-v1"),
        }
    }
}

/// Why a session is (or is not) currently usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Valid: dispatches may skip verification.
    Live,
    /// TTL elapsed.
    Expired,
    /// Explicitly revoked (`DELETE /v1/attest/sessions/{id}`).
    Revoked,
    /// An e-vTPM runtime register was extended after issuance.
    Extended,
    /// A TCB recovery raised the required watermark past this session.
    TcbStale,
}

impl SessionState {
    /// Stable lowercase label, as served over REST.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Live => "live",
            SessionState::Expired => "expired",
            SessionState::Revoked => "revoked",
            SessionState::Extended => "extended",
            SessionState::TcbStale => "tcb-stale",
        }
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A verified-session token: the result of one successful verification,
/// reusable until invalidated.
#[derive(Debug, Clone, PartialEq)]
pub struct AttestSession {
    /// Opaque session id (the REST resource name).
    pub id: String,
    /// What was verified.
    pub identity: TcbIdentity,
    /// Issuance time (cache clock).
    pub created_ms: u64,
    /// Expiry time (cache clock).
    pub expires_ms: u64,
    /// State at snapshot time.
    pub state: SessionState,
}

/// How a [`SessionCache::verify_or_join`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionSource {
    /// A live session existed: no verification ran.
    CacheHit,
    /// This caller ran the verification.
    Verified,
    /// Another caller was already verifying the same identity; this one
    /// parked and reused its result.
    SingleFlight,
}

impl SessionSource {
    /// Stable lowercase label, as served over REST.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionSource::CacheHit => "cache-hit",
            SessionSource::Verified => "verified",
            SessionSource::SingleFlight => "single-flight",
        }
    }
}

/// The result of verifying (or joining / short-circuiting) through the
/// session cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The live session token.
    pub session: AttestSession,
    /// What the caller paid: full verification cost when it led or parked
    /// behind the leader, a flat sub-millisecond lookup on a plain hit.
    pub timing: PhaseTiming,
    /// How the call was satisfied.
    pub source: SessionSource,
}

/// Counter snapshot for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCacheStats {
    /// Lookups served by a live session.
    pub hits: u64,
    /// Lookups that ran a verification.
    pub misses: u64,
    /// Callers that parked behind an in-flight verification.
    pub singleflight_waits: u64,
}

#[derive(Debug)]
struct SessionEntry {
    id: String,
    identity: TcbIdentity,
    key: Digest,
    created_ms: u64,
    expires_ms: u64,
    revoked: bool,
    extended: bool,
    /// The verification cost paid when this session was created; reused as
    /// the charge for single-flight joiners (they waited in parallel with
    /// the leader's PCS trip).
    timing: PhaseTiming,
}

impl SessionEntry {
    fn state(&self, now_ms: u64, required_tcb: u64) -> SessionState {
        if self.revoked {
            SessionState::Revoked
        } else if self.extended {
            SessionState::Extended
        } else if self.identity.tcb_level < required_tcb {
            SessionState::TcbStale
        } else if now_ms >= self.expires_ms {
            SessionState::Expired
        } else {
            SessionState::Live
        }
    }

    fn snapshot(&self, now_ms: u64, required_tcb: u64) -> AttestSession {
        AttestSession {
            id: self.id.clone(),
            identity: self.identity,
            created_ms: self.created_ms,
            expires_ms: self.expires_ms,
            state: self.state(now_ms, required_tcb),
        }
    }
}

#[derive(Debug, Default)]
struct CacheState {
    by_id: HashMap<String, SessionEntry>,
    by_key: HashMap<Digest, String>,
    /// Insertion order, for oldest-first eviction.
    order: VecDeque<String>,
    /// Keys with a verification in flight.
    inflight: HashSet<Digest>,
    /// Per-platform required-TCB watermark (raised by collateral refresh).
    required_tcb: HashMap<TeePlatform, u64>,
    next_seq: u64,
}

impl CacheState {
    fn required(&self, platform: TeePlatform) -> u64 {
        self.required_tcb.get(&platform).copied().unwrap_or(0)
    }
}

/// The gateway-side attestation verification cache. See the module docs.
pub struct SessionCache {
    clock: Arc<dyn Clock>,
    config: SessionConfig,
    state: Mutex<CacheState>,
    cond: Condvar,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    waits: Arc<Counter>,
}

impl fmt::Debug for SessionCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionCache")
            .field("config", &self.config)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl SessionCache {
    /// Builds a cache on `clock` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn new(clock: Arc<dyn Clock>, config: SessionConfig) -> Self {
        assert!(config.capacity > 0, "session cache capacity must be at least 1");
        SessionCache {
            clock,
            config,
            state: Mutex::new(CacheState::default()),
            cond: Condvar::new(),
            hits: Arc::new(Counter::default()),
            misses: Arc::new(Counter::default()),
            waits: Arc::new(Counter::default()),
        }
    }

    /// Publishes the cache counters to `registry` as
    /// `attest_cache_hits_total` / `attest_cache_misses_total` /
    /// `attest_cache_singleflight_waits_total`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.hits = registry.counter("attest_cache_hits_total");
        self.misses = registry.counter("attest_cache_misses_total");
        self.waits = registry.counter("attest_cache_singleflight_waits_total");
        self
    }

    /// The configured TTL.
    pub fn ttl_ms(&self) -> u64 {
        self.config.ttl_ms
    }

    /// Retained sessions (all states).
    pub fn len(&self) -> usize {
        self.lock().by_id.len()
    }

    /// Whether no sessions are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SessionCacheStats {
        SessionCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            singleflight_waits: self.waits.get(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cache key for an identity: identity fingerprint folded with the
    /// policy fingerprint.
    fn key_for(&self, identity: &TcbIdentity) -> Digest {
        Sha256::digest_parts(&[
            b"attest-session:",
            identity.fingerprint().as_bytes(),
            self.config.policy.as_bytes(),
        ])
    }

    /// Verifies `evidence` through the cache: a live session for the same
    /// identity short-circuits verification entirely; a concurrent
    /// verification of the same identity is joined (single-flight); only a
    /// genuine miss drives `verifier` — and at most one caller per identity
    /// does so at a time.
    ///
    /// # Errors
    ///
    /// The verifier's failures, propagated to the leader and re-run by
    /// parked callers (a failed verification caches nothing).
    pub fn verify_or_join(
        &self,
        verifier: &dyn Verifier,
        evidence: &Evidence,
        expected_report_data: [u8; 64],
    ) -> Result<SessionOutcome, AttestError> {
        let identity = evidence.identity();
        let key = self.key_for(&identity);
        let mut waited = false;
        let mut state = self.lock();
        loop {
            let now = self.clock.now_ms();
            if let Some(id) = state.by_key.get(&key) {
                if let Some(entry) = state.by_id.get(id) {
                    let required = state.required(entry.identity.platform);
                    if entry.state(now, required) == SessionState::Live {
                        let session = entry.snapshot(now, required);
                        let (timing, source) = if waited {
                            // Parked behind the leader: the wall-clock cost
                            // is the leader's verification, shared.
                            (entry.timing, SessionSource::SingleFlight)
                        } else {
                            self.hits.inc();
                            (PhaseTiming::local(SESSION_LOOKUP_MS), SessionSource::CacheHit)
                        };
                        return Ok(SessionOutcome { session, timing, source });
                    }
                }
            }
            if state.inflight.contains(&key) {
                if !waited {
                    self.waits.inc();
                    waited = true;
                }
                state = self.cond.wait(state).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            state.inflight.insert(key);
            break;
        }
        drop(state);

        // Verification runs outside the lock: other identities proceed in
        // parallel; same-identity callers park above.
        self.misses.inc();
        let result = verifier.verify(evidence, expected_report_data);

        let mut state = self.lock();
        state.inflight.remove(&key);
        let outcome = result.map(|timing| {
            let now = self.clock.now_ms();
            let session = Self::insert_locked(&mut state, &self.config, identity, key, timing, now);
            SessionOutcome { session, timing, source: SessionSource::Verified }
        });
        drop(state);
        // Wake parked callers: on success they reuse the session, on
        // failure the next one elects itself leader and retries.
        self.cond.notify_all();
        outcome
    }

    fn insert_locked(
        state: &mut CacheState,
        config: &SessionConfig,
        identity: TcbIdentity,
        key: Digest,
        timing: PhaseTiming,
        now_ms: u64,
    ) -> AttestSession {
        while state.by_id.len() >= config.capacity {
            let Some(oldest) = state.order.pop_front() else { break };
            if let Some(evicted) = state.by_id.remove(&oldest) {
                if state.by_key.get(&evicted.key) == Some(&oldest) {
                    state.by_key.remove(&evicted.key);
                }
            }
        }
        state.next_seq += 1;
        let id = format!("as-{:04x}-{:.12}", state.next_seq, key.to_string());
        let entry = SessionEntry {
            id: id.clone(),
            identity,
            key,
            created_ms: now_ms,
            expires_ms: now_ms.saturating_add(config.ttl_ms),
            revoked: false,
            extended: false,
            timing,
        };
        let required = state.required(identity.platform);
        let snapshot = entry.snapshot(now_ms, required);
        state.by_key.insert(key, id.clone());
        state.order.push_back(id.clone());
        state.by_id.insert(id, entry);
        snapshot
    }

    /// Dispatch fast path: when `id` names a live session, counts a cache
    /// hit and returns the outcome a dispatcher should charge (a token
    /// lookup — no verification, no network). `None` when the session is
    /// unknown or no longer live; callers re-verify through
    /// [`SessionCache::verify_or_join`].
    pub fn hit(&self, id: &str) -> Option<SessionOutcome> {
        let state = self.lock();
        let entry = state.by_id.get(id)?;
        let now = self.clock.now_ms();
        let required = state.required(entry.identity.platform);
        if entry.state(now, required) != SessionState::Live {
            return None;
        }
        let session = entry.snapshot(now, required);
        drop(state);
        self.hits.inc();
        Some(SessionOutcome {
            session,
            timing: PhaseTiming::local(SESSION_LOOKUP_MS),
            source: SessionSource::CacheHit,
        })
    }

    /// Reads a session by id.
    pub fn get(&self, id: &str) -> Option<AttestSession> {
        let state = self.lock();
        let entry = state.by_id.get(id)?;
        Some(entry.snapshot(self.clock.now_ms(), state.required(entry.identity.platform)))
    }

    /// Whether `id` names a currently live session.
    pub fn is_live(&self, id: &str) -> bool {
        self.get(id).is_some_and(|s| s.state == SessionState::Live)
    }

    /// Revokes a session: the next dispatch presenting it re-verifies.
    pub fn revoke(&self, id: &str) -> Option<AttestSession> {
        let mut state = self.lock();
        let now = self.clock.now_ms();
        let required = {
            let entry = state.by_id.get(id)?;
            state.required(entry.identity.platform)
        };
        let entry = state.by_id.get_mut(id)?;
        entry.revoked = true;
        Some(entry.snapshot(now, required))
    }

    /// Records that the runtime measurements behind `id` were extended: the
    /// session is invalidated (state [`SessionState::Extended`]) and its
    /// visible runtime digest updated to `new_runtime_digest`, so `GET`
    /// shows what the next verification must match.
    pub fn mark_extended(&self, id: &str, new_runtime_digest: Digest) -> Option<AttestSession> {
        let mut state = self.lock();
        let now = self.clock.now_ms();
        let required = {
            let entry = state.by_id.get(id)?;
            state.required(entry.identity.platform)
        };
        let entry = state.by_id.get_mut(id)?;
        entry.extended = true;
        entry.identity.runtime_digest = new_runtime_digest;
        Some(entry.snapshot(now, required))
    }

    /// Raises (never lowers) the required-TCB watermark for `platform`.
    /// Sessions whose verified TCB falls below it flip to
    /// [`SessionState::TcbStale`] — the TCB-change invalidation path, fed
    /// by the collateral refresher.
    pub fn note_required_tcb(&self, platform: TeePlatform, required: u64) {
        let mut state = self.lock();
        let current = state.required(platform);
        if required > current {
            state.required_tcb.insert(platform, required);
        }
    }

    /// The current required-TCB watermark for `platform` (0 when unset).
    pub fn required_tcb(&self, platform: TeePlatform) -> u64 {
        self.lock().required(platform)
    }
}

/// Steady-state collateral maintenance for the TDX ecosystem: re-fetches
/// TCB info and CRLs ahead of expiry so verifications run against warm
/// cached collateral, and propagates TCB recoveries into the session
/// cache's watermark.
///
/// Driven by [`CollateralRefresher::tick`] — cheap enough to call on every
/// dispatch (an atomic load when not due) or from a timer thread.
pub struct CollateralRefresher {
    eco: Arc<TdxEcosystem>,
    cache: Arc<SessionCache>,
    clock: Arc<dyn Clock>,
    interval_ms: u64,
    /// Clock ms of the last claimed refresh attempt (`u64::MAX` = never).
    /// Claimed before fetching, so concurrent ticks elect one refresher; a
    /// failed attempt keeps its claim, backing retries off by an interval.
    last_ms: AtomicU64,
    refreshes: Arc<Counter>,
    failures: Arc<Counter>,
}

impl fmt::Debug for CollateralRefresher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollateralRefresher")
            .field("interval_ms", &self.interval_ms)
            .field("refreshes", &self.refreshes.get())
            .finish_non_exhaustive()
    }
}

impl CollateralRefresher {
    /// Builds a refresher that re-fetches every `interval_ms` clock
    /// milliseconds (refresh-ahead: pick an interval well under the
    /// collateral's validity window).
    pub fn new(
        eco: Arc<TdxEcosystem>,
        cache: Arc<SessionCache>,
        clock: Arc<dyn Clock>,
        interval_ms: u64,
    ) -> Self {
        CollateralRefresher {
            eco,
            cache,
            clock,
            interval_ms: interval_ms.max(1),
            last_ms: AtomicU64::new(u64::MAX),
            refreshes: Arc::new(Counter::default()),
            failures: Arc::new(Counter::default()),
        }
    }

    /// Publishes `attest_collateral_refresh_total` (and
    /// `attest_collateral_refresh_failures_total`) to `registry`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.refreshes = registry.counter("attest_collateral_refresh_total");
        self.failures = registry.counter("attest_collateral_refresh_failures_total");
        self
    }

    /// Refreshes now, regardless of schedule. Returns the required TCB in
    /// force and the network milliseconds spent.
    ///
    /// # Errors
    ///
    /// As [`TdxEcosystem::refresh_collateral`]; a failure keeps the
    /// previous collateral (stale-but-valid beats nothing).
    pub fn force(&self) -> Result<(u64, f64), AttestError> {
        match self.eco.refresh_collateral() {
            Ok((required, net_ms)) => {
                self.refreshes.inc();
                self.cache.note_required_tcb(TeePlatform::Tdx, required);
                self.last_ms.store(self.clock.now_ms(), Ordering::SeqCst);
                Ok((required, net_ms))
            }
            Err(e) => {
                self.failures.inc();
                Err(e)
            }
        }
    }

    /// Refreshes iff the interval has elapsed since the last attempt (or
    /// none was ever made). Returns `None` when not yet due — including for
    /// every loser of a concurrent race: a thundering herd of cold
    /// dispatches funds exactly one PCS round trip.
    pub fn tick(&self) -> Option<Result<(u64, f64), AttestError>> {
        let now = self.clock.now_ms();
        loop {
            let last = self.last_ms.load(Ordering::SeqCst);
            if last != u64::MAX && now.saturating_sub(last) < self.interval_ms {
                return None;
            }
            // Claim the slot before fetching so concurrent ticks elect one
            // refresher; the claim survives a failed fetch, so an outage is
            // re-probed once per interval instead of on every dispatch.
            if self.last_ms.compare_exchange(last, now, Ordering::SeqCst, Ordering::SeqCst).is_ok()
            {
                return Some(self.force());
            }
        }
    }

    /// Successful refreshes so far.
    pub fn refresh_total(&self) -> u64 {
        self.refreshes.get()
    }

    /// The ecosystem being refreshed.
    pub fn ecosystem(&self) -> &Arc<TdxEcosystem> {
        &self.eco
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evtpm::quote_runtime;
    use confbench_types::{ManualClock, VmTarget};
    use confbench_vmm::TeeVmBuilder;
    use std::sync::Barrier;

    fn td_evidence(eco: &TdxEcosystem, nonce: u64) -> (Evidence, [u8; 64]) {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
        let data = TdxEcosystem::report_data_for_nonce(nonce);
        let (quote, _) = eco.generate_quote(&mut vm, data).unwrap();
        let runtime = quote_runtime(&vm).unwrap().0;
        (Evidence::tdx(quote).with_runtime(runtime), data)
    }

    fn cache(clock: &Arc<ManualClock>) -> SessionCache {
        SessionCache::new(Arc::clone(clock) as Arc<dyn Clock>, SessionConfig::default())
    }

    #[test]
    fn hit_skips_verification_and_charges_only_a_lookup() {
        let clock = Arc::new(ManualClock::new());
        let cache = cache(&clock);
        let eco = TdxEcosystem::new(1);
        let (evidence, data) = td_evidence(&eco, 1);

        let cold = cache.verify_or_join(&eco, &evidence, data).unwrap();
        assert_eq!(cold.source, SessionSource::Verified);
        assert!(cold.timing.network_ms > 0.0, "cold verify hits the PCS");
        let pcs_after_cold = eco.pcs().requests();

        // Different nonce, same identity: still a hit (identity excludes
        // the nonce — freshness bound the first verification only).
        let (evidence2, data2) = td_evidence(&eco, 2);
        let warm = cache.verify_or_join(&eco, &evidence2, data2).unwrap();
        assert_eq!(warm.source, SessionSource::CacheHit);
        assert_eq!(warm.session.id, cold.session.id);
        assert_eq!(warm.timing.network_ms, 0.0, "hits never touch the network");
        assert_eq!(eco.pcs().requests(), pcs_after_cold, "hits never touch the PCS");
        assert!(warm.timing.latency_ms < cold.timing.latency_ms / 100.0);
        assert_eq!(cache.stats(), SessionCacheStats { hits: 1, misses: 1, singleflight_waits: 0 });
    }

    #[test]
    fn singleflight_collapses_concurrent_cold_verifications() {
        let clock = Arc::new(ManualClock::new());
        let cache = Arc::new(cache(&clock));
        let eco = Arc::new(TdxEcosystem::new(1));
        let (evidence, data) = td_evidence(&eco, 3);
        let n = 16;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let eco = Arc::clone(&eco);
                let evidence = evidence.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.verify_or_join(eco.as_ref(), &evidence, data).unwrap()
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let verified = outcomes.iter().filter(|o| o.source == SessionSource::Verified).count();
        assert_eq!(verified, 1, "exactly one leader verifies");
        assert_eq!(eco.collateral_fetches(), 1, "one PCS collateral round trip for all 16");
        assert_eq!(eco.pcs().requests(), 3, "tcb info + 2 CRLs, once");
        let ids: HashSet<_> = outcomes.iter().map(|o| o.session.id.clone()).collect();
        assert_eq!(ids.len(), 1, "every caller holds the same session");
    }

    #[test]
    fn ttl_expiry_forces_reverification() {
        let clock = Arc::new(ManualClock::new());
        let cache = SessionCache::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            SessionConfig { ttl_ms: 1_000, ..SessionConfig::default() },
        );
        let eco = TdxEcosystem::new(1);
        let (evidence, data) = td_evidence(&eco, 4);
        let first = cache.verify_or_join(&eco, &evidence, data).unwrap();
        assert!(cache.is_live(&first.session.id));

        clock.advance(999);
        assert!(cache.is_live(&first.session.id));
        clock.advance(1);
        assert!(!cache.is_live(&first.session.id));
        assert_eq!(cache.get(&first.session.id).unwrap().state, SessionState::Expired);

        let second = cache.verify_or_join(&eco, &evidence, data).unwrap();
        assert_eq!(second.source, SessionSource::Verified);
        assert_ne!(second.session.id, first.session.id);
    }

    #[test]
    fn revocation_forces_reverification() {
        let clock = Arc::new(ManualClock::new());
        let cache = cache(&clock);
        let eco = TdxEcosystem::new(1);
        let (evidence, data) = td_evidence(&eco, 5);
        let first = cache.verify_or_join(&eco, &evidence, data).unwrap();
        assert_eq!(cache.revoke(&first.session.id).unwrap().state, SessionState::Revoked);
        assert!(!cache.is_live(&first.session.id));

        let second = cache.verify_or_join(&eco, &evidence, data).unwrap();
        assert_eq!(second.source, SessionSource::Verified);
        assert_ne!(second.session.id, first.session.id);
        // The revoked session stays addressable for audit.
        assert_eq!(cache.get(&first.session.id).unwrap().state, SessionState::Revoked);
    }

    #[test]
    fn tcb_watermark_invalidates_old_sessions() {
        let clock = Arc::new(ManualClock::new());
        let cache = cache(&clock);
        let eco = TdxEcosystem::new(1);
        let (evidence, data) = td_evidence(&eco, 6);
        let first = cache.verify_or_join(&eco, &evidence, data).unwrap();
        assert_eq!(first.session.identity.tcb_level, 46);

        cache.note_required_tcb(TeePlatform::Tdx, 99);
        assert!(!cache.is_live(&first.session.id));
        assert_eq!(cache.get(&first.session.id).unwrap().state, SessionState::TcbStale);
        // Watermarks never move down.
        cache.note_required_tcb(TeePlatform::Tdx, 1);
        assert_eq!(cache.required_tcb(TeePlatform::Tdx), 99);
    }

    #[test]
    fn runtime_extend_invalidates_and_new_identity_verifies_fresh() {
        let clock = Arc::new(ManualClock::new());
        let cache = cache(&clock);
        let eco = TdxEcosystem::new(1);
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
        let data = TdxEcosystem::report_data_for_nonce(7);
        let (quote, _) = eco.generate_quote(&mut vm, data).unwrap();
        let evidence = Evidence::tdx(quote).with_runtime(quote_runtime(&vm).unwrap().0);
        let first = cache.verify_or_join(&eco, &evidence, data).unwrap();

        // Workload measures a new layer in.
        crate::evtpm::extend_runtime(&mut vm, 2, b"hotfix").unwrap();
        let new_digest = quote_runtime(&vm).unwrap().0.digest();
        let marked = cache.mark_extended(&first.session.id, new_digest).unwrap();
        assert_eq!(marked.state, SessionState::Extended);
        assert_eq!(marked.identity.runtime_digest, new_digest);
        assert!(!cache.is_live(&first.session.id));

        // Fresh evidence carries the new runtime digest → new identity →
        // full verification, new session.
        let (quote2, _) = eco.generate_quote(&mut vm, data).unwrap();
        let evidence2 = Evidence::tdx(quote2).with_runtime(quote_runtime(&vm).unwrap().0);
        let second = cache.verify_or_join(&eco, &evidence2, data).unwrap();
        assert_eq!(second.source, SessionSource::Verified);
        assert_ne!(second.session.identity.runtime_digest, first.session.identity.runtime_digest);
    }

    #[test]
    fn capacity_evicts_oldest_sessions() {
        let clock = Arc::new(ManualClock::new());
        let cache = SessionCache::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            SessionConfig { capacity: 2, ..SessionConfig::default() },
        );
        let eco = TdxEcosystem::new(1);
        // Distinct identities via distinct runtime digests.
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
        let data = TdxEcosystem::report_data_for_nonce(8);
        let mut ids = Vec::new();
        for layer in 0..3u8 {
            crate::evtpm::extend_runtime(&mut vm, 0, &[layer]).unwrap();
            let (quote, _) = eco.generate_quote(&mut vm, data).unwrap();
            let evidence = Evidence::tdx(quote).with_runtime(quote_runtime(&vm).unwrap().0);
            ids.push(cache.verify_or_join(&eco, &evidence, data).unwrap().session.id);
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ids[0]).is_none(), "oldest evicted");
        assert!(cache.get(&ids[1]).is_some() && cache.get(&ids[2]).is_some());
    }

    #[test]
    fn refresher_ticks_on_schedule_and_propagates_tcb_recoveries() {
        let clock = Arc::new(ManualClock::new());
        let cache = Arc::new(cache(&clock));
        let eco = Arc::new(TdxEcosystem::new(1));
        let refresher = CollateralRefresher::new(
            Arc::clone(&eco),
            Arc::clone(&cache),
            Arc::clone(&clock) as Arc<dyn Clock>,
            10_000,
        );
        // First tick always fires (nothing cached yet).
        assert!(refresher.tick().unwrap().is_ok());
        assert_eq!(refresher.refresh_total(), 1);
        // Not due again until the interval elapses.
        clock.advance(5_000);
        assert!(refresher.tick().is_none());
        clock.advance(5_000);
        assert!(refresher.tick().unwrap().is_ok());
        assert_eq!(refresher.refresh_total(), 2);

        // A session verified now dies when a TCB recovery is refreshed in.
        let (evidence, data) = td_evidence(&eco, 9);
        let session = cache.verify_or_join(eco.as_ref(), &evidence, data).unwrap().session;
        // Steady-state: that verification used cached collateral, no PCS.
        assert_eq!(eco.collateral_fetches(), 2, "only the refresher fetched");
        eco.pcs().set_current_tcb(99);
        clock.advance(10_000);
        assert!(refresher.tick().unwrap().is_ok());
        assert_eq!(cache.required_tcb(TeePlatform::Tdx), 99);
        assert_eq!(cache.get(&session.id).unwrap().state, SessionState::TcbStale);
    }

    #[test]
    fn refresher_failure_keeps_previous_collateral_and_counts() {
        let clock = Arc::new(ManualClock::new());
        let cache = Arc::new(cache(&clock));
        let eco = Arc::new(TdxEcosystem::new(1));
        let refresher = CollateralRefresher::new(
            Arc::clone(&eco),
            Arc::clone(&cache),
            Arc::clone(&clock) as Arc<dyn Clock>,
            1_000,
        );
        refresher.force().unwrap();
        eco.pcs().set_fail_rate(1.0);
        assert_eq!(refresher.force(), Err(AttestError::CollateralUnavailable));
        assert_eq!(refresher.refresh_total(), 1);
        assert!(eco.has_cached_collateral(), "outage keeps stale-but-valid collateral");
    }

    #[test]
    fn metrics_registry_integration() {
        let clock = Arc::new(ManualClock::new());
        let registry = MetricsRegistry::new();
        let cache = Arc::new(
            SessionCache::new(Arc::clone(&clock) as Arc<dyn Clock>, SessionConfig::default())
                .with_metrics(&registry),
        );
        let eco = Arc::new(TdxEcosystem::new(1));
        let refresher = CollateralRefresher::new(
            Arc::clone(&eco),
            Arc::clone(&cache),
            Arc::clone(&clock) as Arc<dyn Clock>,
            1_000,
        )
        .with_metrics(&registry);
        refresher.force().unwrap();
        let (evidence, data) = td_evidence(&eco, 10);
        cache.verify_or_join(eco.as_ref(), &evidence, data).unwrap();
        cache.verify_or_join(eco.as_ref(), &evidence, data).unwrap();
        assert_eq!(registry.counter_value("attest_cache_hits_total"), Some(1));
        assert_eq!(registry.counter_value("attest_cache_misses_total"), Some(1));
        assert_eq!(registry.counter_value("attest_cache_singleflight_waits_total"), Some(0));
        assert_eq!(registry.counter_value("attest_collateral_refresh_total"), Some(1));
    }
}

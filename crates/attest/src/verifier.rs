//! Platform-independent verification: [`Evidence`], [`TcbIdentity`], and
//! the [`Verifier`] trait the session cache drives.
//!
//! `TdxEcosystem` and `SnpEcosystem` keep their concrete flows; this module
//! is the seam that lets the gateway treat "verify this evidence" uniformly
//! — and lets the session cache key on *what was verified* (platform,
//! measurement, TCB level, runtime measurements) instead of on which code
//! path verified it.

use confbench_crypto::{Digest, Sha256};
use confbench_types::TeePlatform;
use confbench_vmm::SnpReport;

use confbench_devio::MeasurementReport;

use crate::device::DeviceEvidence;
use crate::error::AttestError;
use crate::evtpm::RuntimeMeasurements;
use crate::snp_flow::SnpEcosystem;
use crate::tdx_flow::{TdQuote, TdxEcosystem};
use crate::PhaseTiming;

/// Hardware evidence from one platform.
#[derive(Debug, Clone, PartialEq)]
pub enum EvidenceBody {
    /// A TDX quote (DCAP flow).
    Tdx(TdQuote),
    /// An SEV-SNP attestation report (VCEK flow).
    Snp(SnpReport),
    /// A TDISP device measurement report (SPDM flow), tagged with the host
    /// platform the device serves.
    Device(DeviceEvidence),
}

/// Evidence as presented to a verifier: the platform-signed body plus the
/// optional e-vTPM runtime-measurement snapshot taken alongside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The hardware-signed evidence.
    pub body: EvidenceBody,
    /// Runtime measurements quoted from the guest's e-vTPM, when the
    /// scenario includes one.
    pub runtime: Option<RuntimeMeasurements>,
}

impl Evidence {
    /// Wraps a TDX quote.
    pub fn tdx(quote: TdQuote) -> Self {
        Evidence { body: EvidenceBody::Tdx(quote), runtime: None }
    }

    /// Wraps an SNP report.
    pub fn snp(report: SnpReport) -> Self {
        Evidence { body: EvidenceBody::Snp(report), runtime: None }
    }

    /// Wraps a device measurement report for a device serving `platform`
    /// VMs.
    pub fn device(platform: TeePlatform, report: MeasurementReport) -> Self {
        Evidence { body: EvidenceBody::Device(DeviceEvidence { platform, report }), runtime: None }
    }

    /// Attaches an e-vTPM runtime snapshot.
    pub fn with_runtime(mut self, runtime: RuntimeMeasurements) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// The platform that signed the body.
    pub fn platform(&self) -> TeePlatform {
        match &self.body {
            EvidenceBody::Tdx(_) => TeePlatform::Tdx,
            EvidenceBody::Snp(_) => TeePlatform::SevSnp,
            EvidenceBody::Device(d) => d.platform,
        }
    }

    /// The launch measurement (MRTD / SNP launch digest / device firmware
    /// digest).
    pub fn measurement(&self) -> Digest {
        match &self.body {
            EvidenceBody::Tdx(q) => q.report.mrtd,
            EvidenceBody::Snp(r) => r.measurement,
            EvidenceBody::Device(d) => Digest(d.report.fw_digest().unwrap_or([0; 32])),
        }
    }

    /// The numeric TCB level the evidence claims (firmware SVN for a
    /// device).
    pub fn tcb_level(&self) -> u64 {
        match &self.body {
            EvidenceBody::Tdx(q) => q.tcb_level,
            EvidenceBody::Snp(r) => r.tcb_version,
            EvidenceBody::Device(d) => d.report.fw_svn as u64,
        }
    }

    /// The folded runtime-measurement digest (all-zero without an e-vTPM
    /// snapshot, distinguishing "no runtime evidence" from any real bank).
    /// Device evidence folds its locked interface-config digest here — an
    /// interface re-lock is to a device what a runtime extend is to a CVM.
    pub fn runtime_digest(&self) -> Digest {
        if let EvidenceBody::Device(d) = &self.body {
            return Digest(d.report.interface_digest().unwrap_or([0; 32]));
        }
        self.runtime.as_ref().map(RuntimeMeasurements::digest).unwrap_or(ZERO_DIGEST)
    }

    /// The identity tuple sessions are keyed on.
    pub fn identity(&self) -> TcbIdentity {
        TcbIdentity {
            platform: self.platform(),
            measurement: self.measurement(),
            tcb_level: self.tcb_level(),
            runtime_digest: self.runtime_digest(),
        }
    }
}

const ZERO_DIGEST: Digest = Digest([0u8; 32]);

/// What a verified session attests to: the cache key of the session layer.
///
/// Deliberately excludes the nonce/report-data — freshness binds one
/// verification, identity binds the TCB. Every VM booted from the same
/// image on the same platform at the same TCB shares an identity, which is
/// exactly what lets a fleet amortize one verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcbIdentity {
    /// Signing platform.
    pub platform: TeePlatform,
    /// Launch measurement.
    pub measurement: Digest,
    /// Claimed TCB level.
    pub tcb_level: u64,
    /// Folded e-vTPM bank digest (all-zero when absent).
    pub runtime_digest: Digest,
}

impl TcbIdentity {
    /// Collision-resistant fingerprint of the identity, for keying and for
    /// surfacing over REST.
    pub fn fingerprint(&self) -> Digest {
        let platform_tag: &[u8] = match self.platform {
            TeePlatform::Tdx => b"tdx",
            TeePlatform::SevSnp => b"sev-snp",
            TeePlatform::Cca => b"cca",
        };
        Sha256::digest_parts(&[
            b"tcb-identity:",
            platform_tag,
            self.measurement.as_bytes(),
            &self.tcb_level.to_be_bytes(),
            self.runtime_digest.as_bytes(),
        ])
    }
}

/// A relying party that can check [`Evidence`] of its platform.
///
/// Implementations verify through their *steady-state* path (cached
/// collateral when fresh), so a caller stack that keeps collateral
/// refreshed in the background never blocks the hot path on the PCS.
pub trait Verifier: Send + Sync {
    /// The platform whose evidence this verifier accepts.
    fn platform(&self) -> TeePlatform;

    /// Verifies `evidence` against `expected_report_data`, returning the
    /// phase timing on success.
    ///
    /// # Errors
    ///
    /// [`AttestError::WrongVmKind`] for evidence from another platform,
    /// plus the platform flow's signature/TCB/nonce/collateral failures.
    fn verify(
        &self,
        evidence: &Evidence,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError>;
}

impl Verifier for TdxEcosystem {
    fn platform(&self) -> TeePlatform {
        TeePlatform::Tdx
    }

    fn verify(
        &self,
        evidence: &Evidence,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        match &evidence.body {
            EvidenceBody::Tdx(quote) => self.verify_quote_offline(quote, expected_report_data),
            _ => Err(AttestError::WrongVmKind),
        }
    }
}

impl Verifier for SnpEcosystem {
    fn platform(&self) -> TeePlatform {
        TeePlatform::SevSnp
    }

    fn verify(
        &self,
        evidence: &Evidence,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        match &evidence.body {
            EvidenceBody::Snp(report) => self.verify_report(report, expected_report_data),
            _ => Err(AttestError::WrongVmKind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evtpm::quote_runtime;
    use confbench_types::VmTarget;
    use confbench_vmm::TeeVmBuilder;

    #[test]
    fn identity_ignores_nonce_but_tracks_runtime_state() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
        let eco = TdxEcosystem::new(1);
        let (q1, _) = eco.generate_quote(&mut vm, TdxEcosystem::report_data_for_nonce(1)).unwrap();
        let (q2, _) = eco.generate_quote(&mut vm, TdxEcosystem::report_data_for_nonce(2)).unwrap();
        let rt = quote_runtime(&vm).unwrap().0;
        let a = Evidence::tdx(q1).with_runtime(rt.clone()).identity();
        let b = Evidence::tdx(q2).with_runtime(rt).identity();
        assert_eq!(a, b, "different nonces, same TCB identity");
        assert_eq!(a.fingerprint(), b.fingerprint());

        crate::evtpm::extend_runtime(&mut vm, 3, b"new-layer").unwrap();
        let (q3, _) = eco.generate_quote(&mut vm, TdxEcosystem::report_data_for_nonce(1)).unwrap();
        let c = Evidence::tdx(q3).with_runtime(quote_runtime(&vm).unwrap().0).identity();
        assert_ne!(a, c, "a runtime extend changes the identity");
    }

    #[test]
    fn verifier_trait_dispatches_and_rejects_cross_platform_evidence() {
        let mut td = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
        let mut guest = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(1).build();
        let tdx = TdxEcosystem::new(1);
        let snp = SnpEcosystem::new(1);
        let nonce = TdxEcosystem::report_data_for_nonce(3);
        let (quote, _) = tdx.generate_quote(&mut td, nonce).unwrap();
        let (report, _) = snp.request_report(&mut guest, nonce).unwrap();
        let tdx_evidence = Evidence::tdx(quote);
        let snp_evidence = Evidence::snp(report);

        let verifiers: [&dyn Verifier; 2] = [&tdx, &snp];
        for v in verifiers {
            let (own, other) = if v.platform() == TeePlatform::Tdx {
                (&tdx_evidence, &snp_evidence)
            } else {
                (&snp_evidence, &tdx_evidence)
            };
            v.verify(own, nonce).unwrap();
            assert_eq!(v.verify(other, nonce), Err(AttestError::WrongVmKind));
        }
    }
}

//! Attestation errors.

use std::fmt;

/// Failure of an attestation flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// The VM is not a confidential VM of the expected platform.
    WrongVmKind,
    /// The platform firmware refused the request.
    Firmware(String),
    /// Evidence signature did not verify.
    BadSignature(&'static str),
    /// The report data (nonce) in the evidence does not match.
    NonceMismatch,
    /// The TCB level in the evidence is below the verifier's policy.
    TcbOutOfDate {
        /// TCB the evidence reports.
        reported: u64,
        /// Minimum the policy requires.
        required: u64,
    },
    /// A certificate in the chain is revoked.
    Revoked(&'static str),
    /// Verification collateral (TCB info, CRLs) could not be fetched —
    /// the verification service is down past the retry budget and no
    /// previously fetched collateral is cached.
    CollateralUnavailable,
    /// The platform does not support attestation (CCA on FVP).
    Unsupported,
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::WrongVmKind => {
                f.write_str("attestation requires a confidential VM of the right platform")
            }
            AttestError::Firmware(msg) => write!(f, "firmware error: {msg}"),
            AttestError::BadSignature(which) => write!(f, "signature check failed: {which}"),
            AttestError::NonceMismatch => f.write_str("report data does not match expected nonce"),
            AttestError::TcbOutOfDate { reported, required } => {
                write!(f, "tcb {reported} below required {required}")
            }
            AttestError::Revoked(which) => write!(f, "certificate revoked: {which}"),
            AttestError::CollateralUnavailable => {
                f.write_str("verification collateral unavailable (service down, nothing cached)")
            }
            AttestError::Unsupported => f.write_str("attestation unsupported on this platform"),
        }
    }
}

impl std::error::Error for AttestError {}

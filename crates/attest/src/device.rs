//! Device attestation: verifying TDISP accelerator measurement reports.
//!
//! TEE-IO extends the relying party's job: before a confidential VM lets a
//! device DMA into private memory, the *device* must prove what firmware
//! it runs and what interface configuration was locked. This module plugs
//! that flow into the existing verification stack — a
//! [`DeviceEvidence`] body wraps the SPDM-style measurement report, a
//! [`DeviceVerifier`] enforces [`DevicePolicy`], and because both implement
//! the same [`Evidence`]/[`Verifier`](crate::Verifier) seams the
//! [`SessionCache`](crate::SessionCache) amortizes device re-attestation
//! exactly like CVM re-attestation: one fleet-wide verification per device
//! TCB identity per TTL, single-flighted under concurrency.
//!
//! Identity mapping: the device's firmware digest stands in for the launch
//! measurement, its firmware SVN for the TCB level, and the locked
//! interface-config digest for the runtime digest — so a firmware update,
//! an SVN bump, or a different interface lock each produce a distinct
//! session key, while re-plugging an identical device hits the cache.

use confbench_crypto::VerifyingKey;
use confbench_devio::{
    gpu_firmware_digest, gpu_interface_digest, vendor_verifying_key, MeasurementReport, GPU_FW_SVN,
};
use confbench_types::TeePlatform;

use crate::error::AttestError;
use crate::verifier::{Evidence, EvidenceBody, Verifier};
use crate::PhaseTiming;

/// Milliseconds of local compute one device verification costs (SPDM
/// transcript hash + one signature check; no network — the vendor key is
/// pinned, unlike the TDX PCS collateral chain).
const DEVICE_VERIFY_MS: f64 = 2.4;

/// Evidence presented for a TDISP device interface: the host platform the
/// device is plugged into, plus its signed measurement report.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvidence {
    /// Platform of the host VM the device is assigned to (device sessions
    /// are cached per host platform: the same GPU behind a TDX TD and
    /// behind an SNP guest are distinct trust decisions).
    pub platform: TeePlatform,
    /// The decoded, signed measurement report.
    pub report: MeasurementReport,
}

/// Acceptance policy for device measurement reports.
#[derive(Debug, Clone)]
pub struct DevicePolicy {
    /// Minimum acceptable firmware security version.
    pub min_fw_svn: u32,
    /// Expected firmware digest (measurement block 0).
    pub fw_digest: [u8; 32],
    /// Expected locked interface-config digest (measurement block 1).
    pub interface_digest: [u8; 32],
    /// Pinned vendor verifying key.
    pub vendor_key: VerifyingKey,
}

impl Default for DevicePolicy {
    /// The policy matching the modeled GPU at its current firmware.
    fn default() -> Self {
        DevicePolicy {
            min_fw_svn: GPU_FW_SVN,
            fw_digest: gpu_firmware_digest(),
            interface_digest: gpu_interface_digest(),
            vendor_key: vendor_verifying_key(),
        }
    }
}

/// Relying party for device evidence on one host platform.
#[derive(Debug, Clone)]
pub struct DeviceVerifier {
    host: TeePlatform,
    policy: DevicePolicy,
}

impl DeviceVerifier {
    /// A verifier for devices plugged into `host`-platform VMs, with the
    /// default policy.
    pub fn new(host: TeePlatform) -> Self {
        DeviceVerifier { host, policy: DevicePolicy::default() }
    }

    /// Overrides the acceptance policy.
    pub fn with_policy(mut self, policy: DevicePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &DevicePolicy {
        &self.policy
    }
}

impl Verifier for DeviceVerifier {
    fn platform(&self) -> TeePlatform {
        self.host
    }

    fn verify(
        &self,
        evidence: &Evidence,
        expected_report_data: [u8; 64],
    ) -> Result<PhaseTiming, AttestError> {
        let EvidenceBody::Device(dev) = &evidence.body else {
            return Err(AttestError::WrongVmKind);
        };
        if dev.platform != self.host {
            return Err(AttestError::WrongVmKind);
        }
        let report = &dev.report;
        report
            .verify(&self.policy.vendor_key)
            .map_err(|_| AttestError::BadSignature("device measurement report"))?;
        // The device echoes a 32-byte nonce; it binds the first half of the
        // 64-byte report-data channel the CVM flows use.
        if report.nonce[..] != expected_report_data[..32] {
            return Err(AttestError::NonceMismatch);
        }
        if report.fw_svn < self.policy.min_fw_svn {
            return Err(AttestError::TcbOutOfDate {
                reported: report.fw_svn as u64,
                required: self.policy.min_fw_svn as u64,
            });
        }
        if report.fw_digest() != Some(self.policy.fw_digest) {
            return Err(AttestError::BadSignature("device firmware digest"));
        }
        if report.interface_digest() != Some(self.policy.interface_digest) {
            return Err(AttestError::BadSignature("device interface configuration"));
        }
        Ok(PhaseTiming::local(DEVICE_VERIFY_MS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionCache, SessionConfig};
    use crate::verifier::TcbIdentity;
    use crate::SessionSource;
    use confbench_crypto::SigningKey;
    use confbench_devio::MeasurementBlock;
    use confbench_types::{DeviceKind, ManualClock, VmTarget};
    use confbench_vmm::TeeVmBuilder;
    use std::sync::Arc;

    fn nonce_data(nonce: [u8; 32]) -> [u8; 64] {
        let mut data = [0u8; 64];
        data[..32].copy_from_slice(&nonce);
        data
    }

    fn attested_vm(platform: TeePlatform) -> (Evidence, [u8; 64]) {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(platform)).device(DeviceKind::Gpu).build();
        let nonce = [0x42; 32];
        let report = vm.device_report(nonce).unwrap();
        (Evidence::device(platform, report), nonce_data(nonce))
    }

    #[test]
    fn good_report_verifies_and_bad_nonce_or_platform_fails() {
        let (evidence, data) = attested_vm(TeePlatform::Tdx);
        let v = DeviceVerifier::new(TeePlatform::Tdx);
        v.verify(&evidence, data).unwrap();
        assert_eq!(v.verify(&evidence, [0; 64]), Err(AttestError::NonceMismatch));
        let snp = DeviceVerifier::new(TeePlatform::SevSnp);
        assert_eq!(snp.verify(&evidence, data), Err(AttestError::WrongVmKind));
    }

    #[test]
    fn forged_or_stale_reports_are_rejected() {
        let nonce = [7u8; 32];
        let data = nonce_data(nonce);
        let v = DeviceVerifier::new(TeePlatform::Tdx);
        // Forged: signed by a key that is not the pinned vendor key.
        let forged = MeasurementReport::sign(
            GPU_FW_SVN,
            vec![
                MeasurementBlock { index: 0, kind: 1, digest: gpu_firmware_digest() },
                MeasurementBlock { index: 1, kind: 2, digest: gpu_interface_digest() },
            ],
            nonce,
            &SigningKey::from_seed(0xbad),
        );
        assert!(matches!(
            v.verify(&Evidence::device(TeePlatform::Tdx, forged), data),
            Err(AttestError::BadSignature(_))
        ));
        // Stale firmware: below the policy's minimum SVN.
        let stale = MeasurementReport::sign(
            GPU_FW_SVN - 1,
            vec![
                MeasurementBlock { index: 0, kind: 1, digest: gpu_firmware_digest() },
                MeasurementBlock { index: 1, kind: 2, digest: gpu_interface_digest() },
            ],
            nonce,
            &confbench_devio::vendor_signing_key(),
        );
        assert!(matches!(
            v.verify(&Evidence::device(TeePlatform::Tdx, stale), data),
            Err(AttestError::TcbOutOfDate { .. })
        ));
        // Wrong firmware image.
        let wrong = MeasurementReport::sign(
            GPU_FW_SVN,
            vec![
                MeasurementBlock { index: 0, kind: 1, digest: [9; 32] },
                MeasurementBlock { index: 1, kind: 2, digest: gpu_interface_digest() },
            ],
            nonce,
            &confbench_devio::vendor_signing_key(),
        );
        assert_eq!(
            v.verify(&Evidence::device(TeePlatform::Tdx, wrong), data),
            Err(AttestError::BadSignature("device firmware digest"))
        );
    }

    #[test]
    fn device_identity_maps_firmware_svn_and_interface() {
        let (evidence, _) = attested_vm(TeePlatform::SevSnp);
        let id: TcbIdentity = evidence.identity();
        assert_eq!(id.platform, TeePlatform::SevSnp);
        assert_eq!(id.measurement.as_bytes(), &gpu_firmware_digest());
        assert_eq!(id.tcb_level, GPU_FW_SVN as u64);
        assert_eq!(id.runtime_digest.as_bytes(), &gpu_interface_digest());
    }

    #[test]
    fn session_cache_amortizes_device_reattestation() {
        let clock = Arc::new(ManualClock::new());
        let cache = SessionCache::new(clock, SessionConfig::default());
        let v = DeviceVerifier::new(TeePlatform::Tdx);
        // Two different VMs, same device model: one verification, one hit —
        // nonces differ per VM but the TCB identity is the same.
        let mut vm_a =
            TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).device(DeviceKind::Gpu).build();
        let mut vm_b = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx))
            .seed(1)
            .device(DeviceKind::Gpu)
            .build();
        let nonce_a = [1u8; 32];
        let nonce_b = [2u8; 32];
        let ev_a = Evidence::device(TeePlatform::Tdx, vm_a.device_report(nonce_a).unwrap());
        let ev_b = Evidence::device(TeePlatform::Tdx, vm_b.device_report(nonce_b).unwrap());
        let first = cache.verify_or_join(&v, &ev_a, nonce_data(nonce_a)).unwrap();
        assert_eq!(first.source, SessionSource::Verified);
        let second = cache.verify_or_join(&v, &ev_b, nonce_data(nonce_b)).unwrap();
        assert_eq!(second.source, SessionSource::CacheHit);
        assert_eq!(first.session.id, second.session.id);
        assert!(second.timing.latency_ms < first.timing.latency_ms);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}

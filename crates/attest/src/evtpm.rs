//! e-vTPM runtime-measurement evidence: the second attestation scenario.
//!
//! Hardware evidence (TD quote, SNP report) pins the *launch* state of a
//! CVM; the e-vTPM inside the guest pins its *runtime* state (kernel,
//! layers the workload measured in after boot). A verifier that folds the
//! e-vTPM bank digest into its session identity gets the invalidation
//! property this PR is about: the moment a workload extends a runtime
//! register, the cached session stops matching and the next dispatch
//! re-verifies.

use confbench_crypto::{Digest, Sha256};
use confbench_vmm::Vm;

use crate::error::AttestError;
use crate::PhaseTiming;

/// Milliseconds for a vTPM quote over the paravirtual transport (orders of
/// magnitude cheaper than a PCS round trip; comparable to a firmware call).
const EVTPM_QUOTE_MS: f64 = 2.5;
/// Milliseconds for one PCR extend command.
const EVTPM_EXTEND_MS: f64 = 0.8;

/// A snapshot of the e-vTPM register bank, as shipped alongside hardware
/// evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeMeasurements {
    /// The PCR bank at quote time.
    pub pcrs: Vec<Digest>,
    /// Extend count at quote time (monotonic; useful for freshness checks).
    pub extends: u64,
}

impl RuntimeMeasurements {
    /// Folds the bank into the single digest session keys embed.
    pub fn digest(&self) -> Digest {
        let parts: Vec<&[u8]> = self.pcrs.iter().map(|d| d.as_bytes() as &[u8]).collect();
        Sha256::digest_parts(&parts)
    }
}

/// Quotes the e-vTPM of `vm`: reads the full register bank.
///
/// # Errors
///
/// [`AttestError::WrongVmKind`] when `vm` has no e-vTPM (normal VMs).
pub fn quote_runtime(vm: &Vm) -> Result<(RuntimeMeasurements, PhaseTiming), AttestError> {
    let tpm = vm.evtpm().ok_or(AttestError::WrongVmKind)?;
    let measurements = RuntimeMeasurements { pcrs: tpm.bank().to_vec(), extends: tpm.extends() };
    Ok((measurements, PhaseTiming::local(EVTPM_QUOTE_MS)))
}

/// Extends runtime register `index` of `vm`'s e-vTPM with `data` (the
/// workload measuring a new layer in). Returns the new register value.
///
/// # Errors
///
/// [`AttestError::WrongVmKind`] without an e-vTPM;
/// [`AttestError::Firmware`] on a bad register index.
pub fn extend_runtime(
    vm: &mut Vm,
    index: usize,
    data: &[u8],
) -> Result<(Digest, PhaseTiming), AttestError> {
    let tpm = vm.evtpm_mut().ok_or(AttestError::WrongVmKind)?;
    let pcr = tpm.extend(index, data).map_err(|e| AttestError::Firmware(e.to_string()))?;
    Ok((pcr, PhaseTiming::local(EVTPM_EXTEND_MS)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{TeePlatform, VmTarget};
    use confbench_vmm::TeeVmBuilder;

    #[test]
    fn runtime_quote_is_stable_until_extended() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).seed(1).build();
        let (a, timing) = quote_runtime(&vm).unwrap();
        let (b, _) = quote_runtime(&vm).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert!(timing.latency_ms < 10.0, "vTPM quotes are local: {}", timing.latency_ms);
        assert_eq!(timing.network_ms, 0.0);

        extend_runtime(&mut vm, 4, b"layer").unwrap();
        let (c, _) = quote_runtime(&vm).unwrap();
        assert_ne!(a.digest(), c.digest(), "an extend must change the runtime identity");
        assert_eq!(c.extends, a.extends + 1);
    }

    #[test]
    fn pool_members_share_a_runtime_identity_at_boot() {
        let a = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(1).build();
        let b = TeeVmBuilder::new(VmTarget::secure(TeePlatform::SevSnp)).seed(2).build();
        assert_eq!(
            quote_runtime(&a).unwrap().0.digest(),
            quote_runtime(&b).unwrap().0.digest(),
            "seed affects jitter, not the measured image"
        );
    }

    #[test]
    fn normal_vms_have_no_runtime_measurements() {
        let vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        assert_eq!(quote_runtime(&vm).unwrap_err(), AttestError::WrongVmKind);
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        assert_eq!(extend_runtime(&mut vm, 0, b"x").unwrap_err(), AttestError::WrongVmKind);
    }

    #[test]
    fn bad_register_index_surfaces_as_firmware_error() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).build();
        assert!(matches!(extend_runtime(&mut vm, 99, b"x").unwrap_err(), AttestError::Firmware(_)));
    }
}

//! Differential property tests: the tree-walking interpreter and the stack
//! bytecode VM must agree on every generated program, in result and in the
//! I/O side effects they record.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use confbench_crypto::SplitMix64;
use confbench_faasrt::{compile, parse, run_program, JitMode, StackVm, TREE_WALK_DISPATCH};

const CASES: u64 = 64;

/// Renders a small arithmetic-and-control-flow program from a recipe of
/// operations. Generated programs always terminate (bounded loops).
fn render_program(seed_ops: &[(u8, i64, i64)]) -> String {
    let mut body = String::from("let acc = 1;\n");
    for (i, (kind, a, b)) in seed_ops.iter().enumerate() {
        let a = (a % 97).abs() + 1;
        let b = (b % 23).abs() + 2;
        match kind % 6 {
            0 => body.push_str(&format!("acc = (acc + {a}) % 100003;\n")),
            1 => body.push_str(&format!("acc = acc * {b} % 99991;\n")),
            2 => body.push_str(&format!(
                "for i{i} in 0, {b} {{ acc = (acc + i{i} * {a}) % 65537; }}\n"
            )),
            3 => body.push_str(&format!(
                "if acc % {b} == 0 {{ acc = acc + {a}; }} else {{ acc = acc - {a}; }}\n"
            )),
            4 => body.push_str(&format!(
                "let j{i} = 0; while j{i} < {b} {{ j{i} = j{i} + 1; if j{i} % 7 == 3 {{ continue; }} acc = (acc * 3 + j{i}) % 32749; }}\n"
            )),
            _ => body.push_str(&format!(
                "let arr{i} = array_new({b}, {a}); arr{i}[{b} / 2] = acc % 1000; acc = (acc + arr{i}[{b} / 2] + len(arr{i})) % 100003;\n"
            )),
        }
    }
    body.push_str("result(acc);\n");
    body
}

#[test]
fn interpreter_and_vm_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xFAA5_0001 ^ case);
        let ops: Vec<(u8, i64, i64)> = (0..1 + rng.next_below(11))
            .map(|_| (rng.next_u64() as u8, rng.next_u64() as i64, rng.next_u64() as i64))
            .collect();
        let src = render_program(&ops);
        let program =
            parse(&src).unwrap_or_else(|e| panic!("generated program failed to parse: {e}\n{src}"));
        let interp = run_program(&program, &[], TREE_WALK_DISPATCH, 50_000_000)
            .unwrap_or_else(|e| panic!("interp failed: {e}\n{src}"));
        let module = compile(&program).unwrap();
        for jit in [JitMode::wasmi(), JitMode::luajit()] {
            let vm = StackVm::new(jit, 50_000_000)
                .run(&module, &[])
                .unwrap_or_else(|e| panic!("vm failed: {e}\n{src}"));
            assert_eq!(&interp.result, &vm.result, "divergence under {jit:?} on:\n{src}");
        }
    }
}

#[test]
fn io_side_effects_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xFAA5_0002 ^ case);
        let writes: Vec<u64> =
            (0..1 + rng.next_below(7)).map(|_| 1 + rng.next_below(99_999)).collect();
        let mut src = String::new();
        for w in &writes {
            src.push_str(&format!("io_write({w});\n"));
        }
        src.push_str("result(0);");
        let program = parse(&src).unwrap();
        let interp = run_program(&program, &[], TREE_WALK_DISPATCH, 10_000_000).unwrap();
        let module = compile(&program).unwrap();
        let vm = StackVm::new(JitMode::wasmi(), 10_000_000).run(&module, &[]).unwrap();
        let expected: u64 = writes.iter().sum();
        assert_eq!(interp.trace.total_io_bytes(), expected, "case {case}");
        assert_eq!(vm.trace.total_io_bytes(), expected, "case {case}");
        assert_eq!(interp.trace.total_syscalls(), writes.len() as u64, "case {case}");
        assert_eq!(vm.trace.total_syscalls(), writes.len() as u64, "case {case}");
    }
}

#[test]
fn deeper_recursion_agrees() {
    for n in 1i64..18 {
        let src = format!(
            "fn f(n) {{ if n < 2 {{ return n; }} return f(n - 1) + f(n - 2); }} result(f({n}));"
        );
        let program = parse(&src).unwrap();
        let interp = run_program(&program, &[], TREE_WALK_DISPATCH, 50_000_000).unwrap();
        let module = compile(&program).unwrap();
        let vm = StackVm::new(JitMode::wasmi(), 50_000_000).run(&module, &[]).unwrap();
        assert_eq!(interp.result, vm.result, "n = {n}");
    }
}

#[test]
fn runaway_recursion_errors_instead_of_overflowing() {
    let src = "fn f(n) { return f(n + 1); } result(f(0));";
    let program = parse(src).unwrap();
    let err = run_program(&program, &[], TREE_WALK_DISPATCH, u64::MAX).unwrap_err();
    assert!(err.to_string().contains("call depth"), "{err}");
    let module = compile(&program).unwrap();
    let err = StackVm::new(JitMode::wasmi(), u64::MAX).run(&module, &[]).unwrap_err();
    assert!(err.to_string().contains("call depth"), "{err}");
}

#[test]
fn deep_but_bounded_recursion_still_works() {
    let src = "fn down(n) { if n == 0 { return 0; } return down(n - 1); } result(down(120));";
    let program = parse(src).unwrap();
    assert_eq!(run_program(&program, &[], TREE_WALK_DISPATCH, 100_000_000).unwrap().result, "0");
    let module = compile(&program).unwrap();
    let vm = StackVm::new(JitMode::wasmi(), 100_000_000);
    assert_eq!(vm.run(&module, &[]).unwrap().result, "0");
}

//! Builtin functions shared by the tree-walking interpreter and the stack
//! bytecode VM.

use confbench_types::{OpTrace, SyscallKind};

use crate::error::ScriptError;
use crate::value::Value;

/// Host capabilities a builtin needs: trace recording, batched counters,
/// log/result sinks. Implemented by both execution engines.
pub(crate) trait BuiltinHost {
    fn trace_mut(&mut self) -> &mut OpTrace;
    fn flush_pending(&mut self);
    fn add_mem(&mut self, bytes: u64);
    fn add_float(&mut self, ops: u64);
    fn add_log(&mut self, text: &str);
    fn set_result(&mut self, value: String);
}

/// Names the engines must treat as builtins (user functions cannot shadow
/// them).
pub(crate) const BUILTIN_NAMES: &[&str] = &[
    "log",
    "result",
    "len",
    "push",
    "pop",
    "array_new",
    "str",
    "int",
    "float",
    "chr",
    "sqrt",
    "sin",
    "cos",
    "floor",
    "abs",
    "ln",
    "exp",
    "io_write",
    "io_read",
    "file_meta",
    "dir_op",
    "alloc",
    "release",
    "mem_touch",
    "ctx_switch",
];

/// Dispatches a builtin call.
pub(crate) fn call_builtin<H: BuiltinHost>(
    host: &mut H,
    name: &str,
    mut args: Vec<Value>,
) -> Result<Value, ScriptError> {
    let arity_err = |name: &str| ScriptError::Runtime(format!("wrong arguments to {name}"));
    match name {
        "log" => {
            let text = args.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
            host.add_log(&text);
            Ok(Value::Nil)
        }
        "result" => {
            let v = args.pop().ok_or_else(|| arity_err("result"))?;
            host.set_result(v.to_string());
            Ok(Value::Nil)
        }
        "len" => match args.first() {
            Some(Value::Array(items)) => Ok(Value::Int(items.borrow().len() as i64)),
            Some(Value::Str(s)) => Ok(Value::Int(s.len() as i64)),
            _ => Err(arity_err("len")),
        },
        "push" => {
            let v = args.pop().ok_or_else(|| arity_err("push"))?;
            match args.first() {
                Some(Value::Array(items)) => {
                    items.borrow_mut().push(v);
                    host.add_mem(16);
                    Ok(Value::Nil)
                }
                _ => Err(arity_err("push")),
            }
        }
        "pop" => match args.first() {
            Some(Value::Array(items)) => Ok(items.borrow_mut().pop().unwrap_or(Value::Nil)),
            _ => Err(arity_err("pop")),
        },
        "array_new" => {
            let (n, init) = match (args.first(), args.get(1)) {
                (Some(Value::Int(n)), Some(init)) if *n >= 0 => (*n as usize, init.clone()),
                _ => return Err(arity_err("array_new")),
            };
            host.trace_mut().alloc(16 * n.max(1) as u64);
            host.add_mem(16 * n as u64);
            Ok(Value::array(vec![init; n]))
        }
        "str" => {
            let v = args.pop().ok_or_else(|| arity_err("str"))?;
            let s = v.to_string();
            host.add_mem(s.len() as u64);
            Ok(Value::Str(s.into()))
        }
        "int" => match args.first() {
            Some(Value::Int(n)) => Ok(Value::Int(*n)),
            Some(Value::Float(x)) => Ok(Value::Int(*x as i64)),
            Some(Value::Str(s)) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| ScriptError::Runtime(format!("cannot parse int from {s:?}"))),
            _ => Err(arity_err("int")),
        },
        "float" => match args.first().and_then(|v| v.as_f64()) {
            Some(x) => Ok(Value::Float(x)),
            None => Err(arity_err("float")),
        },
        "chr" => match args.first() {
            Some(Value::Int(n)) if (0..=255).contains(n) => {
                Ok(Value::Str(((*n as u8) as char).to_string().into()))
            }
            _ => Err(arity_err("chr")),
        },
        "sqrt" | "sin" | "cos" | "floor" | "abs" | "ln" | "exp" => {
            let x = args.first().and_then(|v| v.as_f64()).ok_or_else(|| arity_err(name))?;
            host.add_float(12); // libm-class cost
            let y = match name {
                "sqrt" => x.sqrt(),
                "sin" => x.sin(),
                "cos" => x.cos(),
                "floor" => x.floor(),
                "abs" => x.abs(),
                "ln" => x.ln(),
                _ => x.exp(),
            };
            Ok(Value::Float(y))
        }
        "io_write" => {
            let n = positive_int_arg(&args, "io_write")?;
            host.flush_pending();
            host.trace_mut().syscall(SyscallKind::FileWrite, 1);
            host.trace_mut().io_write(n);
            Ok(Value::Nil)
        }
        "io_read" => {
            let n = positive_int_arg(&args, "io_read")?;
            host.flush_pending();
            host.trace_mut().syscall(SyscallKind::FileRead, 1);
            host.trace_mut().io_read(n);
            Ok(Value::Nil)
        }
        "file_meta" => {
            let n = positive_int_arg(&args, "file_meta")?;
            host.flush_pending();
            host.trace_mut().syscall(SyscallKind::FileMeta, n);
            Ok(Value::Nil)
        }
        "dir_op" => {
            let n = positive_int_arg(&args, "dir_op")?;
            host.flush_pending();
            host.trace_mut().syscall(SyscallKind::DirOp, n);
            Ok(Value::Nil)
        }
        "alloc" => {
            let n = positive_int_arg(&args, "alloc")?;
            host.flush_pending();
            host.trace_mut().alloc(n);
            Ok(Value::Nil)
        }
        "release" => {
            let n = positive_int_arg(&args, "release")?;
            host.flush_pending();
            host.trace_mut().free(n);
            Ok(Value::Nil)
        }
        "mem_touch" => {
            let n = positive_int_arg(&args, "mem_touch")?;
            host.flush_pending();
            host.trace_mut().mem_write(n);
            Ok(Value::Nil)
        }
        "ctx_switch" => {
            let n = positive_int_arg(&args, "ctx_switch")?;
            host.flush_pending();
            host.trace_mut().ctx_switch(n);
            Ok(Value::Nil)
        }
        _ => Err(ScriptError::Runtime(format!("unknown function {name}"))),
    }
}

fn positive_int_arg(args: &[Value], name: &str) -> Result<u64, ScriptError> {
    match args.first() {
        Some(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
        _ => Err(ScriptError::Runtime(format!("{name} expects a non-negative int"))),
    }
}

//! The CBScript lexer.

use crate::error::ScriptError;
use crate::token::{Token, TokenKind};

/// Tokenizes CBScript source.
///
/// # Errors
///
/// [`ScriptError::Lex`] on unknown characters, unterminated strings, or
/// malformed numbers.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| ScriptError::Lex {
                        line,
                        message: format!("bad float {text}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| ScriptError::Lex {
                        line,
                        message: format!("bad int {text}"),
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = match word {
                    "fn" => TokenKind::Fn,
                    "let" => TokenKind::Let,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "return" => TokenKind::Return,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "nil" => TokenKind::Nil,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token { kind, line });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ScriptError::Lex {
                            line,
                            message: "unterminated string".into(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(ScriptError::Lex {
                                        line,
                                        message: format!("unknown escape \\{other}"),
                                    })
                                }
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(ScriptError::Lex {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), line });
            }
            _ => {
                let (kind, advance) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    ('=', Some('=')) => (TokenKind::EqEq, 2),
                    ('!', Some('=')) => (TokenKind::NotEq, 2),
                    ('<', Some('=')) => (TokenKind::Le, 2),
                    ('>', Some('=')) => (TokenKind::Ge, 2),
                    ('&', Some('&')) => (TokenKind::AndAnd, 2),
                    ('|', Some('|')) => (TokenKind::OrOr, 2),
                    ('=', _) => (TokenKind::Eq, 1),
                    ('!', _) => (TokenKind::Bang, 1),
                    ('<', _) => (TokenKind::Lt, 1),
                    ('>', _) => (TokenKind::Gt, 1),
                    ('+', _) => (TokenKind::Plus, 1),
                    ('-', _) => (TokenKind::Minus, 1),
                    ('*', _) => (TokenKind::Star, 1),
                    ('/', _) => (TokenKind::Slash, 1),
                    ('%', _) => (TokenKind::Percent, 1),
                    ('(', _) => (TokenKind::LParen, 1),
                    (')', _) => (TokenKind::RParen, 1),
                    ('{', _) => (TokenKind::LBrace, 1),
                    ('}', _) => (TokenKind::RBrace, 1),
                    ('[', _) => (TokenKind::LBracket, 1),
                    (']', _) => (TokenKind::RBracket, 1),
                    (',', _) => (TokenKind::Comma, 1),
                    (';', _) => (TokenKind::Semi, 1),
                    _ => {
                        return Err(ScriptError::Lex {
                            line,
                            message: format!("unexpected character {c:?}"),
                        })
                    }
                };
                tokens.push(Token { kind, line });
                i += advance;
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            kinds("let x = 42"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
    }

    #[test]
    fn method_like_range_not_float() {
        // `1.` followed by non-digit must stay Int + something else.
        let err_or = lex("1.x");
        // 1 then '.' is an unexpected character in CBScript.
        assert!(err_or.is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b != c && d || !e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("d".into()),
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""he\"llo\n""#)[0], TokenKind::Str("he\"llo\n".into()));
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let toks = lex("# comment\nlet x = 1").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Let);
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"abc"), Err(ScriptError::Lex { .. })));
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(
            kinds("fn while for in return break continue true false nil"),
            vec![
                TokenKind::Fn,
                TokenKind::While,
                TokenKind::For,
                TokenKind::In,
                TokenKind::Return,
                TokenKind::Break,
                TokenKind::Continue,
                TokenKind::True,
                TokenKind::False,
                TokenKind::Nil,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unknown_character_reports_line() {
        match lex("let x = 1\n let y = @") {
            Err(ScriptError::Lex { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
    }
}

//! Language runtimes for ConfBench's FaaS workloads.
//!
//! The paper evaluates seven runtimes (Python, Node.js, Ruby, Lua, LuaJIT,
//! Go, Wasm) because runtime complexity turns out to interact with TEE
//! overheads. This crate provides the execution machinery:
//!
//! * **CBScript** — a small dynamic language (lexer → parser → AST) with two
//!   real execution engines: a tree-walking interpreter ([`run_program`],
//!   the PUC-Lua path) and a bytecode compiler + stack VM ([`compile`],
//!   [`StackVm`]) that serves as both the Wasmi path
//!   ([`JitMode::wasmi`]) and the trace-compiling LuaJIT path
//!   ([`JitMode::luajit`]);
//! * [`RuntimeProfile`] — emulation profiles for the managed runtimes we do
//!   not reimplement (CPython, V8, MRI) and for compiled Go: dispatch
//!   inflation, allocation pressure, GC cycles, and resident footprint;
//! * [`FunctionLauncher`] — the paper's per-language, workload-agnostic
//!   launcher: give it any [`FaasFunction`] and a language, get output plus
//!   the operation trace a simulated VM can charge for (bootstrap trace kept
//!   separate, since the paper excludes launcher bootstrap from timings).
//!
//! # Example
//!
//! ```
//! use confbench_faasrt::{parse, run_program, TREE_WALK_DISPATCH};
//!
//! let program = parse("let s = 0; for i in 0, 10 { s = s + i; } result(s);")?;
//! let outcome = run_program(&program, &[], TREE_WALK_DISPATCH, 1_000_000)?;
//! assert_eq!(outcome.result, "45");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod builtins;
mod bytecode;
mod error;
mod interp;
mod launcher;
mod lexer;
mod parser;
mod profile;
mod token;
mod value;

pub use ast::{BinOp, Expr, FnDecl, Program, Stmt, UnOp};
pub use bytecode::{compile, CompiledFn, Instr, JitMode, Module, StackVm};
pub use error::ScriptError;
pub use interp::{run_program, ScriptOutcome, TREE_WALK_DISPATCH};
pub use launcher::{FaasFunction, FunctionLauncher, LaunchError, LaunchOutput};
pub use lexer::lex;
pub use parser::parse;
pub use profile::RuntimeProfile;
pub use token::{Token, TokenKind};
pub use value::Value;
